//! Minimal, API-compatible shim for the subset of `parking_lot` this
//! workspace uses. Wraps `std::sync` primitives; lock poisoning is
//! recovered (parking_lot locks are not poisoning).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with the `parking_lot` API shape: `lock()` returns the guard
/// directly (never a poison error).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// A reader-writer lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
