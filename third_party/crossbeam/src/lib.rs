//! Minimal, API-compatible shim for the subset of `crossbeam` this
//! workspace uses: unbounded MPSC channels. Backed by `std::sync::mpsc`,
//! which matches the `send`/`recv`/`try_recv` call shapes used here.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// An unbounded channel, mirroring `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_and_receive() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        let tx2 = tx.clone();
        tx2.send(8).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap(), 8);
    }

    #[test]
    fn disconnect_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
