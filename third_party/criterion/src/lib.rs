//! Minimal, API-compatible shim for the subset of `criterion` this
//! workspace uses. Benchmarks run and report mean wall-clock time per
//! iteration; there is no statistical analysis, warm-up is a fixed small
//! number of iterations, and output is plain text on stdout.

use std::time::{Duration, Instant};

/// How setup outputs are batched in `iter_batched`. The shim runs one
/// setup per measured iteration regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Measurement harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Accumulated (total busy time, iterations) for the report.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly until the sample budget is used.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a few unmeasured runs.
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        let deadline = Instant::now() + self.measurement_time;
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if iters >= self.sample_size as u64 && Instant::now() >= deadline {
                break;
            }
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Time `routine` over inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let deadline = Instant::now() + self.measurement_time;
        let mut iters = 0u64;
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            iters += 1;
            if iters >= self.sample_size as u64 && Instant::now() >= deadline {
                break;
            }
        }
        self.iters += iters;
    }
}

/// Benchmark registry and configuration, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        } else {
            f64::NAN
        };
        println!("{name:<44} {:>14.1} ns/iter ({} iters)", per_iter, b.iters);
        self
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(1));
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
