//! Minimal, API-compatible shim for the subset of `rand` 0.8 this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! and float ranges, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — statistically ample for randomized test
//! inputs and benchmarks, and fully deterministic for a given seed.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        uniform_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_f64(word: u64) -> f64 {
    // 53 high-quality mantissa bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Debiased multiply-shift (Lemire).
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span && !lo.wrapping_neg().is_multiple_of(span) {
            continue;
        }
        if lo < span.wrapping_neg() % span {
            continue;
        }
        return (m >> 64) as u64;
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                a.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = uniform_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample empty range");
                let u = uniform_f64(rng.next_u64()) as $t;
                a + u * (b - a)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable RNG (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
