//! Minimal, API-compatible shim for the subset of `proptest` this
//! workspace uses.
//!
//! Provides the `proptest!` runner macro, the [`strategy::Strategy`]
//! combinator trait (`prop_map`, `prop_flat_map`), range/tuple/`Just`
//! strategies, `prop_oneof!`, collection strategies, and the
//! `prop_assert*` family. Cases are generated from a deterministic
//! per-test seed; failures print the case seed. No shrinking is
//! performed, and `proptest-regressions` files are not read — recorded
//! regressions should be reified as explicit tests.

pub mod test_runner {
    /// Per-run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected cases (via `prop_assume!`) before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case was rejected by `prop_assume!` and should be retried.
        Reject(String),
    }

    /// Deterministic RNG used to generate case inputs (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, span)`; `span` must be nonzero.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128).wrapping_mul(span as u128);
                let lo = m as u64;
                if lo < span.wrapping_neg() % span {
                    continue;
                }
                return (m >> 64) as u64;
            }
        }
    }

    /// Seed for one attempt of one test: FNV-1a over the test path mixed
    /// with the attempt counter. Stable across runs for reproducibility.
    pub fn case_seed(test_path: &str, attempt: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ ((attempt as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values, mirroring `proptest::strategy::Strategy`
    /// (minus shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?}: no value accepted", self.whence)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs alternatives");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.variants.len() as u64) as usize;
            self.variants[k].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty range strategy");
                    let span = (b as i128 - a as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    a.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.next_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty range strategy");
                    a + rng.next_f64() as $t * (b - a)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A collection size specification: an exact count or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a `Vec` of values from `element` with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::btree_set`: a set of distinct values with a
    /// target size drawn from `size`. If the element domain is too small
    /// to reach the target, the set is as large as the domain allows.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut tries = 0usize;
            while out.len() < n && tries < 100 + 50 * n {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// `proptest::prelude::prop` module alias used by some call styles.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$({ let _ = $weight; $crate::strategy::Strategy::boxed($strat) }),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", *l, *r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            let mut __attempt: u32 = 0;
            while __passed < __cfg.cases {
                let __seed = $crate::test_runner::case_seed(__path, __attempt);
                __attempt += 1;
                let __outcome = {
                    let mut __rng = $crate::test_runner::TestRng::new(__seed);
                    let __run = ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        },
                    );
                    ::std::panic::catch_unwind(__run)
                };
                match __outcome {
                    Ok(Ok(())) => __passed += 1,
                    Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                        panic!(
                            "proptest case failed: {} [test {}, case seed {:#018x}]",
                            msg, __path, __seed
                        );
                    }
                    Ok(Err($crate::test_runner::TestCaseError::Reject(msg))) => {
                        __rejected += 1;
                        if __rejected > __cfg.max_global_rejects {
                            panic!(
                                "proptest: too many rejected cases ({}): {} [test {}]",
                                __rejected, msg, __path
                            );
                        }
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest case panicked [test {}, case seed {:#018x}]",
                            __path, __seed
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A(u32),
        B(u8),
    }

    fn tag() -> impl Strategy<Value = Tag> {
        prop_oneof![(1u32..100).prop_map(Tag::A), (0u8..4).prop_map(Tag::B),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u32..17, f in 0.5f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn flat_map_and_collections((n, v) in (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..10, n))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_hits_all_variants(t in tag()) {
            match t {
                Tag::A(x) => prop_assert!((1..100).contains(&x)),
                Tag::B(x) => prop_assert!(x < 4),
            }
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #[test]
        fn btree_set_sizes(s in crate::collection::btree_set(0usize..50, 2..=5)) {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1000, 3..9);
        let a: Vec<u64> = s.generate(&mut TestRng::new(99));
        let b: Vec<u64> = s.generate(&mut TestRng::new(99));
        assert_eq!(a, b);
    }
}
