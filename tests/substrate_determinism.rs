//! Determinism regression for the kernel substrate fast paths.
//!
//! The substrate contract (see DESIGN.md) is that the direct
//! process-handoff transport and the indexed event queue are pure
//! performance substitutions: on the full fig3 QR-migration scenario —
//! middleware, contract monitor, rescheduler, migration and all — every
//! transport × queue combination must produce a bit-identical run report
//! (end time, trace with bitwise `f64` timestamps, per-host flops,
//! per-link bytes).

use grads_core::prelude::*;
use grads_core::sim::topology::macrogrid_qr;

/// The fig3 QR-migration scenario at harness scale with an explicit
/// substrate tune — same shape as `tests/obs_determinism.rs`.
fn fig3_cfg(tune: EngineTune) -> QrExperimentConfig {
    let mut cfg = QrExperimentConfig::paper(20000);
    cfg.qr.n_real = 48;
    cfg.qr.block = 4;
    cfg.qr.poll_every = 4;
    cfg.load_at = 60.0;
    cfg.monitor_period = 10.0;
    cfg.t_max = 50_000.0;
    cfg.tune = tune;
    cfg
}

#[test]
fn direct_handoff_matches_channel_on_fig3() {
    let direct = run_qr_experiment(
        macrogrid_qr(),
        fig3_cfg(EngineTune {
            handoff: HandoffMode::Direct,
            ..Default::default()
        }),
    );
    let channel = run_qr_experiment(
        macrogrid_qr(),
        fig3_cfg(EngineTune {
            handoff: HandoffMode::Channel,
            ..Default::default()
        }),
    );
    assert!(direct.migrated && channel.migrated, "scenario must migrate");
    assert_eq!(
        direct.report.end_time.to_bits(),
        channel.report.end_time.to_bits(),
        "end_time must be bit-identical across transports: {} vs {}",
        direct.report.end_time,
        channel.report.end_time
    );
    assert_eq!(direct.report.trace, channel.report.trace, "trace");
    assert_eq!(direct.report, channel.report, "full run report");
    assert_eq!(direct.incarnations, channel.incarnations);
    assert_eq!(direct.final_hosts, channel.final_hosts);
}

#[test]
fn indexed_queue_matches_stale_mark_on_fig3() {
    let indexed = run_qr_experiment(
        macrogrid_qr(),
        fig3_cfg(EngineTune {
            queue: EventQueueMode::Indexed,
            ..Default::default()
        }),
    );
    let stale = run_qr_experiment(
        macrogrid_qr(),
        fig3_cfg(EngineTune {
            queue: EventQueueMode::StaleMark,
            ..Default::default()
        }),
    );
    assert!(indexed.migrated && stale.migrated, "scenario must migrate");
    assert_eq!(
        indexed.report.end_time.to_bits(),
        stale.report.end_time.to_bits(),
        "end_time must be bit-identical across event queues"
    );
    assert_eq!(indexed.report, stale.report, "full run report");
}

/// The seed configuration (channel transport + stale-mark queue) agrees
/// bitwise with the new default (direct + indexed) — the strongest
/// statement: both substrate layers swapped at once change nothing.
#[test]
fn seed_substrate_matches_fast_substrate_on_fig3() {
    let fast = run_qr_experiment(macrogrid_qr(), fig3_cfg(EngineTune::default()));
    let seed = run_qr_experiment(
        macrogrid_qr(),
        fig3_cfg(EngineTune {
            handoff: HandoffMode::Channel,
            queue: EventQueueMode::StaleMark,
            ..Default::default()
        }),
    );
    assert!(fast.migrated && seed.migrated, "scenario must migrate");
    assert_eq!(fast.report, seed.report, "full run report");
    assert_eq!(fast.breakdown, seed.breakdown, "phase breakdown");
}

/// Coalesced rate recomputation on the full fig3 QR-migration scenario:
/// deferring the solve to the end of each virtual instant must be
/// unobservable end to end — middleware, contract monitor, rescheduler and
/// migration included. This is the end-to-end level of the coalescing
/// determinism pin (unit: `engine::tests`, property:
/// `crates/sim/tests/prop_coalesced.rs`).
#[test]
fn coalesced_recompute_matches_eager_on_fig3() {
    let eager = run_qr_experiment(macrogrid_qr(), fig3_cfg(EngineTune::default()));
    let coalesced = run_qr_experiment(
        macrogrid_qr(),
        fig3_cfg(EngineTune {
            recompute: RecomputeTiming::Coalesced,
            ..Default::default()
        }),
    );
    assert!(
        eager.migrated && coalesced.migrated,
        "scenario must migrate"
    );
    assert_eq!(
        eager.report.end_time.to_bits(),
        coalesced.report.end_time.to_bits(),
        "end_time must be bit-identical across recompute timing"
    );
    assert_eq!(eager.report, coalesced.report, "full run report");
    assert_eq!(eager.incarnations, coalesced.incarnations);
    assert_eq!(eager.final_hosts, coalesced.final_hosts);
}

/// The windowed (conservative parallel) kernel on the full fig3
/// QR-migration scenario: the multi-cluster MacroGrid gives real WAN
/// lookahead, and the run report must be bit-identical to the serial
/// kernel at every worker count — the end-to-end level of the
/// determinism pin (unit: `engine::tests`, property:
/// `crates/sim/tests/prop_windowed.rs`).
#[test]
fn windowed_kernel_matches_serial_on_fig3() {
    let serial = run_qr_experiment(macrogrid_qr(), fig3_cfg(EngineTune::default()));
    assert!(serial.migrated, "scenario must migrate");
    for workers in [1, 4] {
        let windowed = run_qr_experiment(
            macrogrid_qr(),
            fig3_cfg(EngineTune {
                kernel: KernelMode::Windowed { workers },
                ..Default::default()
            }),
        );
        assert!(windowed.migrated, "windowed run must migrate too");
        assert_eq!(
            serial.report.end_time.to_bits(),
            windowed.report.end_time.to_bits(),
            "end_time must be bit-identical at {workers} workers"
        );
        assert_eq!(
            serial.report, windowed.report,
            "full run report at {workers} workers"
        );
        assert_eq!(serial.incarnations, windowed.incarnations);
        assert_eq!(serial.final_hosts, windowed.final_hosts);
    }
}
