//! Regression: one `ForecastSnapshot` per violation decision.
//!
//! The fast decision path captures a forecast snapshot in the violation
//! handler (migrate-or-not) and used to capture *another* inside the
//! mapper when the migration re-prepared — so the two halves of a single
//! decision could read divergent forecasts within one monitor poll. The
//! handler now pins its snapshot into the cop's `SharedSnapshot` cell and
//! the mapper takes it, recording provenance in `snapshot_trace`. This
//! test runs the migrating fig3 scenario and asserts the mapper and the
//! rescheduler saw the *identical* forecasts (same content fingerprint).

use grads_core::prelude::*;
use grads_core::sim::topology::macrogrid_qr;

fn fig3_cfg() -> QrExperimentConfig {
    let mut cfg = QrExperimentConfig::paper(20000);
    cfg.qr.n_real = 48;
    cfg.qr.block = 4;
    cfg.qr.poll_every = 4;
    cfg.load_at = 60.0;
    cfg.monitor_period = 10.0;
    cfg.t_max = 50_000.0;
    cfg.sched = SchedTune::fast();
    cfg
}

#[test]
fn mapper_and_rescheduler_share_one_snapshot_per_migration() {
    let r = run_qr_experiment(macrogrid_qr(), fig3_cfg());
    assert!(r.migrated, "scenario must migrate");
    let trace = &r.snapshot_trace;
    assert!(!trace.is_empty(), "fast path must record snapshot use");

    // The initial map has no preceding decision: it captures fresh.
    assert_eq!(
        trace[0].0,
        SnapshotUse::MapCaptured,
        "first map captures its own snapshot: {trace:?}"
    );

    // Every subsequent map is a post-migration landing map and must reuse
    // the snapshot of the rescheduling decision immediately before it.
    let mut shared_maps = 0usize;
    for (i, &(use_, fp)) in trace.iter().enumerate().skip(1) {
        match use_ {
            SnapshotUse::MapCaptured => {
                panic!("post-decision map must not re-capture: {trace:?}")
            }
            SnapshotUse::MapShared => {
                shared_maps += 1;
                let (prev_use, prev_fp) = trace[i - 1];
                assert_eq!(
                    prev_use,
                    SnapshotUse::ReschedCaptured,
                    "shared map must follow the migrate decision: {trace:?}"
                );
                assert_eq!(
                    fp, prev_fp,
                    "mapper and rescheduler must read identical forecasts \
                     (fingerprint mismatch at trace[{i}]): {trace:?}"
                );
            }
            SnapshotUse::ReschedCaptured => {}
        }
    }
    assert!(
        shared_maps >= 1,
        "a migration must produce a shared landing map: {trace:?}"
    );
    assert_eq!(
        shared_maps,
        r.incarnations - 1,
        "one shared landing map per migration: {trace:?}"
    );
}
