//! Determinism regression for the observability layer.
//!
//! The obs contract (see DESIGN.md) is that recording must not perturb the
//! simulation: an obs-enabled fig3 QR-migration run must be bit-identical
//! to a disabled one on `end_time` and the full trace, and two obs-enabled
//! runs must record identical metric snapshots, JSON exports, and decision
//! event logs.

use grads_core::obs::{DecisionAction, DecisionKind, Obs, PathSegment};
use grads_core::prelude::*;
use grads_core::sim::topology::macrogrid_qr;

/// The fig3 QR-migration scenario at harness scale — same shape as the
/// apps crate's migration test: load lands at t = 60, the monitor detects
/// the violation, and the rescheduler migrates UTK → UIUC.
fn fig3_cfg(obs: Obs) -> QrExperimentConfig {
    let mut cfg = QrExperimentConfig::paper(20000);
    cfg.qr.n_real = 48;
    cfg.qr.block = 4;
    cfg.qr.poll_every = 4;
    cfg.load_at = 60.0;
    cfg.monitor_period = 10.0;
    cfg.t_max = 50_000.0;
    cfg.obs = obs;
    cfg
}

#[test]
fn obs_on_and_off_are_bit_identical() {
    let off = run_qr_experiment(macrogrid_qr(), fig3_cfg(Obs::disabled()));
    let on_obs = Obs::enabled();
    let on = run_qr_experiment(macrogrid_qr(), fig3_cfg(on_obs.clone()));

    assert!(on.migrated && off.migrated, "scenario must migrate");
    assert_eq!(
        on.report.end_time.to_bits(),
        off.report.end_time.to_bits(),
        "end_time must be bit-identical with obs on vs. off: {} vs {}",
        on.report.end_time,
        off.report.end_time
    );
    assert_eq!(
        on.report.trace, off.report.trace,
        "trace must be identical with obs on vs. off"
    );
    assert_eq!(on.report, off.report, "full run report must be identical");

    // The enabled run actually recorded the decision loop.
    let snap = on_obs.snapshot();
    assert!(snap.counter("sim.events_applied").unwrap_or(0) > 0);
    assert!(snap.counter("contract.polls").unwrap_or(0) > 0);
    assert!(
        snap.counter("contract.decisions_migrate").unwrap_or(0) >= 1,
        "snapshot: {}",
        snap.to_json()
    );
    let events = on_obs.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, DecisionKind::ViolationDetected { .. })),
        "violation event expected"
    );
    let chains = on_obs.chains();
    let migration = chains
        .iter()
        .find(|c| c.action == DecisionAction::Migrate)
        .expect("a migrate chain");
    assert!(migration.t_actuation_end.is_some(), "actuation completed");
    assert!(migration.end_to_end().unwrap() > 0.0);
}

#[test]
fn recorder_on_and_off_are_bit_identical() {
    let off = run_qr_experiment(macrogrid_qr(), fig3_cfg(Obs::disabled()));
    let rec = Recorder::enabled();
    let mut cfg = fig3_cfg(Obs::disabled());
    cfg.recorder = rec.clone();
    let on = run_qr_experiment(macrogrid_qr(), cfg);

    assert!(on.migrated && off.migrated, "scenario must migrate");
    assert_eq!(
        on.report.end_time.to_bits(),
        off.report.end_time.to_bits(),
        "end_time must be bit-identical with the flight recorder on vs. off"
    );
    assert_eq!(on.report, off.report, "full run report must be identical");

    // The enabled run recorded a substantive timeline: two incarnations,
    // messages matched, a bridge linking them, and a critical path that
    // tiles the makespan.
    let tl = rec.timeline();
    assert_eq!(tl.worlds.len(), 2, "both incarnations recorded");
    assert!(!tl.msgs.is_empty());
    assert!(
        tl.bridges.iter().any(|b| b.is_some()),
        "migration bridge recorded"
    );
    let path = tl.critical_path();
    assert!(!path.is_empty());
    assert_eq!(path.last().unwrap().t1, tl.makespan());
}

#[test]
fn collective_internals_attribute_through_the_tree_without_perturbing() {
    let off = run_qr_experiment(macrogrid_qr(), fig3_cfg(Obs::disabled()));
    let rec = Recorder::enabled_with_internals();
    let mut cfg = fig3_cfg(Obs::disabled());
    cfg.recorder = rec.clone();
    let on = run_qr_experiment(macrogrid_qr(), cfg);

    assert!(on.migrated && off.migrated, "scenario must migrate");
    assert_eq!(
        on.report.end_time.to_bits(),
        off.report.end_time.to_bits(),
        "end_time must be bit-identical with collective internals on vs. off"
    );
    assert_eq!(on.report, off.report, "full run report must be identical");

    let tl = rec.timeline();
    assert!(
        tl.tracks.iter().any(|t| !t.hops.is_empty()),
        "per-hop collective spans recorded"
    );

    // Both walks tile [0, makespan] with bitwise-shared endpoints — the
    // path-tiling invariant survives walking through the tree.
    let tile = |path: &[PathSegment], label: &str| {
        assert!(!path.is_empty(), "{label} path exists");
        assert_eq!(path[0].t0.to_bits(), 0f64.to_bits(), "{label} starts at 0");
        for w in path.windows(2) {
            assert_eq!(
                w[0].t1.to_bits(),
                w[1].t0.to_bits(),
                "{label} segments share endpoints bitwise"
            );
        }
        assert_eq!(
            path.last().unwrap().t1.to_bits(),
            tl.makespan().to_bits(),
            "{label} ends at the makespan"
        );
    };
    let honest = tl.critical_path();
    let opaque = tl.critical_path_opaque();
    tile(&honest, "honest");
    tile(&opaque, "opaque");

    // And they attribute the makespan to hosts differently: the honest
    // walk follows the collective's internal sends across ranks, the
    // opaque walk is forbidden from using collective edges — this is the
    // measurable difference per-hop recording buys on fig3.
    assert_ne!(
        tl.critical_path_by_host(&honest),
        tl.critical_path_by_host(&opaque),
        "per-host attribution must change between honest and opaque walks"
    );
}

#[test]
fn two_recorder_enabled_runs_record_identical_timelines() {
    let run = || {
        let rec = Recorder::enabled();
        let mut cfg = fig3_cfg(Obs::disabled());
        cfg.recorder = rec.clone();
        let r = run_qr_experiment(macrogrid_qr(), cfg);
        (rec.timeline(), r)
    };
    let (ta, ra) = run();
    let (tb, rb) = run();
    assert_eq!(ra.report, rb.report);
    // Timeline equality is bitwise on every float.
    assert_eq!(ta, tb, "timelines must be bit-identical");
    assert_eq!(
        ta.to_chrome_trace(),
        tb.to_chrome_trace(),
        "Chrome trace exports must be byte-identical"
    );
    assert_eq!(
        ta.summary(),
        tb.summary(),
        "text summaries must be byte-identical"
    );
}

#[test]
fn two_obs_enabled_runs_record_identically() {
    let a = Obs::enabled();
    let b = Obs::enabled();
    let ra = run_qr_experiment(macrogrid_qr(), fig3_cfg(a.clone()));
    let rb = run_qr_experiment(macrogrid_qr(), fig3_cfg(b.clone()));
    assert_eq!(ra.report, rb.report);
    assert_eq!(a.snapshot(), b.snapshot(), "metric snapshots must match");
    assert_eq!(
        a.snapshot().to_json(),
        b.snapshot().to_json(),
        "JSON exports must be byte-identical"
    );
    assert_eq!(a.events(), b.events(), "decision event logs must match");
}
