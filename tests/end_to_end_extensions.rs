//! Integration tests of the extension features through the public API:
//! DML-described grids driving full experiments, fault tolerance,
//! parameter sweeps, and the economy allocator working together.

use grads_core::apps::psa::{execute_psa, generate, schedule_psa, PsaConfig, PsaStrategy};
use grads_core::apps::{run_ft_experiment, FtExperimentConfig};
use grads_core::nws::NwsService;
use grads_core::sched::{CommodityMarket, Consumer, Producer};
use grads_core::sim::parse_dml;

const TESTBED: &str = r#"
# QR testbed, DML-described.
cluster UTK {
    hosts 4
    speed 933e6
    cores 2
    link 12.5e6 100e-6
}
cluster UIUC {
    hosts 8
    speed 450e6
    link 160e6 20e-6
}
connect UTK UIUC 4e6 0.030
"#;

#[test]
fn failover_runs_on_a_dml_described_grid() {
    let grid = parse_dml(TESTBED).expect("valid DML");
    let workers = grid.hosts_of("UTK");
    let depot = grid.hosts_of("UIUC")[0];
    let r = run_ft_experiment(grid, &workers, depot, FtExperimentConfig::default());
    assert!(r.completed);
    assert_eq!(r.recoveries, 1);
    assert!(!r.final_hosts.contains(&workers[0]));
}

#[test]
fn dml_grid_equals_builder_grid_for_experiments() {
    // The same failover experiment on the builder topology and its DML
    // description must agree exactly.
    let from_dml = {
        let grid = parse_dml(TESTBED).expect("valid DML");
        let workers = grid.hosts_of("UTK");
        let depot = grid.hosts_of("UIUC")[0];
        run_ft_experiment(grid, &workers, depot, FtExperimentConfig::default())
    };
    let from_builder = {
        let grid = grads_core::sim::topology::macrogrid_qr();
        let workers = grid.hosts_of("UTK");
        let depot = grid.hosts_of("UIUC")[0];
        run_ft_experiment(grid, &workers, depot, FtExperimentConfig::default())
    };
    assert_eq!(from_dml.total_time, from_builder.total_time);
    assert_eq!(from_dml.lost_steps, from_builder.lost_steps);
    assert_eq!(from_dml.recoveries, from_builder.recoveries);
}

#[test]
fn sweep_scheduling_and_execution_on_dml_grid() {
    let grid = parse_dml(
        r#"
cluster STORE {
    hosts 1
    link 1e8 1e-4
}
cluster COMPUTE {
    hosts 6
    speed 2e9
    link 1e8 1e-4
}
connect STORE COMPUTE 1e7 0.01
"#,
    )
    .expect("valid DML");
    let storage = grid.hosts_of("STORE")[0];
    let hosts = grid.hosts_of("COMPUTE");
    let nws = NwsService::new();
    let wl = generate(&PsaConfig {
        n_tasks: 30,
        n_files: 3,
        file_bytes: 5e8,
        ..Default::default()
    });
    let sched = schedule_psa(&wl, &grid, &nws, &hosts, storage, PsaStrategy::XSufferage);
    let measured = execute_psa(&grid, &wl, &sched, &hosts, storage);
    assert!(measured > 0.0);
    let rr = schedule_psa(&wl, &grid, &nws, &hosts, storage, PsaStrategy::RoundRobin);
    let rr_measured = execute_psa(&grid, &wl, &rr, &hosts, storage);
    assert!(
        measured <= rr_measured * 1.05,
        "xsufferage {measured} vs round-robin {rr_measured}"
    );
}

#[test]
fn economy_allocates_cluster_capacity() {
    // Use a grid's core counts as the market supply: a plausible wiring of
    // the §5 economy into the existing topology layer.
    let grid = parse_dml(TESTBED).expect("valid DML");
    let supply: f64 = grid.hosts().iter().map(|h| h.cores as f64).sum();
    let producers = vec![Producer { capacity: supply }];
    let consumers = vec![
        Consumer {
            budget: 60.0,
            max_demand: 10.0,
        },
        Consumer {
            budget: 30.0,
            max_demand: 10.0,
        },
        Consumer {
            budget: 10.0,
            max_demand: 10.0,
        },
    ];
    let mut m = CommodityMarket::default();
    let eq = m.clear(&producers, &consumers, 500, 0.01);
    assert!(eq.converged);
    let total: f64 = eq.allocations.iter().sum();
    assert!(total <= supply * 1.001);
    assert!(eq.allocations[0] >= eq.allocations[2]);
}
