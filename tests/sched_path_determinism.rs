//! Determinism regression for the scheduler decision-path fast path.
//!
//! The decision-path contract (the scheduler analog of the substrate
//! contract in `substrate_determinism.rs`) is that the fast path —
//! forecast snapshot per decision epoch, zero-materialization candidate
//! walk, incremental prefix predictor, parallel deterministic argmin —
//! is a pure performance substitution: on the full fig3 QR-migration
//! scenario (initial mapping, contract monitor, rescheduling decision,
//! migration and all) every `SchedTune` mode must produce a bit-identical
//! run report.

use grads_core::prelude::*;
use grads_core::sim::topology::macrogrid_qr;

/// The fig3 QR-migration scenario at harness scale with an explicit
/// decision-path tune — same shape as `tests/substrate_determinism.rs`.
fn fig3_cfg(sched: SchedTune) -> QrExperimentConfig {
    let mut cfg = QrExperimentConfig::paper(20000);
    cfg.qr.n_real = 48;
    cfg.qr.block = 4;
    cfg.qr.poll_every = 4;
    cfg.load_at = 60.0;
    cfg.monitor_period = 10.0;
    cfg.t_max = 50_000.0;
    cfg.sched = sched;
    cfg
}

#[test]
fn fast_decision_path_matches_reference_on_fig3() {
    let fast = run_qr_experiment(macrogrid_qr(), fig3_cfg(SchedTune::fast()));
    let reference = run_qr_experiment(macrogrid_qr(), fig3_cfg(SchedTune::reference()));
    assert!(fast.migrated && reference.migrated, "scenario must migrate");
    assert_eq!(
        fast.report.end_time.to_bits(),
        reference.report.end_time.to_bits(),
        "end_time must be bit-identical across decision paths: {} vs {}",
        fast.report.end_time,
        reference.report.end_time
    );
    assert_eq!(fast.report.trace, reference.report.trace, "trace");
    assert_eq!(fast.report, reference.report, "full run report");
    assert_eq!(fast.incarnations, reference.incarnations);
    assert_eq!(fast.final_hosts, reference.final_hosts);
}

/// The parallel scorer changes wall-clock only: any worker count yields
/// the same simulation as the serial fast path and the reference loop.
#[test]
fn parallel_scorer_matches_reference_on_fig3() {
    let parallel = run_qr_experiment(macrogrid_qr(), fig3_cfg(SchedTune::fast_parallel(4)));
    let reference = run_qr_experiment(macrogrid_qr(), fig3_cfg(SchedTune::reference()));
    assert!(
        parallel.migrated && reference.migrated,
        "scenario must migrate"
    );
    assert_eq!(
        parallel.report.end_time.to_bits(),
        reference.report.end_time.to_bits(),
        "end_time must be bit-identical with a parallel scorer"
    );
    assert_eq!(parallel.report, reference.report, "full run report");
    assert_eq!(parallel.final_hosts, reference.final_hosts);
}
