//! End-to-end integration tests of the §4.2 process-swapping pipeline:
//! swap world + NWS sensors + swap rescheduler + the N-body application on
//! the MicroGrid.

use grads_core::apps::{run_nbody_experiment, NbodyConfig, NbodyExperimentConfig};
use grads_core::reschedule::SwapPolicy;
use grads_core::sim::prelude::*;
use grads_core::sim::topology::microgrid_nbody;

fn setup() -> (Grid, Vec<HostId>, HostId) {
    let grid = microgrid_nbody();
    let mut workers = grid.hosts_of("UTK");
    workers.extend(grid.hosts_of("UIUC"));
    let monitor = grid.hosts_of("UCSD")[0];
    (grid, workers, monitor)
}

fn base_cfg() -> NbodyExperimentConfig {
    NbodyExperimentConfig {
        app: NbodyConfig {
            n_bodies: 96,
            iters: 300,
            flops_per_pair: 2e5,
            ..Default::default()
        },
        t_max: 4000.0,
        ..Default::default()
    }
}

#[test]
fn figure4_progress_signature() {
    let (grid, workers, monitor) = setup();
    let cfg = base_cfg();
    let r = run_nbody_experiment(grid, &workers, monitor, cfg.clone());
    // One swap, after the load arrives, within the paper's recovery window
    // scale (~tens of seconds after t = 80).
    assert_eq!(r.swaps.len(), 1, "swaps: {:?}", r.swaps);
    let swap_t = r.swaps[0].0;
    assert!(swap_t > cfg.load_at && swap_t < cfg.load_at + 120.0);
    // Progress is monotone and completes.
    for w in r.progress.windows(2) {
        assert!(w[1].1 >= w[0].1);
        assert!(w[1].0 >= w[0].0);
    }
    assert_eq!(r.progress.last().unwrap().1 as u64, cfg.app.iters - 1);
}

#[test]
fn two_loaded_hosts_trigger_two_swaps() {
    let (grid, workers, monitor) = setup();
    let mut cfg = base_cfg();
    cfg.load_host = 0;
    // Also load the second UTK host via a second experiment knob: emulate
    // by loading host index 1 instead and verifying a swap still occurs,
    // then greedy pairing with both loads.
    let r = {
        let mut eng_cfg = cfg.clone();
        eng_cfg.load_host = 1;
        run_nbody_experiment(grid.clone(), &workers, monitor, eng_cfg)
    };
    assert_eq!(r.swaps.len(), 1);
    // Greedy policy with a lower threshold swaps the loaded host even for
    // milder load.
    let mut mild = cfg.clone();
    mild.load_amount = 1.0; // availability 0.5 on the loaded host
    mild.policy = SwapPolicy::Greedy { factor: 1.2 };
    let r2 = run_nbody_experiment(grid, &workers, monitor, mild);
    assert!(
        !r2.swaps.is_empty(),
        "looser threshold should still swap under mild load"
    );
}

#[test]
fn pack_cluster_policy_moves_all_three_like_the_paper() {
    // "...migrated all three working application processes to the UIUC
    // cluster by time 150 seconds."
    let (grid, workers, monitor) = setup();
    let mut cfg = base_cfg();
    cfg.policy = SwapPolicy::PackCluster { factor: 1.5 };
    let r = run_nbody_experiment(grid.clone(), &workers, monitor, cfg.clone());
    assert_eq!(r.swaps.len(), 3, "all three ranks move: {:?}", r.swaps);
    let last_swap = r.swaps.iter().fold(0.0f64, |a, &(t, _)| a.max(t));
    assert!(
        last_swap > cfg.load_at && last_swap < cfg.load_at + 120.0,
        "recovery window: {last_swap}"
    );
    // Progress still completes, faster than never-swapping.
    let mut never = base_cfg();
    never.policy = SwapPolicy::Never;
    let r_never = run_nbody_experiment(grid, &workers, monitor, never);
    assert!(r.end_time < r_never.end_time);
}

#[test]
fn worst_first_policy_swaps_at_most_one_per_round() {
    let (grid, workers, monitor) = setup();
    let mut cfg = base_cfg();
    cfg.policy = SwapPolicy::WorstFirst { factor: 2.0 };
    let r = run_nbody_experiment(grid, &workers, monitor, cfg);
    assert_eq!(r.swaps.len(), 1);
}

#[test]
fn swap_experiment_deterministic() {
    let (grid, workers, monitor) = setup();
    let r1 = run_nbody_experiment(grid.clone(), &workers, monitor, base_cfg());
    let r2 = run_nbody_experiment(grid, &workers, monitor, base_cfg());
    assert_eq!(r1.progress, r2.progress);
    assert_eq!(r1.swaps, r2.swaps);
}

#[test]
fn swap_overhead_is_light() {
    // The paper: "the overhead for processor swapping is quite low."
    // Compare a swap run against an oracle run with no load and no swaps:
    // the swap run's extra time should be explained almost entirely by
    // the loaded interval, not by swap mechanics.
    let (grid, workers, monitor) = setup();
    let mut no_load = base_cfg();
    no_load.load_at = 1e9;
    no_load.policy = SwapPolicy::Never;
    let r_oracle = run_nbody_experiment(grid.clone(), &workers, monitor, no_load);
    let r_swap = run_nbody_experiment(grid, &workers, monitor, base_cfg());
    // Bottleneck host drops from 550 MHz to 450 MHz after the swap; allow
    // that slowdown plus the loaded interval, but not much more.
    assert!(
        r_swap.end_time < r_oracle.end_time * 1.45,
        "swap run {} vs oracle {}",
        r_swap.end_time,
        r_oracle.end_time
    );
}
