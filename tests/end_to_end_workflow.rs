//! End-to-end integration tests of the §3 workflow pipeline: performance
//! models → rank matrix → heuristics → schedule → emulated execution.

use grads_core::apps::wf_exec::execute_workflow;
use grads_core::apps::{eman_grid, eman_workflow, EmanConfig};
use grads_core::nws::NwsService;
use grads_core::perf::{RankWeights, ResourceInfo};
use grads_core::sched::{
    schedule_greedy_ecost, schedule_heft, schedule_random, schedule_round_robin, WorkflowScheduler,
};
use grads_core::sim::prelude::*;

fn resources(grid: &Grid) -> Vec<ResourceInfo> {
    let nws = NwsService::new();
    (0..grid.hosts().len() as u32)
        .map(|i| ResourceInfo::from_grid(grid, &nws, HostId(i)))
        .collect()
}

#[test]
fn grads_scheduler_dominates_baselines_across_configs() {
    let grid = eman_grid();
    let res = resources(&grid);
    let nws = NwsService::new();
    for (particles, par) in [(5_000, 4), (20_000, 8), (50_000, 12)] {
        let cfg = EmanConfig {
            n_particles: particles,
            classify_par: par,
            ..Default::default()
        };
        let (wf, _) = eman_workflow(&cfg);
        let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &res);
        let rr = schedule_round_robin(&wf, &grid, &nws, &res);
        let greedy = schedule_greedy_ecost(&wf, &grid, &nws, &res);
        let rnd_avg: f64 = (0..4)
            .map(|s| schedule_random(&wf, &grid, &nws, &res, s).makespan)
            .sum::<f64>()
            / 4.0;
        assert!(
            best.makespan <= rr.makespan * 1.001,
            "{particles}/{par}: {} vs rr {}",
            best.makespan,
            rr.makespan
        );
        assert!(
            best.makespan <= greedy.makespan * 1.001,
            "{particles}/{par}: {} vs greedy {}",
            best.makespan,
            greedy.makespan
        );
        assert!(
            best.makespan < rnd_avg,
            "{particles}/{par}: {} vs random {}",
            best.makespan,
            rnd_avg
        );
    }
}

#[test]
fn predicted_and_emulated_makespans_agree() {
    let grid = eman_grid();
    let res = resources(&grid);
    let nws = NwsService::new();
    let cfg = EmanConfig {
        n_particles: 10_000,
        classify_par: 6,
        align_par: 3,
        ..Default::default()
    };
    let (wf, _) = eman_workflow(&cfg);
    let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &res);
    let exec = execute_workflow(&grid, &wf, &best, &res);
    let ratio = exec.makespan / best.makespan;
    assert!(
        (0.7..1.4).contains(&ratio),
        "emulated {} vs predicted {} (ratio {ratio})",
        exec.makespan,
        best.makespan
    );
}

#[test]
fn heft_and_grads_both_beat_naive_on_eman() {
    let grid = eman_grid();
    let res = resources(&grid);
    let nws = NwsService::new();
    let (wf, _) = eman_workflow(&EmanConfig::default());
    let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &res);
    let heft = schedule_heft(&wf, &grid, &nws, &res);
    let rnd = schedule_random(&wf, &grid, &nws, &res, 99);
    assert!(best.makespan < rnd.makespan);
    assert!(heft.makespan < rnd.makespan);
}

#[test]
fn rank_weights_change_placements() {
    // The w1/w2 knobs must actually steer the tradeoff: with data cost
    // weighted heavily, components co-locate with their producers.
    let grid = eman_grid();
    let res = resources(&grid);
    let nws = NwsService::new();
    let cfg = EmanConfig {
        n_particles: 2_000,
        ..Default::default()
    };
    let (wf, _) = eman_workflow(&cfg);
    let mut data_heavy = WorkflowScheduler {
        weights: RankWeights { w1: 0.05, w2: 10.0 },
        ..Default::default()
    };
    let mut compute_heavy = WorkflowScheduler {
        weights: RankWeights { w1: 10.0, w2: 0.05 },
        ..Default::default()
    };
    let (s_data, _) = data_heavy.schedule(&wf, &grid, &nws, &res);
    let (s_comp, _) = compute_heavy.schedule(&wf, &grid, &nws, &res);
    let _ = (&mut data_heavy, &mut compute_heavy);
    assert_ne!(
        s_data.placement, s_comp.placement,
        "weights had no effect on the schedule"
    );
}

#[test]
fn workflow_execution_respects_all_dependences() {
    let grid = eman_grid();
    let res = resources(&grid);
    let nws = NwsService::new();
    let cfg = EmanConfig {
        n_particles: 3_000,
        classify_par: 4,
        align_par: 2,
        ..Default::default()
    };
    let (wf, _) = eman_workflow(&cfg);
    let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &res);
    let exec = execute_workflow(&grid, &wf, &best, &res);
    for e in &wf.edges {
        assert!(
            exec.runs[e.to].start >= exec.runs[e.from].finish - 1e-9,
            "{} started before {} finished",
            wf.components[e.to].name,
            wf.components[e.from].name
        );
    }
}
