//! End-to-end integration tests of the §4.1 stop/restart pipeline: grid
//! emulator + GIS/binder + contract monitor + rescheduler + SRS + the QR
//! application, composed exactly as the figure harness composes them.

use grads_core::apps::{run_qr_experiment, QrExperimentConfig};
use grads_core::reschedule::{OverheadPolicy, ReschedulerMode};
use grads_core::sim::topology::macrogrid_qr;

fn cfg(n: usize) -> QrExperimentConfig {
    let mut c = QrExperimentConfig::paper(n);
    c.qr.n_real = 64;
    c.qr.poll_every = 2;
    c.load_at = 120.0;
    c.monitor_period = 15.0;
    c.t_max = 60_000.0;
    c
}

#[test]
fn worst_case_overhead_reproduces_papers_wrong_decision() {
    // Pick a size where modeled overhead says "migrate" but the paper's
    // pessimistic 900 s worst-case assumption says "stay" — the N = 8000
    // story of Figure 3. (The emulated crossover sits higher than the
    // paper's because our testbed constants differ; see EXPERIMENTS.md.)
    let n = 10_000;
    let mut modeled = cfg(n);
    modeled.overhead = OverheadPolicy::Modeled;
    let r_modeled = run_qr_experiment(macrogrid_qr(), modeled);

    let mut pessimist = cfg(n);
    pessimist.overhead = OverheadPolicy::WorstCase(900.0);
    let r_pessimist = run_qr_experiment(macrogrid_qr(), pessimist);

    assert!(
        r_modeled.migrated,
        "modeled overhead should migrate: {:?}",
        r_modeled.decision
    );
    assert!(
        !r_pessimist.migrated,
        "900 s worst-case should refuse: {:?}",
        r_pessimist.decision
    );
    let d = r_pessimist.decision.expect("violation occurred");
    assert_eq!(d.overhead_used, 900.0);
    assert!(
        d.overhead_modeled < 900.0,
        "actual modeled overhead {} should be below the pessimistic bound",
        d.overhead_modeled
    );
    // And staying costs more: the wrong decision is measurably wrong.
    assert!(
        r_modeled.total_time < r_pessimist.total_time,
        "migrating ({}) should beat staying ({})",
        r_modeled.total_time,
        r_pessimist.total_time
    );
}

#[test]
fn migration_cost_structure_matches_paper() {
    // "The time for reading checkpoints dominated the rescheduling cost
    // ... the time for writing checkpoints is insignificant."
    let mut c = cfg(16_000);
    c.mode = ReschedulerMode::ForceMigrate;
    let r = run_qr_experiment(macrogrid_qr(), c);
    assert!(r.migrated);
    let b = &r.breakdown;
    assert!(
        b.checkpoint_read > 5.0 * b.checkpoint_write,
        "read {} should dwarf write {}",
        b.checkpoint_read,
        b.checkpoint_write
    );
    // Grid machinery (two incarnations) is accounted.
    assert!(b.resource_selection > 0.0);
    assert!(b.grid_overhead > 0.0);
    assert!(b.app_start > 0.0);
    assert!(b.app_duration > b.checkpoint_read);
}

#[test]
fn experiment_is_deterministic() {
    let r1 = run_qr_experiment(macrogrid_qr(), cfg(9_000));
    let r2 = run_qr_experiment(macrogrid_qr(), cfg(9_000));
    assert_eq!(r1.total_time, r2.total_time);
    assert_eq!(r1.migrated, r2.migrated);
    assert_eq!(r1.incarnations, r2.incarnations);
    assert_eq!(r1.final_hosts, r2.final_hosts);
}

#[test]
fn rescheduling_benefit_grows_with_problem_size() {
    // "The rescheduling benefits are greater for large problem sizes
    // because the remaining lifetime of the application is larger."
    let gain = |n: usize| {
        let mut stay = cfg(n);
        stay.mode = ReschedulerMode::ForceStay;
        let mut go = cfg(n);
        go.mode = ReschedulerMode::ForceMigrate;
        let rs = run_qr_experiment(macrogrid_qr(), stay);
        let rg = run_qr_experiment(macrogrid_qr(), go);
        rs.total_time - rg.total_time
    };
    let g_small = gain(9_000);
    let g_large = gain(18_000);
    assert!(
        g_large > g_small,
        "benefit should grow with N: {g_small} vs {g_large}"
    );
    assert!(g_large > 0.0, "migration must pay off at N = 18000");
}
