//! Determinism contract of the multi-tenant service layer.
//!
//! The service's promise is the same one the kernel and the decision
//! path already make: given a seed, the run is a pure function — the
//! identical admitted set, per-tenant accounts, and metrics across
//! reruns, across `SchedTune` decision paths (reference vs fast vs
//! parallel-scored fast), and regardless of sweep worker fan-out.
//! `ServiceResult`'s `PartialEq` is bitwise on every float, so these
//! assertions are bit-for-bit, not approximate.

use grads_core::obs::Obs;
use grads_core::prelude::*;
use proptest::prelude::*;

fn cfg(seed: u64, sched: SchedTune) -> ServiceConfig {
    ServiceConfig {
        workload: WorkloadConfig {
            seed,
            n_jobs: 120,
            n_tenants: 4,
            mean_interarrival_s: 1.0,
            ..WorkloadConfig::default()
        },
        hosts: 48,
        clusters: 4,
        cores_per_host: 2,
        round_s: 10.0,
        sched,
        ..ServiceConfig::default()
    }
}

#[test]
fn rerun_is_bit_identical() {
    let a = run_service_experiment(cfg(7, SchedTune::fast()));
    let b = run_service_experiment(cfg(7, SchedTune::fast()));
    assert_eq!(a, b, "same seed must reproduce the identical run");
    assert!(a.totals.admitted > 0, "the scenario admits work");
}

#[test]
fn decision_paths_agree_bit_identically() {
    let reference = run_service_experiment(cfg(11, SchedTune::reference()));
    let fast = run_service_experiment(cfg(11, SchedTune::fast()));
    let parallel = run_service_experiment(cfg(11, SchedTune::fast_parallel(4)));
    assert_eq!(
        reference.admitted_ids, fast.admitted_ids,
        "reference and fast paths must admit the identical job sequence"
    );
    assert_eq!(reference, fast, "full result, reference vs fast");
    assert_eq!(fast, parallel, "full result, fast vs parallel scorer");
}

#[test]
fn epoch_path_agrees_with_every_decision_path_bit_identically() {
    // The incremental-epoch tentpole: delta capture + persistent index +
    // mapping plan must reproduce the rebuilt-per-job run exactly, and
    // compose with the other tune axes.
    let reference = run_service_experiment(cfg(13, SchedTune::reference()));
    let fast = run_service_experiment(cfg(13, SchedTune::fast()));
    let epoch = run_service_experiment(cfg(13, SchedTune::fast().with_epoch(true)));
    assert_eq!(
        reference.admitted_ids, epoch.admitted_ids,
        "epoch mode must admit the identical job sequence"
    );
    assert_eq!(reference, epoch, "full result, reference vs epoch");
    assert_eq!(fast, epoch, "full result, fast vs epoch");
}

#[test]
fn epoch_obs_differs_only_in_epoch_counters() {
    // Identity of the observable surface: filter the epoch-only
    // `svc.epoch.*` counters and the snapshots must match line for line.
    let snap = |sched: SchedTune| {
        let mut c = cfg(5, sched);
        c.obs = Obs::enabled();
        let obs = c.obs.clone();
        run_service_experiment(c);
        obs.snapshot().to_json()
    };
    let off = snap(SchedTune::fast());
    let on = snap(SchedTune::fast().with_epoch(true));
    assert!(
        on.contains("svc.epoch.memo_misses"),
        "epoch mode publishes its counters: {on}"
    );
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("svc.epoch."))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&off),
        strip(&on),
        "beyond svc.epoch.*, the obs surface must be identical"
    );
    assert!(
        off.contains("svc.round.decisions") && on.contains("svc.round.decisions"),
        "the decision-cost histogram is recorded on both paths"
    );
}

#[test]
fn obs_snapshot_is_bit_identical_across_reruns() {
    let snap = |seed: u64| {
        let mut c = cfg(seed, SchedTune::fast());
        c.obs = Obs::enabled();
        let obs = c.obs.clone();
        run_service_experiment(c);
        obs.snapshot().to_json()
    };
    assert_eq!(snap(3), snap(3), "published counters are deterministic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any seed: the run reproduces bitwise, and the ledgers balance —
    /// every submission is admitted or rejected, completions equal
    /// admissions once drained, SLO misses never exceed completions,
    /// and nobody spends past their aggregate budget.
    #[test]
    fn any_seed_reproduces_and_balances(seed in 0u64..1_000_000) {
        let a = run_service_experiment(cfg(seed, SchedTune::fast()));
        let b = run_service_experiment(cfg(seed, SchedTune::fast()));
        prop_assert_eq!(&a, &b);
        let t = &a.totals;
        prop_assert_eq!(t.submitted, 120);
        prop_assert_eq!(t.admitted + t.rejected, t.submitted);
        prop_assert_eq!(t.completed, t.admitted);
        prop_assert!(t.slo_misses <= t.completed);
        prop_assert!(t.host_seconds >= 0.0 && t.spend >= 0.0);
        prop_assert_eq!(t.admitted, a.admitted_ids.len() as u64);
        prop_assert!(a.fairness >= 0.0 && a.fairness <= 1.0 + 1e-12);
    }
}
