//! Rank values and the performance matrix (§3.1).
//!
//! For each (component, resource) pair the workflow scheduler computes
//!
//! ```text
//! rank(cᵢ, rⱼ) = w₁·ecost(cᵢ, rⱼ) + w₂·dcost(cᵢ, rⱼ)
//! ```
//!
//! where `ecost` comes from the §3.2 performance models (op counts scaled
//! by effective speed, plus cache-miss time from the MRD model) and `dcost`
//! is the data volume times the NWS-forecast transfer rate. Resources
//! failing a component's minimum requirements rank infinity. The collated
//! matrix `p[i][j]` feeds the min-min / max-min / sufferage heuristics.

use crate::mrd::MrdModel;
use crate::opcount::OpCountModel;
use grads_nws::NwsService;
use grads_sim::prelude::*;

/// Static-plus-forecast view of one candidate resource.
#[derive(Debug, Clone)]
pub struct ResourceInfo {
    /// The host this describes.
    pub host: HostId,
    /// Peak per-core rate, flop/s.
    pub speed: f64,
    /// Forecast CPU availability in `[0, 1]`.
    pub availability: f64,
    /// Cache capacity, bytes.
    pub cache_bytes: u64,
    /// Cache block (line) size, bytes.
    pub cache_block: u64,
    /// Memory capacity, bytes.
    pub memory: u64,
    /// Time cost of one cache miss, seconds.
    pub miss_penalty: f64,
    /// Processor architecture.
    pub arch: Arch,
}

/// Default cache line size used when deriving resources from a grid.
pub const DEFAULT_CACHE_BLOCK: u64 = 64;
/// Default miss penalty: 100 ns (memory access on 2003-era hardware).
pub const DEFAULT_MISS_PENALTY: f64 = 100e-9;

impl ResourceInfo {
    /// Derive a resource view from the grid topology and NWS forecasts.
    pub fn from_grid(grid: &Grid, nws: &NwsService, host: HostId) -> Self {
        let h = grid.host(host);
        ResourceInfo {
            host,
            speed: h.speed,
            availability: nws.forecast_cpu_or_idle(host),
            cache_bytes: h.cache_bytes,
            cache_block: DEFAULT_CACHE_BLOCK,
            memory: h.memory,
            miss_penalty: DEFAULT_MISS_PENALTY,
            arch: h.arch.clone(),
        }
    }

    /// Effective compute rate: peak speed scaled by availability, floored
    /// to avoid division blow-ups.
    pub fn effective_speed(&self) -> f64 {
        (self.speed * self.availability).max(1.0)
    }
}

/// Architecture-independent performance model of one workflow component.
pub trait ComponentModel: Send + Sync {
    /// Expected execution time on a resource, seconds.
    fn ecost(&self, res: &ResourceInfo) -> f64;
    /// Total input data volume the component must receive, bytes.
    fn input_bytes(&self) -> f64;
    /// Output data volume it produces, bytes.
    fn output_bytes(&self) -> f64;
    /// Minimum memory requirement; resources below rank infinity.
    fn min_memory(&self) -> u64 {
        0
    }
    /// Allowed architectures; `None` means any (the binder configures the
    /// component per-architecture at launch).
    fn allowed_archs(&self) -> Option<&[Arch]> {
        None
    }
}

/// The §3.2 construction: fitted op-count model plus optional MRD cache
/// model, evaluated at a fixed problem size.
#[derive(Debug, Clone)]
pub struct FittedModel {
    /// Problem size the component will run at.
    pub problem_size: f64,
    /// Fitted `flops(n)`.
    pub ops: OpCountModel,
    /// Fitted reuse-distance scaling model, if memory behaviour matters.
    pub mrd: Option<MrdModel>,
    /// Input volume, bytes.
    pub input_bytes: f64,
    /// Output volume, bytes.
    pub output_bytes: f64,
    /// Minimum memory requirement, bytes.
    pub min_memory: u64,
    /// Architecture restriction, if any.
    pub allowed: Option<Vec<Arch>>,
}

impl ComponentModel for FittedModel {
    fn ecost(&self, res: &ResourceInfo) -> f64 {
        let flops = self.ops.predict(self.problem_size);
        let t_cpu = flops / res.effective_speed();
        let t_mem = match &self.mrd {
            Some(m) => {
                let capacity_blocks = (res.cache_bytes / res.cache_block).max(1);
                m.predict_misses(self.problem_size, capacity_blocks) * res.miss_penalty
            }
            None => 0.0,
        };
        t_cpu + t_mem
    }
    fn input_bytes(&self) -> f64 {
        self.input_bytes
    }
    fn output_bytes(&self) -> f64 {
        self.output_bytes
    }
    fn min_memory(&self) -> u64 {
        self.min_memory
    }
    fn allowed_archs(&self) -> Option<&[Arch]> {
        self.allowed.as_deref()
    }
}

/// Weights of the rank function. The paper: *"the weights w₁ and w₂ can be
/// customized to vary the relative importance of the two costs."*
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankWeights {
    /// Weight of the execution cost.
    pub w1: f64,
    /// Weight of the data-movement cost.
    pub w2: f64,
}

impl Default for RankWeights {
    fn default() -> Self {
        RankWeights { w1: 1.0, w2: 1.0 }
    }
}

/// Rank one (component, resource) pair given a data-movement cost estimate.
/// Infinity when the resource fails the component's minimum requirements.
pub fn rank(model: &dyn ComponentModel, res: &ResourceInfo, dcost: f64, w: RankWeights) -> f64 {
    if res.memory < model.min_memory() {
        return f64::INFINITY;
    }
    if let Some(allowed) = model.allowed_archs() {
        if !allowed.contains(&res.arch) {
            return f64::INFINITY;
        }
    }
    w.w1 * model.ecost(res) + w.w2 * dcost
}

/// The collated performance matrix: `ranks[i][j]` is the rank of component
/// `i` on resource `j`, with the `ecost`/`dcost` terms kept for diagnosis
/// and for makespan accounting in the heuristics.
#[derive(Debug, Clone)]
pub struct PerfMatrix {
    /// Rank values (lower is better; infinity = ineligible).
    pub ranks: Vec<Vec<f64>>,
    /// Execution-cost term.
    pub ecosts: Vec<Vec<f64>>,
    /// Data-movement-cost term.
    pub dcosts: Vec<Vec<f64>>,
}

impl PerfMatrix {
    /// Build from component models and resources. `dcost(i, j)` supplies
    /// the data-movement estimate for component `i` on resource `j` (the
    /// scheduler derives it from predecessor placements and NWS
    /// forecasts).
    pub fn build(
        components: &[&dyn ComponentModel],
        resources: &[ResourceInfo],
        mut dcost: impl FnMut(usize, usize) -> f64,
        w: RankWeights,
    ) -> Self {
        let mut ranks = Vec::with_capacity(components.len());
        let mut ecosts = Vec::with_capacity(components.len());
        let mut dcosts = Vec::with_capacity(components.len());
        for (i, c) in components.iter().enumerate() {
            let mut rr = Vec::with_capacity(resources.len());
            let mut ee = Vec::with_capacity(resources.len());
            let mut dd = Vec::with_capacity(resources.len());
            for (j, r) in resources.iter().enumerate() {
                let d = dcost(i, j);
                rr.push(rank(*c, r, d, w));
                ee.push(c.ecost(r));
                dd.push(d);
            }
            ranks.push(rr);
            ecosts.push(ee);
            dcosts.push(dd);
        }
        PerfMatrix {
            ranks,
            ecosts,
            dcosts,
        }
    }

    /// Number of components (rows).
    pub fn n_components(&self) -> usize {
        self.ranks.len()
    }

    /// Number of resources (columns).
    pub fn n_resources(&self) -> usize {
        self.ranks.first().map(|r| r.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcount::OpCountModel;

    fn model(flops_per_n: f64, mem: u64) -> FittedModel {
        FittedModel {
            problem_size: 100.0,
            ops: OpCountModel {
                coeffs: vec![0.0, flops_per_n],
                degree: 1,
                rms_rel_residual: 0.0,
            },
            mrd: None,
            input_bytes: 1e6,
            output_bytes: 5e5,
            min_memory: mem,
            allowed: None,
        }
    }

    fn res(speed: f64, avail: f64, memory: u64, arch: Arch) -> ResourceInfo {
        ResourceInfo {
            host: HostId(0),
            speed,
            availability: avail,
            cache_bytes: 1 << 20,
            cache_block: 64,
            memory,
            miss_penalty: DEFAULT_MISS_PENALTY,
            arch,
        }
    }

    #[test]
    fn ecost_scales_with_effective_speed() {
        let m = model(1e6, 0);
        let fast = res(1e9, 1.0, 1 << 30, Arch::Ia32);
        let slow = res(1e9, 0.25, 1 << 30, Arch::Ia32);
        assert!((m.ecost(&fast) - 0.1).abs() < 1e-9);
        assert!((m.ecost(&slow) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn rank_combines_weighted_terms() {
        let m = model(1e6, 0);
        let r = res(1e9, 1.0, 1 << 30, Arch::Ia32);
        let v = rank(&m, &r, 2.0, RankWeights { w1: 1.0, w2: 0.5 });
        assert!((v - (0.1 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn insufficient_memory_ranks_infinite() {
        let m = model(1e6, 1 << 34);
        let r = res(1e9, 1.0, 1 << 30, Arch::Ia32);
        assert!(rank(&m, &r, 0.0, RankWeights::default()).is_infinite());
    }

    #[test]
    fn arch_restriction_ranks_infinite() {
        let mut m = model(1e6, 0);
        m.allowed = Some(vec![Arch::Ia64]);
        let r32 = res(1e9, 1.0, 1 << 30, Arch::Ia32);
        let r64 = res(1e9, 1.0, 1 << 30, Arch::Ia64);
        assert!(rank(&m, &r32, 0.0, RankWeights::default()).is_infinite());
        assert!(rank(&m, &r64, 0.0, RankWeights::default()).is_finite());
    }

    #[test]
    fn matrix_shape_and_contents() {
        let m1 = model(1e6, 0);
        let m2 = model(2e6, 0);
        let comps: Vec<&dyn ComponentModel> = vec![&m1, &m2];
        let resources = vec![
            res(1e9, 1.0, 1 << 30, Arch::Ia32),
            res(2e9, 1.0, 1 << 30, Arch::Ia32),
        ];
        let pm = PerfMatrix::build(
            &comps,
            &resources,
            |i, j| (i + j) as f64,
            RankWeights::default(),
        );
        assert_eq!(pm.n_components(), 2);
        assert_eq!(pm.n_resources(), 2);
        // Component 0 on resource 0: ecost 0.1 + dcost 0.
        assert!((pm.ranks[0][0] - 0.1).abs() < 1e-9);
        // Component 1 on resource 1: ecost 0.1 + dcost 2.
        assert!((pm.ranks[1][1] - 2.1).abs() < 1e-9);
        assert!((pm.ecosts[1][0] - 0.2).abs() < 1e-9);
        assert_eq!(pm.dcosts[0][1], 1.0);
    }

    #[test]
    fn mrd_term_raises_ecost_on_small_cache() {
        use crate::mrd::{traces, MrdHistogram, MrdModel};
        let obs: Vec<(f64, MrdHistogram)> = [64u64, 96, 128, 160]
            .iter()
            .map(|&n| (n as f64, MrdHistogram::from_trace(&traces::stream(n, 4))))
            .collect();
        let mrd = MrdModel::fit(&obs, 1, 1).unwrap();
        let mut m = model(1e3, 0);
        m.problem_size = 4096.0;
        m.mrd = Some(mrd);
        let mut small = res(1e9, 1.0, 1 << 30, Arch::Ia32);
        small.cache_bytes = 64 * 512; // 512 blocks — smaller than the stream
        small.miss_penalty = 1e-6;
        let mut big = small.clone();
        big.cache_bytes = 64 * (1 << 20); // holds everything
        assert!(
            m.ecost(&small) > m.ecost(&big),
            "small-cache ecost {} should exceed big-cache {}",
            m.ecost(&small),
            m.ecost(&big)
        );
    }
}
