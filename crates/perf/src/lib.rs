//! # grads-perf — component performance modeling
//!
//! Reproduces §3.2 of the paper: architecture-independent performance
//! models for workflow components, built from
//!
//! 1. **operation counts** collected on several small problem sizes and
//!    extrapolated by least-squares curve fitting ([`opcount`]), and
//! 2. **memory reuse distance (MRD) histograms** whose per-bin populations
//!    are modelled as functions of problem size, letting cache miss counts
//!    be predicted for any problem size and cache configuration ([`mrd`]).
//!
//! [`cost`] combines the two into `ecost` (expected execution time on a
//! resource), adds `dcost` (data-movement time from NWS forecasts) through
//! the paper's weighted rank function, and collates the performance matrix
//! consumed by the scheduling heuristics.

pub mod commfit;
pub mod cost;
pub mod linalg;
pub mod mrd;
pub mod opcount;
pub mod prefix;

pub use commfit::{fit_comm_model, fit_piecewise, CommModel, PiecewiseCommModel};
pub use cost::{
    rank, ComponentModel, FittedModel, PerfMatrix, RankWeights, ResourceInfo, DEFAULT_CACHE_BLOCK,
    DEFAULT_MISS_PENALTY,
};
pub use mrd::{reuse_distances, simulate_lru, MrdHistogram, MrdModel};
pub use opcount::{FitError, OpCountModel};
pub use prefix::{AttrPrefix, FlatPrefix, PrefixAgg, PrefixPredictor, TreeBcastPrefix};
