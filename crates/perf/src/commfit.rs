//! Communication-model fitting.
//!
//! The §3.2 methodology — run small probes, fit a parametric model, use it
//! inside `ecost`/`dcost` — applies to communication as much as to
//! computation. This module fits the classic affine message-cost model
//!
//! ```text
//! t(bytes) = latency + bytes / bandwidth
//! ```
//!
//! from timed transfer samples, plus a two-segment variant that discovers
//! the eager/rendezvous protocol switchover (visible as a breakpoint in
//! real MPI timings): each segment gets its own affine fit, and the
//! breakpoint minimizing the total squared error wins.

/// An affine message-cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CommModel {
    /// Fixed per-message cost, seconds.
    pub latency: f64,
    /// Sustained transfer rate, bytes/second.
    pub bandwidth: f64,
    /// Coefficient of determination of the fit (1 = perfect).
    pub r_squared: f64,
}

impl CommModel {
    /// Predicted transfer time for a message of `bytes`.
    pub fn predict(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

/// A two-segment model with a protocol switchover.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseCommModel {
    /// Model below the breakpoint (eager protocol).
    pub small: CommModel,
    /// Model at/above the breakpoint (rendezvous protocol).
    pub large: CommModel,
    /// Message size where the protocol switches, bytes.
    pub breakpoint: f64,
}

impl PiecewiseCommModel {
    /// Predicted transfer time for a message of `bytes`.
    pub fn predict(&self, bytes: f64) -> f64 {
        if bytes < self.breakpoint {
            self.small.predict(bytes)
        } else {
            self.large.predict(bytes)
        }
    }
}

/// Ordinary least squares of `t = a + b·bytes` over `(bytes, seconds)`
/// samples. Returns `None` with fewer than two distinct sizes or a
/// non-positive slope (no meaningful bandwidth).
pub fn fit_comm_model(samples: &[(f64, f64)]) -> Option<CommModel> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|s| s.0).sum();
    let sy: f64 = samples.iter().map(|s| s.1).sum();
    let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
    let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-300 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    if slope <= 0.0 {
        return None;
    }
    // R².
    let mean_y = sy / n;
    let ss_tot: f64 = samples.iter().map(|s| (s.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = samples
        .iter()
        .map(|s| (s.1 - (intercept + slope * s.0)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Some(CommModel {
        latency: intercept.max(0.0),
        bandwidth: 1.0 / slope,
        r_squared,
    })
}

fn sse(samples: &[(f64, f64)], m: &CommModel) -> f64 {
    samples
        .iter()
        .map(|&(x, y)| (y - m.predict(x)).powi(2))
        .sum()
}

/// Fit a two-segment model by trying every inter-sample breakpoint and
/// keeping the split with the lowest total squared error. Requires at
/// least two samples on each side. Returns `None` when no valid split
/// exists (fall back to [`fit_comm_model`]).
pub fn fit_piecewise(samples: &[(f64, f64)]) -> Option<PiecewiseCommModel> {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.0.total_cmp(&b.0));
    if s.len() < 4 {
        return None;
    }
    let mut best: Option<(f64, PiecewiseCommModel)> = None;
    for cut in 2..=s.len() - 2 {
        let (lo, hi) = s.split_at(cut);
        let (Some(small), Some(large)) = (fit_comm_model(lo), fit_comm_model(hi)) else {
            continue;
        };
        let err = sse(lo, &small) + sse(hi, &large);
        let model = PiecewiseCommModel {
            small,
            large,
            breakpoint: 0.5 * (lo[lo.len() - 1].0 + hi[0].0),
        };
        match &best {
            Some((e, _)) if *e <= err => {}
            _ => best = Some((err, model)),
        }
    }
    best.map(|(_, m)| m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn affine_samples(lat: f64, bw: f64, sizes: &[f64]) -> Vec<(f64, f64)> {
        sizes.iter().map(|&b| (b, lat + b / bw)).collect()
    }

    #[test]
    fn recovers_clean_affine_model() {
        let samples = affine_samples(0.01, 1e7, &[1e3, 1e4, 1e5, 1e6, 1e7]);
        let m = fit_comm_model(&samples).unwrap();
        assert!((m.latency - 0.01).abs() < 1e-6, "latency {}", m.latency);
        assert!((m.bandwidth - 1e7).abs() / 1e7 < 1e-6, "bw {}", m.bandwidth);
        assert!(m.r_squared > 0.999999);
        assert!((m.predict(5e6) - (0.01 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn tolerates_noise() {
        let mut samples = affine_samples(0.005, 5e6, &[1e4, 5e4, 1e5, 5e5, 1e6, 5e6]);
        for (i, s) in samples.iter_mut().enumerate() {
            s.1 *= if i % 2 == 0 { 1.03 } else { 0.97 };
        }
        let m = fit_comm_model(&samples).unwrap();
        assert!((m.bandwidth - 5e6).abs() / 5e6 < 0.1);
        assert!(m.r_squared > 0.99);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(fit_comm_model(&[(1e3, 0.1)]).is_none());
        assert!(fit_comm_model(&[(1e3, 0.1), (1e3, 0.1)]).is_none());
        // Negative slope (times shrink with size): nonsense.
        assert!(fit_comm_model(&[(1e3, 1.0), (1e6, 0.1)]).is_none());
    }

    #[test]
    fn piecewise_finds_protocol_switch() {
        // Eager below 64 KiB: low latency; rendezvous above: extra
        // round-trip in the latency term.
        let eager = affine_samples(0.001, 1e8, &[1e3, 8e3, 3.2e4, 6e4]);
        let rendezvous = affine_samples(0.02, 1e8, &[1e5, 4e5, 1e6, 4e6]);
        let mut samples = eager;
        samples.extend(rendezvous);
        let m = fit_piecewise(&samples).unwrap();
        assert!(
            m.breakpoint > 6e4 && m.breakpoint < 1e5,
            "breakpoint {}",
            m.breakpoint
        );
        assert!((m.small.latency - 0.001).abs() < 1e-4);
        assert!((m.large.latency - 0.02).abs() < 1e-3);
        // Prediction uses the right segment on each side.
        assert!((m.predict(1e3) - (0.001 + 1e3 / 1e8)).abs() < 1e-4);
        assert!((m.predict(2e6) - (0.02 + 2e6 / 1e8)).abs() < 1e-3);
    }

    #[test]
    fn piecewise_needs_enough_samples() {
        assert!(fit_piecewise(&affine_samples(0.0, 1e6, &[1.0, 2.0, 3.0])).is_none());
    }
}
