//! Small dense linear algebra used by the modeling code: Gaussian
//! elimination with partial pivoting and least-squares polynomial fitting
//! via the normal equations. Problem sizes here are tiny (fit degrees ≤ 4),
//! so numerical refinement beyond partial pivoting is unnecessary.

/// Solve the square system `A x = b` in place by Gaussian elimination with
/// partial pivoting. `a` is row-major `n × n`; `b` has length `n`.
/// Returns `None` if the matrix is (numerically) singular.
pub fn solve(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix shape");
    assert_eq!(b.len(), n, "rhs shape");
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for r in col + 1..n {
            let v = a[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            b.swap(col, piv);
        }
        // Eliminate below.
        let d = a[col * n + col];
        for r in col + 1..n {
            let f = a[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for c in col + 1..n {
            s -= a[col * n + c] * x[c];
        }
        x[col] = s / a[col * n + col];
    }
    Some(x)
}

/// Least-squares fit of a degree-`deg` polynomial to `(x, y)` samples via
/// the normal equations. Returns coefficients `c0..c_deg` (lowest power
/// first), or `None` if the system is singular (e.g. too few distinct xs).
pub fn polyfit(xs: &[f64], ys: &[f64], deg: usize) -> Option<Vec<f64>> {
    assert_eq!(xs.len(), ys.len(), "sample shape");
    let m = deg + 1;
    if xs.len() < m {
        return None;
    }
    // Normal equations: (VᵀV) c = Vᵀ y with Vandermonde V.
    // Scale x by its max magnitude to keep powers well conditioned.
    let scale = xs.iter().fold(0.0f64, |a, &x| a.max(x.abs())).max(1.0);
    let mut ata = vec![0.0; m * m];
    let mut aty = vec![0.0; m];
    for (&x, &y) in xs.iter().zip(ys) {
        let xs_ = x / scale;
        let mut pow = vec![1.0; m];
        for k in 1..m {
            pow[k] = pow[k - 1] * xs_;
        }
        for i in 0..m {
            aty[i] += pow[i] * y;
            for j in 0..m {
                ata[i * m + j] += pow[i] * pow[j];
            }
        }
    }
    let c_scaled = solve(&mut ata, &mut aty, m)?;
    // Undo the scaling: c_k = c_scaled_k / scale^k.
    let mut c = Vec::with_capacity(m);
    let mut s = 1.0;
    for ck in &c_scaled {
        c.push(ck / s);
        s *= scale;
    }
    Some(c)
}

/// Evaluate a polynomial with coefficients `c` (lowest power first) at `x`.
pub fn polyval(c: &[f64], x: f64) -> f64 {
    c.iter().rev().fold(0.0, |acc, &ck| acc * x + ck)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![3.0, 4.0];
        let x = solve(&mut a, &mut b, 2).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 5.0];
        let x = solve(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(solve(&mut a, &mut b, 2).is_none());
    }

    #[test]
    fn solve_3x3() {
        // A = [[2,1,1],[1,3,2],[1,0,0]], b = [4,5,6] -> x = [6,15,-23]
        let mut a = vec![2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0];
        let mut b = vec![4.0, 5.0, 6.0];
        let x = solve(&mut a, &mut b, 3).unwrap();
        assert!((x[0] - 6.0).abs() < 1e-9);
        assert!((x[1] - 15.0).abs() < 1e-9);
        assert!((x[2] + 23.0).abs() < 1e-9);
    }

    #[test]
    fn polyfit_exact_cubic() {
        let xs: Vec<f64> = (1..=8).map(|i| i as f64 * 100.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 2.0 + 3.0 * x + 0.5 * x * x * x)
            .collect();
        let c = polyfit(&xs, &ys, 3).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-4, "c0 = {}", c[0]);
        assert!((c[1] - 3.0).abs() < 1e-6, "c1 = {}", c[1]);
        assert!(c[2].abs() < 1e-6, "c2 = {}", c[2]);
        assert!((c[3] - 0.5).abs() < 1e-9, "c3 = {}", c[3]);
        // Extrapolation well beyond the sample range stays accurate.
        let x = 5000.0;
        let want = 2.0 + 3.0 * x + 0.5 * x * x * x;
        assert!((polyval(&c, x) - want).abs() / want < 1e-9);
    }

    #[test]
    fn polyfit_overdetermined_least_squares() {
        // Noisy linear data: fit must land near the true slope.
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 5.0 * x + 1.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let c = polyfit(&xs, &ys, 1).unwrap();
        assert!((c[1] - 5.0).abs() < 1e-2);
        assert!((c[0] - 1.0).abs() < 0.2);
    }

    #[test]
    fn polyfit_insufficient_samples() {
        assert!(polyfit(&[1.0, 2.0], &[1.0, 2.0], 3).is_none());
    }

    #[test]
    fn polyval_empty_is_zero() {
        assert_eq!(polyval(&[], 3.0), 0.0);
    }
}
