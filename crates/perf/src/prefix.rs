//! Incremental prefix performance models for candidate-set scoring.
//!
//! The MPI scheduler (§3.1, §4.1.2) scores per-cluster *prefixes* of the
//! fastest-available hosts. A closure-style model re-reads the whole
//! prefix for every candidate length, so scoring all prefixes of an
//! `n`-host cluster costs `O(n²)` host visits. A [`PrefixPredictor`]
//! instead consumes hosts one at a time alongside running aggregates
//! (Σ speed, min speed, count) maintained by the candidate walk, so
//! scoring prefix `k` from prefix `k−1` is `O(1)` and a whole cluster is
//! `O(n)`.
//!
//! The contract every implementation must honour for the scheduler's
//! bit-identity guarantee: `predict` after `k` `push` calls must return
//! **exactly** (bitwise) what the equivalent whole-prefix model would
//! return on the first `k` hosts. The aggregates in [`PrefixAgg`] are
//! accumulated left-to-right in host order, matching what
//! `iter().sum()` / `fold(INFINITY, f64::min)` produce on the
//! materialized prefix, so models built on them satisfy the contract for
//! free.

use grads_nws::{ForecastSnapshot, ForecastSource};
use grads_sim::prelude::*;
use std::sync::Arc;

/// Running aggregates over the current prefix, maintained by the
/// candidate walk and handed to the predictor on every step.
#[derive(Debug, Clone, Copy)]
pub struct PrefixAgg {
    /// Prefix length including the just-pushed host.
    pub k: usize,
    /// The host at position `k − 1` (the one just pushed).
    pub host: HostId,
    /// Its effective speed (flop/s).
    pub speed: f64,
    /// Left-to-right sum of effective speeds over the prefix.
    pub sum_speed: f64,
    /// Running minimum of effective speeds over the prefix.
    pub min_speed: f64,
}

/// An application performance model scored incrementally along a
/// cluster's sorted host list.
///
/// Lifecycle per cluster: one `begin_cluster`, then for each host in
/// fastest-first order one `push`, with `predict` sampled at every
/// candidate prefix length. Implementations may keep internal state
/// (e.g. the broadcast root) but must derive predictions only from the
/// pushed hosts and aggregates.
pub trait PrefixPredictor {
    /// Start scoring a new cluster whose full sorted eligible host list
    /// is `hosts` (fastest-available first).
    fn begin_cluster(&mut self, cluster: ClusterId, hosts: &[HostId]);
    /// Absorb the next host of the prefix.
    fn push(&mut self, agg: &PrefixAgg);
    /// Predicted execution time for the current prefix.
    fn predict(&self, agg: &PrefixAgg) -> f64;
}

/// Perfectly parallel model: `flops / Σ effective_speed`. The simplest
/// §3.2 `ecost` shape — fixed work spread over the aggregate rate.
#[derive(Debug, Clone, Copy)]
pub struct FlatPrefix {
    /// Total charged floating-point operations.
    pub flops: f64,
}

impl PrefixPredictor for FlatPrefix {
    fn begin_cluster(&mut self, _cluster: ClusterId, _hosts: &[HostId]) {}
    fn push(&mut self, _agg: &PrefixAgg) {}
    fn predict(&self, agg: &PrefixAgg) -> f64 {
        self.flops / agg.sum_speed
    }
}

/// Bulk-synchronous model with a binomial-tree broadcast term — the
/// shape of the QR COP's executable performance model (§4.1.2).
///
/// Compute: the work is split evenly, so the slowest member sets the
/// pace — `flops / max(1, k · min_speed)`. Communication: the root
/// serializes `⌈log₂ k⌉` copies of the `bcast_bytes` volume through its
/// uplink and the deepest leaf adds one more leg; the per-leg time is
/// the snapshot's transfer estimate from the prefix's first host to its
/// first *distinct* host (zero until the prefix spans two machines).
pub struct TreeBcastPrefix<'a> {
    grid: &'a Grid,
    snap: &'a ForecastSnapshot,
    flops: f64,
    bcast_bytes: f64,
    root: Option<HostId>,
    /// Cached per-leg transfer time once a second distinct host appears.
    leg: Option<f64>,
}

impl<'a> TreeBcastPrefix<'a> {
    /// Model `flops` of compute and a `bcast_bytes` broadcast volume
    /// against the captured forecasts.
    pub fn new(grid: &'a Grid, snap: &'a ForecastSnapshot, flops: f64, bcast_bytes: f64) -> Self {
        TreeBcastPrefix {
            grid,
            snap,
            flops,
            bcast_bytes,
            root: None,
            leg: None,
        }
    }

    /// The whole-prefix closure equivalent of this model, for reference
    /// paths and A/B identity checks: bit-identical to the incremental
    /// scoring on any prefix.
    pub fn reference<S: ForecastSource + ?Sized>(
        hosts: &[HostId],
        grid: &Grid,
        src: &S,
        flops: f64,
        bcast_bytes: f64,
    ) -> f64 {
        let min_speed = hosts
            .iter()
            .map(|&h| src.effective_speed(grid, h))
            .fold(f64::INFINITY, f64::min);
        let t_comp = flops / (hosts.len() as f64 * min_speed).max(1.0);
        let t_comm = match hosts.iter().find(|&&h| h != hosts[0]) {
            Some(&other) if hosts.len() > 1 => {
                let legs = (hosts.len() as f64).log2().ceil() + 1.0;
                legs * src.transfer_time(grid, hosts[0], other, bcast_bytes)
            }
            _ => 0.0,
        };
        t_comp + t_comm
    }
}

impl PrefixPredictor for TreeBcastPrefix<'_> {
    fn begin_cluster(&mut self, _cluster: ClusterId, _hosts: &[HostId]) {
        self.root = None;
        self.leg = None;
    }

    fn push(&mut self, agg: &PrefixAgg) {
        match self.root {
            None => self.root = Some(agg.host),
            Some(root) => {
                if self.leg.is_none() && agg.host != root {
                    self.leg =
                        Some(
                            self.snap
                                .transfer_time(self.grid, root, agg.host, self.bcast_bytes),
                        );
                }
            }
        }
    }

    fn predict(&self, agg: &PrefixAgg) -> f64 {
        let t_comp = self.flops / (agg.k as f64 * agg.min_speed).max(1.0);
        let t_comm = match self.leg {
            Some(leg) if agg.k > 1 => {
                let legs = (agg.k as f64).log2().ceil() + 1.0;
                legs * leg
            }
            _ => 0.0,
        };
        t_comp + t_comm
    }
}

/// Wraps any [`PrefixPredictor`] and inflates its prediction by the
/// *measured* critical-path weight of the prefix's hosts:
///
/// `predict' = inner.predict × (1 + α · w̄)`,
///
/// where `w̄` is the mean attributed weight over the prefix's slots
/// (`Σ weight(host) / k`, hosts counted once per occupied slot). The
/// weights come from a flight-recorder critical-path walk of a previous
/// incarnation, normalized to shares of the walked span — hosts that
/// carried the measured critical path score worse on the next mapping.
///
/// The wrapper preserves the incremental == whole-prefix bitwise
/// contract: the weight sum is accumulated left-to-right exactly as a
/// materialized prefix would sum it (pinned by
/// `attr_prefix_matches_reference_closure_bitwise`), and with `α = 0` or
/// an all-zero weight table the factor is exactly `1.0`, so predictions
/// are bit-identical to the bare inner model.
pub struct AttrPrefix<P> {
    inner: P,
    /// Per-host weights, dense by `HostId` index; out-of-range = `0`.
    weights: Arc<Vec<f64>>,
    alpha: f64,
    /// Left-to-right weight sum over the current prefix.
    w_sum: f64,
}

impl<P> AttrPrefix<P> {
    /// Wrap `inner` with attribution `weights` at strength `alpha`.
    pub fn new(inner: P, weights: Arc<Vec<f64>>, alpha: f64) -> Self {
        AttrPrefix {
            inner,
            weights,
            alpha,
            w_sum: 0.0,
        }
    }

    fn weight(&self, h: HostId) -> f64 {
        self.weights.get(h.0 as usize).copied().unwrap_or(0.0)
    }

    /// The whole-prefix inflation factor, for reference closures and A/B
    /// identity checks: bit-identical to the incremental factor on any
    /// prefix.
    pub fn reference_factor(hosts: &[HostId], weights: &[f64], alpha: f64) -> f64 {
        let mut w_sum = 0.0f64;
        for &h in hosts {
            w_sum += weights.get(h.0 as usize).copied().unwrap_or(0.0);
        }
        1.0 + alpha * (w_sum / hosts.len() as f64)
    }
}

impl<P: PrefixPredictor> PrefixPredictor for AttrPrefix<P> {
    fn begin_cluster(&mut self, cluster: ClusterId, hosts: &[HostId]) {
        self.w_sum = 0.0;
        self.inner.begin_cluster(cluster, hosts);
    }

    fn push(&mut self, agg: &PrefixAgg) {
        self.w_sum += self.weight(agg.host);
        self.inner.push(agg);
    }

    fn predict(&self, agg: &PrefixAgg) -> f64 {
        self.inner.predict(agg) * (1.0 + self.alpha * (self.w_sum / agg.k as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_nws::NwsService;
    use grads_sim::topology::{GridBuilder, HostSpec};

    fn setup() -> (Grid, NwsService) {
        let mut b = GridBuilder::new();
        let x = b.cluster("X");
        b.local_link(x, 1e8, 1e-4);
        for i in 0..6 {
            b.add_host(x, &HostSpec::with_speed(4e8 + 1e8 * i as f64));
        }
        let y = b.cluster("Y");
        b.local_link(y, 1e8, 1e-4);
        b.add_hosts(y, 3, &HostSpec::with_speed(9e8));
        b.connect(x, y, 1e7, 0.02);
        let mut nws = NwsService::new();
        for i in 0..9u32 {
            for j in 0..12 {
                nws.observe_cpu(HostId(i), 0.4 + 0.05 * ((i + j) % 9) as f64);
            }
        }
        (b.build().unwrap(), nws)
    }

    /// Drive a predictor along a host list the way the candidate walk
    /// does, returning the prediction at every prefix length.
    fn drive<P: PrefixPredictor>(
        pred: &mut P,
        cluster: ClusterId,
        hosts: &[HostId],
        snap: &ForecastSnapshot,
    ) -> Vec<f64> {
        pred.begin_cluster(cluster, hosts);
        let (mut sum, mut min) = (0.0f64, f64::INFINITY);
        let mut out = Vec::new();
        for (i, &h) in hosts.iter().enumerate() {
            let s = snap.speed(h);
            sum += s;
            min = min.min(s);
            let agg = PrefixAgg {
                k: i + 1,
                host: h,
                speed: s,
                sum_speed: sum,
                min_speed: min,
            };
            pred.push(&agg);
            out.push(pred.predict(&agg));
        }
        out
    }

    #[test]
    fn flat_prefix_matches_whole_prefix_sum() {
        let (grid, nws) = setup();
        let snap = ForecastSnapshot::capture(&grid, &nws);
        let hosts: Vec<HostId> = (0..6).map(HostId).collect();
        let mut p = FlatPrefix { flops: 1e12 };
        let incremental = drive(&mut p, ClusterId(0), &hosts, &snap);
        for (i, &got) in incremental.iter().enumerate() {
            let total: f64 = hosts[..=i]
                .iter()
                .map(|&h| nws.effective_speed(&grid, h))
                .sum();
            assert_eq!(got.to_bits(), (1e12 / total).to_bits(), "prefix {}", i + 1);
        }
    }

    #[test]
    fn tree_bcast_matches_reference_closure_bitwise() {
        let (grid, nws) = setup();
        let snap = ForecastSnapshot::capture(&grid, &nws);
        for hosts in [
            (0..6).map(HostId).collect::<Vec<_>>(),
            vec![HostId(2), HostId(2), HostId(5), HostId(1)], // repeated slots
            vec![HostId(7)],
            vec![HostId(3), HostId(3), HostId(3)], // never spans two machines
        ] {
            let mut p = TreeBcastPrefix::new(&grid, &snap, 2e12, 3.2e7);
            let incremental = drive(&mut p, ClusterId(0), &hosts, &snap);
            for (i, &got) in incremental.iter().enumerate() {
                let want = TreeBcastPrefix::reference(&hosts[..=i], &grid, &snap, 2e12, 3.2e7);
                assert_eq!(got.to_bits(), want.to_bits(), "prefix {:?}", &hosts[..=i]);
                // And the reference against the live service agrees too
                // (snapshot equivalence).
                let live = TreeBcastPrefix::reference(&hosts[..=i], &grid, &nws, 2e12, 3.2e7);
                assert_eq!(got.to_bits(), live.to_bits());
            }
        }
    }

    #[test]
    fn attr_prefix_matches_reference_closure_bitwise() {
        let (grid, nws) = setup();
        let snap = ForecastSnapshot::capture(&grid, &nws);
        // A weight table shorter than the host count: out-of-range hosts
        // weigh 0, like hosts the previous critical path never touched.
        let weights = Arc::new(vec![0.6, 0.0, 0.25, 0.1, 0.05]);
        let alpha = 0.25;
        for hosts in [
            (0..6).map(HostId).collect::<Vec<_>>(),
            vec![HostId(2), HostId(2), HostId(5), HostId(1)],
            vec![HostId(7), HostId(8)],
        ] {
            let inner = TreeBcastPrefix::new(&grid, &snap, 2e12, 3.2e7);
            let mut p = AttrPrefix::new(inner, weights.clone(), alpha);
            let incremental = drive(&mut p, ClusterId(0), &hosts, &snap);
            for (i, &got) in incremental.iter().enumerate() {
                let base = TreeBcastPrefix::reference(&hosts[..=i], &grid, &snap, 2e12, 3.2e7);
                let factor =
                    AttrPrefix::<FlatPrefix>::reference_factor(&hosts[..=i], &weights, alpha);
                assert_eq!(
                    got.to_bits(),
                    (base * factor).to_bits(),
                    "prefix {:?}",
                    &hosts[..=i]
                );
            }
        }
    }

    #[test]
    fn attr_prefix_is_inert_at_zero_alpha_or_zero_weights() {
        let (grid, nws) = setup();
        let snap = ForecastSnapshot::capture(&grid, &nws);
        let hosts: Vec<HostId> = (0..6).map(HostId).collect();
        let bare = {
            let mut p = TreeBcastPrefix::new(&grid, &snap, 2e12, 3.2e7);
            drive(&mut p, ClusterId(0), &hosts, &snap)
        };
        for (weights, alpha) in [
            (vec![0.6, 0.2, 0.2], 0.0), // knob off
            (vec![0.0; 6], 0.7),        // nothing attributed
        ] {
            let inner = TreeBcastPrefix::new(&grid, &snap, 2e12, 3.2e7);
            let mut p = AttrPrefix::new(inner, Arc::new(weights), alpha);
            let wrapped = drive(&mut p, ClusterId(0), &hosts, &snap);
            for (a, b) in bare.iter().zip(&wrapped) {
                assert_eq!(a.to_bits(), b.to_bits(), "factor must be exactly 1");
            }
        }
    }

    #[test]
    fn attr_prefix_penalizes_attributed_hosts() {
        // Two equal-speed candidate prefixes; only one contains the host
        // that carried the previous critical path — it must score worse.
        let mut b = GridBuilder::new();
        let x = b.cluster("X");
        b.local_link(x, 1e8, 1e-4);
        b.add_hosts(x, 4, &HostSpec::with_speed(5e8));
        let grid = b.build().unwrap();
        let snap = ForecastSnapshot::capture(&grid, &NwsService::new());
        let weights = Arc::new(vec![0.9, 0.0, 0.0, 0.0]);
        let score = |hosts: &[HostId]| {
            let inner = TreeBcastPrefix::new(&grid, &snap, 1e12, 1e6);
            let mut p = AttrPrefix::new(inner, weights.clone(), 0.5);
            *drive(&mut p, ClusterId(0), hosts, &snap).last().unwrap()
        };
        let with_hot = score(&[HostId(0), HostId(1)]);
        let without = score(&[HostId(2), HostId(3)]);
        assert!(
            with_hot > without,
            "attributed host must cost more: {with_hot} vs {without}"
        );
    }

    #[test]
    fn tree_bcast_has_interior_optimum_on_heterogeneous_hosts() {
        // Fastest-first prefixes over increasingly slow hosts: adding a
        // slow host can hurt (min-speed pacing + an extra bcast leg), so
        // the best prefix is not always the longest.
        let mut b = GridBuilder::new();
        let x = b.cluster("X");
        b.local_link(x, 1e6, 5e-3);
        b.add_host(x, &HostSpec::with_speed(1e9));
        b.add_host(x, &HostSpec::with_speed(9e8));
        b.add_host(x, &HostSpec::with_speed(2e7)); // straggler
        let grid = b.build().unwrap();
        let nws = NwsService::new();
        let snap = ForecastSnapshot::capture(&grid, &nws);
        let hosts: Vec<HostId> = (0..3).map(HostId).collect();
        let mut p = TreeBcastPrefix::new(&grid, &snap, 1e12, 1e6);
        let t = drive(&mut p, ClusterId(0), &hosts, &snap);
        assert!(t[1] < t[0], "two fast hosts beat one: {t:?}");
        assert!(t[2] > t[1], "the straggler must hurt: {t:?}");
    }
}
