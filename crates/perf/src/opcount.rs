//! Floating-point operation-count models (§3.2).
//!
//! *"To understand the floating point computations performed by an
//! application, we use hardware performance counters to collect operation
//! counts from several executions of the program with different, small-size
//! input problems. We then apply least squares curve-fitting on the
//! collected data."*
//!
//! Here the "hardware counters" are the exact flop counts our instrumented
//! kernels report for small inputs; the model extrapolates to production
//! problem sizes.

use crate::linalg::{polyfit, polyval};

/// A fitted `flops(n)` model.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCountModel {
    /// Polynomial coefficients, lowest power first.
    pub coeffs: Vec<f64>,
    /// Degree the model was fitted with.
    pub degree: usize,
    /// Root-mean-square relative residual over the training samples.
    pub rms_rel_residual: f64,
}

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer samples than coefficients.
    TooFewSamples,
    /// Normal equations singular (degenerate sample set).
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples => write!(f, "too few samples for requested degree"),
            FitError::Singular => write!(f, "degenerate sample set"),
        }
    }
}

impl std::error::Error for FitError {}

impl OpCountModel {
    /// Fit a degree-`degree` polynomial to `(problem size, observed flops)`
    /// samples by least squares.
    pub fn fit(samples: &[(f64, f64)], degree: usize) -> Result<Self, FitError> {
        if samples.len() < degree + 1 {
            return Err(FitError::TooFewSamples);
        }
        let xs: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let coeffs = polyfit(&xs, &ys, degree).ok_or(FitError::Singular)?;
        let mut rel2 = 0.0;
        for &(x, y) in samples {
            let p = polyval(&coeffs, x);
            let denom = y.abs().max(1.0);
            rel2 += ((p - y) / denom).powi(2);
        }
        Ok(OpCountModel {
            coeffs,
            degree,
            rms_rel_residual: (rel2 / samples.len() as f64).sqrt(),
        })
    }

    /// Fit trying degrees `1..=max_degree` and keep the lowest degree whose
    /// training residual is below `tol` (falling back to `max_degree`).
    /// Mirrors the GrADS tooling's semi-automatic model construction: it
    /// finds that (for example) QR is cubic without being told.
    pub fn fit_auto(samples: &[(f64, f64)], max_degree: usize, tol: f64) -> Result<Self, FitError> {
        let mut last: Option<OpCountModel> = None;
        for d in 1..=max_degree {
            match Self::fit(samples, d) {
                Ok(m) => {
                    if m.rms_rel_residual <= tol {
                        return Ok(m);
                    }
                    last = Some(m);
                }
                Err(FitError::TooFewSamples) => break,
                Err(e) => return Err(e),
            }
        }
        last.ok_or(FitError::TooFewSamples)
    }

    /// Predicted flop count at problem size `n` (clamped non-negative).
    pub fn predict(&self, n: f64) -> f64 {
        polyval(&self.coeffs, n).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact flop count of an n×n Householder QR: 2n³ fits 4/3·n³ + O(n²)
    /// closely enough for this test's purpose.
    fn qr_flops(n: f64) -> f64 {
        4.0 / 3.0 * n * n * n + 3.0 * n * n
    }

    #[test]
    fn fits_cubic_kernel_and_extrapolates() {
        let samples: Vec<(f64, f64)> = (4..=12)
            .map(|k| (k as f64 * 50.0, qr_flops(k as f64 * 50.0)))
            .collect();
        let m = OpCountModel::fit(&samples, 3).unwrap();
        let n = 8000.0;
        let rel = (m.predict(n) - qr_flops(n)).abs() / qr_flops(n);
        assert!(rel < 1e-6, "relative extrapolation error {rel}");
    }

    #[test]
    fn auto_fit_finds_cubic() {
        let samples: Vec<(f64, f64)> = (4..=12)
            .map(|k| (k as f64 * 50.0, qr_flops(k as f64 * 50.0)))
            .collect();
        let m = OpCountModel::fit_auto(&samples, 4, 1e-6).unwrap();
        assert_eq!(m.degree, 3);
    }

    #[test]
    fn auto_fit_finds_linear() {
        let samples: Vec<(f64, f64)> = (1..=10).map(|k| (k as f64, 7.0 * k as f64)).collect();
        let m = OpCountModel::fit_auto(&samples, 4, 1e-6).unwrap();
        assert_eq!(m.degree, 1);
    }

    #[test]
    fn too_few_samples_rejected() {
        assert_eq!(
            OpCountModel::fit(&[(1.0, 1.0)], 3),
            Err(FitError::TooFewSamples)
        );
    }

    #[test]
    fn degenerate_samples_rejected() {
        let samples = vec![(5.0, 1.0); 10];
        assert_eq!(OpCountModel::fit(&samples, 2), Err(FitError::Singular));
    }

    #[test]
    fn prediction_clamped_nonnegative() {
        let m = OpCountModel {
            coeffs: vec![-100.0, 1.0],
            degree: 1,
            rms_rel_residual: 0.0,
        };
        assert_eq!(m.predict(0.0), 0.0);
    }
}
