//! Memory reuse distance (MRD) analysis and cache-miss prediction (§3.2).
//!
//! *"We collect histograms of memory reuse distance (MRD) — the number of
//! unique memory blocks accessed between a pair of references to the same
//! block ... Using MRD data collected on several small-size input problems,
//! we model the behavior ... and predict the fraction of hits and misses
//! for a given problem size and cache configuration."*
//!
//! Reuse distances are computed with the classical O(T log T) Fenwick-tree
//! (Bennett–Kruskal) algorithm; histograms use log₂-spaced bins; scaling
//! models fit each bin's population fraction as a function of problem size
//! so a histogram — and hence a miss count for any fully-associative LRU
//! cache size — can be predicted at sizes never traced.

use crate::linalg::{polyfit, polyval};
use std::collections::HashMap;

/// Binary indexed tree over trace positions, counting "most recent access"
/// marks.
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }
    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }
    /// Sum of marks at positions `0..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Per-access reuse distances for a block-address trace.
///
/// `None` marks a cold (first) access; `Some(d)` means `d` *other* distinct
/// blocks were touched since the previous access to the same block. A
/// fully-associative LRU cache of `c` blocks hits the access iff `d < c`.
pub fn reuse_distances(trace: &[u64]) -> Vec<Option<u64>> {
    let t = trace.len();
    let mut fen = Fenwick::new(t);
    let mut last: HashMap<u64, usize> = HashMap::new();
    let mut out = Vec::with_capacity(t);
    for (i, &block) in trace.iter().enumerate() {
        match last.get(&block) {
            Some(&p) => {
                // Distinct blocks whose most recent access lies in (p, i).
                let marks_after_p = fen.prefix(i.saturating_sub(1)) - fen.prefix(p);
                out.push(Some(marks_after_p));
                fen.add(p, -1);
            }
            None => out.push(None),
        }
        fen.add(i, 1);
        last.insert(block, i);
    }
    out
}

/// Exact fully-associative LRU simulation: `(hits, misses)` for a cache of
/// `capacity` blocks. Used to validate histogram-based predictions.
pub fn simulate_lru(trace: &[u64], capacity: u64) -> (u64, u64) {
    let (mut hits, mut misses) = (0, 0);
    for d in reuse_distances(trace) {
        match d {
            Some(d) if d < capacity => hits += 1,
            _ => misses += 1,
        }
    }
    (hits, misses)
}

/// Number of log₂ histogram bins (distances up to 2⁶³).
pub const MRD_BINS: usize = 65;

/// Log₂-spaced reuse-distance histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct MrdHistogram {
    /// `bins[k]` counts accesses with distance in `[lower(k), lower(k+1))`,
    /// where `lower(0) = 0`, `lower(k) = 2^(k-1)`.
    pub bins: Vec<u64>,
    /// Cold (first-touch) accesses.
    pub cold: u64,
    /// Total accesses (Σ bins + cold).
    pub total: u64,
}

/// Bin index for a distance: 0 for d = 0, else `floor(log2(d)) + 1`.
pub fn bin_of(d: u64) -> usize {
    if d == 0 {
        0
    } else {
        64 - d.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bin.
pub fn bin_lower(k: usize) -> u64 {
    if k == 0 {
        0
    } else {
        1u64 << (k - 1)
    }
}

/// Exclusive upper bound of a bin.
pub fn bin_upper(k: usize) -> u64 {
    if k == 0 {
        1
    } else if k >= 64 {
        u64::MAX
    } else {
        1u64 << k
    }
}

impl MrdHistogram {
    /// Build the histogram of a block-address trace.
    pub fn from_trace(trace: &[u64]) -> Self {
        let mut bins = vec![0u64; MRD_BINS];
        let mut cold = 0;
        for d in reuse_distances(trace) {
            match d {
                Some(d) => bins[bin_of(d)] += 1,
                None => cold += 1,
            }
        }
        MrdHistogram {
            bins,
            cold,
            total: trace.len() as u64,
        }
    }

    /// Predict misses in a fully-associative LRU cache of `capacity`
    /// blocks: cold misses plus all accesses whose distance is ≥ capacity,
    /// interpolating uniformly inside the straddling bin.
    pub fn predict_misses(&self, capacity: u64) -> f64 {
        let mut m = self.cold as f64;
        for (k, &cnt) in self.bins.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            let lo = bin_lower(k);
            let hi = bin_upper(k);
            if lo >= capacity {
                m += cnt as f64;
            } else if hi > capacity {
                // Bin straddles the capacity: assume uniform distances.
                let width = (hi - lo) as f64;
                let missing = (hi - capacity) as f64;
                m += cnt as f64 * missing / width;
            }
        }
        m
    }

    /// Miss *ratio* for a cache of `capacity` blocks.
    pub fn miss_ratio(&self, capacity: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.predict_misses(capacity) / self.total as f64
        }
    }
}

/// Number of quantile curves in the scaling model.
pub const MRD_QUANTILES: usize = 128;

/// Scaling model: predicts reuse-distance distributions — and hence miss
/// counts — at problem sizes never traced, from traces collected at
/// several small sizes.
///
/// The paper models each memory reference's reuse distance as a function
/// of problem size. Our trace-level analog models the distance
/// *distribution* by its quantiles: for each quantile `q`, the distance
/// `d_q(n)` is fitted with a least-squares polynomial in `n`. This handles
/// both pattern families found in dense kernels — constant distances
/// (tile-local reuse: `d_q(n)` is flat) and footprint-scaled distances
/// (streaming sweeps: `d_q(n)` grows with `n`) — where absolute-bin
/// fraction fitting cannot extrapolate the latter. The cold-miss fraction
/// and total access count are fitted the same way.
#[derive(Debug, Clone)]
pub struct MrdModel {
    /// Coefficients of `total_accesses(n)`.
    total_coeffs: Vec<f64>,
    /// Coefficients of `cold_fraction(n)`.
    cold_coeffs: Vec<f64>,
    /// Per-quantile coefficients of `distance_q(n)`.
    quantile_coeffs: Vec<Vec<f64>>,
}

/// Extract the distance value at each of [`MRD_QUANTILES`] quantiles from a
/// histogram (bin-uniform interpolation). Returns `None` if the histogram
/// has no reuses at all.
fn histogram_quantiles(h: &MrdHistogram) -> Option<Vec<f64>> {
    let reuses: u64 = h.bins.iter().sum();
    if reuses == 0 {
        return None;
    }
    let mut qs = Vec::with_capacity(MRD_QUANTILES);
    let mut bin = 0usize;
    let mut below: u64 = 0; // reuses in bins < bin
    for i in 0..MRD_QUANTILES {
        let target = (i as f64 + 0.5) / MRD_QUANTILES as f64 * reuses as f64;
        while bin < MRD_BINS && (below + h.bins[bin]) as f64 <= target {
            below += h.bins[bin];
            bin += 1;
        }
        if bin >= MRD_BINS {
            qs.push(bin_lower(MRD_BINS - 1) as f64);
            continue;
        }
        // Interpolate uniformly inside the bin.
        let into = (target - below as f64) / h.bins[bin].max(1) as f64;
        let lo = bin_lower(bin) as f64;
        let hi = bin_upper(bin) as f64;
        qs.push(lo + into * (hi - lo));
    }
    Some(qs)
}

impl MrdModel {
    /// Fit from `(problem size, histogram)` observations.
    ///
    /// `dist_degree` is the polynomial degree for the per-quantile distance
    /// curves and the cold fraction (1 is usually enough); `total_degree`
    /// for the access count (match the kernel's complexity, e.g. 3 for
    /// O(n³) kernels).
    pub fn fit(
        observations: &[(f64, MrdHistogram)],
        dist_degree: usize,
        total_degree: usize,
    ) -> Option<Self> {
        if observations.len() < dist_degree.max(total_degree) + 1 {
            return None;
        }
        let xs: Vec<f64> = observations.iter().map(|o| o.0).collect();
        let totals: Vec<f64> = observations.iter().map(|o| o.1.total as f64).collect();
        let total_coeffs = polyfit(&xs, &totals, total_degree)?;
        let colds: Vec<f64> = observations
            .iter()
            .map(|o| o.1.cold as f64 / (o.1.total as f64).max(1.0))
            .collect();
        let cold_coeffs = polyfit(&xs, &colds, dist_degree)?;
        let per_obs_quantiles: Vec<Vec<f64>> = observations
            .iter()
            .map(|o| histogram_quantiles(&o.1).unwrap_or_else(|| vec![0.0; MRD_QUANTILES]))
            .collect();
        let mut quantile_coeffs = Vec::with_capacity(MRD_QUANTILES);
        for q in 0..MRD_QUANTILES {
            let ds: Vec<f64> = per_obs_quantiles.iter().map(|v| v[q]).collect();
            quantile_coeffs.push(polyfit(&xs, &ds, dist_degree)?);
        }
        Some(MrdModel {
            total_coeffs,
            cold_coeffs,
            quantile_coeffs,
        })
    }

    /// Predicted total access count at size `n`.
    pub fn total_accesses(&self, n: f64) -> f64 {
        polyval(&self.total_coeffs, n).max(0.0)
    }

    /// Predicted cold-miss fraction at size `n`.
    pub fn cold_fraction(&self, n: f64) -> f64 {
        polyval(&self.cold_coeffs, n).clamp(0.0, 1.0)
    }

    /// Predicted reuse-distance quantile values at size `n`.
    pub fn quantiles(&self, n: f64) -> Vec<f64> {
        self.quantile_coeffs
            .iter()
            .map(|c| polyval(c, n).max(0.0))
            .collect()
    }

    /// Predicted histogram at size `n`, reconstructed from the quantile
    /// curves (each quantile carries an equal share of the reuses).
    pub fn predict_histogram(&self, n: f64) -> MrdHistogram {
        let total = self.total_accesses(n);
        let cold = (self.cold_fraction(n) * total).round() as u64;
        let reuses = total - cold as f64;
        let per_q = (reuses / MRD_QUANTILES as f64).max(0.0);
        let mut bins = vec![0u64; MRD_BINS];
        for d in self.quantiles(n) {
            bins[bin_of(d.round() as u64)] += per_q.round() as u64;
        }
        MrdHistogram {
            bins,
            cold,
            total: total.round() as u64,
        }
    }

    /// Predicted miss count at problem size `n` on a fully-associative LRU
    /// cache holding `capacity` blocks: cold misses plus reuses whose
    /// predicted quantile distance is at least the capacity.
    pub fn predict_misses(&self, n: f64, capacity: u64) -> f64 {
        let total = self.total_accesses(n);
        let cold = self.cold_fraction(n) * total;
        let reuses = (total - cold).max(0.0);
        let missing = self
            .quantiles(n)
            .iter()
            .filter(|&&d| d >= capacity as f64)
            .count();
        cold + reuses * missing as f64 / MRD_QUANTILES as f64
    }
}

/// Synthetic trace generators (stand-ins for the paper's instrumented
/// binaries; see DESIGN.md substitution table).
pub mod traces {
    /// Sequential sweeps over `n_blocks` blocks, `passes` times: every
    /// reuse distance equals `n_blocks - 1` — the classic cache-busting
    /// streaming pattern.
    pub fn stream(n_blocks: u64, passes: u64) -> Vec<u64> {
        let mut t = Vec::with_capacity((n_blocks * passes) as usize);
        for _ in 0..passes {
            t.extend(0..n_blocks);
        }
        t
    }

    /// Blocked (tiled) sweep: `passes` passes over `n_blocks` blocks in
    /// tiles of `tile` blocks, re-visiting each tile `reps` times before
    /// moving on. Intra-tile reuse distances stay < `tile`.
    pub fn blocked(n_blocks: u64, tile: u64, reps: u64, passes: u64) -> Vec<u64> {
        let mut t = Vec::new();
        for _ in 0..passes {
            let mut start = 0;
            while start < n_blocks {
                let end = (start + tile).min(n_blocks);
                for _ in 0..reps {
                    t.extend(start..end);
                }
                start = end;
            }
        }
        t
    }

    /// Row-sweep pattern of a right-looking dense factorization on an
    /// `n × n` grid of blocks: for each pivot step k, touch row k then the
    /// trailing submatrix column by column. O(n³) accesses with a mix of
    /// short and O(n²) reuse distances — qualitatively the MRD signature
    /// the paper models for ScaLAPACK QR.
    pub fn dense_factor(n: u64) -> Vec<u64> {
        let mut t = Vec::new();
        let blk = |i: u64, j: u64| i * n + j;
        for k in 0..n {
            for j in k..n {
                t.push(blk(k, j));
            }
            for j in k..n {
                for i in k..n {
                    t.push(blk(i, j));
                    t.push(blk(k, j));
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_of_simple_trace() {
        // a b a b b c a
        let trace = [0, 1, 0, 1, 1, 2, 0];
        let d = reuse_distances(&trace);
        assert_eq!(
            d,
            vec![None, None, Some(1), Some(1), Some(0), None, Some(2)]
        );
    }

    #[test]
    fn stream_trace_distances() {
        let t = traces::stream(4, 3);
        let d = reuse_distances(&t);
        // First pass cold, then every reuse distance = 3.
        assert_eq!(d.iter().filter(|x| x.is_none()).count(), 4);
        for x in d.iter().flatten() {
            assert_eq!(*x, 3);
        }
    }

    #[test]
    fn lru_sim_matches_distance_rule() {
        let t = traces::stream(8, 4);
        // Cache of 8 blocks: only cold misses.
        let (h, m) = simulate_lru(&t, 8);
        assert_eq!(m, 8);
        assert_eq!(h, 24);
        // Cache of 4: everything misses (distance 7 >= 4).
        let (h2, m2) = simulate_lru(&t, 4);
        assert_eq!(h2, 0);
        assert_eq!(m2, 32);
    }

    #[test]
    fn histogram_counts_and_prediction_match_exact_lru_at_bin_edges() {
        let t = traces::blocked(64, 8, 4, 2);
        let hist = MrdHistogram::from_trace(&t);
        assert_eq!(hist.total as usize, t.len());
        // At power-of-two capacities the histogram prediction is exact.
        for cap in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            let (_, m) = simulate_lru(&t, cap);
            let pred = hist.predict_misses(cap);
            assert!(
                (pred - m as f64).abs() < 1e-9,
                "cap {cap}: predicted {pred}, exact {m}"
            );
        }
    }

    #[test]
    fn bin_bounds_are_consistent() {
        for d in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 40] {
            let k = bin_of(d);
            assert!(bin_lower(k) <= d && d < bin_upper(k), "d = {d}, bin {k}");
        }
    }

    #[test]
    fn blocked_pattern_hits_small_cache() {
        // Tile of 8 with 4 repetitions: a cache of 8 blocks captures all
        // intra-tile reuse.
        let t = traces::blocked(1024, 8, 4, 1);
        let hist = MrdHistogram::from_trace(&t);
        let miss_small = hist.miss_ratio(8);
        let miss_tiny = hist.miss_ratio(2);
        assert!(miss_small < 0.3, "tile-captured ratio {miss_small}");
        assert!(miss_tiny > miss_small);
    }

    #[test]
    fn model_predicts_streaming_misses_at_larger_size() {
        // Streaming over n blocks, 4 passes: misses(cache c) = 4n when
        // n > c (all reuses at distance n-1), n when n <= c.
        let obs: Vec<(f64, MrdHistogram)> = [64u64, 96, 128, 160]
            .iter()
            .map(|&n| (n as f64, MrdHistogram::from_trace(&traces::stream(n, 4))))
            .collect();
        let model = MrdModel::fit(&obs, 1, 1).unwrap();
        let n = 4096.0;
        let misses = model.predict_misses(n, 1024);
        let want = 4.0 * n;
        assert!(
            (misses - want).abs() / want < 0.35,
            "predicted {misses}, want ~{want}"
        );
        // With an enormous cache only cold misses remain.
        let misses_big = model.predict_misses(n, 1 << 40);
        assert!(
            (misses_big - n).abs() / n < 0.35,
            "predicted {misses_big}, want ~{n}"
        );
    }

    #[test]
    fn model_total_access_scaling() {
        let obs: Vec<(f64, MrdHistogram)> = [8u64, 12, 16, 20, 24]
            .iter()
            .map(|&n| (n as f64, MrdHistogram::from_trace(&traces::dense_factor(n))))
            .collect();
        let model = MrdModel::fit(&obs, 1, 3).unwrap();
        // dense_factor touches O(n^3) blocks; check cubic-ish growth.
        let t32 = model.total_accesses(32.0);
        let t64 = model.total_accesses(64.0);
        let ratio = t64 / t32;
        assert!(
            ratio > 6.0 && ratio < 10.0,
            "expected ~8x growth, got {ratio}"
        );
    }

    #[test]
    fn model_fit_requires_enough_observations() {
        let obs = vec![(8.0, MrdHistogram::from_trace(&traces::stream(8, 1)))];
        assert!(MrdModel::fit(&obs, 1, 1).is_none());
    }

    #[test]
    fn dense_factor_miss_ratio_falls_with_cache_size() {
        let t = traces::dense_factor(24);
        let hist = MrdHistogram::from_trace(&t);
        let r_small = hist.miss_ratio(16);
        let r_mid = hist.miss_ratio(64);
        let r_big = hist.miss_ratio(1024);
        assert!(r_small >= r_mid && r_mid >= r_big);
        assert!(r_big < r_small);
    }
}
