//! Property-based tests of the performance-modeling substrate: reuse
//! distances against a naive LRU-stack oracle, histogram consistency, and
//! least-squares fitting.

use grads_perf::linalg::{polyfit, polyval};
use grads_perf::mrd::{bin_lower, bin_of, bin_upper};
use grads_perf::{reuse_distances, simulate_lru, MrdHistogram};
use proptest::prelude::*;

/// Naive O(T²) reuse-distance oracle using an explicit LRU stack.
fn naive_distances(trace: &[u64]) -> Vec<Option<u64>> {
    let mut stack: Vec<u64> = Vec::new();
    let mut out = Vec::with_capacity(trace.len());
    for &b in trace {
        match stack.iter().position(|&x| x == b) {
            Some(pos) => {
                // Depth from the top (#distinct blocks touched since).
                let d = (stack.len() - 1 - pos) as u64;
                out.push(Some(d));
                stack.remove(pos);
            }
            None => out.push(None),
        }
        stack.push(b);
    }
    out
}

fn trace() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..24, 0..200)
}

proptest! {
    /// The Fenwick algorithm agrees with the naive LRU-stack oracle.
    #[test]
    fn distances_match_oracle(t in trace()) {
        prop_assert_eq!(reuse_distances(&t), naive_distances(&t));
    }

    /// Exact LRU simulation: hits + misses = accesses; misses
    /// monotonically non-increasing in capacity.
    #[test]
    fn lru_sim_monotone(t in trace()) {
        let mut last = u64::MAX;
        for cap in [1u64, 2, 4, 8, 16, 32] {
            let (h, m) = simulate_lru(&t, cap);
            prop_assert_eq!(h + m, t.len() as u64);
            prop_assert!(m <= last);
            last = m;
        }
    }

    /// The histogram accounts for every access, and its miss prediction
    /// matches exact LRU at power-of-two capacities (bin edges).
    #[test]
    fn histogram_consistent(t in trace()) {
        let hist = MrdHistogram::from_trace(&t);
        let binned: u64 = hist.bins.iter().sum();
        prop_assert_eq!(binned + hist.cold, t.len() as u64);
        for cap in [1u64, 2, 4, 8, 16, 32, 64] {
            let (_, m) = simulate_lru(&t, cap);
            let pred = hist.predict_misses(cap);
            prop_assert!((pred - m as f64).abs() < 1e-9,
                "cap {}: predicted {} exact {}", cap, pred, m);
        }
    }

    /// Miss prediction is monotone in capacity for arbitrary capacities.
    #[test]
    fn prediction_monotone_in_capacity(t in trace(), caps in proptest::collection::vec(1u64..128, 2..10)) {
        let hist = MrdHistogram::from_trace(&t);
        let mut cs = caps.clone();
        cs.sort_unstable();
        let mut last = f64::INFINITY;
        for c in cs {
            let p = hist.predict_misses(c);
            prop_assert!(p <= last + 1e-9);
            last = p;
        }
    }

    /// Every distance lands in a bin that actually contains it.
    #[test]
    fn bins_contain_their_values(d in 0u64..u64::MAX / 2) {
        let k = bin_of(d);
        prop_assert!(bin_lower(k) <= d);
        prop_assert!(d < bin_upper(k));
    }

    /// polyfit recovers exact low-degree polynomials from clean samples.
    #[test]
    fn polyfit_recovers_exact(
        c0 in -100.0f64..100.0,
        c1 in -10.0f64..10.0,
        c2 in -1.0f64..1.0,
    ) {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let c = polyfit(&xs, &ys, 2).expect("well-posed fit");
        for &x in &[0.5f64, 15.0, 40.0] {
            let want = c0 + c1 * x + c2 * x * x;
            let got = polyval(&c, x);
            prop_assert!((got - want).abs() <= 1e-6 * (1.0 + want.abs()),
                "x={}: got {} want {}", x, got, want);
        }
    }
}
