//! Per-job lifecycle spans: the service-layer analogue of the per-rank
//! flight recorder.
//!
//! The dispatcher emits one [`JobSpan`] per lifecycle step — submit →
//! price → map → admit / defer / reject → run → complete / SLO-miss —
//! with **caller-stamped virtual timestamps**: every `t0`/`t1` is a value
//! the dispatcher already computed for the decision itself (round time,
//! submit time, modeled finish time), so recording reads no clocks and
//! perturbs nothing. A disabled [`SpanLog`] handle (the default) turns
//! every call into a single `Option` test, exactly like
//! `grads_obs::Recorder`; [`ServiceResult`](crate::ServiceResult) is
//! bit-identical with spans on or off.
//!
//! [`SpanLog::to_chrome_trace`] renders the stream as Chrome Trace Event
//! JSON — one process per tenant plus one for the market, one thread per
//! job — with `process_name`/`thread_name` metadata events so the trace
//! is readable in `chrome://tracing` / `ui.perfetto.dev` without a
//! decoder ring.

use parking_lot::Mutex;
use std::sync::Arc;

/// Sentinel tenant for market-wide (per-round pricing) spans.
pub const MARKET_TENANT: u32 = u32::MAX;

/// One step of a job's service lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobPhase {
    /// The job entered the queue (instant, stamped at its submit time).
    Submit,
    /// The market cleared a round price (market row; `value` = price).
    Price,
    /// The mapper produced a placement (`value` = predicted runtime).
    Map,
    /// Admitted: the span covers the queue wait, submit → admission
    /// (`value` = cost charged at admission).
    Admit,
    /// Deferred this round; `detail` carries the reason (`"auction"`,
    /// `"no-hosts"`, `"no-cluster"`, `"over-budget"`).
    Defer,
    /// Rejected; `detail` carries the reason (`"expired"`,
    /// `"infeasible"`, `"cutoff"`).
    Reject,
    /// Occupying slots: admission → modeled finish.
    Run,
    /// Retired on time (instant at the modeled finish).
    Complete,
    /// Retired past its deadline (instant at the modeled finish).
    SloMiss,
}

impl JobPhase {
    /// Stable display name (used by the exporter).
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Submit => "Submit",
            JobPhase::Price => "Price",
            JobPhase::Map => "Map",
            JobPhase::Admit => "Admit",
            JobPhase::Defer => "Defer",
            JobPhase::Reject => "Reject",
            JobPhase::Run => "Run",
            JobPhase::Complete => "Complete",
            JobPhase::SloMiss => "SloMiss",
        }
    }
}

/// One recorded lifecycle span. Instants have `t0 == t1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpan {
    /// Job id (or the round number on [`MARKET_TENANT`] rows).
    pub job: u32,
    /// Owning tenant, or [`MARKET_TENANT`].
    pub tenant: u32,
    /// Lifecycle step.
    pub phase: JobPhase,
    /// Step-specific label (defer/reject reason).
    pub detail: Option<&'static str>,
    /// Span start, virtual seconds (caller-stamped).
    pub t0: f64,
    /// Span end, virtual seconds.
    pub t1: f64,
    /// Step-specific scalar (price, predicted runtime, cost; `0.0` when
    /// the step carries none).
    pub value: f64,
}

/// Handle to one job-span stream. Cloning shares the log (`Arc` inside);
/// the default handle is disabled and records nothing.
#[derive(Clone, Default)]
pub struct SpanLog {
    inner: Option<Arc<Mutex<Vec<JobSpan>>>>,
}

impl std::fmt::Debug for SpanLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanLog")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl SpanLog {
    /// A recording handle with an empty stream.
    pub fn enabled() -> Self {
        SpanLog {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// A no-op handle (the `Default`).
    pub fn disabled() -> Self {
        SpanLog { inner: None }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Append one span (no-op when disabled).
    #[inline]
    pub fn push(&self, span: JobSpan) {
        if let Some(i) = &self.inner {
            i.lock().push(span);
        }
    }

    /// Everything recorded so far, in record order.
    pub fn spans(&self) -> Vec<JobSpan> {
        match &self.inner {
            Some(i) => i.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Spans of one phase, in record order.
    pub fn phase_spans(&self, phase: JobPhase) -> Vec<JobSpan> {
        self.spans()
            .into_iter()
            .filter(|s| s.phase == phase)
            .collect()
    }

    /// Render as Chrome Trace Event JSON: one process per tenant (plus a
    /// `market` process for round pricing), one thread per job, a
    /// complete (`"X"`) event per span, timestamps in microseconds of
    /// virtual time. `process_name` / `thread_name` metadata events are
    /// emitted for every row. Byte-deterministic for equal streams.
    pub fn to_chrome_trace(&self) -> String {
        let spans = self.spans();
        // The market process renders after the real tenants.
        let n_tenants = spans
            .iter()
            .filter(|s| s.tenant != MARKET_TENANT)
            .map(|s| s.tenant + 1)
            .max()
            .unwrap_or(0);
        let pid_of = |tenant: u32| -> u32 {
            if tenant == MARKET_TENANT {
                n_tenants
            } else {
                tenant
            }
        };
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push_ev = |out: &mut String, body: &str| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str("\n ");
            out.push_str(body);
        };
        for t in 0..n_tenants {
            push_ev(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{t},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"tenant {t}\"}}}}"
                ),
            );
        }
        if spans.iter().any(|s| s.tenant == MARKET_TENANT) {
            push_ev(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{n_tenants},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"market\"}}}}"
                ),
            );
        }
        // One thread_name per distinct (tenant, job) row, first-seen order.
        let mut named: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for s in &spans {
            if named.insert((s.tenant, s.job)) {
                let label = if s.tenant == MARKET_TENANT {
                    "rounds".to_string()
                } else {
                    format!("job {}", s.job)
                };
                let tid = if s.tenant == MARKET_TENANT { 0 } else { s.job };
                push_ev(
                    &mut out,
                    &format!(
                        "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                        pid_of(s.tenant),
                        tid,
                        label
                    ),
                );
            }
        }
        for s in &spans {
            let tid = if s.tenant == MARKET_TENANT { 0 } else { s.job };
            let name = match s.detail {
                Some(d) => format!("{}:{}", s.phase.name(), d),
                None => s.phase.name().to_string(),
            };
            let mut body = format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"cat\":\"job\",\"name\":\"{}\",\"ts\":",
                pid_of(s.tenant),
                tid,
                name
            );
            push_us(&mut body, s.t0);
            body.push_str(",\"dur\":");
            push_us(&mut body, s.t1 - s.t0);
            body.push_str(",\"args\":{\"v\":");
            push_num(&mut body, s.value);
            body.push_str("}}");
            push_ev(&mut out, &body);
        }
        out.push_str(&format!(
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"tenants\":{n_tenants},\"spans\":{}}}}}",
            spans.len()
        ));
        out
    }
}

/// Seconds → microseconds, shortest round-trip formatting; non-finite
/// values render `null` (JSON has no NaN/Infinity).
fn push_us(out: &mut String, seconds: f64) {
    push_num(out, seconds * 1e6);
}

/// Shortest round-trip float formatting; non-finite values render `null`.
fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = SpanLog::disabled();
        assert!(!log.is_enabled());
        log.push(JobSpan {
            job: 1,
            tenant: 0,
            phase: JobPhase::Submit,
            detail: None,
            t0: 0.0,
            t1: 0.0,
            value: 0.0,
        });
        assert!(log.spans().is_empty());
    }

    #[test]
    fn chrome_trace_names_processes_and_threads() {
        let log = SpanLog::enabled();
        log.push(JobSpan {
            job: 3,
            tenant: 1,
            phase: JobPhase::Admit,
            detail: None,
            t0: 1.0,
            t1: 4.0,
            value: 2.5,
        });
        log.push(JobSpan {
            job: 0,
            tenant: MARKET_TENANT,
            phase: JobPhase::Price,
            detail: None,
            t0: 4.0,
            t1: 4.0,
            value: 0.75,
        });
        log.push(JobSpan {
            job: 3,
            tenant: 1,
            phase: JobPhase::Reject,
            detail: Some("expired"),
            t0: 5.0,
            t1: 5.0,
            value: 0.0,
        });
        let json = log.to_chrome_trace();
        assert!(json.contains("\"name\":\"process_name\""), "{json}");
        assert!(json.contains("\"name\":\"tenant 1\""));
        assert!(json.contains("\"name\":\"market\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"job 3\""));
        assert!(json.contains("\"name\":\"Reject:expired\""));
        assert_eq!(json, log.to_chrome_trace(), "byte-deterministic");
    }
}
