//! # grads-service — a multi-tenant grid service in front of the scheduler
//!
//! The GrADS drivers run *one* application per emulated grid. This crate
//! turns the same machinery into a **service**: a continuous, seeded
//! stream of job submissions (QR / N-body / EMAN / workflow shapes, each
//! with a size, a deadline, and a budget — [`workload`]), a
//! deadline-aware admission and queueing layer in front of the fast
//! mapper ([`service`]), and per-tenant accounting surfaced through
//! `grads-obs` counters ([`accounting`]).
//!
//! The admission policy follows the economic-scheduling line of work the
//! paper points to for resource allocation (Buyya's deadline-and-budget
//! constrained cost-time optimisation; Wolski's G-commerce markets):
//!
//! * **deadline-aware**: a job is admitted only if a
//!   `ForecastSnapshot`-based completion estimate lands inside its
//!   deadline; jobs whose deadline can no longer be met are rejected
//!   rather than left to fail late;
//! * **budget-constrained**: a commodities market
//!   ([`grads_sched::CommodityMarket`]) prices slot-seconds each
//!   dispatch round from real supply (free slots) and demand (the
//!   queue); a job is deferred while the market price makes it
//!   unaffordable, and under scarcity the last free slots are sold by
//!   second-price auction ([`grads_sched::auction_allocate`]);
//! * **fair across tenants**: accounting tracks admitted / rejected /
//!   completed / SLO-missed jobs, consumed host-seconds and spend per
//!   tenant, with Jain's index over host-seconds as the fairness signal.
//!
//! Everything runs inside `grads-sim` virtual time and is bit-for-bit
//! deterministic: the same seed produces the same admitted set, the same
//! accounts, and the same metrics across reruns, across
//! [`grads_sched::SchedTune`] decision paths, and at any sweep worker
//! count (pinned by the root `service_determinism` suite).

pub mod accounting;
pub mod plan;
pub mod service;
pub mod spans;
pub mod workload;

pub use accounting::{Accounting, TenantAccount};
pub use plan::MappingPlan;
pub use service::{percentile, run_service_experiment, service_grid, ServiceConfig, ServiceResult};
pub use spans::{JobPhase, JobSpan, SpanLog, MARKET_TENANT};
pub use workload::{generate_workload, AppKind, Job, WorkloadConfig};
