//! The reusable mapping plan: per-cluster free-host state and a
//! placement memo, maintained `O(Δ)` instead of rebuilt per job.
//!
//! Without the plan, every job examined in a dispatch round pays an
//! `O(hosts)` scan of `free_cores` to build its eligibility list and an
//! `O(hosts log hosts)` per-cluster re-sort inside the candidate walk —
//! even though at most `procs` hosts change occupancy per admission and
//! the forecast snapshot is frozen for the whole round. [`MappingPlan`]
//! keeps what those rebuilds recompute:
//!
//! * a free-host [`HostBitset`] plus per-cluster eligible counts and a
//!   grid-wide free-host count, updated only on the `0 ↔ 1` free-core
//!   transitions of admit/retire (a host with 2 free cores going to 1 is
//!   still eligible — no update);
//! * per-cluster **stamps**: a logical clock value recording when the
//!   cluster's mapping-relevant state last changed. A stamp is bumped by
//!   an eligibility transition in the cluster, by a forecast change on
//!   one of its hosts (the delta-capture dirty set), or — conservatively,
//!   for all clusters at once — by a dirty network pair (cross-cluster
//!   transfer estimates feed every cluster's broadcast leg in general);
//! * a placement **memo** keyed by `(app class, procs, flops bits,
//!   broadcast bits)` holding per-cluster `(prefix length, predicted)`
//!   scores, each tagged with the cluster stamp it was computed under.
//!   A lookup reuses exactly the columns whose stamp still matches and
//!   recomputes the rest through the persistent
//!   [`grads_sched::SnapshotIndex`] — so an admission invalidates
//!   precisely the clusters it touched, nothing else.
//!
//! Bit-identity: a memo column is reused only when nothing a recompute
//! would read has changed (same eligible prefix, same snapshot bits, same
//! model inputs), recomputation itself goes through
//! [`grads_sched::CandidateWalk::score_cluster_from_index`] (the same
//! scoring code as a fresh walk), and the cross-cluster argmin below
//! replays the walk's cluster-index-order first-wins reduction. The
//! service determinism suite pins the end-to-end equality.

use std::collections::HashMap;

use grads_nws::ForecastSnapshot;
use grads_obs::Obs;
use grads_perf::TreeBcastPrefix;
use grads_sched::{CandidateWalk, HostBitset, RepairReport, ResourceChoice, SnapshotIndex};
use grads_sim::prelude::*;

use crate::workload::Job;

/// Memo capacity guard: when the key set reaches this size the memo is
/// cleared wholesale (deterministically) rather than grown without bound.
const MEMO_MAX_KEYS: usize = 8192;

#[derive(Debug, Clone, Copy)]
struct MemoCol {
    /// Cluster stamp the score was computed under (`0` = never).
    stamp: u64,
    /// The cluster's best `(prefix length, predicted)`, `None` when the
    /// cluster could not seat the job at computation time.
    best: Option<(usize, f64)>,
}

/// Incrementally-maintained mapping state for one service run. See the
/// module docs for the invalidation rules and the identity argument.
pub struct MappingPlan {
    /// Hosts with at least one free core.
    free: HostBitset,
    /// Free (eligible) host count per cluster, aligned with cluster ids.
    elig_count: Vec<usize>,
    /// Host id → cluster index.
    cluster_of: Vec<u32>,
    /// Grid-wide free-host count — the `eligible.len()` of the rebuilt
    /// path, without the scan.
    free_hosts: usize,
    /// Per-cluster last-changed stamps.
    stamps: Vec<u64>,
    /// Logical clock behind the stamps.
    clock: u64,
    memo: HashMap<(u8, usize, u64, u64), Vec<MemoCol>>,
    // `svc.epoch.*` counter state, published once at end of run.
    memo_hits: u64,
    memo_misses: u64,
    elig_updates: u64,
    index_repairs: u64,
    index_rebuilds: u64,
}

impl MappingPlan {
    /// Derive the initial free state from the live `free_cores` table.
    pub fn new(grid: &Grid, free_cores: &[u32]) -> Self {
        let n_hosts = grid.hosts().len();
        let n_clusters = grid.clusters().len();
        let mut free = HostBitset::new(n_hosts);
        let mut elig_count = vec![0usize; n_clusters];
        let mut cluster_of = vec![0u32; n_hosts];
        let mut free_hosts = 0usize;
        for (ci, cluster) in grid.clusters().iter().enumerate() {
            for &h in &cluster.hosts {
                cluster_of[h.0 as usize] = ci as u32;
                if free_cores[h.0 as usize] > 0 {
                    free.insert(h);
                    elig_count[ci] += 1;
                    free_hosts += 1;
                }
            }
        }
        MappingPlan {
            free,
            elig_count,
            cluster_of,
            free_hosts,
            stamps: vec![1; n_clusters],
            clock: 1,
            memo: HashMap::new(),
            memo_hits: 0,
            memo_misses: 0,
            elig_updates: 0,
            index_repairs: 0,
            index_rebuilds: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Number of hosts with at least one free core — what the rebuilt
    /// path's `eligible.len()` would be.
    pub fn free_host_count(&self) -> usize {
        self.free_hosts
    }

    /// Record a host crossing the eligibility boundary: `free = false`
    /// when its last free core was taken (admit), `true` when a core
    /// freed up on a fully-busy host (retire). Calls for non-boundary
    /// core transitions must be omitted by the driver — a host going from
    /// 2 free cores to 1 is still eligible and invalidates nothing.
    pub fn set_host_free(&mut self, h: HostId, free: bool) {
        let changed = if free {
            self.free.insert(h)
        } else {
            self.free.remove(h)
        };
        debug_assert!(changed, "set_host_free called off the 0↔1 boundary");
        let ci = self.cluster_of[h.0 as usize] as usize;
        if free {
            self.elig_count[ci] += 1;
            self.free_hosts += 1;
        } else {
            self.elig_count[ci] -= 1;
            self.free_hosts -= 1;
        }
        self.stamps[ci] = self.tick();
        self.elig_updates += 1;
    }

    /// Absorb a round's forecast delta: bump the stamp of every cluster
    /// holding a dirty host; a dirty network pair bumps every cluster
    /// (transfer estimates are cross-cluster state).
    pub fn on_weather(&mut self, dirty_hosts: &[HostId], network_dirty: bool) {
        if network_dirty {
            let s = self.tick();
            self.stamps.fill(s);
            return;
        }
        for &h in dirty_hosts {
            let ci = self.cluster_of[h.0 as usize] as usize;
            self.stamps[ci] = self.tick();
        }
    }

    /// Fold a [`SnapshotIndex::repair`] outcome into the counters.
    pub fn note_repair(&mut self, rep: RepairReport) {
        if rep.rebuilt {
            self.index_rebuilds += 1;
        }
        self.index_repairs += rep.moved as u64;
    }

    /// Map `job` through the memo + persistent index: per cluster, reuse
    /// the cached score when the cluster's stamp is unchanged, recompute
    /// it through the index otherwise, then reduce in cluster-index order
    /// with first-wins ties — the candidate walk's exact argmin.
    pub fn map(
        &mut self,
        job: &Job,
        index: &SnapshotIndex,
        grid: &Grid,
        snap: &ForecastSnapshot,
    ) -> Option<ResourceChoice> {
        let key = (
            job.kind as u8,
            job.procs,
            job.flops.to_bits(),
            job.bcast_bytes.to_bits(),
        );
        let n_clusters = self.stamps.len();
        if !self.memo.contains_key(&key) && self.memo.len() >= MEMO_MAX_KEYS {
            self.memo.clear();
        }
        let cols = self.memo.entry(key).or_insert_with(|| {
            vec![
                MemoCol {
                    stamp: 0,
                    best: None
                };
                n_clusters
            ]
        });
        let mut pred = TreeBcastPrefix::new(grid, snap, job.flops, job.bcast_bytes);
        let mut best: Option<(usize, usize, f64)> = None;
        for (ci, col) in cols.iter_mut().enumerate() {
            if col.stamp == self.stamps[ci] {
                self.memo_hits += 1;
            } else {
                col.best = CandidateWalk::score_cluster_from_index(
                    index,
                    ci,
                    &self.free,
                    self.elig_count[ci],
                    job.procs,
                    job.procs,
                    &mut pred,
                );
                col.stamp = self.stamps[ci];
                self.memo_misses += 1;
            }
            if let Some((k, t)) = col.best {
                match best {
                    Some((_, _, bt)) if bt <= t => {}
                    _ => best = Some((ci, k, t)),
                }
            }
        }
        best.map(|(ci, k, predicted)| ResourceChoice {
            hosts: index.eligible_prefix(ci, &self.free, k),
            predicted,
            cluster: ClusterId(ci as u32),
        })
    }

    /// Publish the `svc.epoch.*` counters. Zero-perturbation like every
    /// other metric: reads accumulated integers, computes nothing new.
    pub fn publish(&self, obs: &Obs) {
        obs.counter_add("svc.epoch.index_repairs", self.index_repairs);
        obs.counter_add("svc.epoch.index_rebuilds", self.index_rebuilds);
        obs.counter_add("svc.epoch.memo_hits", self.memo_hits);
        obs.counter_add("svc.epoch.memo_misses", self.memo_misses);
        obs.counter_add("svc.epoch.elig_updates", self.elig_updates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::service_grid;
    use grads_nws::NwsService;
    use grads_sched::select_mpi_resources_fast;

    fn setup() -> (Grid, NwsService) {
        let grid = service_grid(48, 4, 2);
        let mut nws = NwsService::new();
        for i in 0..48u32 {
            for j in 0..8 {
                nws.observe_cpu(HostId(i), 0.3 + 0.05 * ((i * 3 + j) % 11) as f64);
            }
        }
        (grid, nws)
    }

    fn job(procs: usize, flops: f64, bytes: f64) -> Job {
        Job {
            id: 0,
            tenant: 0,
            kind: crate::workload::AppKind::Qr,
            procs,
            flops,
            bcast_bytes: bytes,
            submit_s: 0.0,
            deadline_s: 1e9,
            budget: 1e9,
            runtime_skew: 1.0,
        }
    }

    /// The plan's mapping equals the fresh walk across an admit/retire
    /// sequence, and the memo actually reuses columns when nothing moved.
    #[test]
    fn plan_map_matches_fresh_walk_through_occupancy_churn() {
        let (grid, nws) = setup();
        let snap = ForecastSnapshot::capture(&grid, &nws);
        let index = SnapshotIndex::build(&grid, &snap);
        let mut free_cores: Vec<u32> = grid.hosts().iter().map(|h| h.cores).collect();
        let mut plan = MappingPlan::new(&grid, &free_cores);
        let jobs = [
            job(3, 2e12, 1.5e7),
            job(2, 5e11, 1e6),
            job(3, 2e12, 1.5e7), // same key as the first: memo-hit material
            job(4, 8e12, 3e7),
            job(1, 1e11, 0.0),
        ];
        let mut occupied: Vec<Vec<HostId>> = Vec::new();
        for (step, j) in jobs.iter().enumerate() {
            let eligible: Vec<HostId> = (0..48u32)
                .map(HostId)
                .filter(|h| free_cores[h.0 as usize] > 0)
                .collect();
            let reference = select_mpi_resources_fast(
                &grid,
                &snap,
                &eligible,
                j.procs,
                j.procs,
                || TreeBcastPrefix::new(&grid, &snap, j.flops, j.bcast_bytes),
                1,
            );
            let got = plan.map(j, &index, &grid, &snap);
            match (&reference, &got) {
                (Some(r), Some(g)) => {
                    assert_eq!(r.hosts, g.hosts, "step {step}");
                    assert_eq!(r.cluster, g.cluster);
                    assert_eq!(r.predicted.to_bits(), g.predicted.to_bits());
                }
                (None, None) => {}
                _ => panic!("presence mismatch at step {step}"),
            }
            // Admit: occupy the chosen hosts.
            if let Some(c) = got {
                for &h in &c.hosts {
                    free_cores[h.0 as usize] -= 1;
                    if free_cores[h.0 as usize] == 0 {
                        plan.set_host_free(h, false);
                    }
                }
                occupied.push(c.hosts);
            }
        }
        assert!(plan.memo_hits > 0, "repeated keys must hit the memo");
        // Retire everything and re-map: still identical to fresh.
        for hosts in occupied.drain(..) {
            for h in hosts {
                free_cores[h.0 as usize] += 1;
                if free_cores[h.0 as usize] == 1 {
                    plan.set_host_free(h, true);
                }
            }
        }
        let j = job(3, 2e12, 1.5e7);
        let all: Vec<HostId> = (0..48).map(HostId).collect();
        let reference = select_mpi_resources_fast(
            &grid,
            &snap,
            &all,
            3,
            3,
            || TreeBcastPrefix::new(&grid, &snap, j.flops, j.bcast_bytes),
            1,
        )
        .unwrap();
        let got = plan.map(&j, &index, &grid, &snap).unwrap();
        assert_eq!(reference.hosts, got.hosts);
        assert_eq!(reference.predicted.to_bits(), got.predicted.to_bits());
    }

    /// Weather deltas invalidate exactly the touched clusters' columns.
    #[test]
    fn weather_invalidation_is_per_cluster() {
        let (grid, mut nws) = setup();
        nws.enable_delta_tracking();
        let snap0 = ForecastSnapshot::capture_sync(&grid, &mut nws);
        let mut index = SnapshotIndex::build(&grid, &snap0);
        let free_cores: Vec<u32> = grid.hosts().iter().map(|h| h.cores).collect();
        let mut plan = MappingPlan::new(&grid, &free_cores);
        let j = job(2, 1e12, 5e6);
        plan.map(&j, &index, &grid, &snap0);
        let misses0 = plan.memo_misses;
        assert_eq!(misses0, 4, "cold memo computes every cluster");

        // Dirty one host in cluster 0 only.
        nws.observe_cpu(HostId(0), 0.9);
        let dirty = nws.dirty_hosts();
        let net = nws.has_dirty_network();
        let snap1 = ForecastSnapshot::capture_delta(&grid, &mut nws, &snap0);
        plan.note_repair(index.repair(&grid, &snap1, &dirty));
        plan.on_weather(&dirty, net);
        let got = plan.map(&j, &index, &grid, &snap1);
        assert_eq!(
            plan.memo_misses - misses0,
            1,
            "only the dirtied cluster recomputes"
        );
        assert_eq!(plan.memo_hits, 3);
        // And the result still equals a fresh walk against the new snap.
        let all: Vec<HostId> = (0..48).map(HostId).collect();
        let reference = select_mpi_resources_fast(
            &grid,
            &snap1,
            &all,
            2,
            2,
            || TreeBcastPrefix::new(&grid, &snap1, j.flops, j.bcast_bytes),
            1,
        );
        match (&reference, &got) {
            (Some(r), Some(g)) => {
                assert_eq!(r.hosts, g.hosts);
                assert_eq!(r.predicted.to_bits(), g.predicted.to_bits());
            }
            (None, None) => {}
            _ => panic!("presence mismatch"),
        }
    }
}
