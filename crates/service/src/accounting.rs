//! Per-tenant accounting, surfaced through `grads-obs`.
//!
//! Every admission decision and completion lands in exactly one
//! [`TenantAccount`]; [`Accounting::publish`] mirrors the totals into
//! `Obs` counters/gauges so the service shows up in the same metrics
//! snapshots (and the same byte-identical JSON) as the kernel and the
//! scheduler. Counter names are stable: `svc.<field>` for grid-wide
//! totals and `svc.t<tenant>.<field>` per tenant.

use grads_obs::Obs;

/// One tenant's ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantAccount {
    /// Jobs submitted (entered the queue).
    pub submitted: u64,
    /// Jobs admitted to the grid.
    pub admitted: u64,
    /// Jobs rejected (deadline infeasible at decision time, or expired
    /// in the queue while unaffordable/unplaceable).
    pub rejected: u64,
    /// Admitted jobs that ran to completion.
    pub completed: u64,
    /// Completed jobs that finished after their deadline.
    pub slo_misses: u64,
    /// Σ procs × wall-clock occupied, virtual seconds.
    pub host_seconds: f64,
    /// Money paid at admission (market or auction price × slot-seconds).
    pub spend: f64,
}

impl TenantAccount {
    /// SLO burn rate: the fraction of completed jobs that missed their
    /// deadline (`0` while nothing has completed). This is the per-tenant
    /// error-budget signal the span stream's `SloMiss` events aggregate
    /// into.
    pub fn slo_burn_rate(&self) -> f64 {
        if self.completed > 0 {
            self.slo_misses as f64 / self.completed as f64
        } else {
            0.0
        }
    }
}

/// The service-wide ledger: one [`TenantAccount`] per tenant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accounting {
    accounts: Vec<TenantAccount>,
}

impl Accounting {
    /// A ledger for `n_tenants` tenants.
    pub fn new(n_tenants: usize) -> Self {
        Accounting {
            accounts: vec![TenantAccount::default(); n_tenants],
        }
    }

    /// Mutable access to one tenant's ledger.
    pub fn tenant_mut(&mut self, tenant: u32) -> &mut TenantAccount {
        &mut self.accounts[tenant as usize]
    }

    /// All per-tenant ledgers, tenant-indexed.
    pub fn accounts(&self) -> &[TenantAccount] {
        &self.accounts
    }

    /// Grid-wide totals (field-wise sum over tenants).
    pub fn totals(&self) -> TenantAccount {
        let mut t = TenantAccount::default();
        for a in &self.accounts {
            t.submitted += a.submitted;
            t.admitted += a.admitted;
            t.rejected += a.rejected;
            t.completed += a.completed;
            t.slo_misses += a.slo_misses;
            t.host_seconds += a.host_seconds;
            t.spend += a.spend;
        }
        t
    }

    /// Jain's fairness index over per-tenant consumed host-seconds
    /// (1 = perfectly even service).
    pub fn fairness(&self) -> f64 {
        grads_sched::jain_fairness(
            &self
                .accounts
                .iter()
                .map(|a| a.host_seconds)
                .collect::<Vec<_>>(),
        )
    }

    /// Mirror the ledger into `obs` counters and gauges.
    pub fn publish(&self, obs: &Obs) {
        let pub_one = |prefix: &str, a: &TenantAccount| {
            obs.counter_add(&format!("{prefix}.submitted"), a.submitted);
            obs.counter_add(&format!("{prefix}.admitted"), a.admitted);
            obs.counter_add(&format!("{prefix}.rejected"), a.rejected);
            obs.counter_add(&format!("{prefix}.completed"), a.completed);
            obs.counter_add(&format!("{prefix}.slo_misses"), a.slo_misses);
            obs.gauge_set(&format!("{prefix}.host_seconds"), a.host_seconds);
            obs.gauge_set(&format!("{prefix}.spend"), a.spend);
            obs.gauge_set(&format!("{prefix}.slo_burn_rate"), a.slo_burn_rate());
        };
        pub_one("svc", &self.totals());
        for (i, a) in self.accounts.iter().enumerate() {
            pub_one(&format!("svc.t{i}"), a);
        }
        obs.gauge_set("svc.fairness", self.fairness());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_tenants_and_fairness_tracks_skew() {
        let mut acc = Accounting::new(3);
        for (t, hs) in [(0u32, 100.0), (1, 100.0), (2, 100.0)] {
            let a = acc.tenant_mut(t);
            a.submitted = 10;
            a.admitted = 8;
            a.completed = 7;
            a.host_seconds = hs;
            a.spend = hs * 0.9;
        }
        let tot = acc.totals();
        assert_eq!(tot.submitted, 30);
        assert_eq!(tot.admitted, 24);
        assert_eq!(tot.completed, 21);
        assert!((tot.host_seconds - 300.0).abs() < 1e-12);
        assert!((acc.fairness() - 1.0).abs() < 1e-12, "even service is fair");
        acc.tenant_mut(0).host_seconds = 1000.0;
        assert!(acc.fairness() < 0.7, "skewed service lowers Jain's index");
    }

    #[test]
    fn publish_lands_in_obs_counters() {
        let mut acc = Accounting::new(2);
        acc.tenant_mut(0).admitted = 5;
        acc.tenant_mut(1).admitted = 2;
        acc.tenant_mut(1).completed = 2;
        acc.tenant_mut(1).slo_misses = 1;
        let obs = Obs::enabled();
        acc.publish(&obs);
        let snap = obs.snapshot();
        let json = snap.to_json();
        assert!(
            json.contains("\"svc.admitted\""),
            "grid-wide counters: {json}"
        );
        assert!(json.contains("\"svc.t0.admitted\""), "per-tenant counters");
        assert!(json.contains("\"svc.t1.slo_misses\""));
        assert!(json.contains("\"svc.fairness\""));
        assert!(json.contains("\"svc.t1.slo_burn_rate\": 0.5"), "{json}");
        assert!(json.contains("\"svc.t0.slo_burn_rate\": 0"));
    }

    #[test]
    fn burn_rate_is_zero_until_something_completes() {
        let mut a = TenantAccount::default();
        assert_eq!(a.slo_burn_rate(), 0.0);
        a.completed = 4;
        a.slo_misses = 1;
        assert_eq!(a.slo_burn_rate(), 0.25);
    }
}
