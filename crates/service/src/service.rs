//! The service loop: stream → queue → admission → mapper → accounting.
//!
//! One dispatcher process runs inside the `grads-sim` engine and wakes
//! every `round_s` of virtual time. Per round it:
//!
//! 1. retires finished jobs (freeing their slots, charging host-seconds,
//!    detecting SLO misses against the *actual* finish time);
//! 2. pulls newly-submitted jobs into the queue;
//! 3. feeds the NWS one CPU-availability observation per host — the
//!    service's own occupancy shows up in the forecasts, closing the
//!    load → forecast → admission feedback loop — and captures **one**
//!    [`ForecastSnapshot`] that every decision in the round reads;
//! 4. clears the commodities market (supply = free slots, demand = the
//!    queue's budget rates) to get the round's slot-second price;
//! 5. walks the queue earliest-deadline-first and, for each job, maps it
//!    with the `SchedTune` decision path (reference or fast/parallel —
//!    bit-identical by the decision-path contract), then admits, defers,
//!    or rejects:
//!    * **reject** if the snapshot-based completion estimate misses the
//!      deadline (running it would only burn slots on a lost SLO);
//!    * **defer** if the job is affordable later (market price above its
//!      budget rate, or no slots free) — it stays queued and is
//!      re-examined next round until its deadline becomes infeasible;
//!    * **admit** otherwise, paying `price × procs × predicted` from the
//!      job's budget and occupying one slot per chosen host.
//!
//!    Under scarcity (free slots below a threshold) the round first runs
//!    a second-price auction over the queue head and only auction
//!    winners may admit — the last slots go to the bidders valuing them
//!    most, not merely the earliest deadline.
//!
//! Job execution is **modeled occupancy**: an admitted job holds its
//! slots for `predicted × runtime_skew` virtual seconds (the skew is the
//! hidden prediction error, drawn per job by the workload generator) and
//! then completes on the dispatcher's heap. This is the service-level
//! abstraction — the per-rank MPI emulation of each application already
//! has its own end-to-end drivers — and it is what lets one engine
//! sustain thousands of concurrent jobs on a 4096-host grid.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use grads_nws::{ForecastSnapshot, NwsService};
use grads_obs::Obs;
use grads_perf::TreeBcastPrefix;
use grads_sched::{
    auction_allocate, price_volatility, select_mpi_resources, select_mpi_resources_fast,
    CommodityMarket, Consumer, DecisionPath, Producer, SchedTune, SnapshotIndex, AUCTION_EPS,
};
use grads_sim::prelude::*;
use parking_lot::Mutex;

use crate::accounting::{Accounting, TenantAccount};
use crate::plan::MappingPlan;
use crate::spans::{JobPhase, JobSpan, SpanLog, MARKET_TENANT};
use crate::workload::{generate_workload, Job, WorkloadConfig};

/// Service experiment parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The submission stream.
    pub workload: WorkloadConfig,
    /// Grid size: hosts, clusters, cores per host (slots = hosts × cores).
    pub hosts: usize,
    /// Cluster count (hosts are split evenly).
    pub clusters: usize,
    /// Cores (= schedulable slots) per host.
    pub cores_per_host: u32,
    /// Dispatch round period, virtual seconds.
    pub round_s: f64,
    /// Admissions attempted per round (bounds decision work per round).
    pub max_admissions_per_round: usize,
    /// Free-slot level below which the auction gate engages.
    pub scarcity_slots: f64,
    /// Reserve price per slot-second: the market may not sell below it
    /// (operating cost floor), so a queue of near-zero budgets cannot
    /// drive the clearing price to ~0 and buy the grid for free.
    pub reserve_price: f64,
    /// Concurrency high-water mark: rounds with at least this many jobs
    /// in flight are counted in [`ServiceResult::high_water_rounds`]
    /// (the "sustained N concurrent jobs" evidence).
    pub high_water_in_flight: usize,
    /// Decision-path tune for the per-job mapper.
    pub sched: SchedTune,
    /// Kernel substrate tune.
    pub tune: EngineTune,
    /// Metrics sink (counters/gauges published at end of run).
    pub obs: Obs,
    /// Per-job lifecycle span stream (disabled by default). Every span
    /// timestamp is a value the dispatcher already computed — round
    /// time, submit time, modeled finish — so enabling this changes no
    /// decision and [`ServiceResult`] stays bit-identical.
    pub spans: SpanLog,
    /// Virtual-time budget; the run aborts past this.
    pub t_max: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workload: WorkloadConfig::default(),
            hosts: 128,
            clusters: 8,
            cores_per_host: 2,
            round_s: 5.0,
            max_admissions_per_round: 64,
            scarcity_slots: 64.0,
            reserve_price: 0.25,
            high_water_in_flight: 2000,
            sched: SchedTune::default(),
            tune: EngineTune::default(),
            obs: Obs::disabled(),
            spans: SpanLog::disabled(),
            t_max: 1.0e7,
        }
    }
}

/// What a service run produced. `PartialEq` is bitwise on every float —
/// two results compare equal only if the runs were numerically
/// identical, which is what the determinism suite pins across reruns,
/// decision paths, and sweep worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceResult {
    /// Per-tenant ledgers, tenant-indexed.
    pub accounts: Vec<TenantAccount>,
    /// Field-wise sum over tenants.
    pub totals: TenantAccount,
    /// Admitted job ids in admission order — the service's decision
    /// trace, compared wholesale by the determinism tests.
    pub admitted_ids: Vec<u32>,
    /// Peak number of jobs running at once.
    pub max_in_flight: usize,
    /// Mean in-flight jobs over all dispatch rounds — the sustained
    /// concurrency level (the peak alone could be a transient).
    pub mean_in_flight: f64,
    /// Rounds that ended with at least
    /// [`ServiceConfig::high_water_in_flight`] jobs in flight; times
    /// `round_s` this is how long the service held that concurrency.
    pub high_water_rounds: u64,
    /// Peak queue depth.
    pub peak_queue: usize,
    /// Mean queue wait of admitted jobs, virtual seconds.
    pub mean_wait_s: f64,
    /// 95th-percentile queue wait, virtual seconds.
    pub p95_wait_s: f64,
    /// Mean submit→finish turnaround of completed jobs, virtual seconds.
    pub mean_turnaround_s: f64,
    /// Completed jobs per virtual hour.
    pub throughput_per_hour: f64,
    /// SLO misses over completed jobs.
    pub slo_miss_rate: f64,
    /// Mean market slot-second price over all rounds.
    pub price_mean: f64,
    /// Relative std-dev of the round price series (G-commerce stability).
    pub price_volatility: f64,
    /// Jain's index over per-tenant host-seconds.
    pub fairness: f64,
    /// Dispatch rounds executed.
    pub rounds: u64,
    /// Rounds in which the scarcity auction gated admission.
    pub auction_rounds: u64,
    /// Virtual time when the last job left the system.
    pub end_time: f64,
    /// The kernel's run report.
    pub report: RunReport,
}

/// Build the service grid: `clusters` clusters of `hosts/clusters`
/// multi-core hosts, ring-linked over the WAN, with per-cluster base
/// speeds (same shape as the scheduler scaling benches).
pub fn service_grid(hosts: usize, clusters: usize, cores_per_host: u32) -> Grid {
    assert!(hosts >= clusters, "at least one host per cluster");
    let per = hosts / clusters;
    let mut b = GridBuilder::new();
    let mut cl = Vec::new();
    for c in 0..clusters {
        let id = b.cluster(&format!("C{c}"));
        b.local_link(id, 1.0e9, 50e-6);
        let mut spec = HostSpec::with_speed(4.0e8 + 1.0e8 * (c % 7) as f64);
        spec.cores = cores_per_host;
        b.add_hosts(id, per, &spec);
        cl.push(id);
    }
    for c in 0..clusters {
        let next = (c + 1) % clusters;
        if next != c {
            b.connect(cl[c], cl[next], 5.0e7, 5e-3);
        }
    }
    b.build().expect("valid service grid")
}

/// Nearest-rank percentile `p ∈ [0, 1]` of `series`, computed on a
/// sorted copy under `total_cmp` (the service-wide float order). `0.0`
/// for an empty series. The shared helper for every percentile the
/// service and its benches report; callers that also need a mean must
/// keep summing the *original* order — re-ordering a float sum changes
/// its bits.
pub fn percentile(series: &[f64], p: f64) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let mut sorted = series.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

/// Deterministic pseudo-availability jitter in `[0, 1)` for host `i` at
/// round `j` — hash-based, no RNG state, identical on every run.
fn jitter(i: usize, j: u64) -> f64 {
    let h = (i.wrapping_mul(2654435761) ^ (j as usize).wrapping_mul(40503)) % 1000;
    h as f64 / 1000.0
}

/// A job waiting in the queue.
struct Queued {
    job: Job,
    /// Absolute deadline (submit + relative deadline).
    deadline_abs: f64,
}

/// A job occupying slots, on the completion heap.
struct Running {
    job: Job,
    hosts: Vec<HostId>,
    start_s: f64,
    finish_s: f64,
    deadline_abs: f64,
}

/// Incremental decision-epoch state ([`SchedTune::epoch`]): the
/// persistent per-cluster host orderings and the reusable mapping plan,
/// plus the previous round's snapshot (the delta-capture baseline).
/// Built at the first dispatch round, maintained `O(Δ)` afterwards.
struct EpochState {
    index: SnapshotIndex,
    plan: MappingPlan,
    prev_snap: ForecastSnapshot,
}

/// Map `job` onto `eligible` hosts through the tuned decision path. Both
/// paths read the same frozen `snap` (the reference path's live-service
/// sort sees bitwise-equal values because nothing observes between
/// capture and selection), so the choice is bit-identical across tunes.
fn map_job(
    job: &Job,
    grid: &Grid,
    nws: &NwsService,
    snap: &ForecastSnapshot,
    eligible: &[HostId],
    tune: SchedTune,
) -> Option<grads_sched::ResourceChoice> {
    match tune.path {
        DecisionPath::Reference => {
            let predict = |hs: &[HostId], grid: &Grid, _n: &NwsService| {
                TreeBcastPrefix::reference(hs, grid, snap, job.flops, job.bcast_bytes)
            };
            select_mpi_resources(grid, nws, eligible, job.procs, job.procs, &predict)
        }
        DecisionPath::Fast => select_mpi_resources_fast(
            grid,
            snap,
            eligible,
            job.procs,
            job.procs,
            || TreeBcastPrefix::new(grid, snap, job.flops, job.bcast_bytes),
            tune.workers,
        ),
    }
}

/// Run the full service experiment: generate the stream, serve it to
/// drain, return the ledgers and the service-level metrics.
pub fn run_service_experiment(cfg: ServiceConfig) -> ServiceResult {
    let grid = service_grid(cfg.hosts, cfg.clusters, cfg.cores_per_host);
    let mut eng = Engine::new(grid.clone());
    eng.apply_tune(cfg.tune);
    eng.set_obs(cfg.obs.clone());

    let out: Arc<Mutex<Option<ServiceResult>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let cfg2 = cfg.clone();
    let grid2 = grid.clone();
    eng.spawn("svc-dispatcher", HostId(0), move |ctx| {
        let r = dispatcher(ctx, &grid2, &cfg2);
        *out2.lock() = Some(r);
    });
    let report = eng.run_until(cfg.t_max * 1.2);
    let mut r = out.lock().take().expect("service run completed");
    r.report = report;
    cfg.obs.gauge_set("svc.end_time", r.end_time);
    r
}

fn dispatcher(ctx: &mut Ctx, grid: &Grid, cfg: &ServiceConfig) -> ServiceResult {
    let n_hosts = grid.hosts().len();
    let jobs = generate_workload(&cfg.workload);
    let mut accounting = Accounting::new(cfg.workload.n_tenants);

    // NWS seeded with a short deterministic history per host so the
    // ensemble has something to select predictors on from round one.
    // Epoch mode turns on delta tracking first, so the seed history is
    // already part of the dirty-set baseline bookkeeping.
    let mut nws = NwsService::new();
    if cfg.sched.epoch {
        nws.enable_delta_tracking();
    }
    for i in 0..n_hosts {
        for j in 0..6u64 {
            nws.observe_cpu(HostId(i as u32), 0.55 + 0.4 * jitter(i, j));
        }
    }

    let mut pending = jobs.into_iter().peekable();
    let mut queue: Vec<Queued> = Vec::new();
    // Min-heap on (finish bits, id): finish times are positive finite,
    // so the bit order is the numeric order.
    let mut running: BinaryHeap<Reverse<(u64, u32, usize)>> = BinaryHeap::new();
    let mut running_jobs: Vec<Option<Running>> = Vec::new();
    let mut free_cores: Vec<u32> = grid.hosts().iter().map(|h| h.cores).collect();
    let total_slots: f64 = free_cores.iter().map(|&c| c as f64).sum();

    let mut market = CommodityMarket::default();
    let mut price_series: Vec<f64> = Vec::new();
    let mut waits: Vec<f64> = Vec::new();
    let mut turnarounds: Vec<f64> = Vec::new();
    let mut admitted_ids: Vec<u32> = Vec::new();
    let mut max_in_flight = 0usize;
    let mut peak_queue = 0usize;
    let mut rounds = 0u64;
    let mut auction_rounds = 0u64;
    let mut in_flight = 0usize;
    let mut in_flight_sum = 0.0f64;
    let mut high_water_rounds = 0u64;
    let mut end_time = 0.0f64;
    let mut t_last = 0.0f64;
    let mut epoch_state: Option<EpochState> = None;

    // Lifecycle spans use only timestamps the decisions already computed
    // (round time, submit time, modeled finish) — no clock reads, so the
    // stream cannot perturb the run.
    let jspan =
        |job: &Job, phase: JobPhase, detail: Option<&'static str>, t0: f64, t1: f64, v: f64| {
            cfg.spans.push(JobSpan {
                job: job.id,
                tenant: job.tenant,
                phase,
                detail,
                t0,
                t1,
                value: v,
            });
        };

    loop {
        let t = ctx.now();
        if t > cfg.t_max {
            break;
        }
        t_last = t;

        // 1. Retire finished jobs.
        while let Some(&Reverse((fbits, _id, slot))) = running.peek() {
            if f64::from_bits(fbits) > t {
                break;
            }
            running.pop();
            let run = running_jobs[slot].take().expect("slot occupied");
            for &h in &run.hosts {
                free_cores[h.0 as usize] += 1;
                if free_cores[h.0 as usize] == 1 {
                    // 0 → 1: the host just became eligible again.
                    if let Some(st) = epoch_state.as_mut() {
                        st.plan.set_host_free(h, true);
                    }
                }
            }
            in_flight -= 1;
            let a = accounting.tenant_mut(run.job.tenant);
            a.completed += 1;
            a.host_seconds += run.hosts.len() as f64 * (run.finish_s - run.start_s);
            jspan(
                &run.job,
                JobPhase::Complete,
                None,
                run.finish_s,
                run.finish_s,
                run.finish_s - run.job.submit_s,
            );
            if run.finish_s > run.deadline_abs {
                a.slo_misses += 1;
                jspan(
                    &run.job,
                    JobPhase::SloMiss,
                    None,
                    run.finish_s,
                    run.finish_s,
                    run.finish_s - run.deadline_abs,
                );
            }
            turnarounds.push(run.finish_s - run.job.submit_s);
            end_time = end_time.max(run.finish_s);
        }

        // 2. Pull arrivals into the queue.
        while let Some(j) = pending.peek() {
            if j.submit_s > t {
                break;
            }
            let job = pending.next().expect("peeked");
            accounting.tenant_mut(job.tenant).submitted += 1;
            let deadline_abs = job.submit_s + job.deadline_s;
            jspan(
                &job,
                JobPhase::Submit,
                None,
                job.submit_s,
                job.submit_s,
                deadline_abs,
            );
            queue.push(Queued { job, deadline_abs });
        }
        peak_queue = peak_queue.max(queue.len());

        if queue.is_empty() && running.is_empty() && pending.peek().is_none() {
            break;
        }

        rounds += 1;

        // 3. Observe the grid's weather (occupancy-coupled) and freeze
        // one snapshot for every decision this round.
        for (i, &free) in free_cores.iter().enumerate().take(n_hosts) {
            let free_frac = free as f64 / grid.hosts()[i].cores.max(1) as f64;
            let avail = (0.35 + 0.6 * free_frac) * (0.7 + 0.3 * jitter(i, rounds));
            nws.observe_cpu(HostId(i as u32), avail);
        }
        // Epoch mode captures incrementally (bit-identical to a full
        // capture — the delta-capture contract) and repairs the
        // persistent index from the same dirty set; the reference path
        // re-captures from scratch. Both serve the identical snapshot.
        let snap = if cfg.sched.epoch {
            let dirty = nws.dirty_hosts();
            let net_dirty = nws.has_dirty_network();
            match epoch_state.as_mut() {
                None => {
                    let snap = ForecastSnapshot::capture_sync(grid, &mut nws);
                    epoch_state = Some(EpochState {
                        index: SnapshotIndex::build(grid, &snap),
                        plan: MappingPlan::new(grid, &free_cores),
                        prev_snap: snap.clone(),
                    });
                    snap
                }
                Some(st) => {
                    let snap = ForecastSnapshot::capture_delta(grid, &mut nws, &st.prev_snap);
                    let rep = st.index.repair(grid, &snap, &dirty);
                    st.plan.note_repair(rep);
                    st.plan.on_weather(&dirty, net_dirty);
                    st.prev_snap = snap.clone();
                    snap
                }
            }
        } else {
            ForecastSnapshot::capture(grid, &nws)
        };

        let free_slots: f64 = free_cores.iter().map(|&c| c as f64).sum();

        // 4. Price the round: supply is the free slots, demand is the
        // queue's budget rates capped by its processor needs.
        let consumers: Vec<Consumer> = queue
            .iter()
            .map(|q| Consumer {
                budget: q.job.budget / q.job.nominal_s(cfg.workload.reference_speed).max(1e-9),
                max_demand: q.job.procs as f64,
            })
            .collect();
        let eq = market.clear(
            &[Producer {
                capacity: free_slots.max(1e-3),
            }],
            &consumers,
            20,
            0.05,
        );
        let price = eq.price.max(cfg.reserve_price);
        market.price = price;
        price_series.push(price);
        cfg.spans.push(JobSpan {
            job: rounds as u32,
            tenant: MARKET_TENANT,
            phase: JobPhase::Price,
            detail: None,
            t0: t,
            t1: t,
            value: price,
        });

        // 5. Admission, earliest absolute deadline first (ids break ties
        // FIFO — they are in submit order).
        let mut order: Vec<usize> = (0..queue.len()).collect();
        order.sort_by(|&a, &b| {
            queue[a]
                .deadline_abs
                .total_cmp(&queue[b].deadline_abs)
                .then(queue[a].job.id.cmp(&queue[b].job.id))
        });

        // Scarcity gate: when the grid is nearly full, the queue head
        // bids for the last slots and only winners may admit.
        let auction_winner: Option<Vec<bool>> =
            if free_slots > AUCTION_EPS && free_slots < cfg.scarcity_slots && !queue.is_empty() {
                auction_rounds += 1;
                let head: Vec<usize> = order.iter().copied().take(128).collect();
                let bidders: Vec<Consumer> = head.iter().map(|&qi| consumers[qi]).collect();
                let outcome = auction_allocate(
                    &[Producer {
                        capacity: free_slots,
                    }],
                    &bidders,
                );
                let mut won = vec![false; queue.len()];
                for (bi, &qi) in head.iter().enumerate() {
                    // A winner must have been sold its whole processor need —
                    // partial lots cannot run an MPI job.
                    won[qi] = outcome.allocations[bi] + AUCTION_EPS >= queue[qi].job.procs as f64;
                }
                Some(won)
            } else {
                None
            };

        let mut admitted_this_round = 0usize;
        let mut decisions_this_round = 0u64;
        let mut still_queued: Vec<bool> = vec![true; queue.len()];
        for &qi in &order {
            let q = &queue[qi];
            // Expired while queued (unaffordable or unplaceable too
            // long): reject — even a zero-duration run would miss now.
            if t >= q.deadline_abs {
                jspan(&q.job, JobPhase::Reject, Some("expired"), t, t, 0.0);
                accounting.tenant_mut(q.job.tenant).rejected += 1;
                still_queued[qi] = false;
                continue;
            }
            if admitted_this_round >= cfg.max_admissions_per_round {
                break;
            }
            if let Some(won) = &auction_winner {
                if !won[qi] {
                    // defer: lost the scarcity auction
                    jspan(&q.job, JobPhase::Defer, Some("auction"), t, t, 0.0);
                    continue;
                }
            }
            // Epoch mode answers the free-host check from the plan's
            // running count and maps through the persistent index + memo;
            // the reference path rebuilds the eligibility list and the
            // walk from scratch. Decisions are bit-identical.
            let mapped = if let Some(st) = epoch_state.as_mut() {
                if st.plan.free_host_count() < q.job.procs {
                    // defer: not enough free hosts anywhere
                    jspan(&q.job, JobPhase::Defer, Some("no-hosts"), t, t, 0.0);
                    continue;
                }
                decisions_this_round += 1;
                st.plan.map(&q.job, &st.index, grid, &snap)
            } else {
                let eligible: Vec<HostId> = (0..n_hosts as u32)
                    .map(HostId)
                    .filter(|h| free_cores[h.0 as usize] > 0)
                    .collect();
                if eligible.len() < q.job.procs {
                    // defer: not enough free hosts anywhere
                    jspan(&q.job, JobPhase::Defer, Some("no-hosts"), t, t, 0.0);
                    continue;
                }
                decisions_this_round += 1;
                map_job(&q.job, grid, &nws, &snap, &eligible, cfg.sched)
            };
            let Some(choice) = mapped else {
                // defer: no cluster offers `procs` free hosts
                jspan(&q.job, JobPhase::Defer, Some("no-cluster"), t, t, 0.0);
                continue;
            };
            jspan(&q.job, JobPhase::Map, None, t, t, choice.predicted);
            let est_finish = t + choice.predicted;
            if est_finish > q.deadline_abs {
                // Deadline-infeasible on the best available placement:
                // running it would burn slots on a guaranteed SLO miss.
                jspan(
                    &q.job,
                    JobPhase::Reject,
                    Some("infeasible"),
                    t,
                    t,
                    est_finish,
                );
                accounting.tenant_mut(q.job.tenant).rejected += 1;
                still_queued[qi] = false;
                continue;
            }
            let cost = price * q.job.procs as f64 * choice.predicted;
            if cost > q.job.budget {
                // defer: market price above the job's budget
                jspan(&q.job, JobPhase::Defer, Some("over-budget"), t, t, cost);
                continue;
            }
            // Admit.
            for &h in &choice.hosts {
                free_cores[h.0 as usize] -= 1;
                if free_cores[h.0 as usize] == 0 {
                    // 1 → 0: the host left the eligible set.
                    if let Some(st) = epoch_state.as_mut() {
                        st.plan.set_host_free(h, false);
                    }
                }
            }
            let a = accounting.tenant_mut(q.job.tenant);
            a.admitted += 1;
            a.spend += cost;
            waits.push(t - q.job.submit_s);
            admitted_ids.push(q.job.id);
            jspan(&q.job, JobPhase::Admit, None, q.job.submit_s, t, cost);
            let finish_s = t + choice.predicted * q.job.runtime_skew;
            jspan(&q.job, JobPhase::Run, None, t, finish_s, choice.predicted);
            let slot = running_jobs.len();
            running.push(Reverse((finish_s.to_bits(), q.job.id, slot)));
            running_jobs.push(Some(Running {
                job: q.job.clone(),
                hosts: choice.hosts,
                start_s: t,
                finish_s,
                deadline_abs: q.deadline_abs,
            }));
            in_flight += 1;
            admitted_this_round += 1;
            still_queued[qi] = false;
        }
        // Decision-cost histogram: mapping decisions computed this round.
        // Both paths attempt the same mappings (the defer/reject logic is
        // identical), so the histogram is path-independent.
        cfg.obs
            .observe("svc.round.decisions", decisions_this_round as f64);
        max_in_flight = max_in_flight.max(in_flight);
        in_flight_sum += in_flight as f64;
        if in_flight >= cfg.high_water_in_flight {
            high_water_rounds += 1;
        }
        let mut keep = still_queued.iter().copied();
        queue.retain(|_| keep.next().expect("one flag per queued job"));

        ctx.sleep(cfg.round_s);
    }

    // Reject whatever never got in before t_max (bounded-run safety).
    for q in &queue {
        jspan(
            &q.job,
            JobPhase::Reject,
            Some("cutoff"),
            t_last,
            t_last,
            0.0,
        );
        accounting.tenant_mut(q.job.tenant).rejected += 1;
    }

    // Metrics.
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let p95_wait_s = percentile(&waits, 0.95);
    let totals = accounting.totals();
    let throughput_per_hour = if end_time > 0.0 {
        totals.completed as f64 / end_time * 3600.0
    } else {
        0.0
    };
    let slo_miss_rate = if totals.completed > 0 {
        totals.slo_misses as f64 / totals.completed as f64
    } else {
        0.0
    };

    accounting.publish(&cfg.obs);
    if let Some(st) = &epoch_state {
        st.plan.publish(&cfg.obs);
    }
    cfg.obs.counter_add("svc.rounds", rounds);
    cfg.obs.counter_add("svc.auction_rounds", auction_rounds);
    cfg.obs.gauge_set("svc.max_in_flight", max_in_flight as f64);
    cfg.obs.gauge_set("svc.price_mean", mean(&price_series));
    cfg.obs.gauge_set("svc.total_slots", total_slots);

    ServiceResult {
        accounts: accounting.accounts().to_vec(),
        totals,
        admitted_ids,
        max_in_flight,
        mean_in_flight: if rounds > 0 {
            in_flight_sum / rounds as f64
        } else {
            0.0
        },
        high_water_rounds,
        peak_queue,
        mean_wait_s: mean(&waits),
        p95_wait_s,
        mean_turnaround_s: mean(&turnarounds),
        throughput_per_hour,
        slo_miss_rate,
        price_mean: mean(&price_series),
        price_volatility: price_volatility(&price_series),
        fairness: accounting.fairness(),
        rounds,
        auction_rounds,
        end_time,
        report: RunReport::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            workload: WorkloadConfig {
                n_jobs: 300,
                n_tenants: 4,
                mean_interarrival_s: 2.0,
                ..WorkloadConfig::default()
            },
            hosts: 64,
            clusters: 4,
            cores_per_host: 2,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn service_drains_and_books_every_job() {
        let r = run_service_experiment(small_cfg());
        let t = &r.totals;
        assert_eq!(t.submitted, 300, "every job entered the queue");
        assert_eq!(
            t.admitted + t.rejected,
            t.submitted,
            "every job was either admitted or rejected: {t:?}"
        );
        assert_eq!(t.completed, t.admitted, "the run drained");
        assert!(t.admitted > 0, "a 64-host grid admits some of 300 jobs");
        assert!(t.host_seconds > 0.0 && t.spend > 0.0);
        assert!(r.max_in_flight >= 1 && r.end_time > 0.0);
        assert!(r.fairness > 0.5, "4 tenants share well: {}", r.fairness);
        assert!(
            r.slo_miss_rate < 0.5,
            "deadline-aware admission keeps most SLOs: {}",
            r.slo_miss_rate
        );
    }

    #[test]
    fn admission_is_budget_and_deadline_aware() {
        // Starve the budgets: nothing should be admitted, everything
        // rejected once deadlines expire — and nothing runs.
        let mut cfg = small_cfg();
        cfg.workload.n_jobs = 60;
        cfg.workload.budget_rate = (1e-6, 2e-6);
        let r = run_service_experiment(cfg);
        assert_eq!(r.totals.admitted, 0, "unaffordable jobs never admit");
        assert_eq!(r.totals.rejected, 60);

        // Impossible deadlines: rejected up front by the estimate.
        let mut cfg = small_cfg();
        cfg.workload.n_jobs = 60;
        cfg.workload.deadline_slack = (1e-4, 2e-4);
        let r = run_service_experiment(cfg);
        assert_eq!(r.totals.admitted, 0, "infeasible deadlines never admit");
        assert_eq!(r.totals.rejected, 60);
    }

    #[test]
    fn spans_do_not_perturb_and_cover_the_lifecycle() {
        // Spans off (the default) vs on: the decision trace and every
        // metric must be bit-identical — recording is observation only.
        let r_off = run_service_experiment(small_cfg());
        let mut cfg = small_cfg();
        cfg.spans = SpanLog::enabled();
        let spans = cfg.spans.clone();
        let r_on = run_service_experiment(cfg);
        assert_eq!(r_off, r_on, "span recording must not perturb the run");

        // The stream is a complete lifecycle ledger: phase counts match
        // the accounting totals exactly.
        let count = |p: JobPhase| spans.phase_spans(p).len() as u64;
        let t = &r_on.totals;
        assert_eq!(count(JobPhase::Submit), t.submitted);
        assert_eq!(count(JobPhase::Admit), t.admitted);
        assert_eq!(count(JobPhase::Run), t.admitted);
        assert_eq!(count(JobPhase::Reject), t.rejected);
        assert_eq!(count(JobPhase::Complete), t.completed);
        assert_eq!(count(JobPhase::SloMiss), t.slo_misses);
        assert_eq!(count(JobPhase::Price), r_on.rounds);

        // Every admitted job's spans chain: Submit.t0 ≤ Admit.t1 =
        // Run.t0 ≤ Run.t1 = its Complete instant, all caller-stamped.
        let runs = spans.phase_spans(JobPhase::Run);
        let completes = spans.phase_spans(JobPhase::Complete);
        for run in &runs {
            assert!(run.t1 >= run.t0);
            let c = completes
                .iter()
                .find(|c| c.job == run.job)
                .expect("drained run completes every admitted job");
            assert_eq!(c.t0.to_bits(), run.t1.to_bits(), "finish stamps agree");
        }
    }

    #[test]
    fn service_round_chrome_trace_is_deterministic_with_metadata() {
        let export = |spans_out: &mut Option<String>| {
            let mut cfg = small_cfg();
            cfg.workload.n_jobs = 60;
            cfg.spans = SpanLog::enabled();
            let spans = cfg.spans.clone();
            run_service_experiment(cfg);
            *spans_out = Some(spans.to_chrome_trace());
        };
        let (mut a, mut b) = (None, None);
        export(&mut a);
        export(&mut b);
        let a = a.unwrap();
        assert_eq!(a, b.unwrap(), "rerun-byte-identical export");
        assert!(a.contains("\"name\":\"process_name\""), "{a}");
        assert!(a.contains("\"name\":\"thread_name\""));
        assert!(a.contains("\"name\":\"tenant 0\""));
        assert!(a.contains("\"name\":\"market\""));
        assert!(a.contains("\"name\":\"Run\""));
        assert!(a.contains("\"name\":\"Price\""));
    }

    #[test]
    fn epoch_path_is_bit_identical_and_counts_its_work() {
        // The tentpole contract: epoch on vs off must agree on every
        // float bit of the result (ServiceResult's PartialEq is bitwise).
        let r_off = run_service_experiment(small_cfg());
        let mut cfg = small_cfg();
        cfg.sched = cfg.sched.with_epoch(true);
        cfg.obs = Obs::enabled();
        let obs = cfg.obs.clone();
        let r_on = run_service_experiment(cfg);
        assert_eq!(r_off, r_on, "epoch mode must not change any decision");
        let json = obs.snapshot().to_json();
        assert!(json.contains("\"svc.epoch.memo_misses\""), "{json}");
        assert!(json.contains("\"svc.epoch.elig_updates\""));
        assert!(json.contains("\"svc.epoch.index_repairs\""));
        assert!(json.contains("\"svc.round.decisions\""));
    }

    #[test]
    fn percentile_matches_the_inline_computation_it_replaced() {
        assert_eq!(percentile(&[], 0.95), 0.0);
        assert_eq!(percentile(&[3.0], 0.95), 3.0);
        let v: Vec<f64> = (0..100).rev().map(|i| i as f64).collect();
        // Nearest-rank on the sorted copy: index round(99 · p).
        assert_eq!(percentile(&v, 0.95), 94.0);
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 1.0), 99.0);
        let with_nan = [2.0, f64::NAN, 1.0];
        // total_cmp files NaN last, so p=0.5 is the finite median.
        assert_eq!(percentile(&with_nan, 0.5), 2.0);
    }

    #[test]
    fn obs_counters_surface_the_ledger() {
        let mut cfg = small_cfg();
        cfg.workload.n_jobs = 100;
        cfg.obs = Obs::enabled();
        let obs = cfg.obs.clone();
        let r = run_service_experiment(cfg);
        let json = obs.snapshot().to_json();
        assert!(json.contains("\"svc.admitted\""), "{json}");
        assert!(json.contains(&format!("\"svc.admitted\": {}", r.totals.admitted)));
        assert!(json.contains("\"svc.rounds\""));
        assert!(json.contains("\"svc.t0.submitted\""));
        assert!(json.contains("\"svc.fairness\""));
    }
}
