//! Seeded deterministic workload generation.
//!
//! A workload is a time-ordered stream of [`Job`]s drawn from the four
//! application shapes the repo emulates end-to-end (QR factorization,
//! N-body, EMAN refinement, parameter-sweep workflow), each with a
//! compute volume, a broadcast volume, a processor count, a tenant, a
//! deadline and a budget. Arrivals follow a Poisson process
//! (exponential interarrivals by inverse CDF).
//!
//! Generation uses a self-contained splitmix64 generator, so a given
//! [`WorkloadConfig`] produces the identical `Vec<Job>` on every run,
//! every platform, and every thread — the root of the service layer's
//! determinism guarantee.

/// splitmix64: tiny, seedable, and stable — no external RNG crates, no
/// platform variance.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)`.
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// The application shape a job emulates. Determines the compute and
/// broadcast volumes and the useful processor range — the same
/// performance-model inputs the end-to-end drivers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// ScaLAPACK QR factorization: large, broadcast-heavy.
    Qr,
    /// N-body: medium compute, light communication.
    Nbody,
    /// EMAN refinement: the largest jobs in the mix.
    Eman,
    /// Parameter-sweep workflow stage: small and plentiful.
    Workflow,
}

impl AppKind {
    const ALL: [AppKind; 4] = [
        AppKind::Qr,
        AppKind::Nbody,
        AppKind::Eman,
        AppKind::Workflow,
    ];

    /// `(flops_lo, flops_hi, bcast_bytes, procs_lo, procs_hi)`.
    fn shape(self) -> (f64, f64, f64, usize, usize) {
        match self {
            AppKind::Qr => (2.0e11, 6.0e11, 1.0e7, 2, 4),
            AppKind::Nbody => (1.0e11, 3.0e11, 4.0e6, 1, 2),
            AppKind::Eman => (4.0e11, 8.0e11, 2.0e7, 2, 4),
            AppKind::Workflow => (0.5e11, 2.0e11, 1.0e6, 1, 2),
        }
    }

    /// Short stable tag for counters and logs.
    pub fn tag(self) -> &'static str {
        match self {
            AppKind::Qr => "qr",
            AppKind::Nbody => "nbody",
            AppKind::Eman => "eman",
            AppKind::Workflow => "workflow",
        }
    }
}

/// One submission in the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Dense id, also the FIFO tiebreaker (ids are in submit order).
    pub id: u32,
    /// Owning tenant, `0..n_tenants`.
    pub tenant: u32,
    /// Application shape.
    pub kind: AppKind,
    /// Processes requested (the mapper picks exactly this many hosts).
    pub procs: usize,
    /// Total compute volume, flop.
    pub flops: f64,
    /// Broadcast volume per sweep of the tree-broadcast model, bytes.
    pub bcast_bytes: f64,
    /// Virtual submission time, seconds.
    pub submit_s: f64,
    /// Absolute deadline: the job must finish by `submit_s + deadline_s`
    /// or it is an SLO miss (or is rejected up front if provably late).
    pub deadline_s: f64,
    /// Total money the tenant will spend on this job.
    pub budget: f64,
    /// Hidden ratio of actual to predicted runtime (prediction error):
    /// the service only learns it when the job finishes.
    pub runtime_skew: f64,
}

impl Job {
    /// Nominal duration at the reference slot rate — the scale deadlines
    /// and budgets are drawn against.
    pub fn nominal_s(&self, reference_speed: f64) -> f64 {
        self.flops / (self.procs as f64 * reference_speed.max(1.0))
    }
}

/// Parameters of the generated stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// RNG seed; everything else being equal, the stream is a pure
    /// function of it.
    pub seed: u64,
    /// Number of jobs submitted.
    pub n_jobs: usize,
    /// Number of tenants sharing the service.
    pub n_tenants: usize,
    /// Mean exponential interarrival, virtual seconds.
    pub mean_interarrival_s: f64,
    /// Reference per-slot rate (flop/s) deadlines/budgets are scaled by;
    /// should approximate the grid's effective per-core speed.
    pub reference_speed: f64,
    /// Deadline slack range `[lo, hi)` as a multiple of nominal duration.
    pub deadline_slack: (f64, f64),
    /// Budget rate range `[lo, hi)` in price units per slot-second; the
    /// drawn rate times nominal slot-seconds is the job's budget. Rates
    /// below the market price make a job unaffordable.
    pub budget_rate: (f64, f64),
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0x5eed_6a0b,
            n_jobs: 2000,
            n_tenants: 8,
            mean_interarrival_s: 0.5,
            reference_speed: 2.5e8,
            deadline_slack: (1.6, 4.0),
            budget_rate: (0.6, 2.2),
        }
    }
}

/// Generate the submission stream: `n_jobs` jobs, time-ordered, ids in
/// submit order.
pub fn generate_workload(cfg: &WorkloadConfig) -> Vec<Job> {
    let mut rng = Rng::new(cfg.seed);
    let mut t = 0.0f64;
    let mut jobs = Vec::with_capacity(cfg.n_jobs);
    for id in 0..cfg.n_jobs {
        // Exponential interarrival by inverse CDF; 1-u keeps ln's
        // argument in (0, 1].
        t += -cfg.mean_interarrival_s * (1.0 - rng.f64()).ln();
        let kind = AppKind::ALL[rng.index(AppKind::ALL.len())];
        let (flo, fhi, bcast, plo, phi) = kind.shape();
        let flops = rng.range(flo, fhi);
        let procs = plo + rng.index(phi - plo + 1);
        let tenant = rng.index(cfg.n_tenants) as u32;
        let nominal = flops / (procs as f64 * cfg.reference_speed);
        let deadline_s = nominal * rng.range(cfg.deadline_slack.0, cfg.deadline_slack.1);
        let budget = nominal * procs as f64 * rng.range(cfg.budget_rate.0, cfg.budget_rate.1);
        let runtime_skew = rng.range(0.85, 1.30);
        jobs.push(Job {
            id: id as u32,
            tenant,
            kind,
            procs,
            flops,
            bcast_bytes: bcast,
            submit_s: t,
            deadline_s,
            budget,
            runtime_skew,
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_a_pure_function_of_the_seed() {
        let cfg = WorkloadConfig {
            n_jobs: 500,
            ..WorkloadConfig::default()
        };
        let a = generate_workload(&cfg);
        let b = generate_workload(&cfg);
        assert_eq!(a, b, "same seed must generate the identical stream");
        let c = generate_workload(&WorkloadConfig {
            seed: cfg.seed + 1,
            ..cfg
        });
        assert_ne!(a, c, "a different seed must change the stream");
    }

    #[test]
    fn workload_is_well_formed() {
        let cfg = WorkloadConfig {
            n_jobs: 1000,
            n_tenants: 5,
            ..WorkloadConfig::default()
        };
        let jobs = generate_workload(&cfg);
        assert_eq!(jobs.len(), 1000);
        let mut last = 0.0;
        let mut kinds = [0usize; 4];
        for j in &jobs {
            assert!(j.submit_s >= last, "arrivals are time-ordered");
            last = j.submit_s;
            assert!(j.procs >= 1 && j.procs <= 4);
            assert!(j.tenant < 5);
            assert!(j.deadline_s > 0.0 && j.budget > 0.0 && j.flops > 0.0);
            assert!((0.85..1.30).contains(&j.runtime_skew));
            kinds[match j.kind {
                AppKind::Qr => 0,
                AppKind::Nbody => 1,
                AppKind::Eman => 2,
                AppKind::Workflow => 3,
            }] += 1;
        }
        assert!(
            kinds.iter().all(|&k| k > 100),
            "all four app kinds appear in the mix: {kinds:?}"
        );
    }
}
