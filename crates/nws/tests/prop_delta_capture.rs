//! Property pin of the delta-capture equivalence: under *any*
//! interleaving of CPU/network observations, no-op observations
//! (re-measuring a value that leaves the served forecast bit-identical)
//! and capture points, a [`ForecastSnapshot::capture_delta`] chain serves
//! bitwise exactly what a fresh full [`ForecastSnapshot::capture`] would
//! serve at every capture point. This is the dirty-set bookkeeping's
//! contract — including the clearing edge cases, where a series goes
//! dirty and then returns to its baseline bits before the next capture.

use grads_nws::{ForecastSnapshot, NwsService};
use grads_sim::prelude::*;
use grads_sim::topology::{GridBuilder, HostSpec};
use proptest::prelude::*;

const HOSTS_PER_CLUSTER: usize = 2;
const CLUSTERS: usize = 3;

fn grid() -> Grid {
    let mut b = GridBuilder::new();
    let mut ids = Vec::new();
    for c in 0..CLUSTERS {
        let id = b.cluster(&format!("C{c}"));
        b.local_link(id, 1e8, 1e-4);
        b.add_hosts(
            id,
            HOSTS_PER_CLUSTER,
            &HostSpec::with_speed(1e8 + 1e7 * c as f64),
        );
        ids.push(id);
    }
    for c in 1..CLUSTERS {
        b.connect(ids[0], ids[c], 1e6 * c as f64, 0.01 * c as f64);
    }
    b.build().unwrap()
}

/// One scripted step. Values are drawn from a tiny palette so that
/// repeated observations frequently reproduce the same forecast bits —
/// the no-op / dirty-clearing paths get exercised, not just the
/// always-dirty path.
#[derive(Debug, Clone)]
enum Op {
    Cpu { host: u8, v: u8 },
    Bandwidth { a: u8, b: u8, v: u8 },
    Latency { a: u8, b: u8, v: u8 },
    Capture,
}

fn op() -> impl Strategy<Value = Op> {
    let n_hosts = (HOSTS_PER_CLUSTER * CLUSTERS) as u8;
    prop_oneof![
        4 => (0..n_hosts, 0u8..4).prop_map(|(host, v)| Op::Cpu { host, v }),
        2 => (0..CLUSTERS as u8, 0..CLUSTERS as u8, 0u8..4)
            .prop_map(|(a, b, v)| Op::Bandwidth { a, b, v }),
        2 => (0..CLUSTERS as u8, 0..CLUSTERS as u8, 0u8..4)
            .prop_map(|(a, b, v)| Op::Latency { a, b, v }),
        1 => Just(Op::Capture),
    ]
}

fn palette(v: u8) -> f64 {
    [0.25, 0.5, 0.75, 0.5][v as usize % 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delta_capture_chain_equals_full_capture(ops in proptest::collection::vec(op(), 1..120)) {
        let g = grid();
        let mut nws = NwsService::new();
        nws.enable_delta_tracking();
        let mut prev = ForecastSnapshot::capture_sync(&g, &mut nws);
        for (step, o) in ops.into_iter().enumerate() {
            match o {
                Op::Cpu { host, v } => nws.observe_cpu(HostId(host as u32), palette(v)),
                Op::Bandwidth { a, b, v } => nws.observe_bandwidth(
                    ClusterId(a as u32),
                    ClusterId(b as u32),
                    1e6 * (1.0 + palette(v)),
                ),
                Op::Latency { a, b, v } => nws.observe_latency(
                    ClusterId(a as u32),
                    ClusterId(b as u32),
                    0.01 * (1.0 + palette(v)),
                ),
                Op::Capture => {
                    let full = ForecastSnapshot::capture(&g, &nws);
                    let delta = ForecastSnapshot::capture_delta(&g, &mut nws, &prev);
                    prop_assert_eq!(
                        full.fingerprint(),
                        delta.fingerprint(),
                        "step {}: delta chain diverged from full capture",
                        step
                    );
                    for h in 0..(HOSTS_PER_CLUSTER * CLUSTERS) as u32 {
                        prop_assert_eq!(
                            full.speed(HostId(h)).to_bits(),
                            delta.speed(HostId(h)).to_bits(),
                            "step {} host {}",
                            step,
                            h
                        );
                    }
                    prop_assert!(nws.dirty_hosts().is_empty(), "capture drains dirty hosts");
                    prev = delta;
                }
            }
        }
        // Final capture: whatever the tail of the script left dirty.
        let full = ForecastSnapshot::capture(&g, &nws);
        let delta = ForecastSnapshot::capture_delta(&g, &mut nws, &prev);
        prop_assert_eq!(full.fingerprint(), delta.fingerprint());
    }
}
