//! Property-based tests of the forecasting ensemble.

use grads_nws::predictors::{Predictor, SlidingMean, SlidingMedian, TrimmedMean};
use grads_nws::Ensemble;
use proptest::prelude::*;

fn series() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, 1..120)
}

proptest! {
    /// Window-based predictors forecast within the range of their window
    /// (means and medians cannot extrapolate beyond observed values).
    #[test]
    fn window_predictors_bounded(vals in series(), k in 1usize..20) {
        let mut mean = SlidingMean::new(k);
        let mut median = SlidingMedian::new(k);
        for &v in &vals {
            mean.update(v);
            median.update(v);
        }
        let window: Vec<f64> = vals.iter().rev().take(k).copied().collect();
        let lo = window.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let m = mean.predict().unwrap();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        let md = median.predict().unwrap();
        prop_assert!(md >= lo - 1e-9 && md <= hi + 1e-9);
    }

    /// The trimmed mean is bounded by the untrimmed window range too.
    #[test]
    fn trimmed_mean_bounded(vals in series()) {
        let mut tm = TrimmedMean::new(9, 2);
        for &v in &vals {
            tm.update(v);
        }
        let window: Vec<f64> = vals.iter().rev().take(9).copied().collect();
        let lo = window.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let p = tm.predict().unwrap();
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    /// The ensemble always produces a forecast after ≥1 measurement, with
    /// non-negative MAE, and is fully deterministic.
    #[test]
    fn ensemble_total_and_deterministic(vals in series()) {
        let run = |vs: &[f64]| {
            let mut e = Ensemble::standard();
            for &v in vs {
                e.update(v);
            }
            e.forecast().unwrap()
        };
        let f1 = run(&vals);
        let f2 = run(&vals);
        prop_assert_eq!(f1.clone(), f2);
        prop_assert!(f1.mae >= 0.0);
        prop_assert!(f1.value.is_finite());
    }

    /// On a constant signal every scored predictor converges to the value
    /// and the winner's MAE is (near) zero.
    #[test]
    fn constant_signal_perfect(v in 0.0f64..1000.0, n in 2usize..60) {
        let mut e = Ensemble::standard();
        for _ in 0..n {
            e.update(v);
        }
        let f = e.forecast().unwrap();
        prop_assert!((f.value - v).abs() < 1e-9);
        prop_assert!(f.mae < 1e-9);
    }

    /// The winning predictor's MAE is minimal among all scored predictors.
    #[test]
    fn winner_has_min_mae(vals in proptest::collection::vec(0.0f64..100.0, 5..80)) {
        let mut e = Ensemble::standard();
        for &v in &vals {
            e.update(v);
        }
        let f = e.forecast().unwrap();
        for (name, mae, _) in e.scores() {
            if mae.is_finite() {
                prop_assert!(f.mae <= mae + 1e-9, "{} beats winner: {} < {}", name, mae, f.mae);
            }
        }
    }
}
