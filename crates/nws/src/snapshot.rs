//! Dense per-epoch forecast snapshots for the scheduler's hot loop.
//!
//! [`NwsService::effective_speed`] runs the whole ensemble battery —
//! twelve predictors, three of which sort a sliding window — on every
//! call. The reference decision path calls it inside every sort
//! comparator and every predictor evaluation, so one scheduling pass over
//! `H` hosts pays `O(H log H + H·K)` ensemble forecasts for `K` candidate
//! prefixes. A [`ForecastSnapshot`] pays the forecast cost **once per
//! host and once per cluster pair** at capture time and then answers
//! every query from a dense array, turning the per-candidate cost into a
//! couple of loads.
//!
//! The snapshot is a pure cache: every value it serves is bit-identical
//! to what the live service would have returned at capture time, so a
//! decision computed against a snapshot equals the decision computed
//! against the service (the property/end-to-end determinism suites pin
//! this). One snapshot per decision epoch — a scheduler `map()` call or a
//! rescheduler monitor poll — is the intended granularity; the grid
//! "weather" cannot change mid-decision anyway because decisions run
//! atomically in virtual time.
//!
//! [`ForecastSource`] abstracts over the live service and a snapshot so
//! performance models (`QrCop`, [`crate::monitor::NwsService`] consumers,
//! the rescheduler's `Reschedulable` trait) can be written once and run
//! against either.

use crate::monitor::NwsService;
use grads_sim::prelude::*;

/// Read-only forecast queries shared by the live [`NwsService`] and a
/// captured [`ForecastSnapshot`]: exactly the two calls the decision path
/// makes per candidate.
pub trait ForecastSource {
    /// Effective compute rate (flop/s) a single new process would see on
    /// `host`: peak speed scaled by forecast CPU availability.
    fn effective_speed(&self, grid: &Grid, host: HostId) -> f64;
    /// Estimated time to move `bytes` from `src` to `dst`, preferring
    /// measured forecasts over the static topology.
    fn transfer_time(&self, grid: &Grid, src: HostId, dst: HostId, bytes: f64) -> f64;
}

impl ForecastSource for NwsService {
    fn effective_speed(&self, grid: &Grid, host: HostId) -> f64 {
        NwsService::effective_speed(self, grid, host)
    }
    fn transfer_time(&self, grid: &Grid, src: HostId, dst: HostId, bytes: f64) -> f64 {
        NwsService::transfer_time(self, grid, src, dst, bytes)
    }
}

/// Densely cached forecasts for one decision epoch.
///
/// Capture is `O(hosts + cluster_pairs)` ensemble forecasts; every query
/// afterwards is an array load. See the module docs for the equivalence
/// contract.
#[derive(Debug, Clone)]
pub struct ForecastSnapshot {
    /// Effective speed per host, indexed by dense `HostId`.
    speeds: Vec<f64>,
    /// Cluster count, for pair indexing.
    n_clusters: usize,
    /// Forecast bandwidth per ordered cluster pair (`None` = unmeasured).
    bandwidth: Vec<Option<f64>>,
    /// Forecast latency per ordered cluster pair (`None` = unmeasured).
    latency: Vec<Option<f64>>,
}

impl ForecastSnapshot {
    /// Capture the current forecasts for every host and cluster pair of
    /// `grid` from `nws`.
    pub fn capture(grid: &Grid, nws: &NwsService) -> Self {
        let speeds = (0..grid.hosts().len() as u32)
            .map(|i| NwsService::effective_speed(nws, grid, HostId(i)))
            .collect();
        let nc = grid.clusters().len();
        let mut bandwidth = vec![None; nc * nc];
        let mut latency = vec![None; nc * nc];
        for a in 0..nc as u32 {
            for b in a..nc as u32 {
                let i = a as usize * nc + b as usize;
                bandwidth[i] = nws
                    .forecast_bandwidth(ClusterId(a), ClusterId(b))
                    .map(|f| f.value);
                latency[i] = nws
                    .forecast_latency(ClusterId(a), ClusterId(b))
                    .map(|f| f.value);
            }
        }
        ForecastSnapshot {
            speeds,
            n_clusters: nc,
            bandwidth,
            latency,
        }
    }

    /// Full capture that also synchronizes the service's delta-tracking
    /// baseline: after this call the dirty sets are empty and a later
    /// [`ForecastSnapshot::capture_delta`] against the returned snapshot
    /// is valid. Requires [`NwsService::enable_delta_tracking`]; the
    /// captured values are exactly [`ForecastSnapshot::capture`]'s.
    pub fn capture_sync(grid: &Grid, nws: &mut NwsService) -> Self {
        assert!(
            nws.delta_tracking(),
            "capture_sync requires delta tracking (enable_delta_tracking)"
        );
        let snap = Self::capture(grid, nws);
        nws.sync_clean();
        snap
    }

    /// Incremental capture: re-derive only the series whose served
    /// forecast bits changed since `prev` was captured, reuse `prev`'s
    /// values for everything else, and re-synchronize the baseline.
    ///
    /// `prev` must be the snapshot of the *last* synchronized capture
    /// ([`ForecastSnapshot::capture_sync`] or a previous `capture_delta`)
    /// over the same grid — the dirty sets are deltas against exactly
    /// that baseline. Cost is `O(dirty)` forecast-bit lookups (the
    /// forecasts themselves were already computed at observation time)
    /// plus an `O(hosts)` memcpy, instead of `O(hosts + cluster_pairs)`
    /// ensemble batteries.
    ///
    /// **Bit-identity argument** (pinned by `tests/prop_delta_capture.rs`
    /// and the unit suite): a clean series' ensemble serves bitwise the
    /// same forecast it served at `prev`'s capture, so reusing `prev`'s
    /// cached value reproduces the same `speed × value` product bits a
    /// full capture would compute; a dirty series' latest bits are the
    /// bits the ensemble serves *now* (forecasting is a pure function of
    /// ensemble state, unchanged since the last observation), so the
    /// recomputed entry equals the full capture's too.
    pub fn capture_delta(grid: &Grid, nws: &mut NwsService, prev: &ForecastSnapshot) -> Self {
        let nc = grid.clusters().len();
        assert_eq!(
            prev.speeds.len(),
            grid.hosts().len(),
            "capture_delta: prev snapshot covers a different host set"
        );
        assert_eq!(
            prev.n_clusters, nc,
            "capture_delta: prev snapshot covers a different cluster set"
        );
        let mut snap = prev.clone();
        {
            let t = nws
                .delta_track()
                .expect("capture_delta requires delta tracking (enable_delta_tracking)");
            for &h in &t.dirty_hosts {
                let i = h.0 as usize;
                if i < snap.speeds.len() {
                    let value = f64::from_bits(t.cpu_latest[&h]);
                    snap.speeds[i] = grid.host(h).speed * value;
                }
            }
            let opt = |bits: u64| {
                if bits == crate::monitor::NONE_BITS {
                    None
                } else {
                    Some(f64::from_bits(bits))
                }
            };
            for &(a, b) in &t.dirty_bw {
                if a.0 as usize >= nc || b.0 as usize >= nc {
                    continue;
                }
                let i = a.0 as usize * nc + b.0 as usize;
                snap.bandwidth[i] = opt(t.bw_latest[&(a, b)]);
            }
            for &(a, b) in &t.dirty_lat {
                if a.0 as usize >= nc || b.0 as usize >= nc {
                    continue;
                }
                let i = a.0 as usize * nc + b.0 as usize;
                snap.latency[i] = opt(t.lat_latest[&(a, b)]);
            }
        }
        nws.sync_clean();
        snap
    }

    /// Effective speed of a host, without the `grid` round trip. This is
    /// the sort-comparator fast path.
    #[inline]
    pub fn speed(&self, host: HostId) -> f64 {
        self.speeds[host.0 as usize]
    }

    /// Number of hosts covered.
    pub fn len(&self) -> usize {
        self.speeds.len()
    }

    /// True if the snapshot covers no hosts.
    pub fn is_empty(&self) -> bool {
        self.speeds.is_empty()
    }

    #[inline]
    fn pair(&self, a: ClusterId, b: ClusterId) -> usize {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        lo.0 as usize * self.n_clusters + hi.0 as usize
    }

    /// FNV-1a hash over every captured value's bit pattern. Two snapshots
    /// have equal fingerprints iff they serve bitwise-identical forecasts
    /// (modulo hash collisions), so a decision path can assert cheaply
    /// that two of its halves read the *same* frozen weather — see the
    /// snapshot-sharing regression in `grads-apps`.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |bits: u64| {
            for byte in bits.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for &s in &self.speeds {
            eat(s.to_bits());
        }
        eat(self.n_clusters as u64);
        for opt in self.bandwidth.iter().chain(self.latency.iter()) {
            match opt {
                Some(v) => eat(v.to_bits()),
                None => eat(u64::MAX),
            }
        }
        h
    }
}

/// A one-shot hand-off cell that threads a single [`ForecastSnapshot`]
/// across the two halves of a rescheduling decision.
///
/// The violation handler captures the decision epoch's snapshot, decides,
/// and — when the decision is to migrate — *pins* the very snapshot it
/// decided against. The mapper that places the next incarnation then
/// [`take`](SharedSnapshot::take)s the pinned snapshot instead of
/// capturing its own, so the migrate decision and the landing choice are
/// guaranteed to read identical forecasts. Without the cell each half
/// captures separately and the two can diverge whenever new observations
/// land between the decision and the re-map.
///
/// Clones share the same cell (it is a handle), which is how a COP clone
/// held by a violation handler communicates with the clone held by the
/// application manager.
#[derive(Debug, Clone, Default)]
pub struct SharedSnapshot {
    cell: std::sync::Arc<parking_lot::Mutex<Option<std::sync::Arc<ForecastSnapshot>>>>,
}

impl SharedSnapshot {
    /// An empty cell: the first consumer will capture its own snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin `snap` for the next consumer. Replaces any earlier pin (only
    /// the most recent decision's forecasts are valid to land against).
    pub fn pin(&self, snap: std::sync::Arc<ForecastSnapshot>) {
        *self.cell.lock() = Some(snap);
    }

    /// Consume the pinned snapshot, leaving the cell empty. `None` when
    /// nothing was pinned (the consumer should capture fresh forecasts).
    pub fn take(&self) -> Option<std::sync::Arc<ForecastSnapshot>> {
        self.cell.lock().take()
    }
}

impl ForecastSource for ForecastSnapshot {
    #[inline]
    fn effective_speed(&self, _grid: &Grid, host: HostId) -> f64 {
        self.speeds[host.0 as usize]
    }

    /// Same formula as [`NwsService::transfer_time`], with the forecast
    /// lookups served from the dense cache. The static route is only
    /// consulted when a path was never measured — exactly the values the
    /// live service would fall back to.
    fn transfer_time(&self, grid: &Grid, src: HostId, dst: HostId, bytes: f64) -> f64 {
        if src == dst {
            return 0.0;
        }
        let (sc, dc) = (grid.host(src).cluster, grid.host(dst).cluster);
        let i = self.pair(sc, dc);
        let (bw_fc, lat_fc) = (self.bandwidth[i], self.latency[i]);
        let (bw, lat) = match (bw_fc, lat_fc) {
            (Some(bw), Some(lat)) => (bw, lat),
            _ => {
                // At least one fallback needed: compute the static route
                // once (the live service does this unconditionally; the
                // result is identical either way).
                let route = grid.route(src, dst);
                let static_bw = route
                    .links
                    .iter()
                    .map(|&l| grid.link(l).bandwidth)
                    .fold(f64::INFINITY, f64::min);
                (bw_fc.unwrap_or(static_bw), lat_fc.unwrap_or(route.latency))
            }
        };
        lat + bytes / bw.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::{GridBuilder, HostSpec};

    fn grid2() -> Grid {
        let mut b = GridBuilder::new();
        let x = b.cluster("X");
        b.local_link(x, 1e6, 0.01);
        b.add_hosts(x, 2, &HostSpec::with_speed(100.0));
        let y = b.cluster("Y");
        b.local_link(y, 1e6, 0.01);
        b.add_hosts(y, 2, &HostSpec::with_speed(200.0));
        b.connect(x, y, 0.5e6, 0.03);
        b.build().unwrap()
    }

    /// Every query a snapshot answers is bit-identical to the live
    /// service at capture time, measured paths and fallback paths alike.
    #[test]
    fn snapshot_matches_live_service_bitwise() {
        let g = grid2();
        let mut s = NwsService::new();
        for i in 0..25 {
            s.observe_cpu(HostId(0), 0.3 + 0.01 * (i % 7) as f64);
            s.observe_cpu(HostId(2), 0.9);
        }
        // Only the X→Y pair is measured; X→X falls back to topology.
        for _ in 0..20 {
            s.observe_bandwidth(ClusterId(0), ClusterId(1), 0.25e6);
            s.observe_latency(ClusterId(0), ClusterId(1), 0.1);
        }
        let snap = ForecastSnapshot::capture(&g, &s);
        assert_eq!(snap.len(), 4);
        for h in 0..4u32 {
            let live = s.effective_speed(&g, HostId(h));
            assert_eq!(live.to_bits(), snap.speed(HostId(h)).to_bits(), "host {h}");
            assert_eq!(
                live.to_bits(),
                ForecastSource::effective_speed(&snap, &g, HostId(h)).to_bits()
            );
        }
        for (src, dst) in [(0u32, 1), (0, 2), (2, 0), (1, 3), (0, 0)] {
            let (src, dst) = (HostId(src), HostId(dst));
            for bytes in [1.0, 1e5, 3e7] {
                let live = s.transfer_time(&g, src, dst, bytes);
                let cached = ForecastSource::transfer_time(&snap, &g, src, dst, bytes);
                assert_eq!(
                    live.to_bits(),
                    cached.to_bits(),
                    "{src:?}→{dst:?} {bytes} bytes: {live} vs {cached}"
                );
            }
        }
    }

    /// A snapshot is frozen: later observations move the live service but
    /// not the captured values.
    #[test]
    fn snapshot_is_immutable_under_new_observations() {
        let g = grid2();
        let mut s = NwsService::new();
        for _ in 0..10 {
            s.observe_cpu(HostId(1), 0.5);
        }
        let snap = ForecastSnapshot::capture(&g, &s);
        let before = snap.speed(HostId(1));
        for _ in 0..50 {
            s.observe_cpu(HostId(1), 0.1);
        }
        assert_eq!(before.to_bits(), snap.speed(HostId(1)).to_bits());
        assert!(s.effective_speed(&g, HostId(1)) < before);
    }

    /// Fingerprints separate distinct weather and agree on clones; the
    /// shared cell hands one snapshot from pinning half to taking half.
    #[test]
    fn fingerprint_and_shared_cell() {
        let g = grid2();
        let mut s = NwsService::new();
        for _ in 0..10 {
            s.observe_cpu(HostId(1), 0.5);
        }
        let a = ForecastSnapshot::capture(&g, &s);
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        for _ in 0..50 {
            s.observe_cpu(HostId(1), 0.1);
        }
        let b = ForecastSnapshot::capture(&g, &s);
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "changed forecasts must change the fingerprint"
        );

        let cell = SharedSnapshot::new();
        assert!(cell.take().is_none());
        let shared = std::sync::Arc::new(a);
        cell.pin(shared.clone());
        let other_handle = cell.clone();
        let got = other_handle.take().expect("pinned snapshot is visible");
        assert_eq!(got.fingerprint(), shared.fingerprint());
        assert!(cell.take().is_none(), "take consumes the pin");
    }

    /// Satellite regression: `capture` fills only the upper triangle of
    /// the cluster-pair tables, so reversed-order lookups (`(b, a)` with
    /// `b > a`) must resolve to the same entry as `(a, b)` — including on
    /// a grid whose *static* routes are asymmetric in cost and whose
    /// measurements arrived in reversed order.
    #[test]
    fn reversed_pair_lookups_serve_the_upper_triangle() {
        let g = grid2();
        let mut s = NwsService::new();
        // Observe with the pair reversed relative to storage order.
        for i in 0..15 {
            s.observe_latency(ClusterId(1), ClusterId(0), 0.08 + 0.001 * (i % 3) as f64);
            s.observe_bandwidth(ClusterId(1), ClusterId(0), 0.3e6 + 1e4 * (i % 5) as f64);
        }
        let snap = ForecastSnapshot::capture(&g, &s);
        for bytes in [1.0, 2e5, 7e6] {
            let fwd = ForecastSource::transfer_time(&snap, &g, HostId(0), HostId(2), bytes);
            let rev = ForecastSource::transfer_time(&snap, &g, HostId(2), HostId(0), bytes);
            assert_eq!(fwd.to_bits(), rev.to_bits(), "{bytes} bytes");
            // And both equal the live service's symmetric answer.
            let live = s.transfer_time(&g, HostId(0), HostId(2), bytes);
            assert_eq!(live.to_bits(), fwd.to_bits());
        }
    }

    /// Delta capture: equal to a fresh full capture bitwise, dirty sets
    /// drain on capture, and a clean round reuses everything.
    #[test]
    fn capture_delta_matches_full_capture() {
        let g = grid2();
        let mut s = NwsService::new();
        s.enable_delta_tracking();
        for i in 0..12 {
            s.observe_cpu(HostId(0), 0.4 + 0.02 * (i % 5) as f64);
            s.observe_bandwidth(ClusterId(0), ClusterId(1), 0.2e6 + 1e4 * (i % 3) as f64);
        }
        assert!(!s.dirty_hosts().is_empty(), "measured hosts start dirty");
        let mut prev = ForecastSnapshot::capture_sync(&g, &mut s);
        assert!(s.dirty_hosts().is_empty(), "capture_sync drains the set");
        for round in 0..6 {
            // Touch a changing subset; host 3 never measured at all.
            s.observe_cpu(HostId(round % 3), 0.3 + 0.1 * (round % 4) as f64);
            if round % 2 == 0 {
                s.observe_latency(ClusterId(0), ClusterId(1), 0.05 + 0.01 * round as f64);
            }
            let full = ForecastSnapshot::capture(&g, &s);
            let delta = ForecastSnapshot::capture_delta(&g, &mut s, &prev);
            assert_eq!(
                full.fingerprint(),
                delta.fingerprint(),
                "round {round}: delta capture diverged from full capture"
            );
            assert!(s.dirty_hosts().is_empty());
            prev = delta;
        }
    }

    /// An observation that leaves the served forecast bit-identical must
    /// not dirty its series (the no-op observation edge case), and a
    /// changed-then-restored forecast clears the dirty flag again.
    #[test]
    fn noop_observations_keep_series_clean() {
        let g = grid2();
        let mut s = NwsService::new();
        s.enable_delta_tracking();
        // A long constant history: the winning predictor forecasts the
        // constant exactly, and keeps doing so under more of the same.
        for _ in 0..40 {
            s.observe_cpu(HostId(1), 0.5);
        }
        let prev = ForecastSnapshot::capture_sync(&g, &mut s);
        s.observe_cpu(HostId(1), 0.5);
        assert!(
            s.dirty_hosts().is_empty(),
            "constant-signal observation must not dirty the host"
        );
        let delta = ForecastSnapshot::capture_delta(&g, &mut s, &prev);
        assert_eq!(prev.fingerprint(), delta.fingerprint());
    }

    /// The unmeasured grid: snapshot serves idle speeds and static routes.
    #[test]
    fn unmeasured_snapshot_falls_back_like_the_service() {
        let g = grid2();
        let s = NwsService::new();
        let snap = ForecastSnapshot::capture(&g, &s);
        assert_eq!(snap.speed(HostId(0)), 100.0);
        assert_eq!(snap.speed(HostId(3)), 200.0);
        let live = s.transfer_time(&g, HostId(0), HostId(3), 0.5e6);
        let cached = ForecastSource::transfer_time(&snap, &g, HostId(0), HostId(3), 0.5e6);
        assert_eq!(live.to_bits(), cached.to_bits());
    }
}
