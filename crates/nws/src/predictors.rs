//! Individual time-series predictors, in the style of Wolski's Network
//! Weather Service.
//!
//! Each predictor consumes measurements one at a time and offers a one-step-
//! ahead forecast. None of them is best for every signal; the
//! [`crate::ensemble`] module runs them all and dynamically selects whichever
//! has the lowest historical error — the NWS "dynamic predictor selection"
//! method the GrADS scheduler and rescheduler rely on for `dcost` estimates
//! and resource forecasts.

use std::collections::VecDeque;

/// A one-step-ahead forecaster over a scalar measurement stream.
pub trait Predictor {
    /// Human-readable name, e.g. `"sliding_median(21)"`.
    fn name(&self) -> String;
    /// Incorporate a new measurement.
    fn update(&mut self, value: f64);
    /// Forecast the next measurement; `None` until enough data has arrived.
    fn predict(&self) -> Option<f64>;
}

/// Predicts the most recent measurement.
#[derive(Debug, Default, Clone)]
pub struct LastValue {
    last: Option<f64>,
}

impl Predictor for LastValue {
    fn name(&self) -> String {
        "last_value".into()
    }
    fn update(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
}

/// Predicts the mean of all measurements seen so far.
#[derive(Debug, Default, Clone)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl Predictor for RunningMean {
    fn name(&self) -> String {
        "running_mean".into()
    }
    fn update(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }
    fn predict(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
}

/// Predicts the mean of the last `k` measurements.
#[derive(Debug, Clone)]
pub struct SlidingMean {
    k: usize,
    window: VecDeque<f64>,
    sum: f64,
}

impl SlidingMean {
    /// Window length `k` must be at least 1.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "window length must be >= 1");
        SlidingMean {
            k,
            window: VecDeque::with_capacity(k + 1),
            sum: 0.0,
        }
    }
}

impl Predictor for SlidingMean {
    fn name(&self) -> String {
        format!("sliding_mean({})", self.k)
    }
    fn update(&mut self, value: f64) {
        self.window.push_back(value);
        self.sum += value;
        if self.window.len() > self.k {
            self.sum -= self.window.pop_front().expect("non-empty window");
        }
    }
    fn predict(&self) -> Option<f64> {
        (!self.window.is_empty()).then(|| self.sum / self.window.len() as f64)
    }
}

/// Predicts the median of the last `k` measurements. Robust to the load
/// spikes that plague CPU-availability signals.
#[derive(Debug, Clone)]
pub struct SlidingMedian {
    k: usize,
    window: VecDeque<f64>,
}

impl SlidingMedian {
    /// Window length `k` must be at least 1.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "window length must be >= 1");
        SlidingMedian {
            k,
            window: VecDeque::with_capacity(k + 1),
        }
    }
}

impl Predictor for SlidingMedian {
    fn name(&self) -> String {
        format!("sliding_median({})", self.k)
    }
    fn update(&mut self, value: f64) {
        self.window.push_back(value);
        if self.window.len() > self.k {
            self.window.pop_front();
        }
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.window.iter().copied().collect();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        Some(if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        })
    }
}

/// Exponentially smoothed forecast: `s <- alpha * x + (1 - alpha) * s`.
#[derive(Debug, Clone)]
pub struct ExpSmoothing {
    alpha: f64,
    state: Option<f64>,
}

impl ExpSmoothing {
    /// `alpha` in (0, 1]: larger tracks faster, smaller smooths harder.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        ExpSmoothing { alpha, state: None }
    }
}

impl Predictor for ExpSmoothing {
    fn name(&self) -> String {
        format!("exp_smoothing({})", self.alpha)
    }
    fn update(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => self.alpha * value + (1.0 - self.alpha) * s,
        });
    }
    fn predict(&self) -> Option<f64> {
        self.state
    }
}

/// Mean of the last `k` measurements after discarding the `trim` smallest
/// and `trim` largest.
#[derive(Debug, Clone)]
pub struct TrimmedMean {
    k: usize,
    trim: usize,
    window: VecDeque<f64>,
}

impl TrimmedMean {
    /// Requires `k > 2 * trim` so at least one sample survives trimming.
    pub fn new(k: usize, trim: usize) -> Self {
        assert!(k > 2 * trim, "window must outsize the trimmed tails");
        TrimmedMean {
            k,
            trim,
            window: VecDeque::with_capacity(k + 1),
        }
    }
}

impl Predictor for TrimmedMean {
    fn name(&self) -> String {
        format!("trimmed_mean({},{})", self.k, self.trim)
    }
    fn update(&mut self, value: f64) {
        self.window.push_back(value);
        if self.window.len() > self.k {
            self.window.pop_front();
        }
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.window.iter().copied().collect();
        v.sort_by(f64::total_cmp);
        let t = if v.len() > 2 * self.trim {
            self.trim
        } else {
            0
        };
        let kept = &v[t..v.len() - t];
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }
}

/// The standard NWS-style predictor battery used by [`crate::ensemble`].
/// (`Sync` so forecast state can be shared read-only across scheduler
/// worker threads, e.g. by the parallel candidate scorer.)
pub fn standard_battery() -> Vec<Box<dyn Predictor + Send + Sync>> {
    vec![
        Box::new(LastValue::default()),
        Box::new(RunningMean::default()),
        Box::new(SlidingMean::new(5)),
        Box::new(SlidingMean::new(21)),
        Box::new(SlidingMean::new(51)),
        Box::new(SlidingMedian::new(5)),
        Box::new(SlidingMedian::new(21)),
        Box::new(SlidingMedian::new(51)),
        Box::new(ExpSmoothing::new(0.05)),
        Box::new(ExpSmoothing::new(0.2)),
        Box::new(ExpSmoothing::new(0.5)),
        Box::new(TrimmedMean::new(21, 3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks() {
        let mut p = LastValue::default();
        assert!(p.predict().is_none());
        p.update(3.0);
        p.update(5.0);
        assert_eq!(p.predict(), Some(5.0));
    }

    #[test]
    fn running_mean_averages_everything() {
        let mut p = RunningMean::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            p.update(v);
        }
        assert_eq!(p.predict(), Some(2.5));
    }

    #[test]
    fn sliding_mean_forgets() {
        let mut p = SlidingMean::new(2);
        for v in [10.0, 2.0, 4.0] {
            p.update(v);
        }
        assert_eq!(p.predict(), Some(3.0));
    }

    #[test]
    fn sliding_median_odd_and_even() {
        let mut p = SlidingMedian::new(3);
        p.update(5.0);
        p.update(1.0);
        assert_eq!(p.predict(), Some(3.0));
        p.update(9.0);
        assert_eq!(p.predict(), Some(5.0));
    }

    #[test]
    fn median_robust_to_spike() {
        let mut p = SlidingMedian::new(5);
        for v in [1.0, 1.0, 100.0, 1.0, 1.0] {
            p.update(v);
        }
        assert_eq!(p.predict(), Some(1.0));
    }

    #[test]
    fn exp_smoothing_converges() {
        let mut p = ExpSmoothing::new(0.5);
        p.update(0.0);
        for _ in 0..50 {
            p.update(10.0);
        }
        assert!((p.predict().unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        let mut p = TrimmedMean::new(5, 1);
        for v in [1.0, 1.0, 1.0, 1.0, 1000.0] {
            p.update(v);
        }
        assert_eq!(p.predict(), Some(1.0));
    }

    #[test]
    fn trimmed_mean_small_window_untimmed() {
        let mut p = TrimmedMean::new(5, 2);
        p.update(4.0);
        // Window has one sample; trimming disabled until it outsizes tails.
        assert_eq!(p.predict(), Some(4.0));
    }

    #[test]
    #[should_panic]
    fn sliding_mean_rejects_zero_window() {
        let _ = SlidingMean::new(0);
    }

    #[test]
    fn battery_has_unique_names() {
        let b = standard_battery();
        let mut names: Vec<String> = b.iter().map(|p| p.name()).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
