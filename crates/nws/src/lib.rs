//! # grads-nws — Network Weather Service analog
//!
//! The GrADS scheduler and rescheduler consume resource forecasts from
//! Wolski's Network Weather Service: CPU availability per host, bandwidth
//! and latency per site pair. This crate reproduces the NWS method —
//! a battery of simple time-series predictors ([`predictors`]) combined by
//! *dynamic predictor selection* ([`ensemble`]): every measurement scores
//! all predictors' outstanding forecasts, and the one with the lowest
//! historical mean absolute error supplies the next forecast.
//!
//! [`monitor::NwsService`] packages this per-host / per-site-pair, with
//! sensor helpers that run inside the `grads-sim` emulation.

pub mod ensemble;
pub mod monitor;
pub mod predictors;
pub mod snapshot;

pub use ensemble::{Ensemble, Forecast};
pub use monitor::{
    app_availability_from_probe, availability_from_load, cpu_probe, net_probe, run_cpu_sensor,
    run_net_sensor, NwsService,
};
pub use predictors::{standard_battery, Predictor};
pub use snapshot::{ForecastSnapshot, ForecastSource, SharedSnapshot};
