//! Grid-level weather service: per-host CPU availability and per-site-pair
//! network forecasts, fed by sensors and queried by the scheduler
//! (`dcost`), the rescheduler (remaining-time estimates) and the contract
//! monitor.
//!
//! The service itself is passive storage + forecasting; *sensor* processes
//! running inside the emulation (see [`cpu_probe`]) produce the
//! measurements, exactly as NWS sensor daemons did on the GrADS testbeds.

use crate::ensemble::{Ensemble, Forecast};
use grads_sim::prelude::*;
use std::collections::{BTreeSet, HashMap};

/// The bit pattern a snapshot serves for an unmeasured CPU series: an
/// unmeasured host is assumed idle (`forecast_cpu_or_idle` → `1.0`).
pub(crate) const IDLE_BITS: u64 = 0x3FF0_0000_0000_0000; // 1.0f64.to_bits()

/// Sentinel for "no forecast" on a network series, where `None` is a
/// distinct observable state (it routes queries to the static topology).
pub(crate) const NONE_BITS: u64 = u64::MAX;

/// Orders a cluster pair so (a,b) and (b,a) share one series.
fn pair(a: ClusterId, b: ClusterId) -> (ClusterId, ClusterId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Per-series change tracking for delta snapshot capture.
///
/// `*_latest` holds the bit pattern of the forecast each series would
/// serve *right now* (refreshed on every observation while tracking is
/// on); `*_clean` holds the bits the last synchronized snapshot capture
/// served. A series is **dirty** iff latest ≠ clean — and because the
/// comparison is bitwise on the served forecast, an observation whose
/// ensemble output lands back on the clean bits *removes* the series
/// from the dirty set again. Never-captured series compare against the
/// sentinel the snapshot serves for them ([`IDLE_BITS`] / [`NONE_BITS`]).
#[derive(Default)]
pub(crate) struct DeltaTrack {
    pub(crate) cpu_latest: HashMap<HostId, u64>,
    cpu_clean: HashMap<HostId, u64>,
    pub(crate) bw_latest: HashMap<(ClusterId, ClusterId), u64>,
    bw_clean: HashMap<(ClusterId, ClusterId), u64>,
    pub(crate) lat_latest: HashMap<(ClusterId, ClusterId), u64>,
    lat_clean: HashMap<(ClusterId, ClusterId), u64>,
    pub(crate) dirty_hosts: BTreeSet<HostId>,
    pub(crate) dirty_bw: BTreeSet<(ClusterId, ClusterId)>,
    pub(crate) dirty_lat: BTreeSet<(ClusterId, ClusterId)>,
}

impl DeltaTrack {
    /// Record the latest served bits for one series and flip its dirty
    /// membership against the clean baseline `default` (the sentinel an
    /// uncaptured series serves).
    fn note<K: Ord + std::hash::Hash + Copy>(
        latest: &mut HashMap<K, u64>,
        clean: &HashMap<K, u64>,
        dirty: &mut BTreeSet<K>,
        key: K,
        bits: u64,
        default: u64,
    ) {
        latest.insert(key, bits);
        if bits == clean.get(&key).copied().unwrap_or(default) {
            dirty.remove(&key);
        } else {
            dirty.insert(key);
        }
    }

    /// Mark everything clean: the snapshot just captured serves exactly
    /// the latest bits.
    fn sync(&mut self) {
        self.cpu_clean = self.cpu_latest.clone();
        self.bw_clean = self.bw_latest.clone();
        self.lat_clean = self.lat_latest.clone();
        self.dirty_hosts.clear();
        self.dirty_bw.clear();
        self.dirty_lat.clear();
    }
}

/// The weather service: stores measurement streams and serves forecasts.
#[derive(Default)]
pub struct NwsService {
    cpu: HashMap<HostId, Ensemble>,
    bandwidth: HashMap<(ClusterId, ClusterId), Ensemble>,
    latency: HashMap<(ClusterId, ClusterId), Ensemble>,
    heartbeat: HashMap<HostId, f64>,
    /// Delta-capture tracking; `None` (the default) keeps every
    /// observation on the exact seed code path with zero overhead.
    track: Option<DeltaTrack>,
}

impl NwsService {
    /// Empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a CPU availability measurement in `[0, 1]` for a host
    /// (fraction of one core's peak rate a new process would obtain).
    pub fn observe_cpu(&mut self, host: HostId, availability: f64) {
        let e = self.cpu.entry(host).or_insert_with(Ensemble::standard);
        e.update(availability.clamp(0.0, 1.0));
        if let Some(t) = &mut self.track {
            let bits = e.forecast_value().expect("just updated").to_bits();
            DeltaTrack::note(
                &mut t.cpu_latest,
                &t.cpu_clean,
                &mut t.dirty_hosts,
                host,
                bits,
                IDLE_BITS,
            );
        }
    }

    /// Record an achieved end-to-end bandwidth (bytes/s) between two sites.
    pub fn observe_bandwidth(&mut self, a: ClusterId, b: ClusterId, bytes_per_s: f64) {
        let p = pair(a, b);
        let e = self.bandwidth.entry(p).or_insert_with(Ensemble::standard);
        e.update(bytes_per_s.max(0.0));
        if let Some(t) = &mut self.track {
            let bits = e.forecast_value().expect("just updated").to_bits();
            DeltaTrack::note(
                &mut t.bw_latest,
                &t.bw_clean,
                &mut t.dirty_bw,
                p,
                bits,
                NONE_BITS,
            );
        }
    }

    /// Record a measured one-way latency (seconds) between two sites.
    pub fn observe_latency(&mut self, a: ClusterId, b: ClusterId, seconds: f64) {
        let p = pair(a, b);
        let e = self.latency.entry(p).or_insert_with(Ensemble::standard);
        e.update(seconds.max(0.0));
        if let Some(t) = &mut self.track {
            let bits = e.forecast_value().expect("just updated").to_bits();
            DeltaTrack::note(
                &mut t.lat_latest,
                &t.lat_clean,
                &mut t.dirty_lat,
                p,
                bits,
                NONE_BITS,
            );
        }
    }

    /// Turn on delta-capture tracking: from here on every observation
    /// maintains a dirty set of series whose *served forecast bits*
    /// changed since the last synchronized snapshot capture
    /// (`ForecastSnapshot::capture_sync` / `capture_delta` in this
    /// crate). Tracking is off by default — the seed observation path is
    /// untouched — and turning it on never changes a forecast, only what
    /// bookkeeping an observation does. Idempotent; already-measured
    /// series enter the dirty set (nothing has been captured yet).
    pub fn enable_delta_tracking(&mut self) {
        if self.track.is_some() {
            return;
        }
        let mut t = DeltaTrack::default();
        for (&h, e) in &self.cpu {
            if let Some(v) = e.forecast_value() {
                DeltaTrack::note(
                    &mut t.cpu_latest,
                    &t.cpu_clean,
                    &mut t.dirty_hosts,
                    h,
                    v.to_bits(),
                    IDLE_BITS,
                );
            }
        }
        for (&p, e) in &self.bandwidth {
            if let Some(v) = e.forecast_value() {
                DeltaTrack::note(
                    &mut t.bw_latest,
                    &t.bw_clean,
                    &mut t.dirty_bw,
                    p,
                    v.to_bits(),
                    NONE_BITS,
                );
            }
        }
        for (&p, e) in &self.latency {
            if let Some(v) = e.forecast_value() {
                DeltaTrack::note(
                    &mut t.lat_latest,
                    &t.lat_clean,
                    &mut t.dirty_lat,
                    p,
                    v.to_bits(),
                    NONE_BITS,
                );
            }
        }
        self.track = Some(t);
    }

    /// Whether delta-capture tracking is on.
    pub fn delta_tracking(&self) -> bool {
        self.track.is_some()
    }

    /// Hosts whose served CPU forecast bits differ from the last
    /// synchronized capture, ascending. Empty when tracking is off.
    pub fn dirty_hosts(&self) -> Vec<HostId> {
        match &self.track {
            Some(t) => t.dirty_hosts.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// True when any bandwidth/latency pair's served forecast bits differ
    /// from the last synchronized capture. Coarser than per-pair dirt on
    /// purpose: network forecasts feed cross-cluster transfer estimates,
    /// so epoch drivers conservatively invalidate every cached cluster
    /// score when this trips. `false` when tracking is off.
    pub fn has_dirty_network(&self) -> bool {
        self.track
            .as_ref()
            .is_some_and(|t| !t.dirty_bw.is_empty() || !t.dirty_lat.is_empty())
    }

    /// Read-only view of the tracking state for the snapshot module.
    pub(crate) fn delta_track(&self) -> Option<&DeltaTrack> {
        self.track.as_ref()
    }

    /// Mark every tracked series clean — called by the snapshot module
    /// right after a capture that serves the latest bits.
    pub(crate) fn sync_clean(&mut self) {
        self.track
            .as_mut()
            .expect("sync_clean requires delta tracking")
            .sync();
    }

    /// Record a sensor heartbeat: the sensor on `host` was alive at
    /// virtual time `t`. Stale heartbeats are how the GrADS machinery
    /// suspects host failures (§5 fault-tolerance direction).
    pub fn note_heartbeat(&mut self, host: HostId, t: f64) {
        let e = self.heartbeat.entry(host).or_insert(t);
        *e = e.max(t);
    }

    /// Last heartbeat time of a host's sensor, if any.
    pub fn last_heartbeat(&self, host: HostId) -> Option<f64> {
        self.heartbeat.get(&host).copied()
    }

    /// Hosts whose sensors have reported within `max_age` of `now`
    /// (never-reporting hosts are excluded once any heartbeat exists for
    /// them... they are excluded always: no heartbeat, no liveness proof).
    pub fn live_hosts(&self, now: f64, max_age: f64) -> Vec<HostId> {
        let mut hs: Vec<HostId> = self
            .heartbeat
            .iter()
            .filter(|(_, &t)| now - t <= max_age)
            .map(|(&h, _)| h)
            .collect();
        hs.sort();
        hs
    }

    /// Forecast CPU availability for a host; `None` if never measured.
    pub fn forecast_cpu(&self, host: HostId) -> Option<Forecast> {
        self.cpu.get(&host).and_then(|e| e.forecast())
    }

    /// Forecast CPU availability, assuming an unmeasured host is idle.
    pub fn forecast_cpu_or_idle(&self, host: HostId) -> f64 {
        self.forecast_cpu(host).map(|f| f.value).unwrap_or(1.0)
    }

    /// Forecast bandwidth between two sites; `None` if never measured.
    pub fn forecast_bandwidth(&self, a: ClusterId, b: ClusterId) -> Option<Forecast> {
        self.bandwidth.get(&pair(a, b)).and_then(|e| e.forecast())
    }

    /// Forecast latency between two sites; `None` if never measured.
    pub fn forecast_latency(&self, a: ClusterId, b: ClusterId) -> Option<Forecast> {
        self.latency.get(&pair(a, b)).and_then(|e| e.forecast())
    }

    /// Effective compute rate (flop/s) a single new process would see on a
    /// host right now: peak speed scaled by forecast availability.
    pub fn effective_speed(&self, grid: &Grid, host: HostId) -> f64 {
        grid.host(host).speed * self.forecast_cpu_or_idle(host)
    }

    /// Estimate the time to move `bytes` from `src` to `dst`, preferring
    /// measured forecasts and falling back to the static topology when a
    /// path has never been measured.
    ///
    /// This is the `dcost` building block of the workflow scheduler's rank
    /// function (§3.1): *"NWS is used to obtain an estimate of the current
    /// network latency and bandwidth."*
    pub fn transfer_time(&self, grid: &Grid, src: HostId, dst: HostId, bytes: f64) -> f64 {
        if src == dst {
            return 0.0;
        }
        let (sc, dc) = (grid.host(src).cluster, grid.host(dst).cluster);
        let route = grid.route(src, dst);
        let static_bw = route
            .links
            .iter()
            .map(|&l| grid.link(l).bandwidth)
            .fold(f64::INFINITY, f64::min);
        let bw = self
            .forecast_bandwidth(sc, dc)
            .map(|f| f.value)
            .unwrap_or(static_bw)
            .max(1.0);
        let lat = self
            .forecast_latency(sc, dc)
            .map(|f| f.value)
            .unwrap_or(route.latency);
        lat + bytes / bw
    }
}

/// Availability a single new process would see on a host with `cores` cores
/// and `load` units of competing external load (the analytical form of what
/// [`cpu_probe`] measures empirically).
pub fn availability_from_load(cores: u32, load: f64) -> f64 {
    let claimants = 1.0 + load;
    ((cores as f64) / claimants).min(1.0)
}

/// Correct a probe-measured availability for the observer's own presence
/// when one *application* process is already running on the host.
///
/// A probe on a host with `k` claimants (the probe itself, one app rank,
/// and external load) measures `cores / k`; the availability the app rank
/// alone enjoys is `cores / (k - 1)`. Without this correction a busy-but-
/// unloaded host looks half as fast as an idle one and swap reschedulers
/// thrash, endlessly preferring whichever host they are not using.
pub fn app_availability_from_probe(cores: u32, probe_avail: f64) -> f64 {
    let c = cores as f64;
    let p = probe_avail.clamp(1e-6, 1.0);
    let claimants = c / p; // includes the probe
    let without_probe = (claimants - 1.0).max(1.0);
    (c / without_probe).clamp(p, 1.0)
}

/// Run a periodic CPU sensor daemon inside the emulation: every `period`
/// virtual seconds, probe this host's availability and record it into the
/// shared weather service. Runs until `done()` turns true. This is the
/// emulation analog of an NWS CPU sensor process.
pub fn run_cpu_sensor(
    ctx: &mut Ctx,
    nws: &std::sync::Arc<parking_lot::Mutex<NwsService>>,
    peak_speed: f64,
    probe_flops: f64,
    period: f64,
    done: &(dyn Fn() -> bool + Send + Sync),
) {
    let host = ctx.host();
    while !done() {
        let a = cpu_probe(ctx, peak_speed, probe_flops);
        let t = ctx.now();
        let mut n = nws.lock();
        n.observe_cpu(host, a);
        n.note_heartbeat(host, t);
        drop(n);
        ctx.sleep(period);
    }
}

/// One network probe pair against `peer`: a tiny transfer measures the
/// path latency, a bulk transfer measures achieved bandwidth. Returns
/// `(latency_s, bandwidth_bytes_per_s)`.
pub fn net_probe(ctx: &mut Ctx, peer: HostId, bulk_bytes: f64) -> (f64, f64) {
    let t0 = ctx.now();
    ctx.transfer(peer, 1.0);
    let lat = (ctx.now() - t0).max(0.0);
    let t1 = ctx.now();
    ctx.transfer(peer, bulk_bytes);
    let dt = ctx.now() - t1;
    let bw = if dt > lat {
        bulk_bytes / (dt - lat)
    } else {
        bulk_bytes / dt.max(1e-9)
    };
    (lat, bw)
}

/// Run a periodic network sensor between this host's site and `peer`'s:
/// every `period` virtual seconds, probe and record latency + bandwidth
/// for the `(my_cluster, peer_cluster)` pair. The NWS ran exactly such
/// sensor pairs between sites.
#[allow(clippy::too_many_arguments)]
pub fn run_net_sensor(
    ctx: &mut Ctx,
    nws: &std::sync::Arc<parking_lot::Mutex<NwsService>>,
    my_cluster: ClusterId,
    peer: HostId,
    peer_cluster: ClusterId,
    bulk_bytes: f64,
    period: f64,
    done: &(dyn Fn() -> bool + Send + Sync),
) {
    while !done() {
        let (lat, bw) = net_probe(ctx, peer, bulk_bytes);
        let mut n = nws.lock();
        n.observe_latency(my_cluster, peer_cluster, lat);
        n.observe_bandwidth(my_cluster, peer_cluster, bw);
        drop(n);
        ctx.sleep(period);
    }
}

/// Run one CPU sensor probe inside the emulation: execute a small compute
/// burst, time it in virtual time, and return the measured availability
/// (achieved rate over peak rate). `peak_speed` is the host's nominal
/// per-core flop rate; `probe_flops` trades probe cost against resolution.
pub fn cpu_probe(ctx: &mut Ctx, peak_speed: f64, probe_flops: f64) -> f64 {
    let t0 = ctx.now();
    ctx.compute(probe_flops);
    let dt = ctx.now() - t0;
    if dt <= 0.0 {
        return 1.0;
    }
    (probe_flops / dt / peak_speed).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::{GridBuilder, HostSpec};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn grid2() -> Grid {
        let mut b = GridBuilder::new();
        let x = b.cluster("X");
        b.local_link(x, 1e6, 0.01);
        b.add_hosts(x, 1, &HostSpec::with_speed(100.0));
        let y = b.cluster("Y");
        b.local_link(y, 1e6, 0.01);
        b.add_hosts(y, 1, &HostSpec::with_speed(100.0));
        b.connect(x, y, 0.5e6, 0.03);
        b.build().unwrap()
    }

    #[test]
    fn transfer_time_falls_back_to_topology() {
        let g = grid2();
        let s = NwsService::new();
        let t = s.transfer_time(&g, HostId(0), HostId(1), 0.5e6);
        // bottleneck 0.5 MB/s, latency 0.01+0.03+0.01.
        assert!((t - (0.05 + 1.0)).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn transfer_time_prefers_measurements() {
        let g = grid2();
        let mut s = NwsService::new();
        for _ in 0..20 {
            s.observe_bandwidth(ClusterId(0), ClusterId(1), 0.25e6);
            s.observe_latency(ClusterId(0), ClusterId(1), 0.1);
        }
        let t = s.transfer_time(&g, HostId(0), HostId(1), 0.5e6);
        assert!((t - (0.1 + 2.0)).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn same_host_transfer_is_free() {
        let g = grid2();
        let s = NwsService::new();
        assert_eq!(s.transfer_time(&g, HostId(0), HostId(0), 1e9), 0.0);
    }

    #[test]
    fn unmeasured_host_assumed_idle() {
        let g = grid2();
        let s = NwsService::new();
        assert_eq!(s.effective_speed(&g, HostId(0)), 100.0);
    }

    #[test]
    fn cpu_observations_flow_into_effective_speed() {
        let g = grid2();
        let mut s = NwsService::new();
        for _ in 0..30 {
            s.observe_cpu(HostId(0), 0.5);
        }
        assert!((s.effective_speed(&g, HostId(0)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn availability_formula() {
        assert_eq!(availability_from_load(1, 0.0), 1.0);
        assert_eq!(availability_from_load(1, 1.0), 0.5);
        assert_eq!(availability_from_load(2, 1.0), 1.0);
        assert_eq!(availability_from_load(2, 3.0), 0.5);
    }

    #[test]
    fn pair_is_symmetric() {
        let mut s = NwsService::new();
        s.observe_latency(ClusterId(1), ClusterId(0), 0.5);
        assert!(s.forecast_latency(ClusterId(0), ClusterId(1)).is_some());
    }

    #[test]
    fn net_sensor_measures_wan_path() {
        let g = grid2();
        let mut eng = Engine::new(g.clone());
        let nws = Arc::new(Mutex::new(NwsService::new()));
        let nws2 = nws.clone();
        let rounds = Arc::new(Mutex::new(0u32));
        let rounds2 = rounds.clone();
        let peer = HostId(1);
        eng.spawn("net-sensor", HostId(0), move |ctx| {
            let done = move || {
                let mut r = rounds2.lock();
                *r += 1;
                *r > 5
            };
            run_net_sensor(
                ctx,
                &nws2,
                ClusterId(0),
                peer,
                ClusterId(1),
                1e5,
                1.0,
                &done,
            );
        });
        eng.run();
        let n = nws.lock();
        let lat = n
            .forecast_latency(ClusterId(0), ClusterId(1))
            .unwrap()
            .value;
        let bw = n
            .forecast_bandwidth(ClusterId(0), ClusterId(1))
            .unwrap()
            .value;
        // True path: 0.01 + 0.03 + 0.01 latency; 0.5 MB/s bottleneck.
        assert!((lat - 0.05).abs() < 0.01, "lat = {lat}");
        assert!((bw - 0.5e6).abs() / 0.5e6 < 0.15, "bw = {bw}");
        // Measured forecasts now drive transfer_time.
        let t = n.transfer_time(&g, HostId(0), HostId(1), 1e6);
        assert!((t - (0.05 + 2.0)).abs() < 0.3, "t = {t}");
    }

    #[test]
    fn probe_measures_loaded_host() {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        let hs = b.add_hosts(c, 1, &HostSpec::with_speed(100.0));
        let g = b.build().unwrap();
        let mut eng = Engine::new(g);
        eng.add_load_window(hs[0], 0.0, None, 1.0);
        let out = Arc::new(Mutex::new(0.0f64));
        let out2 = out.clone();
        eng.spawn("sensor", hs[0], move |ctx| {
            let a = cpu_probe(ctx, 100.0, 10.0);
            *out2.lock() = a;
        });
        eng.run();
        assert!((*out.lock() - 0.5).abs() < 1e-9);
    }
}
