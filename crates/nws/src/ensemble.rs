//! Dynamic predictor selection: run the whole predictor battery, track each
//! predictor's historical error, and forecast with the current best.
//!
//! This is the method the Network Weather Service uses to stay accurate
//! across wildly different signal regimes (stable LAN bandwidth vs. bursty
//! CPU availability) without per-signal tuning.

use crate::predictors::{standard_battery, Predictor};

/// Forecast plus uncertainty information.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// Predicted next value.
    pub value: f64,
    /// Mean absolute error of the winning predictor over the stream so far.
    pub mae: f64,
    /// Name of the predictor that produced the forecast.
    pub predictor: String,
}

struct Tracked {
    predictor: Box<dyn Predictor + Send + Sync>,
    abs_err_sum: f64,
    sq_err_sum: f64,
    n_scored: u64,
}

/// An ensemble forecaster with NWS-style dynamic predictor selection.
///
/// ```
/// use grads_nws::ensemble::Ensemble;
/// let mut e = Ensemble::standard();
/// for i in 0..100 {
///     e.update(10.0 + if i % 2 == 0 { 0.5 } else { -0.5 });
/// }
/// let f = e.forecast().unwrap();
/// assert!((f.value - 10.0).abs() < 1.0);
/// ```
pub struct Ensemble {
    tracked: Vec<Tracked>,
    n_updates: u64,
    last: Option<f64>,
}

impl Ensemble {
    /// Ensemble over the standard NWS predictor battery.
    pub fn standard() -> Self {
        Self::new(standard_battery())
    }

    /// Ensemble over a custom predictor set.
    pub fn new(predictors: Vec<Box<dyn Predictor + Send + Sync>>) -> Self {
        assert!(!predictors.is_empty(), "ensemble needs predictors");
        Ensemble {
            tracked: predictors
                .into_iter()
                .map(|p| Tracked {
                    predictor: p,
                    abs_err_sum: 0.0,
                    sq_err_sum: 0.0,
                    n_scored: 0,
                })
                .collect(),
            n_updates: 0,
            last: None,
        }
    }

    /// Feed one measurement: score every predictor's outstanding forecast
    /// against it, then let every predictor absorb it.
    pub fn update(&mut self, value: f64) {
        for t in &mut self.tracked {
            if let Some(pred) = t.predictor.predict() {
                let e = pred - value;
                t.abs_err_sum += e.abs();
                t.sq_err_sum += e * e;
                t.n_scored += 1;
            }
            t.predictor.update(value);
        }
        self.n_updates += 1;
        self.last = Some(value);
    }

    /// Number of measurements absorbed.
    pub fn len(&self) -> u64 {
        self.n_updates
    }

    /// True if no measurements have been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.n_updates == 0
    }

    /// Most recent raw measurement.
    pub fn last_measurement(&self) -> Option<f64> {
        self.last
    }

    /// [`Ensemble::forecast`]'s value alone, skipping the predictor-name
    /// allocation — the same winning predictor by the same tie rule, so
    /// the returned value is bit-identical to `forecast().value`. This is
    /// the per-observation fast path of the delta-capture dirty check in
    /// [`crate::monitor::NwsService`].
    pub fn forecast_value(&self) -> Option<f64> {
        let mut best: Option<(f64, f64)> = None; // (mae, predicted)
        for t in &self.tracked {
            let Some(pred) = t.predictor.predict() else {
                continue;
            };
            let mae = if t.n_scored > 0 {
                t.abs_err_sum / t.n_scored as f64
            } else {
                f64::INFINITY
            };
            match best {
                Some((bmae, _)) if mae >= bmae => {}
                _ => best = Some((mae, pred)),
            }
        }
        best.map(|(_, v)| v)
    }

    /// Forecast the next value using the predictor with the lowest mean
    /// absolute error so far. Ties break toward the earlier battery entry
    /// (deterministic). `None` until at least one measurement has arrived.
    pub fn forecast(&self) -> Option<Forecast> {
        let mut best: Option<(f64, &Tracked, f64)> = None;
        for t in &self.tracked {
            let Some(pred) = t.predictor.predict() else {
                continue;
            };
            let mae = if t.n_scored > 0 {
                t.abs_err_sum / t.n_scored as f64
            } else {
                f64::INFINITY
            };
            match best {
                Some((bmae, _, _)) if mae >= bmae => {}
                _ => best = Some((mae, t, pred)),
            }
        }
        best.map(|(mae, t, pred)| Forecast {
            value: pred,
            mae: if mae.is_finite() { mae } else { 0.0 },
            predictor: t.predictor.name(),
        })
    }

    /// Per-predictor `(name, mae, rmse)` diagnostics. Predictors that have
    /// not been scored yet report `NaN`.
    pub fn scores(&self) -> Vec<(String, f64, f64)> {
        self.tracked
            .iter()
            .map(|t| {
                let (mae, rmse) = if t.n_scored > 0 {
                    (
                        t.abs_err_sum / t.n_scored as f64,
                        (t.sq_err_sum / t.n_scored as f64).sqrt(),
                    )
                } else {
                    (f64::NAN, f64::NAN)
                };
                (t.predictor.name(), mae, rmse)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ensemble_has_no_forecast() {
        let e = Ensemble::standard();
        assert!(e.forecast().is_none());
        assert!(e.is_empty());
    }

    #[test]
    fn constant_signal_predicted_exactly() {
        let mut e = Ensemble::standard();
        for _ in 0..50 {
            e.update(7.0);
        }
        let f = e.forecast().unwrap();
        assert!((f.value - 7.0).abs() < 1e-12);
        assert!(f.mae < 1e-12);
    }

    #[test]
    fn step_change_eventually_tracked() {
        let mut e = Ensemble::standard();
        for _ in 0..30 {
            e.update(1.0);
        }
        for _ in 0..100 {
            e.update(9.0);
        }
        let f = e.forecast().unwrap();
        assert!(
            (f.value - 9.0).abs() < 1.0,
            "forecast {} should be near 9 after the step",
            f.value
        );
    }

    #[test]
    fn noisy_signal_prefers_smoothing_over_last_value() {
        // Alternating +-1 around 5: last_value is always 2 off; means are
        // near-perfect. The winner must not be last_value.
        let mut e = Ensemble::standard();
        for i in 0..200 {
            e.update(5.0 + if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let f = e.forecast().unwrap();
        assert_ne!(f.predictor, "last_value");
        assert!((f.value - 5.0).abs() < 0.5);
    }

    #[test]
    fn spiky_signal_prefers_robust_predictor() {
        // Mostly 1.0 with rare huge spikes: medians/trimmed means win over
        // plain means in MAE.
        let mut e = Ensemble::standard();
        for i in 0..300 {
            e.update(if i % 29 == 0 { 50.0 } else { 1.0 });
        }
        let f = e.forecast().unwrap();
        assert!((f.value - 1.0).abs() < 0.5, "forecast {}", f.value);
    }

    #[test]
    fn scores_cover_all_predictors() {
        let mut e = Ensemble::standard();
        for i in 0..60 {
            e.update(i as f64);
        }
        let scores = e.scores();
        assert_eq!(scores.len(), 12);
        for (name, mae, rmse) in scores {
            assert!(mae.is_finite(), "{name} unscored");
            assert!(rmse >= mae * 0.99, "{name}: rmse {rmse} < mae {mae}");
        }
    }

    #[test]
    fn forecast_value_matches_full_forecast_bitwise() {
        let mut e = Ensemble::standard();
        assert!(e.forecast_value().is_none());
        for i in 0..120u32 {
            e.update((i.wrapping_mul(48271) % 89) as f64 * 0.01);
            let full = e.forecast().unwrap().value;
            let fast = e.forecast_value().unwrap();
            assert_eq!(full.to_bits(), fast.to_bits(), "step {i}");
        }
    }

    #[test]
    fn forecast_is_deterministic() {
        let run = || {
            let mut e = Ensemble::standard();
            for i in 0..100u32 {
                e.update((i.wrapping_mul(2654435761).wrapping_mul(i) % 97) as f64);
            }
            e.forecast().unwrap()
        };
        assert_eq!(run(), run());
    }
}
