//! Property-based tests of the numeric applications: factorizations must
//! reconstruct their inputs for arbitrary (size, block, rank-count)
//! combinations, and the stencil solver must be decomposition-invariant.

use grads_apps::jacobi::{jacobi_serial, jacobi_step, JacobiConfig, JacobiState};
use grads_apps::lu::{self, LuLocal};
use grads_apps::qr::{self, QrConfig, QrLocal};
use grads_mpi::launch;
use grads_sim::prelude::*;
use grads_sim::topology::GridBuilder;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

fn grid(p: usize) -> (Grid, Vec<HostId>) {
    let mut b = GridBuilder::new();
    let c = b.cluster("X");
    b.local_link(c, 1e8, 1e-4);
    let hs = b.add_hosts(c, p, &HostSpec::with_speed(1e9));
    (b.build().unwrap(), hs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// QR reconstructs A = Q·R for arbitrary shapes and distributions.
    #[test]
    fn qr_reconstructs(
        n in 8usize..28,
        block in 1usize..6,
        p in 1usize..5,
        seed in 0u64..1000,
    ) {
        let (g, hs) = grid(p);
        let mut eng = Engine::new(g);
        let mut cfg = QrConfig::full(n, block);
        cfg.seed = seed;
        let err = Arc::new(Mutex::new(-1.0f64));
        let err2 = err.clone();
        launch(&mut eng, "qr", &hs, move |ctx, comm| {
            let mut local = QrLocal::generate(&cfg, comm.rank(), comm.size());
            qr::run_qr_rank(ctx, comm, &cfg, &mut local, None, 0);
            if let Some((packed, tau)) = qr::gather_factors(ctx, comm, &cfg, &local) {
                *err2.lock() = qr::verify_reconstruction(&cfg, &packed, &tau);
            }
        });
        eng.run();
        let e = *err.lock();
        prop_assert!((0.0..1e-9).contains(&e), "QR error {}", e);
    }

    /// LU with partial pivoting reconstructs P⁻¹·L·U = A.
    #[test]
    fn lu_reconstructs(
        n in 8usize..28,
        block in 1usize..6,
        p in 1usize..5,
        seed in 0u64..1000,
    ) {
        let (g, hs) = grid(p);
        let mut eng = Engine::new(g);
        let mut cfg = QrConfig::full(n, block);
        cfg.seed = seed;
        let err = Arc::new(Mutex::new(-1.0f64));
        let err2 = err.clone();
        launch(&mut eng, "lu", &hs, move |ctx, comm| {
            let mut local = LuLocal::generate(&cfg, comm.rank(), comm.size());
            lu::run_lu_rank(ctx, comm, &cfg, &mut local, None, 0);
            if let Some((packed, ipiv)) = lu::gather_factors(ctx, comm, &cfg, &local) {
                *err2.lock() = lu::verify_reconstruction(&cfg, &packed, &ipiv);
            }
        });
        eng.run();
        let e = *err.lock();
        prop_assert!((0.0..1e-9).contains(&e), "LU error {}", e);
    }

    /// Jacobi: any decomposition produces the serial field exactly.
    #[test]
    fn jacobi_decomposition_invariant(
        n in 8usize..24,
        iters in 5u64..40,
        p in 1usize..5,
    ) {
        let cfg = JacobiConfig {
            n,
            iters,
            ..Default::default()
        };
        prop_assume!(n - 2 >= p); // every rank needs at least one row
        let serial = jacobi_serial(&cfg);
        let (g, hs) = grid(p);
        let mut eng = Engine::new(g);
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = out.clone();
        let cfg2 = cfg.clone();
        launch(&mut eng, "jac", &hs, move |ctx, comm| {
            let mut st = JacobiState::new(&cfg2, comm.size(), comm.rank());
            while !jacobi_step(ctx, comm, &cfg2, &mut st) {}
            let nn = cfg2.n;
            let (lo, hi) = st.rows;
            let mine: Vec<f64> = st.u[nn..(hi - lo + 1) * nn].to_vec();
            if let Some(chunks) = comm.gather_t(ctx, 0, 8.0 * mine.len() as f64, (lo, mine)) {
                let mut full = vec![0.0; nn * nn];
                full[..nn].fill(cfg2.hot);
                for (lo_r, rows) in chunks {
                    full[lo_r * nn..lo_r * nn + rows.len()].copy_from_slice(&rows);
                }
                *out2.lock() = full;
            }
        });
        eng.run();
        let par = out.lock().clone();
        prop_assert_eq!(par.len(), serial.len());
        for (a, b) in par.iter().zip(&serial) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
