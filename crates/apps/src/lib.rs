//! # grads-apps — the paper's applications
//!
//! * [`qr`] — distributed Householder QR (ScaLAPACK analog) with SRS
//!   checkpointing, for the §4.1 stop/restart experiment;
//! * QR experiment driver, N-body and EMAN to follow.

pub mod eman;
pub mod ft_driver;
pub mod jacobi;
pub mod lu;
pub mod nbody;
pub mod opportunistic_driver;
pub mod psa;
pub mod qr;
pub mod qr_driver;
pub mod wf_exec;

pub use eman::{eman_grid, eman_refinement_loop, eman_workflow, EmanConfig, EmanStages};
pub use ft_driver::{run_ft_experiment, FtExperimentConfig, FtExperimentResult};
pub use jacobi::{jacobi_serial, jacobi_step, JacobiConfig, JacobiState};
pub use lu::{lu_flops, run_lu_rank, LuConfig, LuLocal, LuOutcome};
pub use nbody::{
    nbody_step, run_nbody_experiment, NbodyConfig, NbodyExperimentConfig, NbodyExperimentResult,
    NbodyState,
};
pub use opportunistic_driver::{
    run_opportunistic_experiment, OppExperimentConfig, OppExperimentResult,
};
pub use psa::{
    execute_psa, generate as generate_psa, schedule_psa, PsaConfig, PsaSchedule, PsaStrategy,
    PsaWorkload,
};
pub use qr::{qr_flops, run_qr_rank, QrConfig, QrLocal, QrOutcome};
pub use qr_driver::{
    run_qr_experiment, QrCop, QrExperimentConfig, QrExperimentResult, QrRunning, SnapshotUse,
};
