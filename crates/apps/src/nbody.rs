//! N-body simulation — the iterative application of the §4.2
//! process-swapping experiment.
//!
//! Direct-sum gravitational dynamics with a leapfrog-style integrator.
//! Bodies are partitioned contiguously over the active logical ranks; each
//! iteration every rank computes forces on its slice against a replicated
//! position array (real arithmetic, plus nominal flop charging), integrates,
//! and exchanges updated slices with iteration-tagged messages (swap-world
//! communicators are unordered, so tags carry the ordering).
//!
//! The rank state — positions, its slice's velocities, the iteration
//! counter — is exactly what travels on a process swap.

use grads_mpi::swap::SwapWorld;
use grads_mpi::{launch_swap_world, Comm};
use grads_nws::NwsService;
use grads_reschedule::{run_swap_rescheduler, SwapPolicy};
use grads_sim::prelude::*;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// N-body application configuration.
#[derive(Debug, Clone)]
pub struct NbodyConfig {
    /// Number of bodies.
    pub n_bodies: usize,
    /// Iterations to run.
    pub iters: u64,
    /// Integrator time step.
    pub dt: f64,
    /// Gravitational softening length.
    pub softening: f64,
    /// Virtual flop charge per body-body interaction.
    pub flops_per_pair: f64,
    /// Seed for initial conditions.
    pub seed: u64,
}

impl Default for NbodyConfig {
    fn default() -> Self {
        NbodyConfig {
            n_bodies: 256,
            iters: 100,
            dt: 1e-3,
            softening: 1e-2,
            flops_per_pair: 20.0,
            seed: 11,
        }
    }
}

/// Per-logical-rank state; this is what a swap transfers.
#[derive(Clone)]
pub struct NbodyState {
    /// Current iteration.
    pub iter: u64,
    /// Body range `[lo, hi)` this rank owns.
    pub range: (usize, usize),
    /// All body positions (replicated).
    pub pos: Vec<[f64; 3]>,
    /// Velocities of the owned slice.
    pub vel: Vec<[f64; 3]>,
    /// All body masses (replicated, constant).
    pub mass: Vec<f64>,
}

/// Contiguous partition of `n` bodies over `p` ranks.
pub fn slice_of(n: usize, p: usize, rank: usize) -> (usize, usize) {
    let base = n / p;
    let extra = n % p;
    let lo = rank * base + rank.min(extra);
    let hi = lo + base + usize::from(rank < extra);
    (lo, hi)
}

/// Deterministic initial conditions: a cold uniform cube of unit-mass
/// bodies.
pub fn initial_state(cfg: &NbodyConfig, p: usize, rank: usize) -> NbodyState {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pos = Vec::with_capacity(cfg.n_bodies);
    for _ in 0..cfg.n_bodies {
        pos.push([
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        ]);
    }
    let mass = vec![1.0 / cfg.n_bodies as f64; cfg.n_bodies];
    let range = slice_of(cfg.n_bodies, p, rank);
    NbodyState {
        iter: 0,
        range,
        pos,
        vel: vec![[0.0; 3]; range.1 - range.0],
        mass,
    }
}

/// Accelerations on bodies `[lo, hi)` from all bodies (softened direct
/// sum).
pub fn accelerations(
    pos: &[[f64; 3]],
    mass: &[f64],
    lo: usize,
    hi: usize,
    softening: f64,
) -> Vec<[f64; 3]> {
    let eps2 = softening * softening;
    let mut acc = vec![[0.0f64; 3]; hi - lo];
    for i in lo..hi {
        let pi = pos[i];
        let mut a = [0.0f64; 3];
        for (j, pj) in pos.iter().enumerate() {
            if j == i {
                continue;
            }
            let dx = pj[0] - pi[0];
            let dy = pj[1] - pi[1];
            let dz = pj[2] - pi[2];
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            let inv_r3 = 1.0 / (r2 * r2.sqrt());
            let f = mass[j] * inv_r3;
            a[0] += f * dx;
            a[1] += f * dy;
            a[2] += f * dz;
        }
        acc[i - lo] = a;
    }
    acc
}

/// Total energy (kinetic + potential) of a full state snapshot. For tests:
/// requires all velocities, so it is evaluated in single-rank runs.
pub fn total_energy(pos: &[[f64; 3]], vel: &[[f64; 3]], mass: &[f64], softening: f64) -> f64 {
    let eps2 = softening * softening;
    let mut e = 0.0;
    for (i, v) in vel.iter().enumerate() {
        e += 0.5 * mass[i] * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    }
    for i in 0..pos.len() {
        for j in i + 1..pos.len() {
            let dx = pos[j][0] - pos[i][0];
            let dy = pos[j][1] - pos[i][1];
            let dz = pos[j][2] - pos[i][2];
            let r = (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            e -= mass[i] * mass[j] / r;
        }
    }
    e
}

const TAG_SLICE_NS: u64 = 1 << 30;

/// One iteration: force computation on the owned slice, integration, and
/// slice exchange among the active ranks. Returns `true` when the
/// configured iteration count is reached. Rank 0 traces `("iteration",
/// iter)` — the Figure 4 progress series.
pub fn nbody_step(ctx: &mut Ctx, comm: &mut Comm, cfg: &NbodyConfig, st: &mut NbodyState) -> bool {
    let (lo, hi) = st.range;
    // Real physics.
    let acc = accelerations(&st.pos, &st.mass, lo, hi, cfg.softening);
    for i in lo..hi {
        let a = acc[i - lo];
        let v = &mut st.vel[i - lo];
        v[0] += a[0] * cfg.dt;
        v[1] += a[1] * cfg.dt;
        v[2] += a[2] * cfg.dt;
    }
    let mut my_slice = Vec::with_capacity(hi - lo);
    for i in lo..hi {
        let v = st.vel[i - lo];
        let p = &mut st.pos[i];
        p[0] += v[0] * cfg.dt;
        p[1] += v[1] * cfg.dt;
        p[2] += v[2] * cfg.dt;
        my_slice.push(*p);
    }
    // Virtual cost: every owned body interacts with every other body.
    let pairs = (hi - lo) as f64 * (cfg.n_bodies - 1) as f64;
    comm.compute(ctx, pairs * cfg.flops_per_pair);
    // Slice exchange, iteration-tagged (unordered communicator).
    let p = comm.size();
    if p > 1 {
        let tag = TAG_SLICE_NS + st.iter;
        let bytes = 24.0 * (hi - lo) as f64;
        for r in 0..p {
            if r != comm.rank() {
                comm.isend(
                    ctx,
                    r,
                    tag,
                    bytes,
                    Box::new((comm.rank(), my_slice.clone())),
                );
            }
        }
        for _ in 0..p - 1 {
            // Receive from every peer; source order is fixed for
            // determinism (recv blocks per-source).
            // We must receive per-source because keys are (src, dst, tag).
        }
        for r in 0..p {
            if r == comm.rank() {
                continue;
            }
            let (src, slice): (usize, Vec<[f64; 3]>) = comm.recv_t(ctx, r, tag);
            debug_assert_eq!(src, r);
            let (rlo, rhi) = slice_of(cfg.n_bodies, p, r);
            debug_assert_eq!(rhi - rlo, slice.len());
            st.pos[rlo..rhi].copy_from_slice(&slice);
        }
    }
    if comm.rank() == 0 {
        ctx.trace("iteration", st.iter as f64);
    }
    st.iter += 1;
    st.iter >= cfg.iters
}

/// Configuration of the Figure 4 experiment.
#[derive(Clone)]
pub struct NbodyExperimentConfig {
    /// Application configuration.
    pub app: NbodyConfig,
    /// Active-set size (paper: 3, on UTK).
    pub n_active: usize,
    /// When competing load arrives, virtual seconds (paper: 80).
    pub load_at: f64,
    /// Competing processes added (paper: 2).
    pub load_amount: f64,
    /// Index into the worker host list of the loaded host.
    pub load_host: usize,
    /// Swap policy for the rescheduler.
    pub policy: SwapPolicy,
    /// NWS sensor period, seconds.
    pub sensor_period: f64,
    /// Swap rescheduler decision period, seconds.
    pub resched_period: f64,
    /// Per-rank swap-state size on the wire, bytes.
    pub state_bytes: f64,
    /// Virtual-time cap.
    pub t_max: f64,
}

impl Default for NbodyExperimentConfig {
    fn default() -> Self {
        NbodyExperimentConfig {
            app: NbodyConfig::default(),
            n_active: 3,
            load_at: 80.0,
            load_amount: 2.0,
            load_host: 0,
            policy: SwapPolicy::Greedy { factor: 2.0 },
            sensor_period: 5.0,
            resched_period: 10.0,
            state_bytes: 1e6,
            t_max: 10_000.0,
        }
    }
}

/// Result of the Figure 4 experiment.
#[derive(Debug, Clone)]
pub struct NbodyExperimentResult {
    /// `(virtual time, iteration)` — the Figure 4 series.
    pub progress: Vec<(f64, f64)>,
    /// Swap actuations `(time, logical rank)`.
    pub swaps: Vec<(f64, f64)>,
    /// Completion time of the application.
    pub end_time: f64,
    /// Kernel events processed over the whole run — a cheap fingerprint of
    /// the emulation's work (scaling sweeps track events per simulated
    /// second across topology sizes).
    pub events_processed: u64,
}

/// Run the §4.2.2 process-swapping experiment: the N-body application on
/// `worker_hosts` (first `n_active` active, rest inactive), a monitor host
/// running the NWS-fed swap rescheduler, competing load injected per the
/// configuration.
pub fn run_nbody_experiment(
    grid: Grid,
    worker_hosts: &[HostId],
    monitor_host: HostId,
    ecfg: NbodyExperimentConfig,
) -> NbodyExperimentResult {
    assert!(ecfg.n_active <= worker_hosts.len());
    let mut eng = Engine::new(grid.clone());
    let done = Arc::new(Mutex::new(false));
    let nws = Arc::new(Mutex::new(NwsService::new()));

    // The swap-enabled world.
    let appcfg = ecfg.app.clone();
    let n_active = ecfg.n_active;
    let done_w = done.clone();
    let sw: SwapWorld = launch_swap_world(
        &mut eng,
        "nbody",
        worker_hosts,
        n_active,
        ecfg.state_bytes,
        move |logical| initial_state(&appcfg, n_active, logical),
        {
            let appcfg = ecfg.app.clone();
            move |ctx, comm, st| {
                let fin = nbody_step(ctx, comm, &appcfg, st);
                if fin && comm.rank() == 0 {
                    *done_w.lock() = true;
                }
                fin
            }
        },
    );

    // NWS sensors on every worker host.
    for &h in worker_hosts {
        let nws2 = nws.clone();
        let done2 = done.clone();
        let speed = grid.host(h).speed;
        let period = ecfg.sensor_period;
        eng.spawn(&format!("nws-sensor-{h}"), h, move |ctx| {
            grads_nws::run_cpu_sensor(ctx, &nws2, speed, 1e6, period, &move || *done2.lock());
        });
    }

    // The swap rescheduler (the §4.2 contract-monitor/rescheduler pair).
    {
        let sw2 = sw.clone();
        let nws2 = nws.clone();
        let done2 = done.clone();
        let grid2 = grid.clone();
        let policy = ecfg.policy;
        let period = ecfg.resched_period;
        eng.spawn("swap-rescheduler", monitor_host, move |ctx| {
            run_swap_rescheduler(ctx, &sw2, &grid2, &nws2, policy, period, &move || {
                *done2.lock()
            });
        });
    }

    // Competing load.
    eng.add_load_window(
        worker_hosts[ecfg.load_host],
        ecfg.load_at,
        None,
        ecfg.load_amount,
    );

    let report = eng.run_until(ecfg.t_max);
    let progress = report.trace.series("iteration");
    let swaps = report.trace.series("swap");
    let end_time = progress.last().map(|&(t, _)| t).unwrap_or(report.end_time);
    NbodyExperimentResult {
        progress,
        swaps,
        end_time,
        events_processed: report.events_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_mpi::launch;
    use grads_sim::topology::{microgrid_nbody, GridBuilder, HostSpec};

    fn grid(speeds: &[f64]) -> (Grid, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        b.local_link(c, 1e8, 1e-4);
        let hs: Vec<HostId> = speeds
            .iter()
            .map(|&s| b.add_host(c, &HostSpec::with_speed(s)))
            .collect();
        (b.build().unwrap(), hs)
    }

    #[test]
    fn slices_partition_bodies() {
        for (n, p) in [(10, 3), (9, 3), (7, 4), (1, 1)] {
            let mut covered = 0;
            for r in 0..p {
                let (lo, hi) = slice_of(n, p, r);
                assert!(hi >= lo);
                covered += hi - lo;
                if r > 0 {
                    assert_eq!(lo, slice_of(n, p, r - 1).1);
                }
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn energy_approximately_conserved() {
        let cfg = NbodyConfig {
            n_bodies: 48,
            iters: 200,
            dt: 1e-3,
            ..Default::default()
        };
        let (g, hs) = grid(&[1e12]);
        let mut eng = Engine::new(g);
        let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
        let out2 = out.clone();
        let cfg2 = cfg.clone();
        launch(&mut eng, "nb", &hs, move |ctx, comm| {
            let mut st = initial_state(&cfg2, 1, 0);
            let e0 = total_energy(&st.pos, &st.vel, &st.mass, cfg2.softening);
            while !nbody_step(ctx, comm, &cfg2, &mut st) {}
            let e1 = total_energy(&st.pos, &st.vel, &st.mass, cfg2.softening);
            *out2.lock() = (e0, e1);
        });
        eng.run();
        let (e0, e1) = *out.lock();
        let drift = (e1 - e0).abs() / e0.abs();
        assert!(drift < 0.05, "energy drift {drift} (e0={e0}, e1={e1})");
    }

    #[test]
    fn parallel_matches_serial_trajectory() {
        let cfg = NbodyConfig {
            n_bodies: 30,
            iters: 20,
            ..Default::default()
        };
        let run = |p: usize| {
            let (g, hs) = grid(&vec![1e12; p]);
            let mut eng = Engine::new(g);
            let out = Arc::new(Mutex::new(Vec::new()));
            let out2 = out.clone();
            let cfg2 = cfg.clone();
            launch(&mut eng, "nb", &hs, move |ctx, comm| {
                let mut st = initial_state(&cfg2, comm.size(), comm.rank());
                while !nbody_step(ctx, comm, &cfg2, &mut st) {}
                if comm.rank() == 0 {
                    *out2.lock() = st.pos.clone();
                }
            });
            eng.run();
            let v = out.lock().clone();
            v
        };
        let p1 = run(1);
        let p3 = run(3);
        assert_eq!(p1.len(), p3.len());
        for (a, b) in p1.iter().zip(&p3) {
            for k in 0..3 {
                assert!(
                    (a[k] - b[k]).abs() < 1e-12,
                    "trajectory divergence: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn fig4_shape_load_slows_swap_recovers() {
        let grid = microgrid_nbody();
        // Workers: 3 UTK (active) + 3 UIUC (inactive); monitor on UCSD.
        let mut workers = grid.hosts_of("UTK");
        workers.extend(grid.hosts_of("UIUC"));
        let monitor = grid.hosts_of("UCSD")[0];
        let mut ecfg = NbodyExperimentConfig {
            app: NbodyConfig {
                n_bodies: 96,
                iters: 300,
                // 32 bodies/rank × 95 partners × 2e5 flops ≈ 1.1 s/iter on
                // a 550 MHz host.
                flops_per_pair: 2e5,
                ..Default::default()
            },
            ..Default::default()
        };
        ecfg.t_max = 2000.0;
        let r = run_nbody_experiment(grid, &workers, monitor, ecfg.clone());
        assert!(!r.swaps.is_empty(), "a swap must happen");
        let swap_t = r.swaps[0].0;
        assert!(swap_t > ecfg.load_at, "swap follows the load");
        // Compare progress slopes: pre-load, loaded, post-swap.
        let slope = |t0: f64, t1: f64| {
            let pts: Vec<&(f64, f64)> = r
                .progress
                .iter()
                .filter(|&&(t, _)| t >= t0 && t <= t1)
                .collect();
            if pts.len() < 2 {
                return 0.0;
            }
            let (ta, ia) = *pts[0];
            let (tb, ib) = *pts[pts.len() - 1];
            (ib - ia) / (tb - ta)
        };
        let pre = slope(0.0, ecfg.load_at);
        let during = slope(ecfg.load_at + 5.0, swap_t);
        let after = slope(swap_t + 20.0, r.end_time);
        assert!(
            during < pre * 0.6,
            "load should slow progress: pre {pre}, during {during}"
        );
        assert!(
            after > during * 1.5,
            "swap should restore progress: during {during}, after {after}"
        );
    }

    #[test]
    fn never_policy_is_slower_than_greedy() {
        let grid = microgrid_nbody();
        let mut workers = grid.hosts_of("UTK");
        workers.extend(grid.hosts_of("UIUC"));
        let monitor = grid.hosts_of("UCSD")[0];
        let base = NbodyExperimentConfig {
            app: NbodyConfig {
                n_bodies: 64,
                iters: 400, // ~0.5 s/iter on a 550 MHz host: load at t=80
                // hits mid-run with plenty of work left.
                flops_per_pair: 2e5,
                ..Default::default()
            },
            t_max: 4000.0,
            ..Default::default()
        };
        let mut never = base.clone();
        never.policy = SwapPolicy::Never;
        let r_greedy = run_nbody_experiment(grid.clone(), &workers, monitor, base);
        let r_never = run_nbody_experiment(grid, &workers, monitor, never);
        assert!(!r_greedy.swaps.is_empty());
        assert!(r_never.swaps.is_empty());
        assert!(
            r_greedy.end_time < r_never.end_time * 0.85,
            "greedy {} vs never {}",
            r_greedy.end_time,
            r_never.end_time
        );
    }
}
