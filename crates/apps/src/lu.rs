//! Distributed LU factorization with partial pivoting — a second
//! ScaLAPACK-analog application.
//!
//! The GrADS prototype demonstrated several ScaLAPACK drivers (QR in this
//! paper, LU/`PDGESV` in the companion GrADSoft demonstrations). LU
//! exercises parts of the substrate QR does not: per-step pivot selection
//! (owner-local argmax), row swaps applied by *every* rank, and a packed
//! `L\U` + pivot-vector checkpoint.
//!
//! The matrix is distributed 1-D block-cyclically by columns, like QR;
//! nominal-vs-real cost scaling works the same way (see `qr.rs`).

use crate::qr::QrConfig;
use grads_mpi::{BlockCyclic, Comm};
use grads_sim::prelude::*;
use grads_srs::Srs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// LU reuses the QR configuration shape (sizes, blocks, polling,
/// efficiency); alias for clarity at call sites.
pub type LuConfig = QrConfig;

/// Exact flop count of LU on an n×n matrix (leading term).
pub fn lu_flops(n: f64) -> f64 {
    2.0 / 3.0 * n * n * n
}

/// How a rank's participation ended.
#[derive(Debug, Clone, PartialEq)]
pub enum LuOutcome {
    /// Factorization ran to completion.
    Completed,
    /// Stop flag honoured; state checkpointed at this step.
    Stopped {
        /// Next elimination step on restart.
        step: usize,
    },
}

/// Per-rank state: local columns of the packed `L\U` factorization plus
/// the (replicated) pivot vector.
pub struct LuLocal {
    /// Local columns, column-major, local index order.
    pub a: Vec<f64>,
    /// `ipiv[k]` = global row swapped with row `k` at step `k`.
    pub ipiv: Vec<usize>,
    /// Column distribution.
    pub dist: BlockCyclic,
    /// This rank.
    pub rank: usize,
}

impl LuLocal {
    /// Generate this rank's slice of the deterministic input matrix
    /// (diagonally dominated enough to be comfortably non-singular, but
    /// still requiring pivoting).
    pub fn generate(cfg: &LuConfig, rank: usize, p: usize) -> Self {
        let n = cfg.n_real;
        let dist = cfg.dist(p);
        let ncols = dist.local_len(rank);
        let mut a = vec![0.0; n * ncols];
        for lc in 0..ncols {
            let g = dist.global_index(rank, lc);
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xBEEF + g as u64));
            for r in 0..n {
                a[lc * n + r] = rng.gen_range(-1.0..1.0);
            }
        }
        LuLocal {
            a,
            ipiv: (0..n).collect(),
            dist,
            rank,
        }
    }
}

/// Run the factorization on one rank from `start_step` until completion or
/// an SRS stop request (decision taken collectively, like QR).
#[allow(clippy::needless_range_loop)] // elimination loops read clearest indexed
pub fn run_lu_rank(
    ctx: &mut Ctx,
    comm: &mut Comm,
    cfg: &LuConfig,
    local: &mut LuLocal,
    srs: Option<&Srs>,
    start_step: usize,
) -> LuOutcome {
    let n = cfg.n_real;
    let p = comm.size();
    let fscale = cfg.flop_scale();
    let bscale = cfg.byte_scale();
    for k in 0..n.saturating_sub(1) {
        if k < start_step {
            continue;
        }
        if k % cfg.poll_every.max(1) == 0 {
            if let Some(srs) = srs {
                let stop = if p > 1 {
                    comm.bcast_t(
                        ctx,
                        0,
                        16.0,
                        (comm.rank() == 0).then(|| srs.should_stop() && k > start_step),
                    )
                } else {
                    srs.should_stop() && k > start_step
                };
                if stop {
                    checkpoint(ctx, comm, cfg, local, srs, k);
                    return LuOutcome::Stopped { step: k };
                }
            }
        }
        let owner = local.dist.owner(k);
        let m = n - k - 1; // multiplier count
        let (mut piv, mut mults) = (k, Vec::new());
        if comm.rank() == owner {
            let lc = local.dist.local_index(k);
            let col = &mut local.a[lc * n..(lc + 1) * n];
            // Partial pivot: argmax |col[i]| for i >= k.
            let mut best = k;
            for i in k + 1..n {
                if col[i].abs() > col[best].abs() {
                    best = i;
                }
            }
            piv = best;
            col.swap(k, piv);
            let diag = col[k];
            let mut mv = Vec::with_capacity(m);
            for i in k + 1..n {
                let l = if diag != 0.0 { col[i] / diag } else { 0.0 };
                col[i] = l;
                mv.push(l);
            }
            comm.compute(ctx, (2 * m) as f64 * fscale);
            mults = mv;
        }
        if p > 1 {
            let bytes = 8.0 * (m as f64 + 2.0) * bscale;
            let (pv, mv) = comm.bcast_t(
                ctx,
                owner,
                bytes,
                (comm.rank() == owner).then(|| (piv, mults.clone())),
            );
            piv = pv;
            mults = mv;
        }
        local.ipiv[k] = piv;
        // Every rank: swap rows k <-> piv in its other local columns, then
        // update the trailing submatrix.
        let mut updated = 0usize;
        let ncols = local.dist.local_len(local.rank);
        for lc in 0..ncols {
            let g = local.dist.global_index(local.rank, lc);
            if g == k && comm.rank() == owner {
                continue; // pivot column already swapped + scaled
            }
            let col = &mut local.a[lc * n..(lc + 1) * n];
            if piv != k {
                col.swap(k, piv);
            }
            if g > k {
                let akj = col[k];
                for (i, &l) in mults.iter().enumerate() {
                    col[k + 1 + i] -= l * akj;
                }
                updated += 1;
            }
        }
        comm.compute(ctx, (2 * m * updated) as f64 * fscale);
    }
    LuOutcome::Completed
}

/// Checkpoint matrix, pivots and progress through SRS.
pub fn checkpoint(
    ctx: &mut Ctx,
    comm: &mut Comm,
    cfg: &LuConfig,
    local: &LuLocal,
    srs: &Srs,
    step: usize,
) {
    let p = comm.size();
    let edist = cfg.elem_dist(p);
    srs.store_distributed(
        ctx,
        "LU",
        edist,
        comm.rank(),
        local.a.clone(),
        8.0 * (cfg.n_nominal as f64).powi(2),
    );
    if comm.rank() == 0 {
        srs.store_value(ctx, "ipiv", local.ipiv.clone(), 8.0 * cfg.n_nominal as f64);
        srs.store_value(ctx, "lu_step", step as u64, 8.0);
    }
    srs.rss.ack_stop();
}

/// Restore from an SRS checkpoint under a possibly different rank count.
pub fn restore(
    ctx: &mut Ctx,
    comm: &mut Comm,
    cfg: &LuConfig,
    srs: &Srs,
) -> Option<(LuLocal, usize)> {
    let p = comm.size();
    let edist = cfg.elem_dist(p);
    let a = srs.read_distributed(ctx, "LU", edist, comm.rank())?;
    let ipiv: Vec<usize> = srs.read_value(ctx, "ipiv")?;
    let step: u64 = srs.read_value(ctx, "lu_step")?;
    Some((
        LuLocal {
            a,
            ipiv,
            dist: cfg.dist(p),
            rank: comm.rank(),
        },
        step as usize,
    ))
}

/// Gather the packed factorization on rank 0.
pub fn gather_factors(
    ctx: &mut Ctx,
    comm: &mut Comm,
    cfg: &LuConfig,
    local: &LuLocal,
) -> Option<(Vec<f64>, Vec<usize>)> {
    let n = cfg.n_real;
    let chunks = comm.gather_t(
        ctx,
        0,
        8.0 * local.a.len() as f64,
        (local.rank, local.a.clone()),
    )?;
    let mut full = vec![0.0; n * n];
    for (rank, chunk) in chunks {
        let ncols = local.dist.local_len(rank);
        for lc in 0..ncols {
            let g = local.dist.global_index(rank, lc);
            full[g * n..(g + 1) * n].copy_from_slice(&chunk[lc * n..(lc + 1) * n]);
        }
    }
    Some((full, local.ipiv.clone()))
}

/// Reconstruct `P⁻¹·L·U` from the packed factorization and return the max
/// abs error against the original generated matrix.
pub fn verify_reconstruction(cfg: &LuConfig, packed: &[f64], ipiv: &[usize]) -> f64 {
    let n = cfg.n_real;
    // M = L * U (column-major).
    let mut m = vec![0.0; n * n];
    for c in 0..n {
        for r in 0..n {
            // (L U)[r][c] = sum_k L[r][k] * U[k][c], k <= min(r, c).
            let kmax = r.min(c);
            let mut s = 0.0;
            for k in 0..=kmax {
                let l = if k == r { 1.0 } else { packed[k * n + r] }; // L[r][k]
                let u = packed[c * n + k]; // U[k][c]
                s += l * u;
            }
            m[c * n + r] = s;
        }
    }
    // Undo the row permutation: apply swaps in reverse order.
    for k in (0..n.saturating_sub(1)).rev() {
        let p = ipiv[k];
        if p != k {
            for c in 0..n {
                m.swap(c * n + k, c * n + p);
            }
        }
    }
    let mut max_err = 0.0f64;
    for c in 0..n {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xBEEF + c as u64));
        for r in 0..n {
            let orig: f64 = rng.gen_range(-1.0..1.0);
            max_err = max_err.max((m[c * n + r] - orig).abs());
        }
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_mpi::launch;
    use grads_sim::topology::{GridBuilder, HostSpec};
    use grads_srs::{IbpStorage, Rss};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn grid(n: usize) -> (Grid, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        b.local_link(c, 1e8, 1e-4);
        let hs = b.add_hosts(c, n, &HostSpec::with_speed(1e9));
        (b.build().unwrap(), hs)
    }

    fn run_and_verify(p: usize, n: usize, block: usize) -> f64 {
        let (g, hs) = grid(p);
        let mut eng = Engine::new(g);
        let cfg = LuConfig::full(n, block);
        let err = Arc::new(Mutex::new(-1.0f64));
        let err2 = err.clone();
        launch(&mut eng, "lu", &hs, move |ctx, comm| {
            let mut local = LuLocal::generate(&cfg, comm.rank(), comm.size());
            let out = run_lu_rank(ctx, comm, &cfg, &mut local, None, 0);
            assert_eq!(out, LuOutcome::Completed);
            if let Some((packed, ipiv)) = gather_factors(ctx, comm, &cfg, &local) {
                *err2.lock() = verify_reconstruction(&cfg, &packed, &ipiv);
            }
        });
        eng.run();
        let e = *err.lock();
        assert!(e >= 0.0, "verification ran");
        e
    }

    #[test]
    fn lu_correct_single_rank() {
        let e = run_and_verify(1, 24, 4);
        assert!(e < 1e-10, "max reconstruction error {e}");
    }

    #[test]
    fn lu_correct_multi_rank() {
        let e = run_and_verify(3, 30, 4);
        assert!(e < 1e-10, "max reconstruction error {e}");
    }

    #[test]
    fn lu_correct_awkward_sizes() {
        let e = run_and_verify(4, 29, 3);
        assert!(e < 1e-10, "max reconstruction error {e}");
    }

    #[test]
    fn pivoting_actually_happens() {
        let (g, hs) = grid(2);
        let mut eng = Engine::new(g);
        let cfg = LuConfig::full(20, 4);
        let pivots = Arc::new(Mutex::new(Vec::new()));
        let pivots2 = pivots.clone();
        launch(&mut eng, "lu", &hs, move |ctx, comm| {
            let mut local = LuLocal::generate(&cfg, comm.rank(), comm.size());
            run_lu_rank(ctx, comm, &cfg, &mut local, None, 0);
            if comm.rank() == 0 {
                *pivots2.lock() = local.ipiv.clone();
            }
        });
        eng.run();
        let ipiv = pivots.lock();
        assert!(
            ipiv.iter().enumerate().any(|(k, &p)| p != k),
            "a random matrix should need at least one row swap: {ipiv:?}"
        );
    }

    #[test]
    fn checkpoint_restart_n_to_m() {
        let cfg = LuConfig::full(28, 4);
        let srs = Srs::new("lu-n2m", Rss::new(), IbpStorage::default());
        {
            let (g, hs) = grid(2);
            let mut eng = Engine::new(g);
            let cfg1 = cfg.clone();
            let srs1 = srs.clone();
            srs.rss.request_stop();
            launch(&mut eng, "lu1", &hs, move |ctx, comm| {
                let mut local = LuLocal::generate(&cfg1, comm.rank(), comm.size());
                let out = run_lu_rank(ctx, comm, &cfg1, &mut local, Some(&srs1), 0);
                assert!(matches!(out, LuOutcome::Stopped { .. }));
            });
            eng.run();
        }
        srs.rss.begin_restart();
        let err = Arc::new(Mutex::new(-1.0f64));
        {
            let (g, hs) = grid(4);
            let mut eng = Engine::new(g);
            let cfg2 = cfg.clone();
            let srs2 = srs.clone();
            let err2 = err.clone();
            launch(&mut eng, "lu2", &hs, move |ctx, comm| {
                let (mut local, step) = restore(ctx, comm, &cfg2, &srs2).expect("checkpoint");
                let out = run_lu_rank(ctx, comm, &cfg2, &mut local, Some(&srs2), step);
                assert_eq!(out, LuOutcome::Completed);
                if let Some((packed, ipiv)) = gather_factors(ctx, comm, &cfg2, &local) {
                    *err2.lock() = verify_reconstruction(&cfg2, &packed, &ipiv);
                }
            });
            eng.run();
        }
        let e = *err.lock();
        assert!((0.0..1e-10).contains(&e), "reconstruction error {e}");
    }

    #[test]
    fn lu_flops_formula() {
        assert!((lu_flops(100.0) - 2.0 / 3.0 * 1e6).abs() < 1.0);
    }

    #[test]
    fn nominal_scaling_cubic() {
        let time_for = |nominal: usize| {
            let (g, hs) = grid(1);
            let mut eng = Engine::new(g);
            let mut cfg = LuConfig::full(16, 4);
            cfg.n_nominal = nominal;
            launch(&mut eng, "lu", &hs, move |ctx, comm| {
                let mut local = LuLocal::generate(&cfg, comm.rank(), comm.size());
                run_lu_rank(ctx, comm, &cfg, &mut local, None, 0);
            });
            eng.run().end_time
        };
        let ratio = time_for(64) / time_for(16);
        assert!(ratio > 40.0 && ratio < 80.0, "expected ~64x, got {ratio}");
    }
}
