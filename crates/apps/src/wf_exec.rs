//! Workflow executor: run a scheduled workflow on the emulated grid.
//!
//! The scheduler predicts makespans from performance models; this executor
//! launches one simulated process per component on its assigned host,
//! moves the edge data volumes over the emulated network, and burns the
//! modelled flops — so predicted and "measured" (emulated) makespans can
//! be compared, which is exactly the §3.3 validation: *"Advanced
//! scheduling of workflow applications can be done successfully given ...
//! good node performance estimation."*

use grads_perf::ResourceInfo;
use grads_sched::{Schedule, Workflow};
use grads_sim::prelude::*;
use grads_sim::process::mail_key;
use parking_lot::Mutex;
use std::sync::Arc;

/// Execution record of one component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentRun {
    /// Component index.
    pub component: usize,
    /// When it started computing.
    pub start: f64,
    /// When it finished.
    pub finish: f64,
    /// Host it ran on.
    pub host: HostId,
}

/// Result of executing a workflow.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Per-component execution records, by component index.
    pub runs: Vec<ComponentRun>,
    /// Emulated makespan.
    pub makespan: f64,
}

/// Execute `wf` under `schedule` on the grid. Each component waits for
/// every in-edge's data, computes its modelled flops, then ships each
/// out-edge's data. `resources` must be the same list the schedule indexes
/// into.
pub fn execute_workflow(
    grid: &Grid,
    wf: &Workflow,
    schedule: &Schedule,
    resources: &[ResourceInfo],
) -> ExecutionResult {
    let mut eng = Engine::new(grid.clone());
    let runs: Arc<Mutex<Vec<Option<ComponentRun>>>> = Arc::new(Mutex::new(vec![None; wf.len()]));
    let exec_id = 0xE1EC_u64;
    for c in 0..wf.len() {
        let res = resources[schedule.placement[c]].clone();
        let host = res.host;
        // The component's compute demand, derived from its model on its
        // assigned resource (ecost × effective speed = flops + memory
        // time folded in).
        let flops = wf.components[c].model.ecost(&res) * res.effective_speed();
        // Messages are keyed by the edge's index in `wf.edges`, which is
        // unique per dependence.
        let in_edges: Vec<usize> = wf
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.to == c)
            .map(|(i, _)| i)
            .collect();
        let out_edges: Vec<(usize, f64, HostId)> = wf
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from == c)
            .map(|(i, e)| (i, e.bytes, resources[schedule.placement[e.to]].host))
            .collect();
        let runs2 = runs.clone();
        eng.spawn(&format!("wf-{}", wf.components[c].name), host, move |ctx| {
            // Wait for every input.
            for &edge in &in_edges {
                let key = mail_key(&[exec_id, edge as u64]);
                let _ = ctx.recv(key);
            }
            let start = ctx.now();
            ctx.compute(flops);
            let finish = ctx.now();
            runs2.lock()[c] = Some(ComponentRun {
                component: c,
                start,
                finish,
                host,
            });
            // Ship outputs.
            for &(edge, bytes, to_host) in &out_edges {
                let key = mail_key(&[exec_id, edge as u64]);
                ctx.isend(key, to_host, bytes, Box::new(()));
            }
        });
    }
    let report = eng.run();
    assert!(
        report.unfinished.is_empty(),
        "workflow deadlocked: {:?}",
        report.unfinished
    );
    let runs: Vec<ComponentRun> = runs
        .lock()
        .iter()
        .cloned()
        .map(|r| r.expect("component ran"))
        .collect();
    let makespan = runs.iter().fold(0.0f64, |a, r| a.max(r.finish));
    ExecutionResult { runs, makespan }
}

/// Execute `wf` with **online** (just-in-time) mapping: instead of a
/// precomputed schedule, a coordinator process maps each component when
/// its dependences resolve, to the resource with the earliest finish time
/// under current conditions. This is the dynamic alternative to the
/// paper's static level-by-level mapping — useful as an ablation: static
/// scheduling wins when models are accurate; online mapping adapts when
/// they are not.
pub fn execute_workflow_online(
    grid: &Grid,
    wf: &Workflow,
    resources: &[ResourceInfo],
    nws: &grads_nws::NwsService,
) -> ExecutionResult {
    // Plan greedily with a simulated clock identical to the evaluator's
    // semantics, then execute that placement for the measured result.
    // (A fully reactive coordinator would differ only when runtime
    // conditions drift from the static ones; the emulated grid here is
    // stationary, so just-in-time decisions reduce to greedy EFT order.)
    let order = wf.topo_order().expect("valid workflow");
    let mut ready = vec![0.0f64; resources.len()];
    let mut finish = vec![0.0f64; wf.len()];
    let mut placement = vec![usize::MAX; wf.len()];
    for &c in &order {
        let mut best: Option<(usize, f64, f64)> = None;
        for (r, res) in resources.iter().enumerate() {
            let model = &wf.components[c].model;
            if res.memory < model.min_memory() {
                continue;
            }
            if let Some(a) = model.allowed_archs() {
                if !a.contains(&res.arch) {
                    continue;
                }
            }
            let mut data_ready = 0.0f64;
            for e in wf.preds(c) {
                let tt =
                    nws.transfer_time(grid, resources[placement[e.from]].host, res.host, e.bytes);
                data_ready = data_ready.max(finish[e.from] + tt);
            }
            let start = ready[r].max(data_ready);
            let fin = start + model.ecost(res);
            match best {
                Some((_, _, bf)) if fin >= bf => {}
                _ => best = Some((r, start, fin)),
            }
        }
        let (r, _s, f) = best.expect("schedulable component");
        placement[c] = r;
        finish[c] = f;
        ready[r] = f;
    }
    let schedule = Schedule {
        placement,
        start: vec![0.0; wf.len()],
        finish,
        makespan: ready.iter().fold(0.0f64, |a, &b| a.max(b)),
        strategy: "online-eft".to_string(),
    };
    execute_workflow(grid, wf, &schedule, resources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_nws::NwsService;
    use grads_perf::{FittedModel, OpCountModel};
    use grads_sched::WorkflowScheduler;
    use grads_sim::topology::{GridBuilder, HostSpec};
    use std::sync::Arc as StdArc;

    fn flat(flops: f64, inb: f64, outb: f64) -> StdArc<FittedModel> {
        StdArc::new(FittedModel {
            problem_size: 1.0,
            ops: OpCountModel {
                coeffs: vec![flops],
                degree: 0,
                rms_rel_residual: 0.0,
            },
            mrd: None,
            input_bytes: inb,
            output_bytes: outb,
            min_memory: 0,
            allowed: None,
        })
    }

    fn setup() -> (Grid, Vec<ResourceInfo>) {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        b.local_link(c, 1e8, 1e-4);
        b.add_hosts(c, 4, &HostSpec::with_speed(1e9));
        let grid = b.build().unwrap();
        let nws = NwsService::new();
        let resources = (0..4)
            .map(|i| ResourceInfo::from_grid(&grid, &nws, HostId(i)))
            .collect();
        (grid, resources)
    }

    #[test]
    fn executes_chain_in_order() {
        let (grid, resources) = setup();
        let nws = NwsService::new();
        let mut wf = Workflow::new();
        let a = wf.add_component("a", flat(1e9, 0.0, 1e6));
        let b = wf.add_component("b", flat(2e9, 1e6, 0.0));
        wf.add_edge(a, b, 1e6);
        let (sched, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        let exec = execute_workflow(&grid, &wf, &sched, &resources);
        assert!(exec.runs[1].start >= exec.runs[0].finish);
        // a: 1 s, b: 2 s, plus a small transfer.
        assert!(
            exec.makespan >= 3.0 && exec.makespan < 3.2,
            "{}",
            exec.makespan
        );
    }

    #[test]
    fn fan_executes_in_parallel() {
        let (grid, resources) = setup();
        let nws = NwsService::new();
        let mut wf = Workflow::new();
        let src = wf.add_component("src", flat(1e9, 0.0, 1e6));
        for i in 0..4 {
            let c = wf.add_component(&format!("f{i}"), flat(2e9, 1e6, 0.0));
            wf.add_edge(src, c, 1e6);
        }
        let (sched, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        let exec = execute_workflow(&grid, &wf, &sched, &resources);
        // Perfect serial time would be 1 + 4×2 = 9 s; parallel ≈ 3 s.
        assert!(
            exec.makespan < 4.0,
            "fan did not parallelize: {}",
            exec.makespan
        );
    }

    #[test]
    fn online_executor_matches_static_on_stationary_grid() {
        let (grid, resources) = setup();
        let nws = NwsService::new();
        let mut wf = Workflow::new();
        let src = wf.add_component("src", flat(1e9, 0.0, 1e6));
        for i in 0..6 {
            let c = wf.add_component(&format!("f{i}"), flat(3e9, 1e6, 1e5));
            wf.add_edge(src, c, 1e6);
        }
        let (stat, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        let s_exec = execute_workflow(&grid, &wf, &stat, &resources);
        let o_exec = execute_workflow_online(&grid, &wf, &resources, &nws);
        // On a stationary grid both approaches land close together.
        let rel = (o_exec.makespan - s_exec.makespan).abs() / s_exec.makespan;
        assert!(
            rel < 0.3,
            "online {} vs static {}",
            o_exec.makespan,
            s_exec.makespan
        );
        // And both respect dependences.
        for e in wf.edges.iter() {
            assert!(o_exec.runs[e.to].start >= o_exec.runs[e.from].finish - 1e-9);
        }
    }

    #[test]
    fn measured_close_to_predicted() {
        let (grid, resources) = setup();
        let nws = NwsService::new();
        let mut wf = Workflow::new();
        let a = wf.add_component("a", flat(2e9, 0.0, 1e7));
        let b1 = wf.add_component("b1", flat(4e9, 1e7, 1e6));
        let b2 = wf.add_component("b2", flat(4e9, 1e7, 1e6));
        let z = wf.add_component("z", flat(1e9, 2e6, 0.0));
        wf.add_edge(a, b1, 1e7);
        wf.add_edge(a, b2, 1e7);
        wf.add_edge(b1, z, 1e6);
        wf.add_edge(b2, z, 1e6);
        let (sched, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        let exec = execute_workflow(&grid, &wf, &sched, &resources);
        let rel = (exec.makespan - sched.makespan).abs() / sched.makespan;
        assert!(
            rel < 0.25,
            "measured {} vs predicted {} (rel {rel})",
            exec.makespan,
            sched.makespan
        );
    }
}
