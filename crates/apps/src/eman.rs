//! The EMAN refinement workflow (§3.3).
//!
//! EMAN reconstructs 3-D models of single particles from electron
//! micrographs; the compute-heavy *refinement* loop is the workflow GrADS
//! scheduled at SC2003. The pipeline (paper Figure 2) is a linear graph in
//! which two stages parallelize:
//!
//! ```text
//! proc3d → project3d → [classesbymra × P] → [classalign2 × C] → make3d → eotest
//! ```
//!
//! * `project3d` generates `n_classes` projections of the preliminary
//!   model;
//! * `classesbymra` — the dominant cost — matches every particle against
//!   every projection; it splits over particle chunks;
//! * `classalign2` aligns and averages each class; it splits over classes;
//! * `make3d` reconstructs the refined 3-D model.
//!
//! Flop counts and data volumes are calibrated to the magnitudes reported
//! for EMAN on 2003 hardware (minutes-to-hours per stage); the absolute
//! values matter less than their ratios, which drive the scheduling
//! decisions. `classesbymra`'s inner loop is classic dense correlation, so
//! it also carries an MRD cache model from a blocked-sweep trace.

use grads_perf::mrd::{traces, MrdHistogram};
use grads_perf::{FittedModel, MrdModel, OpCountModel};
use grads_sched::Workflow;
use grads_sim::prelude::*;
use grads_sim::topology::GridBuilder;
use std::sync::Arc;

/// EMAN refinement configuration.
#[derive(Debug, Clone)]
pub struct EmanConfig {
    /// Particle images in the data set.
    pub n_particles: usize,
    /// Class averages (projection directions).
    pub n_classes: usize,
    /// Pixels per image edge.
    pub image_size: usize,
    /// Parallel pieces of `classesbymra`.
    pub classify_par: usize,
    /// Parallel pieces of `classalign2`.
    pub align_par: usize,
}

impl Default for EmanConfig {
    fn default() -> Self {
        EmanConfig {
            n_particles: 20_000,
            n_classes: 60,
            image_size: 128,
            classify_par: 8,
            align_par: 4,
        }
    }
}

impl EmanConfig {
    /// Bytes of one particle image.
    pub fn image_bytes(&self) -> f64 {
        (self.image_size * self.image_size) as f64 * 4.0
    }

    /// Bytes of the 3-D model volume.
    pub fn model_bytes(&self) -> f64 {
        (self.image_size * self.image_size * self.image_size) as f64 * 4.0
    }

    /// Flops to classify one particle against one projection (alignment
    /// search over rotations ≈ 50 image-sized FFT/correlation passes).
    pub fn classify_flops_per_pair(&self) -> f64 {
        let n2 = (self.image_size * self.image_size) as f64;
        50.0 * 5.0 * n2 * (n2.log2())
    }
}

fn flat_model(flops: f64, input_bytes: f64, output_bytes: f64) -> Arc<FittedModel> {
    Arc::new(FittedModel {
        problem_size: 1.0,
        ops: OpCountModel {
            coeffs: vec![flops],
            degree: 0,
            rms_rel_residual: 0.0,
        },
        mrd: None,
        input_bytes,
        output_bytes,
        min_memory: 0,
        allowed: None,
    })
}

/// Build the refinement workflow for one iteration of the EMAN loop.
/// Returns the workflow plus the component indices of each named stage.
pub fn eman_workflow(cfg: &EmanConfig) -> (Workflow, EmanStages) {
    let mut wf = Workflow::new();
    let img = cfg.image_bytes();
    let model = cfg.model_bytes();
    let np = cfg.n_particles as f64;
    let nc = cfg.n_classes as f64;

    // proc3d: preprocess the preliminary model (cheap, serial).
    let proc3d = wf.add_component("proc3d", flat_model(20.0 * model, model, model));

    // project3d: generate nc projections of the model.
    let project3d = wf.add_component("project3d", flat_model(nc * 100.0 * img, model, nc * img));
    wf.add_edge(proc3d, project3d, model);

    // classesbymra: match every particle against every projection; split
    // over particle chunks. Dominant cost. Carries an MRD cache model
    // fitted from blocked correlation sweeps.
    let mrd = {
        let obs: Vec<(f64, MrdHistogram)> = [48u64, 64, 96, 128]
            .iter()
            .map(|&n| {
                (
                    n as f64,
                    MrdHistogram::from_trace(&traces::blocked(n * n / 16, n / 4, 4, 2)),
                )
            })
            .collect();
        MrdModel::fit(&obs, 1, 2)
    };
    let mut classify = Vec::new();
    for i in 0..cfg.classify_par {
        let chunk = np / cfg.classify_par as f64;
        let m = Arc::new(FittedModel {
            problem_size: cfg.image_size as f64,
            ops: OpCountModel {
                coeffs: vec![chunk * nc * cfg.classify_flops_per_pair()],
                degree: 0,
                rms_rel_residual: 0.0,
            },
            mrd: mrd.clone(),
            input_bytes: chunk * img + nc * img,
            output_bytes: chunk * 16.0,
            min_memory: (64 << 20) as u64,
            allowed: None,
        });
        let c = wf.add_component(&format!("classesbymra{i}"), m);
        // Needs all projections (and its particle chunk, modelled as part
        // of the edge volume).
        wf.add_edge(project3d, c, nc * img + chunk * img);
        classify.push(c);
    }

    // classalign2: average each class; split over class groups.
    let mut align = Vec::new();
    for i in 0..cfg.align_par {
        let classes = nc / cfg.align_par as f64;
        let particles = np / cfg.align_par as f64;
        let c = wf.add_component(
            &format!("classalign2-{i}"),
            flat_model(particles * 200.0 * img, particles * img, classes * img),
        );
        // Every classifier chunk contributes particles to every class
        // group.
        for &cl in &classify {
            wf.add_edge(
                cl,
                c,
                (np / cfg.classify_par as f64) * 16.0 + particles * img / cfg.classify_par as f64,
            );
        }
        align.push(c);
    }

    // make3d: reconstruct the refined model from the class averages.
    let make3d = wf.add_component("make3d", flat_model(nc * 500.0 * img, nc * img, model));
    for &a in &align {
        wf.add_edge(a, make3d, (nc / cfg.align_par as f64) * img);
    }

    // eotest: even/odd resolution test (moderate, serial).
    let eotest = wf.add_component("eotest", flat_model(np * 20.0 * img, model, 1e5));
    wf.add_edge(make3d, eotest, model);

    (
        wf,
        EmanStages {
            proc3d,
            project3d,
            classify,
            align,
            make3d,
            eotest,
        },
    )
}

/// Build a multi-round refinement loop: EMAN iterates the §3.3 pipeline,
/// each round's `make3d` output becoming the next round's preliminary
/// model. Returns the workflow plus the per-round stage indices.
pub fn eman_refinement_loop(cfg: &EmanConfig, rounds: usize) -> (Workflow, Vec<EmanStages>) {
    assert!(rounds >= 1, "need at least one refinement round");
    let mut wf = Workflow::new();
    let mut all_stages = Vec::with_capacity(rounds);
    let mut prev_model: Option<usize> = None;
    for round in 0..rounds {
        let (round_wf, mut stages) = eman_workflow(cfg);
        // Splice the round into the accumulated workflow, offsetting ids.
        let offset = wf.len();
        for comp in round_wf.components {
            wf.add_component(&format!("r{round}-{}", comp.name), comp.model);
        }
        for e in &round_wf.edges {
            wf.add_edge(e.from + offset, e.to + offset, e.bytes);
        }
        stages.proc3d += offset;
        stages.project3d += offset;
        for c in &mut stages.classify {
            *c += offset;
        }
        for c in &mut stages.align {
            *c += offset;
        }
        stages.make3d += offset;
        stages.eotest += offset;
        if let Some(prev) = prev_model {
            // The refined model feeds the next round's preprocessing.
            wf.add_edge(prev, stages.proc3d, cfg.model_bytes());
        }
        prev_model = Some(stages.make3d);
        all_stages.push(stages);
    }
    (wf, all_stages)
}

/// Component indices of the pipeline stages.
#[derive(Debug, Clone)]
pub struct EmanStages {
    /// Preliminary model preprocessing.
    pub proc3d: usize,
    /// Projection generation.
    pub project3d: usize,
    /// Classification chunks.
    pub classify: Vec<usize>,
    /// Class-averaging chunks.
    pub align: Vec<usize>,
    /// 3-D reconstruction.
    pub make3d: usize,
    /// Resolution test.
    pub eotest: usize,
}

/// The heterogeneous demonstration grid of §3.3: an IA-32 cluster and an
/// IA-64 cluster (the SC2003 demo ran EMAN across both), plus a slower
/// campus pool.
pub fn eman_grid() -> Grid {
    let mut b = GridBuilder::new();
    let ia32 = b.cluster("IA32");
    b.local_link(ia32, 125e6, 1e-4);
    b.add_hosts(
        ia32,
        6,
        &grads_sim::topology::HostSpec {
            speed: 2.4e9,
            cores: 1,
            arch: Arch::Ia32,
            memory: 2 << 30,
            cache_bytes: 512 * 1024,
        },
    );
    let ia64 = b.cluster("IA64");
    b.local_link(ia64, 125e6, 1e-4);
    b.add_hosts(
        ia64,
        4,
        &grads_sim::topology::HostSpec {
            speed: 3.0e9,
            cores: 1,
            arch: Arch::Ia64,
            memory: 4 << 30,
            cache_bytes: 3 << 20,
        },
    );
    let pool = b.cluster("POOL");
    b.local_link(pool, 12.5e6, 5e-4);
    b.add_hosts(
        pool,
        8,
        &grads_sim::topology::HostSpec {
            speed: 8e8,
            cores: 1,
            arch: Arch::Ia32,
            memory: 1 << 30,
            cache_bytes: 256 * 1024,
        },
    );
    b.connect(ia32, ia64, 50e6, 0.002);
    b.connect(ia32, pool, 10e6, 0.005);
    b.connect(ia64, pool, 10e6, 0.005);
    b.build().expect("static topology")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wf_exec::execute_workflow;
    use grads_nws::NwsService;
    use grads_perf::ResourceInfo;
    use grads_sched::{schedule_random, schedule_round_robin, WorkflowScheduler};

    fn resources(grid: &Grid) -> Vec<ResourceInfo> {
        let nws = NwsService::new();
        (0..grid.hosts().len() as u32)
            .map(|i| ResourceInfo::from_grid(grid, &nws, HostId(i)))
            .collect()
    }

    #[test]
    fn workflow_is_a_valid_dag() {
        let (wf, stages) = eman_workflow(&EmanConfig::default());
        let levels = wf.levels().unwrap();
        assert_eq!(levels.len(), 6, "six pipeline stages");
        assert_eq!(levels[2].len(), 8, "classify fan width");
        assert_eq!(levels[3].len(), 4, "align fan width");
        assert_eq!(stages.classify.len(), 8);
        assert!(wf.len() == 2 + 8 + 4 + 2);
    }

    #[test]
    fn classification_dominates_cost() {
        let cfg = EmanConfig::default();
        let (wf, stages) = eman_workflow(&cfg);
        let grid = eman_grid();
        let res = resources(&grid)[0].clone();
        let classify_cost: f64 = stages
            .classify
            .iter()
            .map(|&c| wf.components[c].model.ecost(&res))
            .sum();
        let other_cost: f64 = (0..wf.len())
            .filter(|c| !stages.classify.contains(c))
            .map(|c| wf.components[c].model.ecost(&res))
            .sum();
        assert!(
            classify_cost > other_cost,
            "classify {classify_cost} vs rest {other_cost}"
        );
    }

    #[test]
    fn grads_schedule_beats_baselines_on_hetero_grid() {
        let cfg = EmanConfig {
            n_particles: 5000,
            ..Default::default()
        };
        let (wf, _) = eman_workflow(&cfg);
        let grid = eman_grid();
        let res = resources(&grid);
        let nws = NwsService::new();
        let (best, per) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &res);
        assert_eq!(per.len(), 3);
        let rr = schedule_round_robin(&wf, &grid, &nws, &res);
        let rnd: f64 = (0..5)
            .map(|s| schedule_random(&wf, &grid, &nws, &res, s).makespan)
            .sum::<f64>()
            / 5.0;
        assert!(
            best.makespan < rr.makespan,
            "{} vs rr {}",
            best.makespan,
            rr.makespan
        );
        assert!(best.makespan < rnd, "{} vs rnd {}", best.makespan, rnd);
    }

    #[test]
    fn schedule_uses_heterogeneous_clusters() {
        // With a wide classify fan, the best schedule should engage both
        // fast clusters (the paper's IA-32 + IA-64 demonstration).
        let cfg = EmanConfig {
            n_particles: 50_000,
            classify_par: 12,
            ..Default::default()
        };
        let (wf, stages) = eman_workflow(&cfg);
        let grid = eman_grid();
        let res = resources(&grid);
        let nws = NwsService::new();
        let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &res);
        let archs: std::collections::HashSet<String> = stages
            .classify
            .iter()
            .map(|&c| format!("{}", res[best.placement[c]].arch))
            .collect();
        assert!(
            archs.contains("ia32") && archs.contains("ia64"),
            "classify should span architectures, got {archs:?}"
        );
    }

    #[test]
    fn refinement_loop_chains_rounds() {
        let cfg = EmanConfig {
            n_particles: 2000,
            classify_par: 3,
            align_par: 2,
            ..Default::default()
        };
        let (wf, stages) = eman_refinement_loop(&cfg, 3);
        assert_eq!(stages.len(), 3);
        let per_round = 2 + 3 + 2 + 2;
        assert_eq!(wf.len(), per_round * 3);
        // Each round adds 5 depth levels (its eotest is a sibling of the
        // next round's chain): 5·rounds + 1 levels.
        let levels = wf.levels().unwrap();
        assert_eq!(levels.len(), 16);
        // Each round's proc3d depends on the previous round's make3d.
        for w in stages.windows(2) {
            assert!(wf.preds(w[1].proc3d).any(|e| e.from == w[0].make3d));
        }
    }

    #[test]
    fn refinement_loop_schedules_and_scales() {
        let cfg = EmanConfig {
            n_particles: 3000,
            classify_par: 4,
            align_par: 2,
            ..Default::default()
        };
        let grid = eman_grid();
        let res = resources(&grid);
        let nws = NwsService::new();
        let (wf1, _) = eman_refinement_loop(&cfg, 1);
        let (wf3, _) = eman_refinement_loop(&cfg, 3);
        let (s1, _) = WorkflowScheduler::default().schedule(&wf1, &grid, &nws, &res);
        let (s3, _) = WorkflowScheduler::default().schedule(&wf3, &grid, &nws, &res);
        // Rounds serialize through the model dependency: ~3x makespan.
        let ratio = s3.makespan / s1.makespan;
        assert!(
            (2.5..3.5).contains(&ratio),
            "3-round makespan should be ~3x: ratio {ratio}"
        );
    }

    #[test]
    fn scheduled_workflow_executes_on_emulated_grid() {
        let cfg = EmanConfig {
            n_particles: 2000,
            classify_par: 4,
            align_par: 2,
            ..Default::default()
        };
        let (wf, _) = eman_workflow(&cfg);
        let grid = eman_grid();
        let res = resources(&grid);
        let nws = NwsService::new();
        let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &res);
        let exec = execute_workflow(&grid, &wf, &best, &res);
        assert!(exec.makespan > 0.0);
        // Emulated execution should land within 2x of the prediction
        // (transfers overlap differently than the analytic model assumes).
        let rel = exec.makespan / best.makespan;
        assert!(
            rel > 0.5 && rel < 2.0,
            "measured {} vs predicted {}",
            exec.makespan,
            best.makespan
        );
    }
}
