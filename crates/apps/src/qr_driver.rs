//! The §4.1.2 stop/restart rescheduling experiment, end to end.
//!
//! Reproduces the Figure 3 methodology: a QR factorization is scheduled on
//! the faster UTK cluster (one rank per core — the UTK nodes are
//! dual-processor); five minutes in, artificial load lands on one UTK
//! node; the contract monitor detects the violation and the rescheduler
//! decides whether migrating to the slower-but-unloaded UIUC cluster pays
//! off. Forced modes measure both branches of every decision, and every
//! phase lands in the Figure 3 breakdown (resource selection, performance
//! modeling, grid overhead, application start, checkpoint write/read,
//! application duration).
//!
//! Two modelling choices worth knowing about:
//!
//! * **Progress-based remaining time.** NWS CPU sensors on a busy node
//!   observe the application's own load, so `remaining_current` from NWS
//!   forecasts would be wildly pessimistic. The rescheduler instead uses
//!   the measured progress rate (sensor data + remaining-work estimate,
//!   exactly what §4 describes).
//! * **Normalized phase sensors.** QR's work is front-loaded (the
//!   trailing matrix shrinks cubically), so raw per-batch times cannot be
//!   compared against a flat prediction. Each sensor report is normalized
//!   by the batch's expected fraction of total work, making every report
//!   an estimate of the whole run's duration.

use crate::qr::{restore, QrConfig, QrLocal};
use grads_binder::{
    prepare_and_bind, Breakdown, CompilationPackage, Cop, Gis, ManagerCosts, LOCAL_BINDER,
};
use grads_contract::{
    run_contract_monitor_obs, Contract, ContractMonitor, DonePredicate, Response, ViolationHandler,
};
use grads_mpi::{host_labels, launch_from_traced};
use grads_nws::{ForecastSnapshot, ForecastSource, NwsService, SharedSnapshot};
use grads_obs::{DecisionAction, DecisionKind, Obs, Recorder, WorldTag};
use grads_perf::{AttrPrefix, PrefixAgg, PrefixPredictor, TreeBcastPrefix};
use grads_reschedule::{
    MigrationDecision, MigrationRescheduler, OverheadPolicy, Reschedulable, ReschedulerMode,
};
use grads_sched::{DecisionPath, SchedTune};
use grads_sim::prelude::*;
use grads_srs::{IbpStorage, Rss, Srs, DEFAULT_DISK_BW};
use parking_lot::Mutex;
use std::sync::Arc;

/// Which half of the decision path produced or consumed a forecast
/// snapshot — the instrumentation record behind the snapshot-sharing
/// regression test (`tests/snapshot_sharing.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotUse {
    /// `map()` captured a fresh snapshot (initial schedule, or a pin was
    /// not available).
    MapCaptured,
    /// `map()` consumed the snapshot pinned by the violation handler —
    /// the landing choice read the *same* forecasts as the migrate
    /// decision.
    MapShared,
    /// The violation handler captured the decision epoch's snapshot.
    ReschedCaptured,
}

/// The QR configurable object program: code (the `qr` module), a mapper
/// (per-cluster core-slot prefixes) and an executable performance model.
#[derive(Clone)]
pub struct QrCop {
    /// The application configuration.
    pub cfg: QrConfig,
    /// Minimum ranks the mapper may select.
    pub min_procs: usize,
    /// Maximum ranks the mapper may select.
    pub max_procs: usize,
    /// Decision-path tuning: the reference mapper re-runs the forecast
    /// ensemble per host visit; the fast mapper reads one
    /// [`ForecastSnapshot`] per `map()` and scores candidates with the
    /// incremental prefix model. Both pick bit-identical slots (the root
    /// `sched_path_determinism` suite pins this end to end).
    pub tune: SchedTune,
    /// One snapshot per violation, shared across both halves of the
    /// decision: the violation handler pins the snapshot it decided
    /// against, and the next `map()` consumes it instead of capturing a
    /// second one — so the migrate decision and the landing choice can
    /// never read divergent forecasts. Clones share the cell.
    pub shared_snap: SharedSnapshot,
    /// Snapshot provenance trace: `(use, fingerprint)` per capture or
    /// hand-off, in virtual-time order. Cheap (a few entries per run);
    /// read by the snapshot-sharing regression test.
    pub snap_trace: Arc<Mutex<Vec<(SnapshotUse, u64)>>>,
    /// Per-host critical-path shares from the previous incarnation's
    /// flight-recorder walk, dense by `HostId` index (summing to 1 over
    /// attributed hosts). Written by the experiment manager between
    /// incarnations when [`SchedTune::attr_alpha_milli`] is on; read by
    /// [`QrCop::map_fast`], which then inflates each candidate's
    /// prediction through [`AttrPrefix`]. `None` (or knob off) leaves the
    /// scoring arithmetic untouched — the bit-identity contract of the
    /// default path. Clones share the cell.
    pub attr_weights: Arc<Mutex<Option<Arc<Vec<f64>>>>>,
}

impl QrCop {
    /// Predicted full execution time on an ordered rank-slot list (hosts
    /// may repeat: one rank per core).
    pub fn model<S: ForecastSource + ?Sized>(&self, slots: &[HostId], grid: &Grid, src: &S) -> f64 {
        let (c, m) = self.model_parts(slots, grid, src);
        c + m
    }

    /// `(compute, communication)` components of the prediction. The
    /// communication term models the binomial broadcast's critical path:
    /// the root serializes ⌈log₂ p⌉ copies through its uplink and the
    /// deepest leaf adds one more leg, each copy moving the full 4N²-byte
    /// reflector volume over the run.
    pub fn model_parts<S: ForecastSource + ?Sized>(
        &self,
        slots: &[HostId],
        grid: &Grid,
        src: &S,
    ) -> (f64, f64) {
        let n = self.cfg.n_nominal as f64;
        let t_comp = self.cfg.charged_flops() / aggregate_rate(slots, grid, src);
        let t_comm = match slots.iter().find(|&&h| h != slots[0]) {
            Some(&other) if slots.len() > 1 => {
                let legs = (slots.len() as f64).log2().ceil() + 1.0;
                legs * src.transfer_time(grid, slots[0], other, 4.0 * n * n)
            }
            _ => 0.0,
        };
        (t_comp, t_comm)
    }

    /// Candidate rank-slot sets: one per cluster — every eligible core
    /// slot of the cluster (host repeated `cores` times), fastest first,
    /// clamped to `max_procs`. Whole-cluster candidates reproduce the
    /// paper's binary UTK-vs-UIUC rescheduling choice.
    pub fn candidates<S: ForecastSource + ?Sized>(
        &self,
        grid: &Grid,
        src: &S,
        eligible: &[HostId],
    ) -> Vec<Vec<HostId>> {
        let mut out = Vec::new();
        for cluster in grid.clusters() {
            let mut slots: Vec<HostId> = Vec::new();
            for &h in &cluster.hosts {
                if eligible.contains(&h) {
                    for _ in 0..grid.host(h).cores {
                        slots.push(h);
                    }
                }
            }
            if slots.len() < self.min_procs {
                continue;
            }
            slots.sort_by(|&a, &b| {
                src.effective_speed(grid, b)
                    .total_cmp(&src.effective_speed(grid, a))
                    .then(a.cmp(&b))
            });
            slots.truncate(self.max_procs);
            out.push(slots);
        }
        out
    }

    /// The fast mapper: candidates are sorted against the snapshot's
    /// cached speeds and each is scored by driving the incremental
    /// [`TreeBcastPrefix`] model along its slot list — bit-identical to
    /// the reference `map` (same model arithmetic, same first-wins
    /// tie-break), with the ensemble battery run once per host at capture
    /// instead of once per comparator call.
    pub fn map_fast(
        &self,
        grid: &Grid,
        snap: &ForecastSnapshot,
        eligible: &[HostId],
    ) -> Option<Vec<HostId>> {
        let n = self.cfg.n_nominal as f64;
        // Attribution feedback engages only when the knob is on AND a
        // previous incarnation left a weight table; otherwise the bare
        // model runs and scoring is bit-identical to the knob-off build.
        let attr: Option<Arc<Vec<f64>>> = if self.tune.attr_alpha_milli > 0 {
            self.attr_weights.lock().clone()
        } else {
            None
        };
        let mut best: Option<(f64, Vec<HostId>)> = None;
        for slots in self.candidates(grid, snap, eligible) {
            let t = if slots.is_empty() {
                // `aggregate_rate` of an empty set clamps to 1.0.
                self.cfg.charged_flops()
            } else {
                let tree = TreeBcastPrefix::new(grid, snap, self.cfg.charged_flops(), 4.0 * n * n);
                match &attr {
                    Some(w) => score_full_prefix(
                        AttrPrefix::new(tree, w.clone(), self.tune.attr_alpha()),
                        grid,
                        snap,
                        &slots,
                    ),
                    None => score_full_prefix(tree, grid, snap, &slots),
                }
            };
            match &best {
                Some((bt, _)) if *bt <= t => {}
                _ => best = Some((t, slots)),
            }
        }
        best.map(|(_, slots)| slots)
    }
}

/// Drive `pred` along the full slot list the way the candidate walk does
/// and return the prediction at the full prefix length.
fn score_full_prefix<P: PrefixPredictor>(
    mut pred: P,
    grid: &Grid,
    snap: &ForecastSnapshot,
    slots: &[HostId],
) -> f64 {
    pred.begin_cluster(grid.host(slots[0]).cluster, slots);
    let (mut sum, mut min) = (0.0f64, f64::INFINITY);
    let mut t = f64::INFINITY;
    for (i, &h) in slots.iter().enumerate() {
        let s = snap.speed(h);
        sum += s;
        min = min.min(s);
        let agg = PrefixAgg {
            k: i + 1,
            host: h,
            speed: s,
            sum_speed: sum,
            min_speed: min,
        };
        pred.push(&agg);
        if i + 1 == slots.len() {
            t = pred.predict(&agg);
        }
    }
    t
}

/// Aggregate rate of a bulk-synchronous code over rank slots: the work is
/// split evenly, so the slowest slot sets the pace — `p × min(speed)`.
fn aggregate_rate<S: ForecastSource + ?Sized>(slots: &[HostId], grid: &Grid, src: &S) -> f64 {
    let min_speed = slots
        .iter()
        .map(|&h| src.effective_speed(grid, h))
        .fold(f64::INFINITY, f64::min);
    (slots.len() as f64 * min_speed).max(1.0)
}

impl Cop for QrCop {
    fn name(&self) -> &str {
        "scalapack-qr"
    }
    fn required_libs(&self) -> Vec<String> {
        vec!["scalapack".to_string(), "srs".to_string()]
    }
    fn package(&self) -> CompilationPackage {
        CompilationPackage::new("scalapack-qr", &["scalapack", "srs"])
    }
    fn map(&self, grid: &Grid, nws: &NwsService, eligible: &[HostId]) -> Option<Vec<HostId>> {
        match self.tune.path {
            DecisionPath::Reference => {
                self.candidates(grid, nws, eligible)
                    .into_iter()
                    .min_by(|a, b| {
                        self.model(a, grid, nws)
                            .total_cmp(&self.model(b, grid, nws))
                    })
            }
            DecisionPath::Fast => {
                // Prefer the snapshot the violation handler pinned: the
                // landing choice then reads exactly the forecasts the
                // migrate decision was taken against. Capture fresh only
                // when no decision preceded this map (initial schedule).
                let (snap, used) = match self.shared_snap.take() {
                    Some(s) => (s, SnapshotUse::MapShared),
                    None => (
                        Arc::new(ForecastSnapshot::capture(grid, nws)),
                        SnapshotUse::MapCaptured,
                    ),
                };
                self.snap_trace.lock().push((used, snap.fingerprint()));
                self.map_fast(grid, &snap, eligible)
            }
        }
    }
    fn predict(&self, hosts: &[HostId], grid: &Grid, nws: &NwsService) -> f64 {
        self.model(hosts, grid, nws)
    }
}

/// Live progress + placement of a running QR app, for the rescheduler.
pub struct QrRunning {
    /// The COP.
    pub cop: QrCop,
    /// `(virtual time, real step)` progress samples from rank 0.
    pub history: Arc<Mutex<Vec<(f64, usize)>>>,
    /// Rank slots of the current incarnation.
    pub hosts: Vec<HostId>,
    /// Fixed restart machinery cost (rebind + relaunch), seconds.
    pub restart_fixed_s: f64,
}

impl QrRunning {
    /// Charged flops completed through real step `k`.
    fn flops_done(&self, k: usize) -> f64 {
        let n = self.cop.cfg.n_real as f64;
        let k = (k as f64).min(n);
        self.cop.cfg.charged_flops() * (1.0 - ((n - k) / n).powi(3))
    }

    fn remaining_flops(&self) -> f64 {
        let k = self.history.lock().last().map(|&(_, k)| k).unwrap_or(0);
        self.cop.cfg.charged_flops() - self.flops_done(k)
    }

    /// Achieved flop rate over the most recent progress interval, if
    /// measurable. Only the last interval is used so a fresh slowdown is
    /// reflected immediately (older samples would dilute it).
    fn measured_rate(&self) -> Option<f64> {
        let h = self.history.lock();
        if h.len() < 2 {
            return None;
        }
        let (t0, k0) = h[h.len() - 2];
        let (t1, k1) = h[h.len() - 1];
        if t1 <= t0 || k1 <= k0 {
            return None;
        }
        Some((self.flops_done(k1) - self.flops_done(k0)) / (t1 - t0))
    }
}

impl Reschedulable for QrRunning {
    fn remaining_current(&self, grid: &Grid, src: &dyn ForecastSource) -> f64 {
        match self.measured_rate() {
            Some(rate) => self.remaining_flops() / rate.max(1.0),
            None => self.remaining_flops() / aggregate_rate(&self.hosts, grid, src),
        }
    }
    fn remaining_on(&self, hosts: &[HostId], grid: &Grid, src: &dyn ForecastSource) -> f64 {
        self.remaining_flops() / aggregate_rate(hosts, grid, src)
    }
    fn migration_overhead(&self, hosts: &[HostId], grid: &Grid, src: &dyn ForecastSource) -> f64 {
        let bytes = self.cop.cfg.checkpoint_bytes();
        // Write: local depots at disk bandwidth, parallel across ranks.
        let write = bytes / (DEFAULT_DISK_BW * self.hosts.len() as f64);
        // Read: the checkpoint crosses the network from old to new hosts
        // (the shared WAN path dominates), plus depot disk time.
        let read =
            src.transfer_time(grid, self.hosts[0], hosts[0], bytes) + bytes / DEFAULT_DISK_BW;
        write + read + self.restart_fixed_s
    }
    fn current_hosts(&self) -> Vec<HostId> {
        self.hosts.clone()
    }
}

/// Configuration of one experiment run.
#[derive(Clone)]
pub struct QrExperimentConfig {
    /// Application configuration.
    pub qr: QrConfig,
    /// Index (into the grid host list) of the host that receives load.
    pub load_host: usize,
    /// When the artificial load starts, seconds (paper: 300).
    pub load_at: f64,
    /// Competing load units.
    pub load_amount: f64,
    /// Rescheduler operating mode.
    pub mode: ReschedulerMode,
    /// Overhead estimation policy.
    pub overhead: OverheadPolicy,
    /// Contract monitor poll period, seconds.
    pub monitor_period: f64,
    /// Manager phase costs.
    pub costs: ManagerCosts,
    /// Rank-slot bounds.
    pub min_procs: usize,
    /// Rank-slot bounds.
    pub max_procs: usize,
    /// Hard cap on virtual time.
    pub t_max: f64,
    /// Observability sink threaded through the kernel, the contract
    /// monitor, and the rescheduler. Disabled by default; attach
    /// [`Obs::enabled`] to collect metrics and decision events without
    /// changing the run (see `tests/obs_determinism.rs`).
    pub obs: Obs,
    /// Per-rank flight recorder. Disabled by default; attach
    /// [`Recorder::enabled`] to capture state timelines, matched messages
    /// and incarnation bridges for wait-state / critical-path analysis
    /// (same determinism contract as `obs`).
    pub recorder: Recorder,
    /// Kernel substrate tuning (process transport + event queue). The
    /// default (direct handoff, indexed queue) is the fast path; every
    /// combination is bit-identical (see `tests/substrate_determinism.rs`).
    pub tune: EngineTune,
    /// Scheduler decision-path tuning (snapshot + incremental scoring vs
    /// the seed reference loop). The default is the fast path; both are
    /// bit-identical end to end (see `tests/sched_path_determinism.rs`).
    pub sched: SchedTune,
}

impl QrExperimentConfig {
    /// Paper-shaped defaults for a given nominal size (real size scaled
    /// down for harness speed).
    pub fn paper(n_nominal: usize) -> Self {
        QrExperimentConfig {
            qr: QrConfig {
                n_nominal,
                n_real: 96,
                // Single-column blocks keep the scaled-down run's
                // block-granularity imbalance under ~10% (a real-size run
                // would use ScaLAPACK-style blocks of 32-64).
                block: 1,
                poll_every: 2,
                seed: 7,
                efficiency: 0.4,
            },
            load_host: 0,
            load_at: 300.0,
            load_amount: 6.0,
            mode: ReschedulerMode::Default,
            overhead: OverheadPolicy::Modeled,
            monitor_period: 20.0,
            costs: ManagerCosts::default(),
            min_procs: 4,
            max_procs: 8,
            t_max: 100_000.0,
            obs: Obs::disabled(),
            recorder: Recorder::disabled(),
            tune: EngineTune::default(),
            sched: SchedTune::default(),
        }
    }
}

/// Result of one experiment run.
#[derive(Debug, Clone)]
pub struct QrExperimentResult {
    /// Total virtual time from manager start to completion.
    pub total_time: f64,
    /// Merged phase breakdown across incarnations.
    pub breakdown: Breakdown,
    /// Whether a migration happened.
    pub migrated: bool,
    /// The rescheduler's (last) decision, if a violation occurred.
    pub decision: Option<MigrationDecision>,
    /// Number of incarnations (1 = no migration).
    pub incarnations: usize,
    /// Rank slots of the final incarnation.
    pub final_hosts: Vec<HostId>,
    /// The kernel's run report (end time, trace, per-host accounting) —
    /// what the obs determinism regression compares bit-for-bit.
    pub report: RunReport,
    /// Fast-path forecast snapshot provenance, in event order: every
    /// capture/hand-off with the snapshot's content fingerprint. A
    /// migration shows as `ReschedCaptured(f)` followed by `MapShared(f)`
    /// with the same `f` — the landing map read the decision's forecasts.
    pub snapshot_trace: Vec<(SnapshotUse, u64)>,
}

fn sorted(hs: &[HostId]) -> Vec<HostId> {
    let mut v = hs.to_vec();
    v.sort();
    v
}

/// Run the experiment on the given grid (typically
/// [`grads_sim::topology::macrogrid_qr`]).
pub fn run_qr_experiment(grid: Grid, ecfg: QrExperimentConfig) -> QrExperimentResult {
    let mut eng = Engine::new(grid.clone());
    eng.apply_tune(ecfg.tune);
    eng.set_obs(ecfg.obs.clone());
    eng.set_recorder(ecfg.recorder.clone());
    let all_hosts: Vec<HostId> = (0..grid.hosts().len() as u32).map(HostId).collect();

    // Middleware: GIS with software everywhere, shared NWS, SRS fabric.
    let gis = Gis::new();
    gis.register_all(&all_hosts, LOCAL_BINDER, "1", "/grads/bin");
    gis.register_all(&all_hosts, "scalapack", "1.7", "/opt/scalapack");
    gis.register_all(&all_hosts, "srs", "1.0", "/opt/srs");
    let nws = Arc::new(Mutex::new(NwsService::new()));
    let srs = Srs::new("qr-exp", Rss::new(), IbpStorage::default());

    let history: Arc<Mutex<Vec<(f64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let done = Arc::new(Mutex::new(false));
    let decision_cell: Arc<Mutex<Option<MigrationDecision>>> = Arc::new(Mutex::new(None));
    let final_decision: Arc<Mutex<Option<MigrationDecision>>> = Arc::new(Mutex::new(None));
    let breakdown_cell = Arc::new(Mutex::new(Breakdown::default()));

    // NWS CPU sensors on every host.
    for &h in &all_hosts {
        let nws2 = nws.clone();
        let done2 = done.clone();
        let speed = grid.host(h).speed;
        eng.spawn(&format!("nws-sensor-{h}"), h, move |ctx| {
            grads_nws::run_cpu_sensor(ctx, &nws2, speed, 1e6, 10.0, &move || *done2.lock());
        });
    }

    // The artificial load (paper: five minutes in, on one UTK node).
    eng.add_load_window(
        all_hosts[ecfg.load_host],
        ecfg.load_at,
        None,
        ecfg.load_amount,
    );

    // The application manager.
    let mgr_host = all_hosts[0];
    let grid2 = grid.clone();
    let out: Arc<Mutex<Option<QrExperimentResult>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let (history_m, done_m, decision_m, final_m, breakdown_m) = (
        history.clone(),
        done.clone(),
        decision_cell.clone(),
        final_decision.clone(),
        breakdown_cell.clone(),
    );
    eng.spawn("app-manager", mgr_host, move |ctx| {
        let cop = QrCop {
            cfg: ecfg.qr.clone(),
            min_procs: ecfg.min_procs,
            max_procs: ecfg.max_procs,
            tune: ecfg.sched,
            shared_snap: SharedSnapshot::new(),
            snap_trace: Arc::new(Mutex::new(Vec::new())),
            attr_weights: Arc::new(Mutex::new(None)),
        };
        let t_begin = ctx.now();
        let mut incarnations = 0usize;
        let mut hosts: Vec<HostId>;
        let mut final_hosts;
        let mut migrated = false;
        // Flight-recorder continuity across incarnations: when a migration
        // stops epoch N and launches epoch N+1, a bridge links rank 0 of
        // the old world (at stop time) to every rank of the new one.
        let mut prev_wtag = WorldTag::NONE;
        let mut t_stop = 0.0;
        loop {
            // -------- prepare: discover, map, model, bind, start --------
            let (chosen, _bound, bd) = prepare_and_bind(ctx, &cop, &gis, &grid2, &nws, &ecfg.costs)
                .expect("preparation succeeds");
            {
                let mut b = breakdown_m.lock();
                *b = b.merged(&bd);
            }
            hosts = chosen;
            final_hosts = hosts.clone();
            incarnations += 1;
            let epoch = srs.rss.epoch();
            history_m.lock().clear();

            // -------- launch the world --------
            let comm_weight = {
                let n = nws.lock();
                let (c, m) = cop.model_parts(&hosts, &grid2, &*n);
                m / (c + m).max(1e-9)
            };
            let cfgw = ecfg.qr.clone();
            let srsw = srs.clone();
            let history_w = history_m.clone();
            let done_w = done_m.clone();
            let bd_w = breakdown_m.clone();
            let (world, wtag) = launch_from_traced(
                ctx,
                &ecfg.recorder,
                &format!("qr-e{epoch}"),
                &hosts,
                &host_labels(&grid2, &hosts),
                epoch,
                move |rctx, comm| {
                    let t0 = rctx.now();
                    let restored = if srsw.has_checkpoint("A") {
                        restore(rctx, comm, &cfgw, &srsw)
                    } else {
                        None
                    };
                    let (mut local, start) = match restored {
                        Some((l, s)) => {
                            let dt = rctx.now() - t0;
                            if comm.rank() == 0 {
                                bd_w.lock().checkpoint_read += dt;
                            }
                            (l, s)
                        }
                        None => (QrLocal::generate(&cfgw, comm.rank(), comm.size()), 0),
                    };
                    if comm.rank() == 0 {
                        // Progress baseline so the rescheduler can measure
                        // the achieved rate from the very first chunk.
                        let t = rctx.now();
                        history_w.lock().push((t, start));
                    }
                    let mut step = start;
                    let last = cfgw.n_real.saturating_sub(1);
                    loop {
                        let chunk_end = (step + cfgw.poll_every.max(1)).min(last);
                        match run_chunk(
                            rctx,
                            comm,
                            &cfgw,
                            &mut local,
                            Some(&srsw),
                            step,
                            chunk_end,
                            comm_weight,
                        ) {
                            ChunkOutcome::Progressed(next) => {
                                step = next;
                                if comm.rank() == 0 {
                                    let t = rctx.now();
                                    history_w.lock().push((t, step));
                                }
                                if step >= last {
                                    if comm.rank() == 0 {
                                        *done_w.lock() = true;
                                    }
                                    return;
                                }
                            }
                            ChunkOutcome::Stopped { step: s, write_s } => {
                                if comm.rank() == 0 {
                                    bd_w.lock().checkpoint_write += write_s;
                                }
                                let _ = s;
                                return;
                            }
                        }
                    }
                },
            );
            if incarnations > 1 {
                // The restarted world is up: the migration actuation that
                // began at the stop request is complete.
                ecfg.recorder.bridge(prev_wtag, 0, t_stop, wtag);
                ecfg.obs.event(
                    ctx.now(),
                    DecisionKind::ActuationComplete {
                        action: DecisionAction::Migrate,
                    },
                );
            }
            prev_wtag = wtag;

            // -------- contract + monitor --------
            let predicted_total = {
                let n = nws.lock();
                cop.predict(&hosts, &grid2, &n)
            };
            // Sensors report normalized whole-run estimates (see module
            // docs), so the contract predicts the total directly.
            let contract = Contract::single_phase("qr_total_est", predicted_total, 1.4, 0.5, 3);
            let running = Arc::new(QrRunning {
                cop: cop.clone(),
                history: history_m.clone(),
                hosts: hosts.clone(),
                restart_fixed_s: ecfg.costs.launch_sync_s + 30.0,
            });
            let rescheduler = MigrationRescheduler {
                overhead: ecfg.overhead,
                mode: ecfg.mode,
                min_benefit: 0.0,
            };
            let handler: ViolationHandler = {
                let grid3 = grid2.clone();
                let nws3 = nws.clone();
                let decision3 = decision_m.clone();
                let final3 = final_m.clone();
                let srs3 = srs.clone();
                let running3 = running.clone();
                let cop3 = cop.clone();
                let all3 = all_hosts.clone();
                let obs3 = ecfg.obs.clone();
                Arc::new(move |mctx, _v| {
                    if srs3.rss.stop_requested() {
                        // A migration is already in motion; let the
                        // monitor retire.
                        return Response::Migrated;
                    }
                    let n = nws3.lock();
                    // One snapshot per monitor poll: candidate enumeration
                    // and every candidate's decision terms read the same
                    // frozen forecasts instead of re-running the ensemble
                    // per host visit. The snapshot is kept so that, if the
                    // decision is to migrate, the landing map reads the
                    // very same forecasts (see `Cop::map`).
                    let mut poll_snap: Option<Arc<ForecastSnapshot>> = None;
                    let mut d = match cop3.tune.path {
                        DecisionPath::Fast => {
                            let snap = Arc::new(ForecastSnapshot::capture(&grid3, &n));
                            cop3.snap_trace
                                .lock()
                                .push((SnapshotUse::ReschedCaptured, snap.fingerprint()));
                            let cands = cop3.candidates(&grid3, snap.as_ref(), &all3);
                            let d = rescheduler.decide_best_obs(
                                running3.as_ref(),
                                &cands,
                                &grid3,
                                snap.as_ref(),
                                &obs3,
                            );
                            poll_snap = Some(snap);
                            d
                        }
                        DecisionPath::Reference => {
                            let cands = cop3.candidates(&grid3, &*n, &all3);
                            rescheduler.decide_best_obs(
                                running3.as_ref(),
                                &cands,
                                &grid3,
                                &*n,
                                &obs3,
                            )
                        }
                    }
                    .expect("candidates exist");
                    // Moving onto the very machines the app already holds
                    // is not a migration, whatever the (forecast-polluted)
                    // model says about them.
                    d.migrate = d.migrate && sorted(&d.candidate_hosts) != sorted(&running3.hosts);
                    *decision3.lock() = Some(d.clone());
                    // Report the decisive decision: the one that triggered
                    // a migration, or the last one taken if none did.
                    {
                        let mut f = final3.lock();
                        let already_migrating = matches!(&*f, Some(prev) if prev.migrate);
                        if !already_migrating {
                            *f = Some(d.clone());
                        }
                    }
                    if d.migrate {
                        // Hand the decision's snapshot to the mapper: the
                        // re-prepare after the stop lands on the forecasts
                        // this migrate verdict was computed from.
                        if let Some(snap) = poll_snap {
                            cop3.shared_snap.pin(snap);
                        }
                        srs3.rss.request_stop();
                        obs3.event(
                            mctx.now(),
                            DecisionKind::ActuationStarted {
                                action: DecisionAction::Migrate,
                            },
                        );
                        Response::Migrated
                    } else {
                        Response::Declined
                    }
                })
            };
            let mon_done: DonePredicate = {
                let d = done_m.clone();
                Arc::new(move || *d.lock())
            };
            let stats = world.stats.clone();
            let period = ecfg.monitor_period;
            let mon_contract = contract.clone();
            let mon_handler = handler.clone();
            let mon_obs = ecfg.obs.clone();
            ctx.spawn(
                &format!("contract-monitor-e{epoch}"),
                mgr_host,
                move |mctx| {
                    let mut mon = ContractMonitor::new(mon_contract);
                    run_contract_monitor_obs(
                        mctx,
                        &stats,
                        &mut mon,
                        period,
                        mon_done,
                        mon_handler,
                        &mon_obs,
                    );
                },
            );

            // -------- wait for completion or stop --------
            loop {
                ctx.sleep(5.0);
                if *done_m.lock() {
                    break;
                }
                if srs.rss.stop_requested() && srs.rss.stop_acks() >= hosts.len() {
                    break;
                }
                if ctx.now() > ecfg.t_max {
                    *done_m.lock() = true;
                    break;
                }
            }
            if *done_m.lock() {
                break;
            }
            // Migration: open the next epoch and loop back to re-prepare.
            migrated = true;
            t_stop = ctx.now();
            // Close the observe→decide loop: walk the stopped
            // incarnation's critical path, attribute its cost to hosts,
            // and hand the normalized shares to the next map's scorer.
            // Purely a read of the flight-recorder log — no virtual time
            // passes, and with the knob off nothing here runs.
            if ecfg.sched.attr_alpha_milli > 0 {
                let tl = ecfg.recorder.timeline();
                let by_host = tl.critical_path_by_host(&tl.critical_path());
                let total: f64 = by_host.iter().map(|(_, d)| d).sum();
                if total > 0.0 {
                    let mut w = vec![0.0f64; grid2.hosts().len()];
                    for (label, d) in &by_host {
                        if let Some(i) = grid2.hosts().iter().position(|h| h.name == *label) {
                            w[i] = d / total;
                        }
                    }
                    *cop.attr_weights.lock() = Some(Arc::new(w));
                }
            }
            srs.rss.begin_restart();
            *decision_m.lock() = None;
        }
        let total_time = ctx.now() - t_begin;
        let mut bd = *breakdown_m.lock();
        bd.app_duration = (total_time - (bd.total() - bd.app_duration)).max(0.0);
        *out2.lock() = Some(QrExperimentResult {
            total_time,
            breakdown: bd,
            migrated,
            decision: final_m.lock().clone(),
            incarnations,
            final_hosts,
            report: RunReport::default(),
            snapshot_trace: cop.snap_trace.lock().clone(),
        });
    });

    let tmax = ecfg.t_max * 1.2;
    let report = eng.run_until(tmax);
    let mut r = out.lock().take().expect("experiment completed");
    r.report = report;
    r
}

/// Outcome of one poll-sized chunk of elimination steps.
enum ChunkOutcome {
    /// Ran to `next` (exclusive); continue.
    Progressed(usize),
    /// Honoured a stop request after checkpointing.
    Stopped { step: usize, write_s: f64 },
}

/// Run `[start, end)` elimination steps, honouring stop requests at the
/// chunk boundary and emitting a normalized whole-run-estimate sensor
/// report.
#[allow(clippy::too_many_arguments)]
fn run_chunk(
    ctx: &mut Ctx,
    comm: &mut grads_mpi::Comm,
    cfg: &QrConfig,
    local: &mut QrLocal,
    srs: Option<&Srs>,
    start: usize,
    end: usize,
    comm_weight: f64,
) -> ChunkOutcome {
    if let Some(srs) = srs {
        // The stop decision must be collective: the flag may flip between
        // two ranks' boundary checks, and a unilateral exit would deadlock
        // the step broadcasts. Rank 0 reads the flag; everyone follows its
        // verdict.
        let stop = if comm.size() > 1 {
            comm.bcast_t(
                ctx,
                0,
                16.0,
                (comm.rank() == 0).then(|| srs.should_stop() && start > 0),
            )
        } else {
            srs.should_stop() && start > 0
        };
        if stop {
            let t0 = ctx.now();
            crate::qr::checkpoint(ctx, comm, cfg, local, srs, start);
            let dt = ctx.now() - t0;
            return ChunkOutcome::Stopped {
                step: start,
                write_s: dt,
            };
        }
    }
    let t0 = ctx.now();
    for k in start..end.min(cfg.n_real.saturating_sub(1)) {
        qr_step(ctx, comm, cfg, local, k);
    }
    let dt = ctx.now() - t0;
    // Expected fraction of total *time* in this chunk: compute follows
    // the cubic trailing-matrix profile, communication the quadratic
    // reflector-volume profile, mixed by the predicted comm share.
    let n = cfg.n_real as f64;
    let flops_frac = ((n - start as f64) / n).powi(3) - ((n - end as f64) / n).powi(3);
    let bytes_frac = ((n - start as f64) / n).powi(2) - ((n - end as f64) / n).powi(2);
    let frac = ((1.0 - comm_weight) * flops_frac + comm_weight * bytes_frac).max(1e-9);
    // Sensor on rank 0 only: its report lands at the same virtual instant
    // as its progress-history push, so the rescheduler always sees a
    // measurable rate when a violation arrives.
    if comm.rank() == 0 {
        comm.record_phase("qr_total_est", dt / frac);
    }
    ChunkOutcome::Progressed(end)
}

/// One elimination step (same math as `qr::run_qr_rank`, factored for the
/// chunked driver).
#[allow(clippy::needless_range_loop)] // elimination loops read clearest indexed
pub(crate) fn qr_step(
    ctx: &mut Ctx,
    comm: &mut grads_mpi::Comm,
    cfg: &QrConfig,
    local: &mut QrLocal,
    k: usize,
) {
    let n = cfg.n_real;
    let p = comm.size();
    let fscale = cfg.flop_scale();
    let bscale = cfg.byte_scale();
    let owner = local.dist.owner(k);
    let m = n - k;
    let (mut w, mut tau) = (Vec::new(), 0.0);
    if comm.rank() == owner {
        let lc = local.dist.local_index(k);
        let col = &mut local.a[lc * n..(lc + 1) * n];
        let x = &col[k..n];
        let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let x0 = x[0];
        let a_val = if x0 >= 0.0 { -norm } else { norm };
        let v0 = x0 - a_val;
        let mut wv = vec![1.0; m];
        if v0.abs() > 0.0 && norm > 0.0 {
            for i in 1..m {
                wv[i] = x[i] / v0;
            }
        } else {
            for i in 1..m {
                wv[i] = 0.0;
            }
        }
        let wnorm2: f64 = wv.iter().map(|v| v * v).sum();
        let t = if norm > 0.0 { 2.0 / wnorm2 } else { 0.0 };
        col[k] = a_val;
        col[k + 1..k + m].copy_from_slice(&wv[1..]);
        comm.compute(ctx, (4 * m) as f64 * fscale);
        w = wv;
        tau = t;
    }
    let bytes = 8.0 * (m as f64 + 2.0) * bscale;
    if p > 1 {
        let (w2, t2) = comm.bcast_t(
            ctx,
            owner,
            bytes,
            (comm.rank() == owner).then(|| (w.clone(), tau)),
        );
        w = w2;
        tau = t2;
    }
    local.tau[k] = tau;
    let mut updated = 0usize;
    let ncols = local.dist.local_len(local.rank);
    for lc in 0..ncols {
        let g = local.dist.global_index(local.rank, lc);
        if g <= k {
            continue;
        }
        let col = &mut local.a[lc * n..(lc + 1) * n];
        let mut s = 0.0;
        for i in 0..m {
            s += w[i] * col[k + i];
        }
        s *= tau;
        for i in 0..m {
            col[k + i] -= s * w[i];
        }
        updated += 1;
    }
    comm.compute(ctx, (4 * m * updated) as f64 * fscale);
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::macrogrid_qr;

    fn small_exp(n_nominal: usize, mode: ReschedulerMode) -> QrExperimentResult {
        let mut cfg = QrExperimentConfig::paper(n_nominal);
        cfg.qr.n_real = 48;
        cfg.qr.block = 4;
        cfg.qr.poll_every = 4;
        cfg.load_at = 60.0;
        cfg.monitor_period = 10.0;
        cfg.mode = mode;
        cfg.t_max = 50_000.0;
        run_qr_experiment(macrogrid_qr(), cfg)
    }

    #[test]
    fn initial_schedule_prefers_utk() {
        // Without load, UTK (4×933 MHz dual-processor = 8 slots) beats
        // UIUC (8×450 MHz) for compute-heavy sizes.
        let mut cfg = QrExperimentConfig::paper(8000);
        cfg.qr.n_real = 32;
        cfg.qr.block = 4;
        cfg.load_at = 1e9; // never
        cfg.t_max = 50_000.0;
        let r = run_qr_experiment(macrogrid_qr(), cfg);
        assert!(!r.migrated);
        assert!(r.final_hosts.iter().all(|h| h.0 < 4), "{:?}", r.final_hosts);
        assert_eq!(r.incarnations, 1);
    }

    #[test]
    fn small_problem_stays_put() {
        // Small problem: migration cost dwarfs the remaining work.
        let r = small_exp(3000, ReschedulerMode::Default);
        assert!(!r.migrated, "decision: {:?}", r.decision);
        assert_eq!(r.incarnations, 1);
        assert!(r.total_time > 0.0);
    }

    #[test]
    fn large_problem_migrates_and_finishes() {
        let r = small_exp(20000, ReschedulerMode::Default);
        assert!(r.migrated, "decision: {:?}", r.decision);
        assert_eq!(r.incarnations, 2);
        // Migration crossed to the UIUC cluster (hosts 4..12).
        assert!(
            r.final_hosts.iter().all(|h| h.0 >= 4),
            "{:?}",
            r.final_hosts
        );
        assert!(r.breakdown.checkpoint_read > 0.0);
        assert!(r.breakdown.checkpoint_write > 0.0);
        // Checkpoint read (WAN) dominates write (local disk) — the
        // paper's key observation.
        assert!(
            r.breakdown.checkpoint_read > r.breakdown.checkpoint_write,
            "read {} vs write {}",
            r.breakdown.checkpoint_read,
            r.breakdown.checkpoint_write
        );
    }

    #[test]
    fn attr_weights_flip_the_fast_map_and_knob_off_ignores_them() {
        let grid = macrogrid_qr();
        let snap = ForecastSnapshot::capture(&grid, &grads_nws::NwsService::new());
        let all: Vec<HostId> = (0..grid.hosts().len() as u32).map(HostId).collect();
        let cop = QrCop {
            cfg: QrExperimentConfig::paper(8000).qr,
            min_procs: 4,
            max_procs: 8,
            tune: SchedTune::fast(),
            shared_snap: SharedSnapshot::new(),
            snap_trace: Arc::new(Mutex::new(Vec::new())),
            attr_weights: Arc::new(Mutex::new(None)),
        };
        let base = cop.map_fast(&grid, &snap, &all).expect("candidates");
        assert!(
            base.iter().all(|h| h.0 < 4),
            "UTK wins unweighted: {base:?}"
        );

        // Attribute the previous critical path entirely to the UTK hosts
        // at a strength that overcomes their speed advantage.
        let mut w = vec![0.0f64; grid.hosts().len()];
        for wi in w.iter_mut().take(4) {
            *wi = 0.25;
        }
        let mut hot = cop.clone();
        hot.tune = SchedTune::fast().with_attr_alpha_milli(8000);
        hot.attr_weights = Arc::new(Mutex::new(Some(Arc::new(w))));
        let flipped = hot.map_fast(&grid, &snap, &all).expect("candidates");
        assert!(
            flipped.iter().all(|h| h.0 >= 4),
            "feedback steers the map off the attributed cluster: {flipped:?}"
        );
        // Deterministic: the same weights produce the same choice again.
        assert_eq!(hot.map_fast(&grid, &snap, &all), Some(flipped));

        // Knob off: the weight table is dead data — bit-identical choice.
        let mut off = hot.clone();
        off.tune = SchedTune::fast();
        assert_eq!(off.map_fast(&grid, &snap, &all), Some(base));
    }

    #[test]
    fn attr_feedback_off_matches_default_and_on_reruns_identically() {
        let attr_exp = |alpha_milli: u32| {
            let mut cfg = QrExperimentConfig::paper(20000);
            cfg.qr.n_real = 48;
            cfg.qr.block = 4;
            cfg.qr.poll_every = 4;
            cfg.load_at = 60.0;
            cfg.monitor_period = 10.0;
            cfg.t_max = 50_000.0;
            cfg.recorder = Recorder::enabled();
            cfg.sched = SchedTune::default().with_attr_alpha_milli(alpha_milli);
            run_qr_experiment(macrogrid_qr(), cfg)
        };
        // Knob off: the run is bit-identical to the plain default config
        // (the feedback block never executes).
        let base = small_exp(20000, ReschedulerMode::Default);
        let off = attr_exp(0);
        assert_eq!(off.migrated, base.migrated);
        assert_eq!(off.incarnations, base.incarnations);
        assert_eq!(off.final_hosts, base.final_hosts);
        assert_eq!(off.total_time.to_bits(), base.total_time.to_bits());

        // Knob on: deterministic — a rerun is byte-identical.
        let on_a = attr_exp(500);
        let on_b = attr_exp(500);
        assert!(on_a.migrated, "fixture migrates with the knob on");
        assert_eq!(on_a.final_hosts, on_b.final_hosts);
        assert_eq!(on_a.incarnations, on_b.incarnations);
        assert_eq!(on_a.total_time.to_bits(), on_b.total_time.to_bits());
    }

    #[test]
    fn forced_modes_produce_both_branches() {
        let stay = small_exp(20000, ReschedulerMode::ForceStay);
        let go = small_exp(20000, ReschedulerMode::ForceMigrate);
        assert!(!stay.migrated);
        assert!(go.migrated, "decision: {:?}", go.decision);
        // For a large problem, migrating beats staying on loaded nodes.
        assert!(
            go.total_time < stay.total_time,
            "migrate {} vs stay {}",
            go.total_time,
            stay.total_time
        );
    }
}
