//! Jacobi heat diffusion — a third application, exercising halo-exchange
//! communication (QR broadcasts, N-body all-gathers; stencils exchange
//! only with neighbours).
//!
//! A 2-D Laplace problem on an `n × n` grid with fixed boundary values
//! (hot top edge), solved by Jacobi iteration. Rows are block-partitioned
//! over the ranks; each iteration exchanges one halo row with each
//! neighbour (iteration-tagged, so the swap layer's unordered
//! communicators are safe) and relaxes the interior. Like the N-body code
//! it is *swap-capable*: the per-rank state (iteration counter + owned
//! rows) travels on a process swap.

use grads_mpi::Comm;
use grads_sim::prelude::*;

/// Jacobi configuration.
#[derive(Debug, Clone)]
pub struct JacobiConfig {
    /// Grid edge length (including boundary).
    pub n: usize,
    /// Iterations to run.
    pub iters: u64,
    /// Temperature of the top boundary edge.
    pub hot: f64,
    /// Virtual flop charge per interior cell per iteration.
    pub flops_per_cell: f64,
}

impl Default for JacobiConfig {
    fn default() -> Self {
        JacobiConfig {
            n: 64,
            iters: 200,
            hot: 1.0,
            flops_per_cell: 6.0,
        }
    }
}

/// Row range `[lo, hi)` of interior rows owned by `rank` (interior rows
/// are `1..n-1`).
pub fn row_slice(n: usize, p: usize, rank: usize) -> (usize, usize) {
    let interior = n - 2;
    let base = interior / p;
    let extra = interior % p;
    let lo = 1 + rank * base + rank.min(extra);
    let hi = lo + base + usize::from(rank < extra);
    (lo, hi)
}

/// Per-rank state: owned rows plus halo rows above and below.
#[derive(Clone)]
pub struct JacobiState {
    /// Current iteration.
    pub iter: u64,
    /// Owned interior row range `[lo, hi)`.
    pub rows: (usize, usize),
    /// Local storage: rows `lo-1 ..= hi`, each of length `n`.
    pub u: Vec<f64>,
}

impl JacobiState {
    /// Initial state for a rank: zero interior, hot top edge.
    #[allow(clippy::needless_range_loop)]
    pub fn new(cfg: &JacobiConfig, p: usize, rank: usize) -> Self {
        let (lo, hi) = row_slice(cfg.n, p, rank);
        let local_rows = hi - lo + 2; // plus halos
        let mut u = vec![0.0; local_rows * cfg.n];
        if lo == 1 {
            // Row 0 (the top boundary) is this rank's upper halo.
            for j in 0..cfg.n {
                u[j] = cfg.hot;
            }
        }
        JacobiState {
            iter: 0,
            rows: (lo, hi),
            u,
        }
    }

    fn row(&self, cfg: &JacobiConfig, global_row: usize) -> &[f64] {
        let local = global_row + 1 - self.rows.0;
        &self.u[local * cfg.n..(local + 1) * cfg.n]
    }
}

const TAG_HALO_NS: u64 = 1 << 29;

/// One Jacobi iteration on one rank: halo exchange, then relax. Returns
/// `true` when the configured iteration count is reached. Rank 0 traces
/// `("jacobi_iter", iter)`.
pub fn jacobi_step(
    ctx: &mut Ctx,
    comm: &mut Comm,
    cfg: &JacobiConfig,
    st: &mut JacobiState,
) -> bool {
    let n = cfg.n;
    let (lo, hi) = st.rows;
    let p = comm.size();
    let me = comm.rank();
    let row_bytes = 8.0 * n as f64;
    let tag = TAG_HALO_NS + st.iter;
    // Exchange halos with neighbours (eager sends; no deadlock).
    if me > 0 {
        let top_row: Vec<f64> = st.row(cfg, lo).to_vec();
        comm.isend(ctx, me - 1, tag, row_bytes, Box::new(top_row));
    }
    if me + 1 < p {
        let bottom_row: Vec<f64> = st.row(cfg, hi - 1).to_vec();
        comm.isend(ctx, me + 1, tag, row_bytes, Box::new(bottom_row));
    }
    if me > 0 {
        let above: Vec<f64> = comm.recv_t(ctx, me - 1, tag);
        st.u[..n].copy_from_slice(&above);
    }
    if me + 1 < p {
        let below: Vec<f64> = comm.recv_t(ctx, me + 1, tag);
        let last = st.u.len() - n;
        st.u[last..].copy_from_slice(&below);
    }
    // Relax the interior (Jacobi: read old, write new).
    let old = st.u.clone();
    for gr in lo..hi {
        let l = gr + 1 - lo;
        for j in 1..n - 1 {
            st.u[l * n + j] = 0.25
                * (old[(l - 1) * n + j]
                    + old[(l + 1) * n + j]
                    + old[l * n + j - 1]
                    + old[l * n + j + 1]);
        }
    }
    comm.compute(ctx, (hi - lo) as f64 * (n - 2) as f64 * cfg.flops_per_cell);
    if me == 0 {
        ctx.trace("jacobi_iter", st.iter as f64);
    }
    st.iter += 1;
    st.iter >= cfg.iters
}

/// Serial reference solution (for verification).
#[allow(clippy::needless_range_loop)] // stencil code reads clearest indexed
pub fn jacobi_serial(cfg: &JacobiConfig) -> Vec<f64> {
    let n = cfg.n;
    let mut u = vec![0.0; n * n];
    for j in 0..n {
        u[j] = cfg.hot;
    }
    for _ in 0..cfg.iters {
        let old = u.clone();
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                u[i * n + j] = 0.25
                    * (old[(i - 1) * n + j]
                        + old[(i + 1) * n + j]
                        + old[i * n + j - 1]
                        + old[i * n + j + 1]);
            }
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_mpi::{launch, launch_swap_world};
    use grads_sim::topology::{GridBuilder, HostSpec};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn grid(speeds: &[f64]) -> (Grid, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        b.local_link(c, 1e8, 1e-4);
        let hs: Vec<HostId> = speeds
            .iter()
            .map(|&s| b.add_host(c, &HostSpec::with_speed(s)))
            .collect();
        (b.build().unwrap(), hs)
    }

    #[test]
    fn row_slices_partition_interior() {
        for (n, p) in [(10, 3), (64, 4), (9, 7)] {
            let mut covered = 0;
            for r in 0..p {
                let (lo, hi) = row_slice(n, p, r);
                assert!(lo >= 1 && hi < n);
                covered += hi - lo;
                if r > 0 {
                    assert_eq!(lo, row_slice(n, p, r - 1).1);
                }
            }
            assert_eq!(covered, n - 2);
        }
    }

    #[test]
    fn serial_obeys_maximum_principle() {
        let cfg = JacobiConfig {
            n: 32,
            iters: 500,
            ..Default::default()
        };
        let u = jacobi_serial(&cfg);
        for (k, &v) in u.iter().enumerate() {
            assert!(
                (0.0..=1.0 + 1e-12).contains(&v),
                "cell {k} out of range: {v}"
            );
        }
        // Heat has diffused: an interior cell near the top edge is warm.
        assert!(u[2 * 32 + 16] > 0.3);
        // And the centre is warmer than the bottom.
        assert!(u[16 * 32 + 16] > u[29 * 32 + 16]);
    }

    /// Gather the distributed field on rank 0 and compare to serial.
    #[allow(clippy::needless_range_loop)]
    fn run_parallel(p: usize, cfg: &JacobiConfig) -> Vec<f64> {
        let (g, hs) = grid(&vec![1e9; p]);
        let mut eng = Engine::new(g);
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = out.clone();
        let cfg2 = cfg.clone();
        launch(&mut eng, "jac", &hs, move |ctx, comm| {
            let mut st = JacobiState::new(&cfg2, comm.size(), comm.rank());
            while !jacobi_step(ctx, comm, &cfg2, &mut st) {}
            // Gather owned rows at rank 0.
            let n = cfg2.n;
            let (lo, hi) = st.rows;
            let mine: Vec<f64> = st.u[n..(hi - lo + 1) * n].to_vec();
            let chunks = comm.gather_t(ctx, 0, 8.0 * mine.len() as f64, (lo, mine));
            if let Some(chunks) = chunks {
                let mut full = vec![0.0; n * n];
                for j in 0..n {
                    full[j] = cfg2.hot;
                }
                for (lo_r, rows) in chunks {
                    full[lo_r * n..lo_r * n + rows.len()].copy_from_slice(&rows);
                }
                *out2.lock() = full;
            }
        });
        eng.run();
        let v = out.lock().clone();
        v
    }

    #[test]
    fn parallel_matches_serial() {
        let cfg = JacobiConfig {
            n: 24,
            iters: 60,
            ..Default::default()
        };
        let serial = jacobi_serial(&cfg);
        for p in [1usize, 2, 3, 5] {
            let par = run_parallel(p, &cfg);
            assert_eq!(par.len(), serial.len(), "p = {p}");
            for (k, (a, b)) in par.iter().zip(&serial).enumerate() {
                assert!((a - b).abs() < 1e-12, "p = {p}, cell {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn swap_capable_and_result_preserved() {
        // Run in a swap world with a mid-run swap; the final field (from a
        // post-run serial comparison on iteration count) must match.
        let cfg = JacobiConfig {
            n: 24,
            iters: 80,
            flops_per_cell: 2e4, // slow enough that the swap lands mid-run
            ..Default::default()
        };
        let (g, hs) = grid(&[1e9, 1e9, 1e9]);
        let mut eng = Engine::new(g);
        let checksum = Arc::new(Mutex::new(0.0f64));
        let cs2 = checksum.clone();
        let cfg2 = cfg.clone();
        let sw = launch_swap_world(
            &mut eng,
            "jac",
            &hs,
            2,
            8.0 * (cfg.n * cfg.n) as f64,
            {
                let cfg = cfg.clone();
                move |logical| JacobiState::new(&cfg, 2, logical)
            },
            move |ctx, comm, st| {
                let fin = jacobi_step(ctx, comm, &cfg2, st);
                if fin && comm.rank() == 0 {
                    // Checksum of the owned rows.
                    let s: f64 = st.u.iter().sum();
                    *cs2.lock() = s;
                }
                fin
            },
        );
        let sw2 = sw.clone();
        eng.spawn("controller", hs[0], move |ctx| {
            ctx.sleep(0.05);
            sw2.request_swap(1, 2).unwrap();
        });
        eng.run();
        assert_eq!(sw.swaps_done(), 1);
        // Compare against a no-swap run of the same decomposition.
        let (g2, hs2) = grid(&[1e9, 1e9]);
        let mut eng2 = Engine::new(g2);
        let checksum2 = Arc::new(Mutex::new(0.0f64));
        let cs3 = checksum2.clone();
        let cfg3 = cfg.clone();
        grads_mpi::launch(&mut eng2, "jac-ref", &hs2, move |ctx, comm| {
            let mut st = JacobiState::new(&cfg3, comm.size(), comm.rank());
            while !jacobi_step(ctx, comm, &cfg3, &mut st) {}
            if comm.rank() == 0 {
                *cs3.lock() = st.u.iter().sum();
            }
        });
        eng2.run();
        let a = *checksum.lock();
        let b = *checksum2.lock();
        assert!(
            (a - b).abs() < 1e-9,
            "swap changed the numerics: {a} vs {b}"
        );
    }
}
