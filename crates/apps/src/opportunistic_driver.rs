//! Opportunistic rescheduling, end to end (§4.1.1).
//!
//! *"Additionally, the rescheduler periodically checks for a GrADS
//! application that has recently completed. If it finds one, the
//! rescheduler determines if another application can obtain performance
//! benefits if it is migrated to the newly freed resources. This is called
//! opportunistic rescheduling."*
//!
//! Scenario: application B occupies the fast cluster, so application A is
//! scheduled onto the slow one. No contract is violated — A runs exactly
//! as predicted — so migration-on-request never fires. When B finishes and
//! frees the fast cluster, the periodic opportunistic rescheduler notices,
//! evaluates A on the freed resources, and migrates it.

use crate::qr::{restore, QrConfig, QrLocal};
use crate::qr_driver::{qr_step, QrCop, QrRunning};
use grads_mpi::launch_from;
use grads_nws::{ForecastSnapshot, NwsService};
use grads_reschedule::{opportunistic_check, MigrationRescheduler, Reschedulable};
use grads_sched::SchedTune;
use grads_sim::prelude::*;
use grads_srs::{IbpStorage, Rss, Srs};
use parking_lot::Mutex;
use std::sync::Arc;

/// Configuration of the opportunistic-rescheduling experiment.
#[derive(Clone)]
pub struct OppExperimentConfig {
    /// Application A (the long-running beneficiary).
    pub qr: QrConfig,
    /// Virtual time at which application B releases the fast cluster.
    pub b_finishes_at: f64,
    /// Opportunistic rescheduler poll period.
    pub poll_period: f64,
    /// Minimum predicted benefit to migrate, seconds.
    pub min_benefit: f64,
    /// Virtual-time cap.
    pub t_max: f64,
}

impl Default for OppExperimentConfig {
    fn default() -> Self {
        OppExperimentConfig {
            qr: QrConfig {
                n_nominal: 12_000,
                n_real: 64,
                block: 1,
                poll_every: 2,
                seed: 9,
                efficiency: 0.4,
            },
            b_finishes_at: 200.0,
            poll_period: 30.0,
            min_benefit: 0.0,
            t_max: 100_000.0,
        }
    }
}

/// Result of the experiment.
#[derive(Debug, Clone)]
pub struct OppExperimentResult {
    /// Did the opportunistic rescheduler migrate A?
    pub migrated: bool,
    /// When the migration was initiated, if it was.
    pub migrated_at: Option<f64>,
    /// Total time of application A.
    pub total_time: f64,
    /// Final hosts of A.
    pub final_hosts: Vec<HostId>,
}

/// Run the experiment. `slow_hosts` is where A starts (B "occupies" the
/// fast cluster until `b_finishes_at`, modelled as the fast hosts being
/// unavailable to A's mapper before then).
pub fn run_opportunistic_experiment(
    grid: Grid,
    slow_hosts: &[HostId],
    fast_hosts: &[HostId],
    ecfg: OppExperimentConfig,
) -> OppExperimentResult {
    let mut eng = Engine::new(grid.clone());
    let nws = Arc::new(Mutex::new(NwsService::new()));
    let srs = Srs::new("qr-opp", Rss::new(), IbpStorage::default());
    let done = Arc::new(Mutex::new(false));
    let history: Arc<Mutex<Vec<(f64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let migrated_at: Arc<Mutex<Option<f64>>> = Arc::new(Mutex::new(None));

    // Slots: one rank per core.
    let slots = |hosts: &[HostId]| -> Vec<HostId> {
        let mut v = Vec::new();
        for &h in hosts {
            for _ in 0..grid.host(h).cores {
                v.push(h);
            }
        }
        v
    };
    let slow_slots = slots(slow_hosts);
    let fast_slots = slots(fast_hosts);

    // Application B: occupies the fast cluster (pure load) until it
    // "recently completed".
    for &h in fast_hosts {
        eng.add_load_window(h, 0.0, Some(ecfg.b_finishes_at), grid.host(h).cores as f64);
    }

    // The manager: launch A on the slow cluster, run the opportunistic
    // rescheduler loop, migrate when it says so.
    let grid2 = grid.clone();
    let out: Arc<Mutex<Option<OppExperimentResult>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let mgr_host = slow_hosts[0];
    let (done_m, history_m, migrated_m, nws_m) = (
        done.clone(),
        history.clone(),
        migrated_at.clone(),
        nws.clone(),
    );
    let b_end = ecfg.b_finishes_at;
    eng.spawn("opp-manager", mgr_host, move |ctx| {
        let t_begin = ctx.now();
        let cop = QrCop {
            cfg: ecfg.qr.clone(),
            min_procs: 2,
            max_procs: 8,
            tune: SchedTune::default(),
            shared_snap: grads_nws::SharedSnapshot::new(),
            snap_trace: Arc::new(Mutex::new(Vec::new())),
            attr_weights: Arc::new(Mutex::new(None)),
        };
        let mut hosts = slow_slots.clone();
        let mut epoch = 0u64;
        loop {
            history_m.lock().clear();
            let cfgw = ecfg.qr.clone();
            let srsw = srs.clone();
            let done_w = done_m.clone();
            let history_w = history_m.clone();
            launch_from(
                ctx,
                &format!("qr-opp-e{epoch}"),
                &hosts,
                epoch,
                move |rctx, comm| {
                    let restored = if srsw.has_checkpoint("A") {
                        restore(rctx, comm, &cfgw, &srsw)
                    } else {
                        None
                    };
                    let (mut local, start) = match restored {
                        Some((l, s)) => (l, s),
                        None => (QrLocal::generate(&cfgw, comm.rank(), comm.size()), 0),
                    };
                    if comm.rank() == 0 {
                        let t = rctx.now();
                        history_w.lock().push((t, start));
                    }
                    let last = cfgw.n_real.saturating_sub(1);
                    let mut step = start;
                    while step < last {
                        let end = (step + cfgw.poll_every.max(1)).min(last);
                        // Collective stop check at the chunk boundary.
                        let stop = if comm.size() > 1 {
                            comm.bcast_t(
                                rctx,
                                0,
                                16.0,
                                (comm.rank() == 0).then(|| srsw.should_stop() && step > start),
                            )
                        } else {
                            srsw.should_stop() && step > start
                        };
                        if stop {
                            crate::qr::checkpoint(rctx, comm, &cfgw, &local, &srsw, step);
                            return;
                        }
                        for k in step..end {
                            qr_step(rctx, comm, &cfgw, &mut local, k);
                        }
                        step = end;
                        if comm.rank() == 0 {
                            let t = rctx.now();
                            history_w.lock().push((t, step));
                        }
                    }
                    if comm.rank() == 0 {
                        *done_w.lock() = true;
                    }
                },
            );

            // Opportunistic polling loop: watch for freed resources.
            let migrate_to: Option<Vec<HostId>> = loop {
                ctx.sleep(ecfg.poll_period);
                if *done_m.lock() {
                    break None;
                }
                if ctx.now() > ecfg.t_max {
                    *done_m.lock() = true;
                    break None;
                }
                // "Recently completed": B's release time has passed and we
                // have not migrated yet.
                if ctx.now() < b_end || migrated_m.lock().is_some() {
                    continue;
                }
                let running = QrRunning {
                    cop: cop.clone(),
                    history: history_m.clone(),
                    hosts: hosts.clone(),
                    restart_fixed_s: 30.0,
                };
                let rescheduler = MigrationRescheduler {
                    min_benefit: ecfg.min_benefit,
                    ..Default::default()
                };
                let n = nws_m.lock();
                // One snapshot per opportunistic poll: every decision
                // term reads the same frozen forecasts (bit-identical to
                // querying the live service at this instant).
                let snap = ForecastSnapshot::capture(&grid2, &n);
                let apps: Vec<&dyn Reschedulable> = vec![&running];
                if let Some((_, d)) =
                    opportunistic_check(&rescheduler, &apps, &fast_slots, &grid2, &snap)
                {
                    if d.migrate {
                        drop(n);
                        let t = ctx.now();
                        *migrated_m.lock() = Some(t);
                        srs.rss.request_stop();
                        // Wait for all ranks to checkpoint.
                        loop {
                            ctx.sleep(5.0);
                            if srs.rss.stop_acks() >= hosts.len() || *done_m.lock() {
                                break;
                            }
                        }
                        break Some(d.candidate_hosts.clone());
                    }
                }
            };
            match migrate_to {
                Some(new_hosts) if !*done_m.lock() => {
                    srs.rss.begin_restart();
                    epoch += 1;
                    hosts = new_hosts;
                }
                _ => break,
            }
        }
        let migrated_time = *migrated_m.lock();
        *out2.lock() = Some(OppExperimentResult {
            migrated: migrated_time.is_some(),
            migrated_at: migrated_time,
            total_time: ctx.now() - t_begin,
            final_hosts: hosts,
        });
    });

    // NWS sensors everywhere (the rescheduler needs availability of the
    // freed hosts).
    let all: Vec<HostId> = (0..grid.hosts().len() as u32).map(HostId).collect();
    for &h in &all {
        let nws2 = nws.clone();
        let done2 = done.clone();
        let speed = grid.host(h).speed;
        eng.spawn(&format!("nws-sensor-{h}"), h, move |ctx| {
            grads_nws::run_cpu_sensor(ctx, &nws2, speed, 1e6, 10.0, &move || *done2.lock());
        });
    }

    eng.run_until(ecfg.t_max * 1.2);
    let r = out.lock().take().expect("manager finished");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::{GridBuilder, HostSpec};

    /// Slow cluster (A's initial home) + fast cluster (B's, freed later).
    fn setup() -> (Grid, Vec<HostId>, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let slow = b.cluster("SLOW");
        b.local_link(slow, 1e8, 1e-4);
        let s = b.add_hosts(slow, 4, &HostSpec::with_speed(4e8));
        let fast = b.cluster("FAST");
        b.local_link(fast, 1e8, 1e-4);
        let f = b.add_hosts(fast, 4, &HostSpec::with_speed(2e9));
        b.connect(slow, fast, 1e7, 0.01);
        (b.build().unwrap(), s, f)
    }

    #[test]
    fn migrates_to_freed_fast_cluster() {
        let (grid, slow, fast) = setup();
        let r = run_opportunistic_experiment(grid, &slow, &fast, OppExperimentConfig::default());
        assert!(r.migrated, "{r:?}");
        let t = r.migrated_at.unwrap();
        assert!(t >= 200.0, "migration after B finished: {t}");
        // Final hosts are in the fast cluster.
        assert!(
            r.final_hosts.iter().all(|h| fast.contains(h)),
            "{:?}",
            r.final_hosts
        );
    }

    #[test]
    fn no_migration_when_b_never_finishes() {
        let (grid, slow, fast) = setup();
        let cfg = OppExperimentConfig {
            b_finishes_at: 1e9,
            t_max: 30_000.0,
            ..Default::default()
        };
        let r = run_opportunistic_experiment(grid, &slow, &fast, cfg);
        assert!(!r.migrated, "{r:?}");
        assert!(r.final_hosts.iter().all(|h| slow.contains(h)));
    }

    #[test]
    fn opportunistic_migration_pays() {
        let (grid, slow, fast) = setup();
        let with = run_opportunistic_experiment(
            grid.clone(),
            &slow,
            &fast,
            OppExperimentConfig::default(),
        );
        let never = OppExperimentConfig {
            b_finishes_at: 1e9,
            t_max: 60_000.0,
            ..Default::default()
        };
        let without = run_opportunistic_experiment(grid, &slow, &fast, never);
        assert!(
            with.total_time < without.total_time * 0.8,
            "opportunistic {} vs stay {}",
            with.total_time,
            without.total_time
        );
    }
}
