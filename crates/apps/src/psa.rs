//! Parameter-sweep application (PSA) scheduling — the lineage of the
//! paper's heuristics.
//!
//! The min-min / max-min / sufferage heuristics the GrADS workflow
//! scheduler applies come from Casanova, Legrand, Zagorodnov & Berman,
//! *"Heuristics for scheduling parameter sweep applications in grid
//! environments"* (HCW 2000) — the paper's citation \[3\]. That work also
//! introduced **XSufferage**: when tasks share large input files, plain
//! sufferage under-values cluster-level file reuse, because two hosts in
//! the same cluster look like distinct alternatives even though a staged
//! file serves both; XSufferage computes sufferage over *cluster-level*
//! best completion times instead.
//!
//! This module reproduces that setting on our substrate: a sweep of
//! independent tasks, each needing one large shared input file (plus a
//! small unique input) staged from a storage host, with cluster-level
//! file caching — scheduled by all four heuristics and executable on the
//! emulator.

use grads_nws::NwsService;
use grads_sim::prelude::*;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Sweep generation parameters.
#[derive(Debug, Clone)]
pub struct PsaConfig {
    /// Number of independent tasks.
    pub n_tasks: usize,
    /// Number of distinct shared input files.
    pub n_files: usize,
    /// Size of each shared input file, bytes.
    pub file_bytes: f64,
    /// Unique per-task input, bytes.
    pub unique_bytes: f64,
    /// Task compute cost range, flops.
    pub flops: (f64, f64),
    /// Generation seed.
    pub seed: u64,
}

impl Default for PsaConfig {
    fn default() -> Self {
        PsaConfig {
            n_tasks: 60,
            n_files: 6,
            file_bytes: 2e8,
            unique_bytes: 1e6,
            flops: (5e9, 5e10),
            seed: 17,
        }
    }
}

/// One sweep task.
#[derive(Debug, Clone, Copy)]
pub struct PsaTask {
    /// Compute cost, flops.
    pub flops: f64,
    /// Index of the shared input file it needs.
    pub file: usize,
    /// Unique input volume, bytes.
    pub unique_bytes: f64,
}

/// A generated sweep workload.
#[derive(Debug, Clone)]
pub struct PsaWorkload {
    /// The tasks.
    pub tasks: Vec<PsaTask>,
    /// Shared file sizes, bytes, by file index.
    pub files: Vec<f64>,
}

/// Generate a deterministic sweep.
pub fn generate(cfg: &PsaConfig) -> PsaWorkload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let files = vec![cfg.file_bytes; cfg.n_files];
    let tasks = (0..cfg.n_tasks)
        .map(|_| PsaTask {
            flops: rng.gen_range(cfg.flops.0..cfg.flops.1),
            file: rng.gen_range(0..cfg.n_files),
            unique_bytes: cfg.unique_bytes,
        })
        .collect();
    PsaWorkload { tasks, files }
}

/// The scheduling strategies of HCW 2000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsaStrategy {
    /// Smallest best completion time first.
    MinMin,
    /// Largest best completion time first.
    MaxMin,
    /// Largest host-level sufferage first.
    Sufferage,
    /// Largest *cluster-level* sufferage first (file-reuse aware).
    XSufferage,
    /// Tasks dealt to hosts in order (baseline).
    RoundRobin,
}

impl PsaStrategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PsaStrategy::MinMin => "min-min",
            PsaStrategy::MaxMin => "max-min",
            PsaStrategy::Sufferage => "sufferage",
            PsaStrategy::XSufferage => "xsufferage",
            PsaStrategy::RoundRobin => "round-robin",
        }
    }

    /// All strategies.
    pub fn all() -> [PsaStrategy; 5] {
        [
            PsaStrategy::MinMin,
            PsaStrategy::MaxMin,
            PsaStrategy::Sufferage,
            PsaStrategy::XSufferage,
            PsaStrategy::RoundRobin,
        ]
    }
}

/// A complete sweep schedule.
#[derive(Debug, Clone)]
pub struct PsaSchedule {
    /// Host (index into the scheduler's host list) per task.
    pub assignment: Vec<usize>,
    /// Predicted per-task completion times.
    pub finish: Vec<f64>,
    /// Predicted makespan.
    pub makespan: f64,
    /// Strategy used.
    pub strategy: &'static str,
}

/// Completion-time model state shared by all strategies: per-host ready
/// times plus per-(cluster, file) staged-availability times.
struct GanttState<'a> {
    grid: &'a Grid,
    nws: &'a NwsService,
    hosts: &'a [HostId],
    storage: HostId,
    ready: Vec<f64>,
    staged: HashMap<(ClusterId, usize), f64>,
    /// The storage host's uplink serves one staging transfer at a time in
    /// this model; ignoring that contention makes aggressive-staging
    /// schedules look better than they run.
    storage_busy: f64,
}

impl<'a> GanttState<'a> {
    /// Completion time of `task` on host index `h`, given current state.
    fn ct(&self, task: &PsaTask, h: usize, files: &[f64]) -> f64 {
        let host = self.hosts[h];
        let cluster = self.grid.host(host).cluster;
        let file_ready = match self.staged.get(&(cluster, task.file)) {
            Some(&t) => t,
            None => {
                self.ready[h].max(self.storage_busy)
                    + self
                        .nws
                        .transfer_time(self.grid, self.storage, host, files[task.file])
            }
        };
        let unique = self
            .nws
            .transfer_time(self.grid, self.storage, host, task.unique_bytes);
        let start = self.ready[h].max(file_ready) + unique;
        start + task.flops / self.nws.effective_speed(self.grid, host).max(1.0)
    }

    /// Commit `task` to host index `h`; returns its completion time.
    fn commit(&mut self, task: &PsaTask, h: usize, files: &[f64]) -> f64 {
        let host = self.hosts[h];
        let cluster = self.grid.host(host).cluster;
        let file_ready = match self.staged.get(&(cluster, task.file)) {
            Some(&t) => t,
            None => {
                let t = self.ready[h].max(self.storage_busy)
                    + self
                        .nws
                        .transfer_time(self.grid, self.storage, host, files[task.file]);
                self.staged.insert((cluster, task.file), t);
                self.storage_busy = t;
                t
            }
        };
        let unique = self
            .nws
            .transfer_time(self.grid, self.storage, host, task.unique_bytes);
        let start = self.ready[h].max(file_ready) + unique;
        let finish = start + task.flops / self.nws.effective_speed(self.grid, host).max(1.0);
        self.ready[h] = finish;
        finish
    }
}

/// Schedule a sweep onto `hosts`, staging inputs from `storage`.
pub fn schedule_psa(
    workload: &PsaWorkload,
    grid: &Grid,
    nws: &NwsService,
    hosts: &[HostId],
    storage: HostId,
    strategy: PsaStrategy,
) -> PsaSchedule {
    let nt = workload.tasks.len();
    let nh = hosts.len();
    assert!(nh > 0, "need hosts");
    let mut st = GanttState {
        grid,
        nws,
        hosts,
        storage,
        ready: vec![0.0; nh],
        staged: HashMap::new(),
        storage_busy: 0.0,
    };
    let mut assignment = vec![usize::MAX; nt];
    let mut finish = vec![0.0; nt];

    if strategy == PsaStrategy::RoundRobin {
        for (t, task) in workload.tasks.iter().enumerate() {
            let h = t % nh;
            assignment[t] = h;
            finish[t] = st.commit(task, h, &workload.files);
        }
    } else {
        let mut remaining: Vec<usize> = (0..nt).collect();
        while !remaining.is_empty() {
            // Best (and comparison) completion times per remaining task.
            let mut pick: Option<(usize, usize, f64, f64)> = None; // (slot, host, ct, metric)
            for (slot, &t) in remaining.iter().enumerate() {
                let task = &workload.tasks[t];
                let cts: Vec<f64> = (0..nh).map(|h| st.ct(task, h, &workload.files)).collect();
                let (bh, bct) = cts
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(h, &c)| (h, c))
                    .expect("hosts nonempty");
                let metric = match strategy {
                    PsaStrategy::MinMin | PsaStrategy::MaxMin => bct,
                    PsaStrategy::Sufferage => {
                        // Second-best over hosts.
                        let mut second = f64::INFINITY;
                        for (h, &c) in cts.iter().enumerate() {
                            if h != bh {
                                second = second.min(c);
                            }
                        }
                        if second.is_finite() {
                            second - bct
                        } else {
                            f64::INFINITY
                        }
                    }
                    PsaStrategy::XSufferage => {
                        // Cluster-level best cts; sufferage across clusters.
                        let mut best_per_cluster: HashMap<ClusterId, f64> = HashMap::new();
                        for (h, &c) in cts.iter().enumerate() {
                            let cl = grid.host(hosts[h]).cluster;
                            let e = best_per_cluster.entry(cl).or_insert(f64::INFINITY);
                            *e = e.min(c);
                        }
                        let mut vals: Vec<f64> = best_per_cluster.values().copied().collect();
                        vals.sort_by(f64::total_cmp);
                        if vals.len() >= 2 {
                            vals[1] - vals[0]
                        } else {
                            f64::INFINITY
                        }
                    }
                    PsaStrategy::RoundRobin => unreachable!(),
                };
                let better = match (&pick, strategy) {
                    (None, _) => true,
                    (Some((_, _, _, cur)), PsaStrategy::MinMin) => metric < *cur,
                    (Some((_, _, _, cur)), _) => metric > *cur,
                };
                if better {
                    pick = Some((slot, bh, bct, metric));
                }
            }
            let (slot, h, _, _) = pick.expect("remaining nonempty");
            let t = remaining.swap_remove(slot);
            assignment[t] = h;
            finish[t] = st.commit(&workload.tasks[t], h, &workload.files);
        }
    }
    let makespan = finish.iter().fold(0.0f64, |a, &b| a.max(b));
    PsaSchedule {
        assignment,
        finish,
        makespan,
        strategy: strategy.name(),
    }
}

/// Execute a sweep schedule on the emulator: one worker process per host
/// runs its tasks in assignment order, staging shared files through a
/// cluster-level cache (first requester transfers; others wait for it) and
/// unique inputs per task. Returns the emulated makespan.
pub fn execute_psa(
    grid: &Grid,
    workload: &PsaWorkload,
    schedule: &PsaSchedule,
    hosts: &[HostId],
    storage: HostId,
) -> f64 {
    #[derive(Clone, Copy, PartialEq)]
    enum Stage {
        InFlight,
        Ready,
    }
    let cache: Arc<Mutex<HashMap<(ClusterId, usize), Stage>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let mut eng = Engine::new(grid.clone());
    let done_t = Arc::new(Mutex::new(0.0f64));
    for (h, &host) in hosts.iter().enumerate() {
        let my_tasks: Vec<PsaTask> = schedule
            .assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == h)
            .map(|(t, _)| workload.tasks[t])
            .collect();
        if my_tasks.is_empty() {
            continue;
        }
        let files = workload.files.clone();
        let cache2 = cache.clone();
        let done2 = done_t.clone();
        let cluster = grid.host(host).cluster;
        eng.spawn(&format!("psa-worker-{h}"), host, move |ctx| {
            for task in &my_tasks {
                // Shared file: transfer once per cluster.
                let key = (cluster, task.file);
                let must_fetch = {
                    let mut c = cache2.lock();
                    match c.get(&key) {
                        None => {
                            c.insert(key, Stage::InFlight);
                            true
                        }
                        Some(_) => false,
                    }
                };
                if must_fetch {
                    // Pull from storage (route is symmetric).
                    ctx.transfer(storage, files[task.file]);
                    cache2.lock().insert(key, Stage::Ready);
                } else {
                    while cache2.lock()[&key] == Stage::InFlight {
                        ctx.sleep(1.0);
                    }
                }
                ctx.transfer(storage, task.unique_bytes);
                ctx.compute(task.flops);
            }
            let t = ctx.now();
            let mut d = done2.lock();
            if t > *d {
                *d = t;
            }
        });
    }
    eng.run();
    let t = *done_t.lock();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::GridBuilder;

    /// Two compute clusters (one fast, one slow) plus a storage site, with
    /// a slow WAN — the HCW 2000 setting where XSufferage shines.
    fn psa_grid() -> (Grid, Vec<HostId>, HostId) {
        let mut b = GridBuilder::new();
        let st = b.cluster("STORAGE");
        b.local_link(st, 1e8, 1e-4);
        let storage = b.add_host(st, &HostSpec::with_speed(1e9));
        let fast = b.cluster("FAST");
        b.local_link(fast, 1e8, 1e-4);
        let f = b.add_hosts(fast, 4, &HostSpec::with_speed(3e9));
        let slow = b.cluster("SLOW");
        b.local_link(slow, 1e8, 1e-4);
        let s = b.add_hosts(slow, 4, &HostSpec::with_speed(1.5e9));
        b.connect(st, fast, 1e7, 0.02);
        b.connect(st, slow, 1e7, 0.02);
        b.connect(fast, slow, 1e7, 0.01);
        let grid = b.build().unwrap();
        let mut hosts = f;
        hosts.extend(s);
        (grid, hosts, storage)
    }

    #[test]
    fn all_tasks_assigned_everywhere() {
        let (grid, hosts, storage) = psa_grid();
        let nws = NwsService::new();
        let wl = generate(&PsaConfig::default());
        for s in PsaStrategy::all() {
            let sched = schedule_psa(&wl, &grid, &nws, &hosts, storage, s);
            assert_eq!(sched.assignment.len(), wl.tasks.len());
            assert!(
                sched.assignment.iter().all(|&a| a < hosts.len()),
                "{}",
                s.name()
            );
            assert!(sched.makespan > 0.0);
        }
    }

    #[test]
    fn informed_strategies_beat_round_robin() {
        let (grid, hosts, storage) = psa_grid();
        let nws = NwsService::new();
        let wl = generate(&PsaConfig::default());
        let rr = schedule_psa(&wl, &grid, &nws, &hosts, storage, PsaStrategy::RoundRobin);
        for s in [
            PsaStrategy::MinMin,
            PsaStrategy::Sufferage,
            PsaStrategy::XSufferage,
        ] {
            let sched = schedule_psa(&wl, &grid, &nws, &hosts, storage, s);
            assert!(
                sched.makespan <= rr.makespan * 1.05,
                "{}: {} vs rr {}",
                s.name(),
                sched.makespan,
                rr.makespan
            );
        }
    }

    #[test]
    fn xsufferage_exploits_file_reuse() {
        // Large shared files, few of them: cluster-level reuse dominates.
        let (grid, hosts, storage) = psa_grid();
        let nws = NwsService::new();
        let cfg = PsaConfig {
            n_tasks: 40,
            n_files: 4,
            file_bytes: 1e9, // 100 s over the 10 MB/s WAN
            flops: (2e9, 2e10),
            ..Default::default()
        };
        let wl = generate(&cfg);
        let xs = schedule_psa(&wl, &grid, &nws, &hosts, storage, PsaStrategy::XSufferage);
        let suf = schedule_psa(&wl, &grid, &nws, &hosts, storage, PsaStrategy::Sufferage);
        let mm = schedule_psa(&wl, &grid, &nws, &hosts, storage, PsaStrategy::MinMin);
        // The HCW 2000 result, judged on the ground truth (emulated
        // execution): XSufferage at least matches the host-level
        // strategies when file reuse matters.
        let e_xs = execute_psa(&grid, &wl, &xs, &hosts, storage);
        let e_suf = execute_psa(&grid, &wl, &suf, &hosts, storage);
        let e_mm = execute_psa(&grid, &wl, &mm, &hosts, storage);
        assert!(
            e_xs <= e_suf * 1.05,
            "emulated xsufferage {e_xs} vs sufferage {e_suf}"
        );
        assert!(
            e_xs <= e_mm * 1.05,
            "emulated xsufferage {e_xs} vs min-min {e_mm}"
        );
        // File staging counted once per cluster: each file appears in at
        // most 2 clusters' staged sets (by construction of commit()).
        let mut transfers = 0;
        {
            // Recount by re-simulating the commit sequence.
            let mut st = GanttState {
                grid: &grid,
                nws: &nws,
                hosts: &hosts,
                storage,
                ready: vec![0.0; hosts.len()],
                staged: HashMap::new(),
                storage_busy: 0.0,
            };
            for (t, &h) in xs.assignment.iter().enumerate() {
                let before = st.staged.len();
                st.commit(&wl.tasks[t], h, &wl.files);
                if st.staged.len() > before {
                    transfers += 1;
                }
            }
        }
        assert!(
            transfers <= cfg.n_files * 2,
            "at most one staging per (file, cluster): {transfers}"
        );
    }

    #[test]
    fn emulated_execution_tracks_prediction() {
        let (grid, hosts, storage) = psa_grid();
        let nws = NwsService::new();
        let cfg = PsaConfig {
            n_tasks: 24,
            ..Default::default()
        };
        let wl = generate(&cfg);
        let sched = schedule_psa(&wl, &grid, &nws, &hosts, storage, PsaStrategy::XSufferage);
        let measured = execute_psa(&grid, &wl, &sched, &hosts, storage);
        let ratio = measured / sched.makespan;
        assert!(
            (0.6..1.6).contains(&ratio),
            "measured {measured} vs predicted {} (ratio {ratio})",
            sched.makespan
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&PsaConfig::default());
        let b = generate(&PsaConfig::default());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.flops, y.flops);
            assert_eq!(x.file, y.file);
        }
    }
}
