//! Fault-tolerant execution — the paper's §5 future-work direction
//! ("...as well as new capabilities, such as fault tolerance"), built from
//! the pieces the paper already has: SRS checkpoints (taken periodically
//! instead of on demand), IBP stable storage, NWS sensor heartbeats for
//! failure suspicion, and restart-style rescheduling onto surviving hosts.
//!
//! The scenario: a QR factorization runs with periodic checkpoints to a
//! stable depot; a host fails permanently mid-run; the surviving ranks
//! block in their collectives (as real MPI jobs do); the application
//! manager notices the host's sensor heartbeat going stale, declares a
//! failure, and relaunches the application on the surviving hosts from the
//! last periodic checkpoint.

use crate::qr::{restore, write_checkpoint, QrConfig, QrLocal};
use crate::qr_driver::qr_step;
use grads_mpi::launch_from;
use grads_nws::NwsService;
use grads_sim::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

/// Configuration of the failover experiment.
#[derive(Clone)]
pub struct FtExperimentConfig {
    /// Application configuration.
    pub qr: QrConfig,
    /// Index (into the grid host list) of the host that fails.
    pub fail_host: usize,
    /// When it fails, virtual seconds.
    pub fail_at: f64,
    /// Periodic checkpoint cadence, in poll-chunks.
    pub ckpt_every_chunks: usize,
    /// Sensor heartbeat period, seconds.
    pub heartbeat_period: f64,
    /// A host is suspected failed when its heartbeat is older than this.
    pub suspect_after: f64,
    /// Rank-slot bounds for (re)launches.
    pub min_procs: usize,
    /// Rank-slot bounds for (re)launches.
    pub max_procs: usize,
    /// Virtual-time cap.
    pub t_max: f64,
}

impl Default for FtExperimentConfig {
    fn default() -> Self {
        FtExperimentConfig {
            qr: QrConfig {
                n_nominal: 8000,
                n_real: 64,
                block: 1,
                poll_every: 2,
                seed: 3,
                efficiency: 0.4,
            },
            fail_host: 0,
            fail_at: 120.0,
            ckpt_every_chunks: 4,
            heartbeat_period: 10.0,
            suspect_after: 35.0,
            min_procs: 2,
            max_procs: 8,
            t_max: 50_000.0,
        }
    }
}

/// Result of the failover experiment.
#[derive(Debug, Clone)]
pub struct FtExperimentResult {
    /// Did the factorization complete despite the failure?
    pub completed: bool,
    /// Number of failure recoveries (relaunches).
    pub recoveries: usize,
    /// Total virtual time.
    pub total_time: f64,
    /// Elimination steps recomputed because they post-dated the last
    /// checkpoint.
    pub lost_steps: usize,
    /// Hosts of the final incarnation.
    pub final_hosts: Vec<HostId>,
    /// Names of processes that died with the failed host.
    pub died: Vec<String>,
}

/// Per-core rank slots from a live host set, fastest first.
fn slots_from(
    grid: &Grid,
    nws: &NwsService,
    live: &[HostId],
    exclude: HostId,
    max: usize,
) -> Vec<HostId> {
    let mut slots: Vec<HostId> = Vec::new();
    for &h in live {
        if h == exclude {
            continue;
        }
        for _ in 0..grid.host(h).cores {
            slots.push(h);
        }
    }
    slots.sort_by(|&a, &b| {
        nws.effective_speed(grid, b)
            .total_cmp(&nws.effective_speed(grid, a))
            .then(a.cmp(&b))
    });
    slots.truncate(max);
    slots
}

/// Run the failover experiment on a grid. `depot_host` should be a host
/// that does not fail (stable storage).
pub fn run_ft_experiment(
    grid: Grid,
    worker_hosts: &[HostId],
    depot_host: HostId,
    ecfg: FtExperimentConfig,
) -> FtExperimentResult {
    let mut eng = Engine::new(grid.clone());
    let nws = Arc::new(Mutex::new(NwsService::new()));
    let srs = grads_srs::Srs::new(
        "qr-ft",
        grads_srs::Rss::new(),
        grads_srs::IbpStorage::default(),
    )
    .with_stable_depot(depot_host);

    let done = Arc::new(Mutex::new(false));
    let progress: Arc<Mutex<(f64, usize)>> = Arc::new(Mutex::new((0.0, 0)));
    let lost: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));

    // Sensors (heartbeats) on every worker host and the depot.
    let mut sensor_hosts = worker_hosts.to_vec();
    if !sensor_hosts.contains(&depot_host) {
        sensor_hosts.push(depot_host);
    }
    for &h in &sensor_hosts {
        let nws2 = nws.clone();
        let done2 = done.clone();
        let speed = grid.host(h).speed;
        let period = ecfg.heartbeat_period;
        eng.spawn(&format!("nws-sensor-{h}"), h, move |ctx| {
            grads_nws::run_cpu_sensor(ctx, &nws2, speed, 1e6, period, &move || *done2.lock());
        });
    }

    // The failure.
    eng.fail_host_at(worker_hosts[ecfg.fail_host], ecfg.fail_at);

    // The application manager runs on the depot host (stable).
    let grid2 = grid.clone();
    let workers = worker_hosts.to_vec();
    let out: Arc<Mutex<Option<FtExperimentResult>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let (done_m, progress_m, lost_m) = (done.clone(), progress.clone(), lost.clone());
    eng.spawn("ft-manager", depot_host, move |ctx| {
        let t_begin = ctx.now();
        // Give sensors one round so liveness is known.
        ctx.sleep(ecfg.heartbeat_period * 1.5);
        let mut recoveries = 0usize;
        let mut epoch = 0u64;
        let mut final_hosts = Vec::new();
        loop {
            // Choose slots among hosts with fresh heartbeats.
            let hosts = {
                let n = nws.lock();
                let now = ctx.now();
                let live = n.live_hosts(now, ecfg.suspect_after);
                let live_workers: Vec<HostId> = workers
                    .iter()
                    .copied()
                    .filter(|h| live.contains(h))
                    .collect();
                slots_from(&grid2, &n, &live_workers, HostId(u32::MAX), ecfg.max_procs)
            };
            if hosts.len() < ecfg.min_procs {
                break; // not enough survivors
            }
            final_hosts = hosts.clone();
            // Launch (or relaunch) the world.
            let cfgw = ecfg.qr.clone();
            let srsw = srs.clone();
            let done_w = done_m.clone();
            let progress_w = progress_m.clone();
            let lost_w = lost_m.clone();
            let ckpt_every = ecfg.ckpt_every_chunks.max(1);
            launch_from(
                ctx,
                &format!("qr-ft-e{epoch}"),
                &hosts,
                epoch,
                move |rctx, comm| {
                    let restored = if srsw.has_checkpoint("A") {
                        restore(rctx, comm, &cfgw, &srsw)
                    } else {
                        None
                    };
                    let (mut local, start) = match restored {
                        Some((l, s)) => (l, s),
                        None => (QrLocal::generate(&cfgw, comm.rank(), comm.size()), 0),
                    };
                    if comm.rank() == 0 {
                        // Work past the last checkpoint was lost.
                        let cur = progress_w.lock().1;
                        if cur > start {
                            *lost_w.lock() += cur - start;
                        }
                    }
                    let last = cfgw.n_real.saturating_sub(1);
                    let mut step = start;
                    let mut chunk_idx = 0usize;
                    while step < last {
                        let end = (step + cfgw.poll_every.max(1)).min(last);
                        for k in step..end {
                            qr_step(rctx, comm, &cfgw, &mut local, k);
                        }
                        step = end;
                        chunk_idx += 1;
                        if comm.rank() == 0 {
                            let t = rctx.now();
                            *progress_w.lock() = (t, step);
                        }
                        if chunk_idx.is_multiple_of(ckpt_every) && step < last {
                            write_checkpoint(rctx, comm, &cfgw, &local, &srsw, step);
                        }
                    }
                    if comm.rank() == 0 {
                        *done_w.lock() = true;
                    }
                },
            );
            // Watch for completion or failure suspicion on the app hosts.
            let failed = loop {
                ctx.sleep(ecfg.heartbeat_period);
                if *done_m.lock() {
                    break false;
                }
                if ctx.now() > ecfg.t_max {
                    break false;
                }
                let now = ctx.now();
                let n = nws.lock();
                let stale = hosts.iter().any(|&h| {
                    n.last_heartbeat(h)
                        .map(|t| now - t > ecfg.suspect_after)
                        .unwrap_or(true)
                });
                if stale {
                    break true;
                }
            };
            if !failed {
                break;
            }
            recoveries += 1;
            epoch += 1;
            ctx.trace("recovery", recoveries as f64);
            // The dead world's survivors stay blocked in their collectives
            // (as a real MPI job would); the new epoch uses fresh mailbox
            // keys, so no cross-talk.
        }
        *out2.lock() = Some(FtExperimentResult {
            completed: *done_m.lock(),
            recoveries,
            total_time: ctx.now() - t_begin,
            lost_steps: *lost_m.lock(),
            final_hosts,
            died: Vec::new(),
        });
    });

    let report = eng.run_until(ecfg.t_max * 1.2);
    let mut r = out.lock().take().expect("manager finished");
    r.died = report.died;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::macrogrid_qr;

    fn setup() -> (Grid, Vec<HostId>, HostId) {
        let grid = macrogrid_qr();
        let workers = grid.hosts_of("UTK");
        let depot = grid.hosts_of("UIUC")[0];
        (grid, workers, depot)
    }

    #[test]
    fn survives_a_host_failure() {
        let (grid, workers, depot) = setup();
        let cfg = FtExperimentConfig::default();
        let r = run_ft_experiment(grid, &workers, depot, cfg);
        assert!(r.completed, "factorization must finish: {r:?}");
        assert_eq!(r.recoveries, 1, "{r:?}");
        // The failed host is gone from the final incarnation.
        assert!(!r.final_hosts.contains(&HostId(0)), "{:?}", r.final_hosts);
        // The failed host's rank processes (and its sensor) died.
        assert!(!r.died.is_empty());
        assert!(r.died.iter().any(|n| n.starts_with("qr-ft-e0")));
    }

    #[test]
    fn no_failure_means_no_recovery() {
        let (grid, workers, depot) = setup();
        let cfg = FtExperimentConfig {
            fail_at: 1e9, // never
            ..Default::default()
        };
        let r = run_ft_experiment(grid, &workers, depot, cfg);
        assert!(r.completed);
        assert_eq!(r.recoveries, 0);
        assert_eq!(r.lost_steps, 0);
        assert!(r.died.is_empty());
    }

    #[test]
    fn tighter_checkpoint_cadence_loses_less_work() {
        let (grid, workers, depot) = setup();
        let run = |every: usize| {
            let cfg = FtExperimentConfig {
                ckpt_every_chunks: every,
                ..Default::default()
            };
            run_ft_experiment(grid.clone(), &workers, depot, cfg)
        };
        let tight = run(1);
        let loose = run(12);
        assert!(tight.completed && loose.completed);
        assert!(
            tight.lost_steps <= loose.lost_steps,
            "tight {} vs loose {}",
            tight.lost_steps,
            loose.lost_steps
        );
    }

    #[test]
    fn deterministic() {
        let (grid, workers, depot) = setup();
        let r1 = run_ft_experiment(grid.clone(), &workers, depot, FtExperimentConfig::default());
        let r2 = run_ft_experiment(grid, &workers, depot, FtExperimentConfig::default());
        assert_eq!(r1.total_time, r2.total_time);
        assert_eq!(r1.lost_steps, r2.lost_steps);
    }
}
