//! Distributed Householder QR factorization — the ScaLAPACK-analog
//! application of the §4.1 stop/restart experiment.
//!
//! The matrix is distributed over ranks 1-D block-cyclically by columns.
//! Each elimination step the owner of the pivot column computes the
//! Householder reflector (real arithmetic), broadcasts it, and every rank
//! updates its trailing local columns. The factorization is numerically
//! verifiable (`A = QR` reconstruction) and checkpointable through SRS:
//! at poll points the ranks write the matrix (block-cyclic, so N→M
//! redistribution works on restart), the tau vector and the progress
//! counter.
//!
//! **Nominal vs. real sizes.** The paper factors matrices up to
//! N = 12 000 (≈ 2.3 Tflop); executing that for every figure point would
//! swamp the harness. The app therefore computes on a *real* `n_real ×
//! n_real` matrix while charging the emulator the flop and byte costs of
//! the *nominal* size: per real step `k`, flops scale by `(N/n)³` and
//! broadcast/checkpoint bytes by `(N/n)²`, preserving the totals
//! (`4/3·N³` flops, `8·N²`-byte checkpoints) and the cubic/quadratic cost
//! profiles. Tests verify numerics at `n_real = N`. See DESIGN.md.

use grads_mpi::{BlockCyclic, Comm};
use grads_sim::prelude::*;
use grads_srs::Srs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// QR application configuration.
#[derive(Debug, Clone)]
pub struct QrConfig {
    /// Nominal (paper-scale) matrix dimension N.
    pub n_nominal: usize,
    /// Real computed matrix dimension (= `n_nominal` for full-fidelity
    /// runs; smaller for figure sweeps).
    pub n_real: usize,
    /// Column-block size of the block-cyclic distribution.
    pub block: usize,
    /// Poll the SRS stop flag every this many real elimination steps.
    pub poll_every: usize,
    /// Seed for the input matrix.
    pub seed: u64,
    /// Fraction of peak flop rate the kernel achieves (2003-era BLAS on
    /// Pentium III sustained ~40% of peak). Folded into the flop charge.
    pub efficiency: f64,
}

impl QrConfig {
    /// Full-fidelity configuration (real = nominal).
    pub fn full(n: usize, block: usize) -> Self {
        QrConfig {
            n_nominal: n,
            n_real: n,
            block,
            poll_every: 8,
            seed: 42,
            efficiency: 1.0,
        }
    }

    /// Flop-charge scale factor `(N/n)³ / efficiency`.
    pub fn flop_scale(&self) -> f64 {
        let s = self.n_nominal as f64 / self.n_real as f64;
        s * s * s / self.efficiency
    }

    /// Total flop charge of the nominal problem (peak-equivalent flops).
    pub fn charged_flops(&self) -> f64 {
        qr_flops(self.n_nominal as f64) / self.efficiency
    }

    /// Byte scale factor `(N/n)²`.
    pub fn byte_scale(&self) -> f64 {
        let s = self.n_nominal as f64 / self.n_real as f64;
        s * s
    }

    /// Column distribution over `p` ranks.
    pub fn dist(&self, p: usize) -> BlockCyclic {
        BlockCyclic::new(self.n_real, self.block, p)
    }

    /// Element-level distribution (column-major flattening) matching the
    /// column distribution — what SRS checkpoints use, so restarts may
    /// redistribute N→M.
    pub fn elem_dist(&self, p: usize) -> BlockCyclic {
        BlockCyclic::new(self.n_real * self.n_real, self.block * self.n_real, p)
    }

    /// Nominal checkpoint volume: the matrix plus the tau vector, bytes.
    pub fn checkpoint_bytes(&self) -> f64 {
        8.0 * (self.n_nominal as f64 * self.n_nominal as f64 + self.n_nominal as f64)
    }
}

/// Exact flop count of Householder QR on an n×n matrix (leading terms).
pub fn qr_flops(n: f64) -> f64 {
    4.0 / 3.0 * n * n * n
}

/// How a rank's participation ended.
#[derive(Debug, Clone, PartialEq)]
pub enum QrOutcome {
    /// Factorization ran to completion.
    Completed,
    /// The RSS stop flag was honoured: state checkpointed at this step.
    Stopped {
        /// The next real elimination step to execute on restart.
        step: usize,
    },
}

/// Per-rank local state of the factorization.
pub struct QrLocal {
    /// Local columns, column-major (`n_real` rows each), in local index
    /// order of the column distribution.
    pub a: Vec<f64>,
    /// Householder tau values (global, replicated).
    pub tau: Vec<f64>,
    /// Column distribution.
    pub dist: BlockCyclic,
    /// This rank.
    pub rank: usize,
}

impl QrLocal {
    /// Generate this rank's slice of the deterministic random input
    /// matrix.
    pub fn generate(cfg: &QrConfig, rank: usize, p: usize) -> Self {
        let n = cfg.n_real;
        let dist = cfg.dist(p);
        let ncols = dist.local_len(rank);
        let mut a = vec![0.0; n * ncols];
        for lc in 0..ncols {
            let g = dist.global_index(rank, lc);
            // Per-column RNG so the matrix is identical for any p.
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(g as u64));
            for r in 0..n {
                a[lc * n + r] = rng.gen_range(-1.0..1.0);
            }
        }
        QrLocal {
            a,
            tau: vec![0.0; n],
            dist,
            rank,
        }
    }

    /// Local column count.
    pub fn ncols(&self) -> usize {
        self.dist.local_len(self.rank)
    }
}

/// Run the factorization on one rank, from `start_step`, until completion
/// or an SRS stop request. Charges nominal-scale flops and bytes to the
/// emulator; the numerics are real.
#[allow(clippy::needless_range_loop)] // elimination loops read clearest indexed
pub fn run_qr_rank(
    ctx: &mut Ctx,
    comm: &mut Comm,
    cfg: &QrConfig,
    local: &mut QrLocal,
    srs: Option<&Srs>,
    start_step: usize,
) -> QrOutcome {
    let n = cfg.n_real;
    let p = comm.size();
    let fscale = cfg.flop_scale();
    let bscale = cfg.byte_scale();
    let iter_t0 = ctx.now();
    let mut iter_start = iter_t0;
    for k in start_step..n.saturating_sub(1) {
        // Stop poll (the SRS "check if the application needs to be
        // checkpointed and stopped"). The decision is collective — rank 0
        // reads the flag and broadcasts the verdict — because a
        // unilateral exit would deadlock the step broadcasts.
        if k % cfg.poll_every.max(1) == 0 {
            if let Some(srs) = srs {
                let stop = if p > 1 {
                    comm.bcast_t(
                        ctx,
                        0,
                        16.0,
                        (comm.rank() == 0).then(|| srs.should_stop() && k > start_step),
                    )
                } else {
                    srs.should_stop() && k > start_step
                };
                if stop {
                    checkpoint(ctx, comm, cfg, local, srs, k);
                    return QrOutcome::Stopped { step: k };
                }
            }
        }
        let owner = local.dist.owner(k);
        let m = n - k; // reflector length
        let (w, tau, alpha);
        if comm.rank() == owner {
            // Compute the Householder reflector from the pivot column.
            let lc = local.dist.local_index(k);
            let col = &mut local.a[lc * n..(lc + 1) * n];
            let x = &col[k..n];
            let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            let x0 = x[0];
            let a_val = if x0 >= 0.0 { -norm } else { norm };
            let v0 = x0 - a_val;
            let mut wv = vec![1.0; m];
            if v0.abs() > 0.0 && norm > 0.0 {
                for i in 1..m {
                    wv[i] = x[i] / v0;
                }
            } else {
                for i in 1..m {
                    wv[i] = 0.0;
                }
            }
            let wnorm2: f64 = wv.iter().map(|v| v * v).sum();
            let t = if norm > 0.0 { 2.0 / wnorm2 } else { 0.0 };
            // Store R diagonal and the reflector below it.
            col[k] = a_val;
            col[k + 1..k + m].copy_from_slice(&wv[1..]);
            comm.compute(ctx, (4 * m) as f64 * fscale);
            w = wv;
            tau = t;
            alpha = a_val;
        } else {
            w = Vec::new();
            tau = 0.0;
            alpha = 0.0;
        }
        // Broadcast (w, tau) from the owner.
        let bytes = 8.0 * (m as f64 + 2.0) * bscale;
        let (w, tau, _alpha) = if p > 1 {
            comm.bcast_t(
                ctx,
                owner,
                bytes,
                (comm.rank() == owner).then_some((w, tau, alpha)),
            )
        } else {
            (w, tau, alpha)
        };
        local.tau[k] = tau;
        // Update trailing local columns (global index > k).
        let mut updated = 0usize;
        let ncols = local.ncols();
        for lc in 0..ncols {
            let g = local.dist.global_index(local.rank, lc);
            if g <= k {
                continue;
            }
            let col = &mut local.a[lc * n..(lc + 1) * n];
            let mut s = 0.0;
            for i in 0..m {
                s += w[i] * col[k + i];
            }
            s *= tau;
            for i in 0..m {
                col[k + i] -= s * w[i];
            }
            updated += 1;
        }
        comm.compute(ctx, (4 * m * updated) as f64 * fscale);
        // Sensor: report per-step time as the monitored phase, batched to
        // keep sensor volume sane.
        if (k + 1) % cfg.poll_every.max(1) == 0 {
            let now = ctx.now();
            comm.record_phase("qr_steps", now - iter_start);
            iter_start = now;
        }
    }
    QrOutcome::Completed
}

/// Write the full application checkpoint: matrix, tau, and progress, then
/// acknowledge the stop to RSS.
pub fn checkpoint(
    ctx: &mut Ctx,
    comm: &mut Comm,
    cfg: &QrConfig,
    local: &QrLocal,
    srs: &Srs,
    step: usize,
) {
    write_checkpoint(ctx, comm, cfg, local, srs, step);
    srs.rss.ack_stop();
}

/// Write the checkpoint data without acknowledging a stop — used for
/// periodic (fault-tolerance) checkpointing, where the application keeps
/// running afterwards.
pub fn write_checkpoint(
    ctx: &mut Ctx,
    comm: &mut Comm,
    cfg: &QrConfig,
    local: &QrLocal,
    srs: &Srs,
    step: usize,
) {
    let p = comm.size();
    let edist = cfg.elem_dist(p);
    srs.store_distributed(
        ctx,
        "A",
        edist,
        comm.rank(),
        local.a.clone(),
        8.0 * (cfg.n_nominal as f64).powi(2),
    );
    if comm.rank() == 0 {
        srs.store_value(ctx, "tau", local.tau.clone(), 8.0 * cfg.n_nominal as f64);
        srs.store_value(ctx, "step", step as u64, 8.0);
    }
}

/// Restore a rank's state from an SRS checkpoint under a possibly
/// different rank count. Returns the resume step, or `None` if no
/// checkpoint exists.
pub fn restore(
    ctx: &mut Ctx,
    comm: &mut Comm,
    cfg: &QrConfig,
    srs: &Srs,
) -> Option<(QrLocal, usize)> {
    let p = comm.size();
    let edist = cfg.elem_dist(p);
    let a = srs.read_distributed(ctx, "A", edist, comm.rank())?;
    let tau: Vec<f64> = srs.read_value(ctx, "tau")?;
    let step: u64 = srs.read_value(ctx, "step")?;
    Some((
        QrLocal {
            a,
            tau,
            dist: cfg.dist(p),
            rank: comm.rank(),
        },
        step as usize,
    ))
}

/// Gather the factored matrix (R + reflectors) and taus on rank 0 for
/// verification.
pub fn gather_factors(
    ctx: &mut Ctx,
    comm: &mut Comm,
    cfg: &QrConfig,
    local: &QrLocal,
) -> Option<(Vec<f64>, Vec<f64>)> {
    let n = cfg.n_real;
    let chunks = comm.gather_t(
        ctx,
        0,
        8.0 * local.a.len() as f64,
        (local.rank, local.a.clone()),
    )?;
    let mut full = vec![0.0; n * n];
    for (rank, chunk) in chunks {
        let ncols = local.dist.local_len(rank);
        for lc in 0..ncols {
            let g = local.dist.global_index(rank, lc);
            full[g * n..(g + 1) * n].copy_from_slice(&chunk[lc * n..(lc + 1) * n]);
        }
    }
    Some((full, local.tau.clone()))
}

/// Reconstruct `A ≈ Q·R` from the packed factorization (rank-0 side of
/// [`gather_factors`]) and return the max abs error against the original
/// matrix generated from `cfg`.
pub fn verify_reconstruction(cfg: &QrConfig, packed: &[f64], tau: &[f64]) -> f64 {
    let n = cfg.n_real;
    // M starts as R (upper triangle of packed).
    let mut m = vec![0.0; n * n]; // column-major
    for c in 0..n {
        for r in 0..=c {
            m[c * n + r] = packed[c * n + r];
        }
    }
    // Apply H_k for k = n-2 .. 0: M <- (I - tau_k w w^T) M.
    for k in (0..n.saturating_sub(1)).rev() {
        let len = n - k;
        let mut w = vec![0.0; len];
        w[0] = 1.0;
        for i in 1..len {
            w[i] = packed[k * n + k + i];
        }
        let t = tau[k];
        if t == 0.0 {
            continue;
        }
        for c in 0..n {
            let col = &mut m[c * n..(c + 1) * n];
            let mut s = 0.0;
            for i in 0..len {
                s += w[i] * col[k + i];
            }
            s *= t;
            for i in 0..len {
                col[k + i] -= s * w[i];
            }
        }
    }
    // Compare against the regenerated input.
    let mut max_err = 0.0f64;
    for c in 0..n {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(c as u64));
        for r in 0..n {
            let orig: f64 = rng.gen_range(-1.0..1.0);
            max_err = max_err.max((m[c * n + r] - orig).abs());
        }
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_mpi::launch;
    use grads_sim::topology::{GridBuilder, HostSpec};
    use grads_srs::{IbpStorage, Rss};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn grid(n: usize, speed: f64) -> (Grid, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        b.local_link(c, 1e8, 1e-4);
        let hs = b.add_hosts(c, n, &HostSpec::with_speed(speed));
        (b.build().unwrap(), hs)
    }

    fn run_and_verify(p: usize, n: usize, block: usize) -> f64 {
        let (g, hs) = grid(p, 1e9);
        let mut eng = Engine::new(g);
        let cfg = QrConfig::full(n, block);
        let err = Arc::new(Mutex::new(-1.0f64));
        let err2 = err.clone();
        let cfg2 = cfg.clone();
        launch(&mut eng, "qr", &hs, move |ctx, comm| {
            let mut local = QrLocal::generate(&cfg2, comm.rank(), comm.size());
            let out = run_qr_rank(ctx, comm, &cfg2, &mut local, None, 0);
            assert_eq!(out, QrOutcome::Completed);
            if let Some((packed, tau)) = gather_factors(ctx, comm, &cfg2, &local) {
                *err2.lock() = verify_reconstruction(&cfg2, &packed, &tau);
            }
        });
        eng.run();
        let e = *err.lock();
        assert!(e >= 0.0, "verification ran");
        e
    }

    #[test]
    fn qr_correct_single_rank() {
        let e = run_and_verify(1, 24, 4);
        assert!(e < 1e-10, "max reconstruction error {e}");
    }

    #[test]
    fn qr_correct_multi_rank() {
        let e = run_and_verify(3, 30, 4);
        assert!(e < 1e-10, "max reconstruction error {e}");
    }

    #[test]
    fn qr_correct_awkward_sizes() {
        let e = run_and_verify(4, 27, 5);
        assert!(e < 1e-10, "max reconstruction error {e}");
    }

    #[test]
    fn r_is_upper_triangular() {
        let (g, hs) = grid(2, 1e9);
        let mut eng = Engine::new(g);
        let cfg = QrConfig::full(16, 4);
        let packed = Arc::new(Mutex::new(Vec::new()));
        let packed2 = packed.clone();
        let cfg2 = cfg.clone();
        launch(&mut eng, "qr", &hs, move |ctx, comm| {
            let mut local = QrLocal::generate(&cfg2, comm.rank(), comm.size());
            run_qr_rank(ctx, comm, &cfg2, &mut local, None, 0);
            if let Some((full, _)) = gather_factors(ctx, comm, &cfg2, &local) {
                *packed2.lock() = full;
            }
        });
        eng.run();
        let full = packed.lock();
        let n = 16;
        // Reflector entries live below the diagonal; R's diagonal must be
        // nonzero for a random matrix.
        for c in 0..n {
            assert!(full[c * n + c].abs() > 1e-12, "R[{c}][{c}] zero");
        }
    }

    #[test]
    fn nominal_scaling_charges_cubic_time() {
        // Same real size, 4x nominal: virtual time ~64x for compute-bound.
        let time_for = |nominal: usize| {
            let (g, hs) = grid(1, 1e6);
            let mut eng = Engine::new(g);
            let cfg = QrConfig {
                n_nominal: nominal,
                n_real: 16,
                block: 4,
                poll_every: 8,
                seed: 1,
                efficiency: 1.0,
            };
            launch(&mut eng, "qr", &hs, move |ctx, comm| {
                let mut local = QrLocal::generate(&cfg, comm.rank(), comm.size());
                run_qr_rank(ctx, comm, &cfg, &mut local, None, 0);
            });
            eng.run().end_time
        };
        let t1 = time_for(16);
        let t4 = time_for(64);
        let ratio = t4 / t1;
        assert!(
            ratio > 40.0 && ratio < 80.0,
            "expected ~64x scaling, got {ratio}"
        );
    }

    #[test]
    fn checkpoint_restart_same_ranks_is_exact() {
        let (g, hs) = grid(2, 1e9);
        let mut eng = Engine::new(g);
        let cfg = QrConfig::full(24, 4);
        let srs = Srs::new("qr-test", Rss::new(), IbpStorage::default());
        let err = Arc::new(Mutex::new(-1.0f64));
        // Phase 1: run and stop midway.
        let cfg1 = cfg.clone();
        let srs1 = srs.clone();
        srs.rss.request_stop();
        launch(&mut eng, "qr1", &hs, move |ctx, comm| {
            let mut local = QrLocal::generate(&cfg1, comm.rank(), comm.size());
            // Run a few steps before honouring the pre-set stop flag.
            let out = run_qr_rank(ctx, comm, &cfg1, &mut local, Some(&srs1), 0);
            match out {
                QrOutcome::Stopped { step } => assert!(step > 0),
                QrOutcome::Completed => panic!("should have stopped"),
            }
        });
        eng.run();
        assert_eq!(srs.rss.stop_acks(), 2);
        // Phase 2: restart on the same hosts.
        srs.rss.begin_restart();
        let (g2, hs2) = grid(2, 1e9);
        let mut eng2 = Engine::new(g2);
        let cfg2 = cfg.clone();
        let srs2 = srs.clone();
        let err2 = err.clone();
        launch(&mut eng2, "qr2", &hs2, move |ctx, comm| {
            let (mut local, step) = restore(ctx, comm, &cfg2, &srs2).expect("checkpoint");
            let out = run_qr_rank(ctx, comm, &cfg2, &mut local, Some(&srs2), step);
            assert_eq!(out, QrOutcome::Completed);
            if let Some((packed, tau)) = gather_factors(ctx, comm, &cfg2, &local) {
                *err2.lock() = verify_reconstruction(&cfg2, &packed, &tau);
            }
        });
        eng2.run();
        let e = *err.lock();
        assert!((0.0..1e-10).contains(&e), "reconstruction error {e}");
    }

    #[test]
    fn checkpoint_restart_n_to_m_redistributes() {
        // Stop on 2 ranks, restart on 3: the block-cyclic redistribution
        // must hand each new rank exactly its columns.
        let cfg = QrConfig::full(30, 4);
        let srs = Srs::new("qr-n2m", Rss::new(), IbpStorage::default());
        {
            let (g, hs) = grid(2, 1e9);
            let mut eng = Engine::new(g);
            let cfg1 = cfg.clone();
            let srs1 = srs.clone();
            srs.rss.request_stop();
            launch(&mut eng, "qr1", &hs, move |ctx, comm| {
                let mut local = QrLocal::generate(&cfg1, comm.rank(), comm.size());
                let out = run_qr_rank(ctx, comm, &cfg1, &mut local, Some(&srs1), 0);
                assert!(matches!(out, QrOutcome::Stopped { .. }));
            });
            eng.run();
        }
        srs.rss.begin_restart();
        let err = Arc::new(Mutex::new(-1.0f64));
        {
            let (g, hs) = grid(3, 1e9);
            let mut eng = Engine::new(g);
            let cfg2 = cfg.clone();
            let srs2 = srs.clone();
            let err2 = err.clone();
            launch(&mut eng, "qr2", &hs, move |ctx, comm| {
                let (mut local, step) = restore(ctx, comm, &cfg2, &srs2).expect("checkpoint");
                assert_eq!(
                    local.a.len(),
                    local.dist.local_len(comm.rank()) * cfg2.n_real
                );
                let out = run_qr_rank(ctx, comm, &cfg2, &mut local, Some(&srs2), step);
                assert_eq!(out, QrOutcome::Completed);
                if let Some((packed, tau)) = gather_factors(ctx, comm, &cfg2, &local) {
                    *err2.lock() = verify_reconstruction(&cfg2, &packed, &tau);
                }
            });
            eng.run();
        }
        let e = *err.lock();
        assert!((0.0..1e-10).contains(&e), "reconstruction error {e}");
    }

    #[test]
    fn qr_flops_formula() {
        assert!((qr_flops(100.0) - 4.0 / 3.0 * 1e6).abs() < 1.0);
    }
}
