//! Simulated processes and their blocking API.
//!
//! Every simulated process runs on its own OS thread but the kernel grants
//! execution to exactly one process at a time, so simulations are fully
//! deterministic. Application code receives a [`Ctx`] handle and calls
//! blocking primitives (`compute`, `send`, `recv`, `sleep`, ...); each call
//! hands control back to the kernel, which advances virtual time and resumes
//! the process when the operation completes.

use crate::handoff::HandoffSlot;
use crate::topology::HostId;
use crossbeam::channel::{Receiver, Sender};
use std::any::Any;
use std::sync::Arc;

/// Identifies a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Message payload carried by simulated communication. Real data moves
/// between simulated processes; receivers downcast to the concrete type.
pub type Payload = Box<dyn Any + Send>;

/// Entry point of a simulated process.
pub type ProcFn = Box<dyn FnOnce(&mut Ctx) + Send + 'static>;

/// Mailbox address. Higher layers (the MPI crate) hash their richer
/// addressing tuples — (communicator, source, destination, tag) — into this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MailKey(pub u64);

/// How a send interacts with the matching receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Buffered: the wire transfer starts immediately and the sender
    /// continues without waiting (MPI eager protocol).
    Eager,
    /// Synchronous: the transfer starts only when the receiver has posted a
    /// matching receive, and the sender blocks until delivery completes
    /// (MPI rendezvous protocol).
    Rendezvous,
}

/// Requests a process can make of the kernel.
pub(crate) enum Request {
    Now,
    Compute {
        flops: f64,
    },
    Sleep {
        dt: f64,
    },
    Send {
        key: MailKey,
        dst: HostId,
        bytes: f64,
        payload: Payload,
        mode: SendMode,
    },
    Recv {
        key: MailKey,
    },
    TryRecv {
        key: MailKey,
    },
    Transfer {
        dst: HostId,
        bytes: f64,
    },
    Spawn {
        name: String,
        host: HostId,
        f: ProcFn,
    },
    InjectLoad {
        host: HostId,
        amount: f64,
    },
    RemoveLoad {
        host: HostId,
        amount: f64,
    },
    Trace {
        label: Arc<str>,
        value: f64,
    },
    Exit,
    Panic(String),
}

/// Kernel replies that resume a blocked process.
pub(crate) enum Grant {
    Unit,
    Time(f64),
    Payload(Payload),
    MaybePayload(Option<Payload>),
    Proc(ProcId),
    /// The simulation is over; unwind quietly.
    Kill,
}

/// Panic payload used to unwind a killed process. Caught by the process
/// wrapper; never observed by user code.
pub(crate) struct KillToken;

/// Transport between one simulated process and the kernel.
pub(crate) enum Endpoint {
    /// Seed transport: shared request mpsc + per-process grant mpsc.
    Channel {
        req_tx: Sender<(ProcId, Request)>,
        grant_rx: Receiver<Grant>,
    },
    /// Per-process single-slot rendezvous (see [`crate::handoff`]).
    Direct(Arc<HandoffSlot>),
}

/// Handle through which a simulated process interacts with the grid.
pub struct Ctx {
    pub(crate) pid: ProcId,
    pub(crate) host: HostId,
    pub(crate) ep: Endpoint,
    /// Process-local intern cache for trace labels, so repeated `trace`
    /// calls with the same label reuse one allocation. Processes trace a
    /// handful of distinct labels, so a linear scan beats a hash map.
    labels: Vec<Arc<str>>,
}

impl Ctx {
    pub(crate) fn new(pid: ProcId, host: HostId, ep: Endpoint) -> Self {
        Ctx {
            pid,
            host,
            ep,
            labels: Vec::new(),
        }
    }

    fn call(&mut self, req: Request) -> Grant {
        match &self.ep {
            Endpoint::Channel { req_tx, grant_rx } => {
                if req_tx.send((self.pid, req)).is_err() {
                    // Kernel is gone: the simulation ended.
                    std::panic::panic_any(KillToken);
                }
                match grant_rx.recv() {
                    Ok(Grant::Kill) | Err(_) => std::panic::panic_any(KillToken),
                    Ok(g) => g,
                }
            }
            Endpoint::Direct(slot) => {
                slot.send_request(req);
                match slot.wait_grant() {
                    Grant::Kill => std::panic::panic_any(KillToken),
                    g => g,
                }
            }
        }
    }

    /// Block until the kernel issues this process's start grant. Returns
    /// `false` if the kernel instead killed the process (simulation over
    /// before it ever ran). Used only by the engine's thread wrapper.
    pub(crate) fn wait_start(&mut self) -> bool {
        match &self.ep {
            Endpoint::Channel { grant_rx, .. } => {
                matches!(grant_rx.recv(), Ok(Grant::Unit))
            }
            Endpoint::Direct(slot) => matches!(slot.wait_grant(), Grant::Unit),
        }
    }

    /// Fire-and-forget notification to the kernel (Exit/Panic from the
    /// thread wrapper — requests that never receive a grant).
    pub(crate) fn notify(&mut self, req: Request) {
        match &self.ep {
            Endpoint::Channel { req_tx, .. } => {
                let _ = req_tx.send((self.pid, req));
            }
            Endpoint::Direct(slot) => slot.send_request(req),
        }
    }

    fn intern_label(&mut self, label: &str) -> Arc<str> {
        if let Some(l) = self.labels.iter().find(|l| l.as_ref() == label) {
            return l.clone();
        }
        let l: Arc<str> = Arc::from(label);
        self.labels.push(l.clone());
        l
    }

    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The host this process runs on (fixed for the process lifetime;
    /// migration is modelled as termination + restart elsewhere).
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Current virtual time in seconds.
    pub fn now(&mut self) -> f64 {
        match self.call(Request::Now) {
            Grant::Time(t) => t,
            _ => unreachable!("kernel grant mismatch for Now"),
        }
    }

    /// Perform `flops` floating-point operations' worth of work. Blocks for
    /// `flops / rate` virtual seconds, where the rate reflects CPU sharing
    /// with other actions and injected load on this host.
    pub fn compute(&mut self, flops: f64) {
        match self.call(Request::Compute { flops }) {
            Grant::Unit => {}
            _ => unreachable!("kernel grant mismatch for Compute"),
        }
    }

    /// Sleep for `dt` virtual seconds.
    pub fn sleep(&mut self, dt: f64) {
        match self.call(Request::Sleep { dt }) {
            Grant::Unit => {}
            _ => unreachable!("kernel grant mismatch for Sleep"),
        }
    }

    /// Synchronous (rendezvous) send: blocks until the matching receive has
    /// been posted and the wire transfer of `bytes` completes.
    pub fn send(&mut self, key: MailKey, dst: HostId, bytes: f64, payload: Payload) {
        match self.call(Request::Send {
            key,
            dst,
            bytes,
            payload,
            mode: SendMode::Rendezvous,
        }) {
            Grant::Unit => {}
            _ => unreachable!("kernel grant mismatch for Send"),
        }
    }

    /// Eager (buffered) send: the transfer starts now; this call returns
    /// immediately without waiting for the receiver.
    pub fn isend(&mut self, key: MailKey, dst: HostId, bytes: f64, payload: Payload) {
        match self.call(Request::Send {
            key,
            dst,
            bytes,
            payload,
            mode: SendMode::Eager,
        }) {
            Grant::Unit => {}
            _ => unreachable!("kernel grant mismatch for ISend"),
        }
    }

    /// Blocking receive on a mailbox key.
    pub fn recv(&mut self, key: MailKey) -> Payload {
        match self.call(Request::Recv { key }) {
            Grant::Payload(p) => p,
            _ => unreachable!("kernel grant mismatch for Recv"),
        }
    }

    /// Non-blocking receive: returns an already-delivered eager message, if
    /// any. Does not initiate rendezvous transfers.
    pub fn try_recv(&mut self, key: MailKey) -> Option<Payload> {
        match self.call(Request::TryRecv { key }) {
            Grant::MaybePayload(p) => p,
            _ => unreachable!("kernel grant mismatch for TryRecv"),
        }
    }

    /// Raw bulk transfer of `bytes` to another host (no mailbox, no payload).
    /// Blocks until the transfer completes. Used for checkpoint traffic.
    pub fn transfer(&mut self, dst: HostId, bytes: f64) {
        match self.call(Request::Transfer { dst, bytes }) {
            Grant::Unit => {}
            _ => unreachable!("kernel grant mismatch for Transfer"),
        }
    }

    /// Spawn a new simulated process on `host`; it becomes runnable at the
    /// current virtual time, after the current process next blocks.
    pub fn spawn<F>(&mut self, name: &str, host: HostId, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        match self.call(Request::Spawn {
            name: name.to_string(),
            host,
            f: Box::new(f),
        }) {
            Grant::Proc(p) => p,
            _ => unreachable!("kernel grant mismatch for Spawn"),
        }
    }

    /// Add `amount` units of competing CPU load to a host (1.0 = one
    /// CPU-bound process). Used by experiment drivers to create contention.
    pub fn inject_load(&mut self, host: HostId, amount: f64) {
        match self.call(Request::InjectLoad { host, amount }) {
            Grant::Unit => {}
            _ => unreachable!("kernel grant mismatch for InjectLoad"),
        }
    }

    /// Remove previously injected load.
    pub fn remove_load(&mut self, host: HostId, amount: f64) {
        match self.call(Request::RemoveLoad { host, amount }) {
            Grant::Unit => {}
            _ => unreachable!("kernel grant mismatch for RemoveLoad"),
        }
    }

    /// Record a custom (label, value) trace point at the current virtual
    /// time. The run report exposes the full trace; figure harnesses use
    /// this to extract progress series.
    pub fn trace(&mut self, label: &str, value: f64) {
        let label = self.intern_label(label);
        match self.call(Request::Trace { label, value }) {
            Grant::Unit => {}
            _ => unreachable!("kernel grant mismatch for Trace"),
        }
    }
}

/// Hash an addressing tuple into a [`MailKey`]. FNV-1a over the components;
/// collisions across distinct tuples are negligible for emulation scale and
/// would only cause cross-talk between mailboxes, never memory unsafety.
pub fn mail_key(parts: &[u64]) -> MailKey {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in parts {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    MailKey(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mail_key_distinct_tuples() {
        let a = mail_key(&[1, 2, 3]);
        let b = mail_key(&[1, 2, 4]);
        let c = mail_key(&[3, 2, 1]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn mail_key_deterministic() {
        assert_eq!(mail_key(&[7, 7]), mail_key(&[7, 7]));
    }
}
