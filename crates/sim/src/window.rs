//! Scheduling machinery for the windowed (conservative parallel) kernel
//! mode: the window policy knobs and a persistent scoped worker pool.
//!
//! Everything in this module is *scheduling only*. The windowed kernel
//! applies events in exactly the serial order (see the "Parallel kernel"
//! section of DESIGN.md); the pool merely executes disjoint pieces of
//! work — per-shard window drains, partition-disjoint accrual sweeps —
//! whose results are bitwise independent of which thread runs them or in
//! what order. No policy value below can change a simulation result;
//! `windowed_policy_does_not_perturb_results` in the engine tests holds
//! the kernel to that.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for [`KernelMode::Windowed`](crate::engine::KernelMode).
///
/// All fields are dispatch thresholds: they decide *where* work runs
/// (inline on the kernel thread vs. fanned out to the pool) and how much
/// of the event horizon one window may pre-drain, never *what* the work
/// computes. Results are bit-identical under any policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPolicy {
    /// Cap on events pre-drained from one shard per window. Bounds staging
    /// memory when the lookahead horizon is wide (or infinite, as on a
    /// single-cluster grid where no WAN latency bounds the window).
    pub max_drain_per_shard: usize,
    /// Fan a window drain out to the pool only when at least this many
    /// events are pending across all shards; smaller windows drain inline.
    pub min_parallel_drain: usize,
    /// Fan an accrual sweep out to the pool only when at least this many
    /// entities (CPU actions + active flows) would be swept.
    pub min_parallel_accrual: usize,
    /// Dispatch to the pool even on a single-CPU machine, where the
    /// default gating keeps everything inline (concurrency cannot pay
    /// there). Used by tests to force the concurrent paths to execute.
    pub force_parallel: bool,
}

impl Default for WindowPolicy {
    fn default() -> Self {
        WindowPolicy {
            max_drain_per_shard: 4096,
            min_parallel_drain: 256,
            min_parallel_accrual: 512,
            force_parallel: false,
        }
    }
}

/// A borrowed, type-erased unit of batch work.
pub(crate) type Job<'a> = &'a mut (dyn FnMut() + Send);

/// The same type with its lifetime erased for the worker threads. Only
/// ever dereferenced while the owning [`WorkerPool::run_batch`] call is
/// blocked, which keeps the true borrow alive.
type JobStatic = &'static mut (dyn FnMut() + Send);

#[derive(Default)]
struct PoolState {
    /// `jobs.as_mut_ptr()` of the batch being executed, as an address.
    /// Valid exactly while `remaining > 0`.
    jobs: usize,
    njobs: usize,
    /// Next unclaimed job index.
    next: usize,
    /// Jobs claimed-or-unclaimed but not yet finished.
    remaining: usize,
    /// A worker-executed job panicked during the current batch.
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// A persistent pool of `workers` threads executing batches of borrowed
/// jobs. `run_batch` publishes the batch, participates in the work
/// stealing itself, and returns only when every job has finished — which
/// is what makes handing borrowed (lifetime-erased) closures to the
/// worker threads sound.
///
/// Batches are tiny (one job per shard or per worker), so all
/// bookkeeping sits under one mutex; the per-job locking cost is noise
/// next to the work each job does.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with `workers` helper threads (the calling thread makes it
    /// `workers + 1` executors per batch).
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            cv: Condvar::new(),
        });
        let threads = (0..workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sim-window-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn window worker thread")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Number of helper threads.
    pub(crate) fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Execute every job in the batch (on the workers and this thread,
    /// in unspecified assignment) and return once all have finished.
    ///
    /// Jobs must touch only disjoint data — the pool provides no ordering
    /// between them — and a job that panics on a worker thread surfaces
    /// as a panic from this call (the payload itself is reported by the
    /// worker thread's unwind).
    pub(crate) fn run_batch(&self, jobs: &mut [Job<'_>]) {
        if jobs.is_empty() {
            return;
        }
        let base = jobs.as_mut_ptr() as usize;
        let n = jobs.len();
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert_eq!(st.remaining, 0, "previous batch still running");
            st.jobs = base;
            st.njobs = n;
            st.next = 0;
            st.remaining = n;
            st.panicked = false;
            self.shared.cv.notify_all();
        }
        // Participate: claim and run jobs alongside the workers. A panic
        // here unwinds normally on the caller's thread; the drop guard
        // keeps `remaining` consistent so the pool survives.
        loop {
            let i = {
                let mut st = self.shared.state.lock().unwrap();
                if st.next >= st.njobs {
                    break;
                }
                let i = st.next;
                st.next += 1;
                i
            };
            let guard = FinishGuard(&self.shared);
            // SAFETY: index i was claimed exclusively under the lock, the
            // batch slice outlives this call, and we hold the only live
            // reference to element i.
            unsafe { (*(base as *mut JobStatic).add(i))() };
            drop(guard);
        }
        let mut st = self.shared.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.shared.cv.wait(st).unwrap();
        }
        st.jobs = 0;
        st.njobs = 0;
        let panicked = st.panicked;
        drop(st);
        if panicked {
            panic!("a windowed-kernel pool job panicked on a worker thread");
        }
    }
}

/// Decrements `remaining` (waking the batch owner at zero) even if the
/// job unwinds.
struct FinishGuard<'a>(&'a PoolShared);

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().unwrap();
        st.remaining -= 1;
        if st.remaining == 0 {
            self.0.cv.notify_all();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(sh: &PoolShared) {
    loop {
        let (base, i) = {
            let mut st = sh.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.next < st.njobs {
                    let i = st.next;
                    st.next += 1;
                    break (st.jobs, i);
                }
                st = sh.cv.wait(st).unwrap();
            }
        };
        let guard = FinishGuard(sh);
        // Catch so an assertion failure inside a job cannot strand the
        // batch owner; the flag re-surfaces it as a panic in `run_batch`.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: index i was claimed exclusively under the lock;
            // `jobs` is the batch published by a `run_batch` call that
            // cannot return before `remaining` reaches zero, so the
            // borrow behind the erased lifetime is still live.
            unsafe { (*(base as *mut JobStatic).add(i))() }
        }));
        if r.is_err() {
            sh.state.lock().unwrap().panicked = true;
        }
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_runs_every_job_exactly_once() {
        let pool = WorkerPool::new(3);
        for round in 0..50 {
            let n = 1 + round % 8;
            let mut hits = vec![0u32; n];
            {
                let mut closures: Vec<Box<dyn FnMut() + Send>> = hits
                    .iter_mut()
                    .map(|h| {
                        let h: &mut u32 = h;
                        Box::new(move || *h += 1) as Box<dyn FnMut() + Send>
                    })
                    .collect();
                let mut jobs: Vec<Job<'_>> =
                    closures.iter_mut().map(|b| &mut **b as Job<'_>).collect();
                pool.run_batch(&mut jobs);
            }
            assert_eq!(hits, vec![1u32; n], "round {round}");
        }
    }

    #[test]
    fn pool_survives_reuse_and_shutdown() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        let mut total = 0u64;
        for _ in 0..100 {
            let mut local = 0u64;
            {
                let mut job = |/* no args */| local += 1;
                let mut jobs: Vec<Job<'_>> = vec![&mut job];
                pool.run_batch(&mut jobs);
            }
            total += local;
        }
        assert_eq!(total, 100);
        drop(pool); // joins the workers; must not hang
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(1);
        pool.run_batch(&mut []);
    }

    #[test]
    fn default_policy_values_are_sane() {
        let p = WindowPolicy::default();
        assert!(p.max_drain_per_shard >= 1);
        assert!(!p.force_parallel);
    }
}
