//! The discrete-event kernel.
//!
//! The kernel owns virtual time, the event heap, all resource state (CPU
//! actions, network flows, injected load) and the process table. Simulated
//! processes run on real threads but strictly one at a time: the kernel
//! resumes a process, waits for its next request, and only then considers
//! the next runnable process or event. Runs are therefore deterministic.
//!
//! Resource completion times are maintained lazily: whenever the demand set
//! churns (an action or flow starts or ends, load changes), rates are
//! re-derived from the sharing model and fresh completion events (tagged
//! with a per-action generation counter) are pushed; stale events are
//! ignored on pop and periodically compacted out of the heap.
//!
//! Rate recomputation is *scoped*: every churn marks the hosts and links it
//! touched dirty, and only churned hosts' CPU shares and the network
//! sharing components reachable from dirty links are re-solved
//! ([`RecomputeMode::Incremental`], the default). Flows and actions whose
//! rate did not change keep their generation and their already-scheduled
//! completion event. [`RecomputeMode::Full`] runs the same solver over
//! everything on each churn (the reference for the determinism gate), and
//! [`RecomputeMode::Legacy`] preserves the pre-change kernel — global
//! re-solve, unconditional re-stamping — as a benchmark baseline.

use crate::equeue::{class_key, Event, EventKind, IndexedHeap, ShardedHeap, MAX_SHARDS, NO_HANDLE};
use crate::handoff::{multicore, HandoffSlot, KernelThread};
use crate::maildir::{MailDir, QueuedSend};
use crate::process::{
    Ctx, Endpoint, Grant, KillToken, MailKey, Payload, ProcFn, ProcId, Request, SendMode,
};
use crate::sharing::{cpu_share, FairScratch};
use crate::topology::{Grid, HostId, LinkId};
use crate::trace::{Trace, TraceKind, TraceRecord};
use crate::window::{Job, WindowPolicy, WorkerPool};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once, OnceLock};
use std::thread::JoinHandle;

/// How the kernel re-derives rates when the demand set churns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecomputeMode {
    /// The pre-change kernel: re-derive every CPU and flow rate globally on
    /// each churn, re-stamp every generation and re-push every completion
    /// event. Kept as the baseline for the scalability benchmark.
    Legacy,
    /// Scope-everything variant of the incremental path: identical
    /// per-component solver and skip-unchanged stamping, but every host and
    /// every sharing component is revisited on each churn. Reference side
    /// of the determinism gate.
    Full,
    /// Dirty-set scoped recomputation (the default): only churned hosts and
    /// the sharing components reachable from churned links are re-solved.
    #[default]
    Incremental,
}

/// *When* the kernel re-derives rates relative to the churn that dirtied
/// them.
///
/// Rates are only observable through the work they accrue, and work accrues
/// only while virtual time advances — so any number of same-instant churn
/// events (a collective starting dozens of flows at one timestamp, a load
/// inject/remove pair, a compute storm at a barrier) can share a single
/// solve as long as it lands before the clock moves past that instant. Both
/// timings produce bit-identical [`RunReport`]s in every
/// [`RecomputeMode`] × [`KernelMode`] combination
/// (`tests/prop_coalesced.rs`, `tests/determinism.rs`); DESIGN.md
/// ("Coalesced recomputation") carries the soundness argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecomputeTiming {
    /// Solve inline on every churn event — the reference and the default.
    #[default]
    Eager,
    /// Churn only marks dirty sets; one solve runs per virtual instant, at
    /// the point the kernel is about to pop a completion event or advance
    /// past the current timestamp. A same-time churn burst of size *k*
    /// collapses from *k* solves to one.
    Coalesced,
}

/// Which process ↔ kernel transport newly spawned processes use.
///
/// Both transports carry the same messages in the same order — the kernel
/// and exactly one running process alternate — so results are bit-identical
/// across modes; `tests/determinism.rs` holds the kernel to that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HandoffMode {
    /// The seed transport: one shared request mpsc into the kernel plus a
    /// per-process grant mpsc back. Two heap-allocated channel nodes and
    /// two OS wakeups per primitive. Kept as the benchmark baseline.
    Channel,
    /// Per-process single-slot rendezvous (`sim::handoff`): one atomic
    /// state word, in-place message cells, spin-then-park waiting. The
    /// default.
    #[default]
    Direct,
}

/// Which event-queue implementation the kernel uses.
///
/// Both queues pop in the same strict total order on `(t, class, key, seq)`
/// and both receive exactly the same live events, so results are
/// bit-identical across modes (`tests/prop_equeue.rs`,
/// `tests/determinism.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventQueueMode {
    /// The seed queue: plain binary heap; cancelled completions stay in the
    /// heap as stale events, discarded on pop and shed by
    /// [`CompactionPolicy`] rebuilds. Kept as the benchmark baseline.
    StaleMark,
    /// Position-tracked heap (`equeue::IndexedHeap`):
    /// cancellations remove their event in O(log n), the heap holds only
    /// live events and compaction never runs. The default.
    #[default]
    Indexed,
}

/// How the kernel's run loop organises event execution.
///
/// The serial loop is the reference. [`KernelMode::Windowed`] is the
/// conservative-parallel organisation of the *same* event sequence:
/// the indexed event queue is sharded by cluster, cluster-local event
/// windows (bounded by the topology's minimum WAN link latency, see
/// [`Grid::min_wan_latency`]) are pre-drained concurrently on a worker
/// pool, and the pre-drained batches are merged with live shard minima
/// under the kernel's strict `(t, class, key, seq)` total order — so the
/// applied-event sequence, and with it every result bit, is identical to
/// the serial kernel at any worker count. Pre-drained completions that a
/// mid-window re-stamp invalidates are caught by the same generation
/// check that already guards stale-marked events. DESIGN.md ("Parallel
/// kernel") documents the protocol; `tests/prop_windowed.rs` and
/// `tests/substrate_determinism.rs` pin the bit-identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// One event at a time off one queue — the reference and the default.
    #[default]
    Serial,
    /// Conservative parallel windows over cluster shards. `workers` is the
    /// total executor count (1 = the kernel thread alone, still exercising
    /// the window/merge machinery; n > 1 adds n − 1 pool threads).
    Windowed {
        /// Total concurrent executors, kernel thread included.
        workers: u32,
    },
}

/// Substrate tuning knobs bundled for experiment drivers. Apply with
/// [`Engine::apply_tune`] before spawning processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineTune {
    /// Transport for subsequently spawned processes.
    pub handoff: HandoffMode,
    /// Event-queue implementation.
    pub queue: EventQueueMode,
    /// Run-loop organisation. [`KernelMode::Windowed`] implies (and
    /// forces) the indexed queue, sharded by cluster.
    pub kernel: KernelMode,
    /// When rate solves run relative to churn ([`RecomputeTiming`]).
    pub recompute: RecomputeTiming,
}

/// When the kernel rebuilds the event heap to shed stale completion
/// events (completions whose generation no longer matches a live
/// action/flow).
///
/// Compaction runs only when **both** thresholds are exceeded: more than
/// `min_stale` stale events are pending *and* they make up more than
/// `min_stale_fraction` of the heap. The default (64 / 0.5) matches the
/// previously hard-coded policy bit-for-bit. Compaction is purely a heap
/// rebuild — pop order is a strict total order on `(t, class, key, seq)`,
/// so no policy choice can reorder live events or perturb results; the
/// `compaction_policy_does_not_perturb_results` regression holds the
/// kernel to that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Compact only when more than this many stale events are pending.
    /// `usize::MAX` disables compaction entirely.
    pub min_stale: usize,
    /// Compact only when stale events exceed this fraction of the heap
    /// (`0.5` = more than half the heap is dead weight).
    pub min_stale_fraction: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_stale: 64,
            min_stale_fraction: 0.5,
        }
    }
}

impl CompactionPolicy {
    /// Never compact (keeps every stale event until it is popped and
    /// discarded individually).
    pub fn never() -> Self {
        CompactionPolicy {
            min_stale: usize::MAX,
            min_stale_fraction: 1.0,
        }
    }

    /// Whether a heap with `stale` stale events out of `len` total should
    /// be compacted now.
    #[inline]
    pub fn should_compact(&self, stale: usize, len: usize) -> bool {
        // `stale as f64` is exact for any realistic heap (< 2^53 events),
        // so with the default 0.5 fraction this is bit-identical to the
        // old `stale * 2 <= len` integer test.
        stale > self.min_stale && (stale as f64) > self.min_stale_fraction * (len as f64)
    }
}

/// Outcome of a simulation run.
///
/// `PartialEq` is bitwise on every floating-point field; two reports compare
/// equal only if the runs were numerically identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Virtual time when the run ended.
    pub end_time: f64,
    /// Names of processes that ran to completion.
    pub completed: Vec<String>,
    /// `(name, panic message)` for processes that panicked.
    pub failed: Vec<(String, String)>,
    /// Names of processes still blocked when the run ended (deadlocked, or
    /// cut off by `run_until`).
    pub unfinished: Vec<String>,
    /// Names of processes that died with their host (fault injection).
    pub died: Vec<String>,
    /// Flops executed per host over the run (indexable by `HostId.0`).
    pub host_flops: Vec<f64>,
    /// Bytes carried per link over the run (indexable by `LinkId.0`).
    pub link_bytes: Vec<f64>,
    /// Kernel events applied over the run (stale completions excluded).
    /// Identical across recompute modes for the same scenario, which makes
    /// it the numerator of the benchmark's events/sec metric.
    pub events_processed: u64,
    /// Full trace of the run.
    pub trace: Trace,
}

impl RunReport {
    /// Average utilization of a host over the run: flops executed divided
    /// by aggregate capacity (`speed * cores`) × duration, so a fully busy
    /// host reports 1.0 regardless of core count.
    pub fn host_utilization(&self, grid: &Grid, host: HostId) -> f64 {
        let h = grid.host(host);
        if self.end_time <= 0.0 {
            return 0.0;
        }
        self.host_flops[host.0 as usize] / (h.speed * h.cores as f64 * self.end_time)
    }

    /// Average utilization of a link over the run: bytes carried over
    /// capacity × duration.
    pub fn link_utilization(&self, grid: &Grid, link: LinkId) -> f64 {
        let l = grid.link(link);
        if self.end_time <= 0.0 {
            return 0.0;
        }
        self.link_bytes[link.0 as usize] / (l.bandwidth * self.end_time)
    }
}

struct CpuAction {
    host: usize,
    pid: ProcId,
    remaining: f64,
    rate: f64,
    gen: u64,
    /// Pending `CpuDone` handle in the indexed queue ([`NO_HANDLE`] when no
    /// completion is scheduled or the queue is in stale-mark mode).
    ev: u32,
    /// Virtual time of the pending completion event (`INFINITY` when none
    /// is scheduled). A solve never re-stamps an action whose completion
    /// is due *exactly now*: the event fires this instant regardless of
    /// the new rate, and re-deriving its time from the accrued residual
    /// (rounding noise) would stagger bitwise-synchronized completion
    /// waves by ulps — the rule that keeps eager and coalesced recompute
    /// timing bit-identical (see [`Engine::must_flush_before`]).
    due: f64,
}

enum OnDone {
    /// Raw transfer: wake this process.
    Wake(ProcId),
    /// Eager message: deliver to the mailbox (or a waiting receiver).
    Deliver { key: MailKey },
    /// Rendezvous message: deliver to the reserved receiver, wake the sender.
    Rendezvous { recv: ProcId, send: ProcId },
}

struct Flow {
    /// Index into the engine's interned route table.
    route: u32,
    /// Original transfer size in bytes; `link_bytes` is credited once per
    /// link when the flow terminates instead of on every accrual sweep.
    size: f64,
    remaining: f64,
    rate: f64,
    gen: u64,
    active: bool,
    /// Position in `Engine::active_flows`, or `u32::MAX` when not listed.
    act_idx: u32,
    /// Pending `FlowDone` handle in the indexed queue ([`NO_HANDLE`] when no
    /// completion is scheduled or the queue is in stale-mark mode).
    ev: u32,
    /// Virtual time of the pending completion event (`INFINITY` when none
    /// is scheduled); same due-now re-stamp guard as [`CpuAction::due`].
    due: f64,
    /// Event partition this flow's events belong to (its source host's
    /// cluster); fixed for the flow's lifetime. Only meaningful under
    /// [`KernelMode::Windowed`], but cheap enough to stamp always.
    part: u32,
    payload: Option<Payload>,
    on_done: OnDone,
}

/// An interned route: resolved once per (src, dst) pair, then shared by
/// every flow on that pair instead of cloning a `Vec<LinkId>` per flow and
/// per recompute.
struct RouteEntry {
    links: Box<[u32]>,
    latency: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    Alive,
    Done,
    Failed,
    /// Killed by a host failure (fault injection).
    Died,
}

/// Kernel-side end of one process's transport.
enum ProcPort {
    Channel(Sender<Grant>),
    Direct(Arc<HandoffSlot>),
}

impl ProcPort {
    fn send_grant(&self, g: Grant) {
        match self {
            ProcPort::Channel(tx) => {
                let _ = tx.send(g);
            }
            ProcPort::Direct(slot) => slot.send_grant(g),
        }
    }
}

struct ProcSlot {
    name: Arc<str>,
    host: HostId,
    port: ProcPort,
    join: Option<JoinHandle<()>>,
    state: PState,
}

/// Epoch-stamped sparse map from small indices to `u32` values. `begin`
/// invalidates all entries in O(1); used for dirty-set membership, BFS
/// visit marks and global→component-local link index mapping without
/// per-recompute clearing.
#[derive(Default, Debug)]
struct EpochMap {
    epoch: u64,
    slots: Vec<(u64, u32)>,
}

impl EpochMap {
    fn ensure(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, (0, 0));
        }
    }
    fn begin(&mut self) {
        self.epoch += 1;
    }
    fn contains(&self, i: usize) -> bool {
        self.slots[i].0 == self.epoch
    }
    fn get(&self, i: usize) -> Option<u32> {
        let (e, v) = self.slots[i];
        if e == self.epoch {
            Some(v)
        } else {
            None
        }
    }
    fn set(&mut self, i: usize, v: u32) {
        self.slots[i] = (self.epoch, v);
    }
}

/// Reusable buffers for scoped rate recomputation.
#[derive(Default)]
struct RateScratch {
    scoped_hosts: Vec<u32>,
    link_stack: Vec<u32>,
    comp_flows: Vec<u32>,
    offsets: Vec<(u32, u32)>,
    links_flat: Vec<u32>,
    caps_local: Vec<f64>,
    rates: Vec<f64>,
    fair: FairScratch,
    flow_mark: EpochMap,
    comp_link_mark: EpochMap,
    link_local: EpochMap,
    route_tmp: Vec<u32>,
    /// Per component flow (sorted by id): index of its route class.
    class_of: Vec<u32>,
    /// Per route class: member-flow count (the solver's multiplicity).
    class_mult: Vec<u32>,
    /// Per route class: the solved per-flow rate.
    class_rates: Vec<f64>,
    /// Route id → class index for the component being solved.
    route_class: EpochMap,
}

/// The kernel's pending-event queue, in one of the [`EventQueueMode`]
/// implementations (plus the cluster-sharded indexed variant the windowed
/// kernel uses). All pop the identical `(t, class, key, seq)` order.
enum EventQueue {
    Stale(BinaryHeap<Event>),
    Indexed(IndexedHeap),
    /// Indexed heaps sharded by cluster partition ([`KernelMode::Windowed`]).
    Sharded(ShardedHeap),
}

impl EventQueue {
    fn len(&self) -> usize {
        match self {
            EventQueue::Stale(h) => h.len(),
            EventQueue::Indexed(h) => h.len(),
            EventQueue::Sharded(h) => h.len(),
        }
    }

    fn peek(&self) -> Option<&Event> {
        match self {
            EventQueue::Stale(h) => h.peek(),
            EventQueue::Indexed(h) => h.peek(),
            EventQueue::Sharded(h) => h.peek(),
        }
    }

    fn pop(&mut self) -> Option<Event> {
        match self {
            EventQueue::Stale(h) => h.pop(),
            EventQueue::Indexed(h) => h.pop(),
            EventQueue::Sharded(h) => h.pop(),
        }
    }
}

/// Raw pointers to the engine's entity tables, for pool jobs operating on
/// provably disjoint index sets (per-shard window drains, per-partition
/// accrual). Plain `&mut` splitting cannot express "disjoint by partition
/// membership", so the jobs carry these instead.
#[derive(Clone, Copy)]
struct EntityPtrs {
    cpu: *mut Option<CpuAction>,
    flows: *mut Option<Flow>,
    host_flops: *mut f64,
}

// SAFETY: the pointee types are all Send (plain data plus `Box<dyn Any +
// Send>` payloads), and every job batch partitions the index space so no
// element is touched by two jobs; `WorkerPool::run_batch` returns only
// after all jobs finished, bounding the borrows.
unsafe impl Send for EntityPtrs {}

/// Where the windowed merge found its globally next event.
#[derive(Clone, Copy)]
enum WindowSource {
    /// The live sharded heap.
    Heap,
    /// The staged pre-drained window of this shard.
    Staged(usize),
}

/// The grid emulator.
///
/// ```
/// use grads_sim::topology::{GridBuilder, HostSpec};
/// use grads_sim::engine::Engine;
///
/// let mut b = GridBuilder::new();
/// let c = b.cluster("LOCAL");
/// let hosts = b.add_hosts(c, 1, &HostSpec::with_speed(100.0));
/// let mut eng = Engine::new(b.build().unwrap());
/// eng.spawn("worker", hosts[0], |ctx| {
///     ctx.compute(250.0); // 2.5 virtual seconds at 100 flop/s
///     let t = ctx.now();
///     ctx.trace("done", t);
/// });
/// let report = eng.run();
/// assert!((report.trace.last_value("done").unwrap() - 2.5).abs() < 1e-9);
/// ```
pub struct Engine {
    grid: Grid,
    now: f64,
    last_advance: f64,
    seq: u64,
    events: EventQueue,
    procs: Vec<ProcSlot>,
    cpu: Vec<Option<CpuAction>>,
    flows: Vec<Option<Flow>>,
    mailboxes: MailDir,
    host_load: Vec<f64>,
    host_alive: Vec<bool>,
    host_flops: Vec<f64>,
    link_bytes: Vec<f64>,
    /// Monotone counter for action/flow completion generations. Must be
    /// globally unique: slots are reused, and a per-slot counter restarting
    /// at zero lets a stale completion event fire on a *new* occupant.
    gen_counter: u64,
    runnable: VecDeque<(ProcId, Grant)>,
    running: Option<ProcId>,
    req_tx: Sender<(ProcId, Request)>,
    req_rx: Receiver<(ProcId, Request)>,
    handoff: HandoffMode,
    /// The OS thread the run loop executes on; direct-handoff processes
    /// unpark it when publishing a request. Set when `run_until` starts
    /// (the engine may be built on a different thread than it runs on).
    kernel_thread: KernelThread,
    trace: Trace,
    /// Interned names of completed processes; materialized into the
    /// report's `String`s once at `finish` instead of allocating per exit.
    completed: Vec<Arc<str>>,
    failed: Vec<(String, String)>,
    mode: RecomputeMode,
    /// When solves run relative to churn ([`RecomputeTiming`]).
    timing: RecomputeTiming,
    /// Churn notifications since the last solve (0 = rates are current).
    /// Always 0 between events under [`RecomputeTiming::Eager`].
    pending_churn: u32,
    /// Rate solves actually executed (== `recomputes` under `Eager`).
    solves: u64,
    /// Churn notifications absorbed into a shared solve (`Coalesced` only).
    coalesced_absorbed: u64,
    routes_tbl: Vec<RouteEntry>,
    route_ids: HashMap<(u32, u32), u32>,
    /// Route interning dedups by content: host pairs whose routes traverse
    /// the identical link list (every pair in the same cluster pair, for
    /// the standard topologies) share one route id, which is what makes
    /// the per-route-class aggregated solve collapse all-to-all traffic
    /// from O(P²) flows to O(clusters²) solver classes.
    route_contents: HashMap<(Box<[u32]>, u64), u32>,
    /// Per-link capacity, hoisted out of the solve loops (the legacy
    /// reference used to rebuild this vector on every recompute).
    link_caps: Vec<f64>,
    /// Live CPU action ids per host; the length doubles as the action count
    /// the CPU sharing model needs.
    host_actions: Vec<Vec<u32>>,
    /// Active flow ids per link — the flow/link adjacency the component
    /// flood walks.
    link_flows: Vec<Vec<u32>>,
    /// Flows currently transferring — the accrual sweep walks this instead
    /// of scanning every slot. Order is maintained deterministically
    /// (push on activate, swap-remove on completion) and only independent
    /// per-flow updates iterate it, so it never affects results.
    active_flows: Vec<u32>,
    free_cpu: Vec<u32>,
    free_flows: Vec<u32>,
    dirty_hosts: Vec<u32>,
    dirty_links: Vec<u32>,
    dirty_host_mark: EpochMap,
    dirty_link_mark: EpochMap,
    /// Completion events in the heap whose generation no longer matches a
    /// live action/flow. When the heap is mostly stale it is rebuilt.
    stale_events: usize,
    events_processed: u64,
    stale_discarded: u64,
    compactions: u64,
    recomputes: u64,
    compaction: CompactionPolicy,
    /// Run-loop organisation ([`KernelMode`]); `Windowed` keeps `events`
    /// in the [`EventQueue::Sharded`] variant.
    kernel: KernelMode,
    /// Host → event partition (cluster index, folded into [`MAX_SHARDS`]).
    part_of_host: Vec<u32>,
    /// Partition count (= shard count of the sharded queue).
    nparts: u32,
    /// Window width: the grid's minimum WAN link latency, or infinity on a
    /// single-cluster grid (the per-shard drain cap bounds the window then).
    lookahead: f64,
    /// Per-shard pre-drained event windows, each in pop order. The merge
    /// loop consumes these against the live shard minima.
    staged: Vec<VecDeque<Event>>,
    staged_total: usize,
    /// Helper threads for window drains and accrual sweeps (`Windowed`
    /// with more than one worker only).
    pool: Option<WorkerPool>,
    wpolicy: WindowPolicy,
    windows_planned: u64,
    events_predrained: u64,
    /// Scratch: live CPU action ids bucketed by partition, each bucket in
    /// ascending id order (the serial accrual traversal order). Rebuilt per
    /// parallel sweep.
    accrual_parts: Vec<Vec<u32>>,
    obs: grads_obs::Obs,
    rec: grads_obs::Recorder,
    scratch: RateScratch,
    /// If true (the default), `run` panics when any simulated process
    /// panicked, so test failures inside processes surface in the harness.
    pub panic_on_failure: bool,
}

static QUIET_KILL_HOOK: Once = Once::new();

fn install_quiet_kill_hook() {
    QUIET_KILL_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<KillToken>().is_none() {
                prev(info);
            }
        }));
    });
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Engine {
    /// Create an engine over a built topology.
    pub fn new(grid: Grid) -> Self {
        install_quiet_kill_hook();
        let (req_tx, req_rx) = unbounded();
        let nhosts = grid.hosts().len();
        let nlinks = grid.links().len();
        let mut dirty_host_mark = EpochMap::default();
        dirty_host_mark.ensure(nhosts);
        dirty_host_mark.begin();
        let mut dirty_link_mark = EpochMap::default();
        dirty_link_mark.ensure(nlinks);
        dirty_link_mark.begin();
        let mut scratch = RateScratch::default();
        scratch.comp_link_mark.ensure(nlinks);
        scratch.link_local.ensure(nlinks);
        let nparts = grid.clusters().len().clamp(1, MAX_SHARDS) as u32;
        let part_of_host = grid.hosts().iter().map(|h| h.cluster.0 % nparts).collect();
        let lookahead = grid.min_wan_latency().unwrap_or(f64::INFINITY);
        let link_caps = grid.links().iter().map(|l| l.bandwidth).collect();
        Engine {
            grid,
            now: 0.0,
            last_advance: 0.0,
            seq: 0,
            events: EventQueue::Indexed(IndexedHeap::default()),
            procs: Vec::new(),
            cpu: Vec::new(),
            flows: Vec::new(),
            mailboxes: MailDir::new(),
            host_load: vec![0.0; nhosts],
            host_alive: vec![true; nhosts],
            host_flops: vec![0.0; nhosts],
            link_bytes: vec![0.0; nlinks],
            gen_counter: 1,
            runnable: VecDeque::new(),
            running: None,
            req_tx,
            req_rx,
            handoff: HandoffMode::default(),
            kernel_thread: Arc::new(OnceLock::new()),
            trace: Trace::default(),
            completed: Vec::new(),
            failed: Vec::new(),
            mode: RecomputeMode::default(),
            timing: RecomputeTiming::default(),
            pending_churn: 0,
            solves: 0,
            coalesced_absorbed: 0,
            routes_tbl: Vec::new(),
            route_ids: HashMap::new(),
            route_contents: HashMap::new(),
            link_caps,
            host_actions: vec![Vec::new(); nhosts],
            link_flows: vec![Vec::new(); nlinks],
            free_cpu: Vec::new(),
            active_flows: Vec::new(),
            free_flows: Vec::new(),
            dirty_hosts: Vec::new(),
            dirty_links: Vec::new(),
            dirty_host_mark,
            dirty_link_mark,
            stale_events: 0,
            events_processed: 0,
            stale_discarded: 0,
            compactions: 0,
            recomputes: 0,
            compaction: CompactionPolicy::default(),
            kernel: KernelMode::default(),
            part_of_host,
            nparts,
            lookahead,
            staged: Vec::new(),
            staged_total: 0,
            pool: None,
            wpolicy: WindowPolicy::default(),
            windows_planned: 0,
            events_predrained: 0,
            accrual_parts: Vec::new(),
            obs: grads_obs::Obs::disabled(),
            rec: grads_obs::Recorder::disabled(),
            scratch,
            panic_on_failure: true,
        }
    }

    /// The topology this engine emulates.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Select the rate recomputation strategy (default:
    /// [`RecomputeMode::Incremental`]).
    pub fn set_recompute_mode(&mut self, mode: RecomputeMode) {
        self.mode = mode;
    }

    /// The active rate recomputation strategy.
    pub fn recompute_mode(&self) -> RecomputeMode {
        self.mode
    }

    /// Select when rate solves run relative to churn (default:
    /// [`RecomputeTiming::Eager`]). Safe to switch any time the engine is
    /// not mid-run; composes with every [`RecomputeMode`] and
    /// [`KernelMode`] without perturbing a result bit.
    pub fn set_recompute_timing(&mut self, t: RecomputeTiming) {
        debug_assert_eq!(
            self.pending_churn, 0,
            "switch recompute timing between runs, not mid-burst"
        );
        self.timing = t;
    }

    /// The active recompute timing.
    pub fn recompute_timing(&self) -> RecomputeTiming {
        self.timing
    }

    /// Select the process ↔ kernel transport for *subsequently spawned*
    /// processes (default: [`HandoffMode::Direct`]). Call before spawning;
    /// already-spawned processes keep their transport (mixing modes in one
    /// run is fine — each process's port is dispatched independently).
    pub fn set_handoff_mode(&mut self, m: HandoffMode) {
        self.handoff = m;
    }

    /// The transport newly spawned processes will use.
    pub fn handoff_mode(&self) -> HandoffMode {
        self.handoff
    }

    /// Select the event-queue implementation (default:
    /// [`EventQueueMode::Indexed`]). Call before `run`: already-scheduled
    /// start/load/failure events migrate, but completion events (which only
    /// exist once the run is underway) would lose their cancellation
    /// handles. A no-op while the windowed kernel holds the queue sharded;
    /// switch back to [`KernelMode::Serial`] first.
    pub fn set_event_queue_mode(&mut self, m: EventQueueMode) {
        match (&mut self.events, m) {
            (EventQueue::Stale(h), EventQueueMode::Indexed) => {
                let mut ih = IndexedHeap::default();
                // Insertion order is irrelevant: pop order is a strict
                // total order on (t, class, key, seq).
                for ev in std::mem::take(h).into_vec() {
                    ih.push(ev);
                }
                self.events = EventQueue::Indexed(ih);
            }
            (EventQueue::Indexed(ih), EventQueueMode::StaleMark) => {
                let mut v = Vec::with_capacity(ih.len());
                while let Some(ev) = ih.pop() {
                    v.push(ev);
                }
                self.events = EventQueue::Stale(BinaryHeap::from(v));
            }
            _ => {}
        }
    }

    /// The active event-queue implementation. The windowed kernel's
    /// sharded queue *is* the indexed heap, partitioned, and reports as
    /// [`EventQueueMode::Indexed`].
    pub fn event_queue_mode(&self) -> EventQueueMode {
        match self.events {
            EventQueue::Stale(_) => EventQueueMode::StaleMark,
            EventQueue::Indexed(_) | EventQueue::Sharded(_) => EventQueueMode::Indexed,
        }
    }

    /// Select the run-loop organisation (default: [`KernelMode::Serial`]).
    /// Call before `run`. Switching to [`KernelMode::Windowed`] converts
    /// the queue to its cluster-sharded form (migrating pending events and
    /// their cancellation handles) and starts the worker pool; switching
    /// back restores a single indexed heap. Mode choice and worker count
    /// cannot affect results — `tests/prop_windowed.rs` pins that.
    pub fn set_kernel_mode(&mut self, m: KernelMode) {
        assert_eq!(self.staged_total, 0, "switch kernel modes before running");
        self.kernel = m;
        match m {
            KernelMode::Serial => {
                self.pool = None;
                if let EventQueue::Sharded(_) = self.events {
                    let mut ih = IndexedHeap::default();
                    while let Some(ev) = self.events.pop() {
                        let owner = Self::completion_owner(&ev.kind);
                        let h = ih.push(ev);
                        self.patch_owner_handle(owner, h);
                    }
                    self.events = EventQueue::Indexed(ih);
                }
            }
            KernelMode::Windowed { workers } => {
                if !matches!(self.events, EventQueue::Sharded(_)) {
                    let mut sh = ShardedHeap::new(self.nparts as usize);
                    while let Some(ev) = self.events.pop() {
                        let shard = self.shard_for(&ev.kind);
                        let owner = Self::completion_owner(&ev.kind);
                        let h = sh.push(shard, ev);
                        self.patch_owner_handle(owner, h);
                    }
                    self.events = EventQueue::Sharded(sh);
                }
                if let EventQueue::Sharded(sh) = &self.events {
                    debug_assert_eq!(
                        sh.nshards(),
                        self.nparts as usize,
                        "shard count tracks the grid's partition count"
                    );
                }
                if self.staged.len() != self.nparts as usize {
                    self.staged = (0..self.nparts).map(|_| VecDeque::new()).collect();
                }
                let helpers = workers.saturating_sub(1) as usize;
                if self.pool.as_ref().map(|p| p.workers()) != Some(helpers) {
                    self.pool = if helpers > 0 {
                        Some(WorkerPool::new(helpers))
                    } else {
                        None
                    };
                }
            }
        }
    }

    /// The active run-loop organisation.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// Tune the windowed kernel's dispatch thresholds (see
    /// [`WindowPolicy`]). Scheduling only — any policy yields bit-identical
    /// results; `windowed_policy_does_not_perturb_results` pins that.
    pub fn set_window_policy(&mut self, p: WindowPolicy) {
        self.wpolicy = p;
    }

    /// The active windowed-kernel policy.
    pub fn window_policy(&self) -> WindowPolicy {
        self.wpolicy
    }

    /// Apply a bundle of substrate tuning knobs. Call before spawning.
    pub fn apply_tune(&mut self, t: EngineTune) {
        self.set_handoff_mode(t.handoff);
        self.set_event_queue_mode(t.queue);
        self.set_kernel_mode(t.kernel);
        self.set_recompute_timing(t.recompute);
    }

    /// The event partition an event belongs to: the cluster of the host
    /// whose state it mutates (flows are keyed by their *source* host's
    /// cluster for their whole lifetime).
    fn shard_for(&self, kind: &EventKind) -> u32 {
        match kind {
            EventKind::Start(pid) | EventKind::SleepDone(pid) => {
                self.part_of_host[self.procs[pid.0 as usize].host.0 as usize]
            }
            EventKind::HostFail { host }
            | EventKind::LoadOn { host, .. }
            | EventKind::LoadOff { host, .. } => self.part_of_host[host.0 as usize],
            // Completions whose owner died are stale: any shard works (they
            // are discarded on pop, and the global pop order is a total
            // order independent of shard placement), so default to 0.
            EventKind::CpuDone { id, .. } => self.cpu[*id]
                .as_ref()
                .map_or(0, |a| self.part_of_host[a.host]),
            EventKind::FlowActivate { id } | EventKind::FlowDone { id, .. } => {
                self.flows[*id].as_ref().map_or(0, |f| f.part)
            }
        }
    }

    /// `(is_cpu, id, gen)` when the event is a completion whose owner holds
    /// a cancellation handle that queue migration must re-point.
    fn completion_owner(kind: &EventKind) -> Option<(bool, usize, u64)> {
        match *kind {
            EventKind::CpuDone { id, gen } => Some((true, id, gen)),
            EventKind::FlowDone { id, gen } => Some((false, id, gen)),
            _ => None,
        }
    }

    /// Point a live completion owner's handle at the event's new home
    /// after queue migration. Stale completions (generation mismatch) keep
    /// no handle and are discarded on pop as usual.
    fn patch_owner_handle(&mut self, owner: Option<(bool, usize, u64)>, h: u32) {
        match owner {
            Some((true, id, gen)) => {
                if let Some(a) = self.cpu[id].as_mut() {
                    if a.gen == gen {
                        a.ev = h;
                    }
                }
            }
            Some((false, id, gen)) => {
                if let Some(f) = self.flows[id].as_mut() {
                    if f.gen == gen {
                        f.ev = h;
                    }
                }
            }
            None => {}
        }
    }

    /// Attach an observability sink. Kernel counters (events applied,
    /// stale discards, heap compactions, recompute count) and per-recompute
    /// dirty-set-size histograms are flushed into it when the run finishes.
    /// Recording never reads or perturbs virtual time; with the default
    /// disabled handle the kernel only maintains plain integer counters it
    /// tracks anyway.
    pub fn set_obs(&mut self, obs: grads_obs::Obs) {
        self.obs = obs;
    }

    /// The attached observability sink (disabled by default).
    pub fn obs(&self) -> &grads_obs::Obs {
        &self.obs
    }

    /// Attach a flight recorder. The kernel stamps track lifecycle edges
    /// into it (process start, exit, panic, host-failure death, and
    /// close-out at a `run_until` cutoff) for processes bound via
    /// [`grads_obs::Recorder::bind_pid`]; middleware records everything
    /// else. Like [`Engine::set_obs`], recording never reads or perturbs
    /// virtual time, and the default disabled handle costs one `Option`
    /// test per lifecycle edge.
    pub fn set_recorder(&mut self, rec: grads_obs::Recorder) {
        self.rec = rec;
    }

    /// The attached flight recorder (disabled by default).
    pub fn recorder(&self) -> &grads_obs::Recorder {
        &self.rec
    }

    /// Tune when the event heap sheds stale completion events. The
    /// default matches the historical hard-coded policy (more than 64
    /// stale *and* more than half the heap). Any policy yields identical
    /// simulation results; the knob trades rebuild cost against heap
    /// bloat on churn-heavy workloads.
    pub fn set_compaction_policy(&mut self, p: CompactionPolicy) {
        self.compaction = p;
    }

    /// The active heap-compaction policy.
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.compaction
    }

    /// Push an event, returning its indexed-queue handle ([`NO_HANDLE`] in
    /// stale-mark mode). Static over disjoint fields so recompute loops can
    /// push while iterating `self.cpu` / `self.flows`. `shard` is the
    /// event's partition, used (and validated) only by the sharded queue.
    fn push_ev(events: &mut EventQueue, seq: &mut u64, shard: u32, t: f64, kind: EventKind) -> u32 {
        let (class, key) = class_key(&kind);
        let s = *seq;
        *seq += 1;
        let ev = Event {
            t,
            class,
            key,
            seq: s,
            kind,
        };
        match events {
            EventQueue::Stale(h) => {
                h.push(ev);
                NO_HANDLE
            }
            EventQueue::Indexed(h) => h.push(ev),
            EventQueue::Sharded(h) => h.push(shard, ev),
        }
    }

    fn push_event(&mut self, t: f64, kind: EventKind) -> u32 {
        let shard = self.shard_for(&kind);
        Self::push_ev(&mut self.events, &mut self.seq, shard, t, kind)
    }

    /// Cancel a pending completion event: stale-mark mode counts it for
    /// the compaction policy and lets the pop loop discard it; indexed mode
    /// removes it from the heap outright. `handle` is reset to
    /// [`NO_HANDLE`] either way. In windowed mode a completion already
    /// pre-drained into a staged window carries [`NO_HANDLE`] — nothing to
    /// remove; the staged copy fails its generation check on pop.
    fn cancel_ev(events: &mut EventQueue, stale_events: &mut usize, handle: &mut u32) {
        match events {
            EventQueue::Stale(_) => *stale_events += 1,
            EventQueue::Indexed(h) => {
                // NO_HANDLE happens when the completion was never scheduled
                // (infinite rate); nothing to remove then.
                if *handle != NO_HANDLE {
                    h.remove(*handle);
                }
            }
            EventQueue::Sharded(h) => {
                h.remove(*handle);
            }
        }
        *handle = NO_HANDLE;
    }

    /// Cancel an entity's pending completion event (if `had_pending`) and
    /// schedule its successor in one step. Stale-mark mode does exactly
    /// what [`Self::cancel_ev`] + [`Self::push_ev`] would (counter bump,
    /// then a fresh push); indexed mode overwrites the event in place via
    /// [`IndexedHeap::replace`] — one short sift instead of a removal plus
    /// a push, which is what keeps the indexed queue competitive on the
    /// legacy recompute path's re-stamp-everything storm.
    #[allow(clippy::too_many_arguments)] // static over disjoint `self` fields by design
    fn restamp_ev(
        events: &mut EventQueue,
        stale_events: &mut usize,
        seq: &mut u64,
        shard: u32,
        handle: &mut u32,
        had_pending: bool,
        t: f64,
        kind: EventKind,
    ) {
        let (class, key) = class_key(&kind);
        let s = *seq;
        *seq += 1;
        let ev = Event {
            t,
            class,
            key,
            seq: s,
            kind,
        };
        match events {
            EventQueue::Stale(h) => {
                if had_pending {
                    *stale_events += 1;
                }
                h.push(ev);
                *handle = NO_HANDLE;
            }
            EventQueue::Indexed(h) => {
                *handle = if had_pending {
                    h.replace(*handle, ev)
                } else {
                    h.push(ev)
                };
            }
            EventQueue::Sharded(h) => {
                // A pre-drained (staged) completion left NO_HANDLE behind;
                // `replace` degrades to a fresh push then, and the staged
                // copy dies by generation mismatch on pop.
                *handle = if had_pending {
                    h.replace(*handle, shard, ev)
                } else {
                    h.push(shard, ev)
                };
            }
        }
    }

    fn mark_host_dirty(&mut self, h: usize) {
        if !self.dirty_host_mark.contains(h) {
            self.dirty_host_mark.set(h, 0);
            self.dirty_hosts.push(h as u32);
        }
    }

    /// Spawn a process starting at virtual time 0.
    pub fn spawn<F>(&mut self, name: &str, host: HostId, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.spawn_at(0.0, name, host, Box::new(f))
    }

    /// Spawn a process starting at virtual time `t`.
    pub fn spawn_delayed<F>(&mut self, t: f64, name: &str, host: HostId, f: F) -> ProcId
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.spawn_at(t, name, host, Box::new(f))
    }

    fn spawn_at(&mut self, t: f64, name: &str, host: HostId, f: ProcFn) -> ProcId {
        let pid = ProcId(self.procs.len() as u32);
        let name: Arc<str> = Arc::from(name);
        let (port, ep) = match self.handoff {
            HandoffMode::Channel => {
                let (grant_tx, grant_rx) = unbounded();
                (
                    ProcPort::Channel(grant_tx),
                    Endpoint::Channel {
                        req_tx: self.req_tx.clone(),
                        grant_rx,
                    },
                )
            }
            HandoffMode::Direct => {
                let slot = Arc::new(HandoffSlot::new(self.kernel_thread.clone()));
                (ProcPort::Direct(slot.clone()), Endpoint::Direct(slot))
            }
        };
        let mut ctx = Ctx::new(pid, host, ep);
        let join = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                // Gate on the start grant so the process does not run before
                // its scheduled start time.
                if !ctx.wait_start() {
                    return;
                }
                let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                match result {
                    Ok(()) => ctx.notify(Request::Exit),
                    Err(e) => {
                        if e.downcast_ref::<KillToken>().is_none() {
                            ctx.notify(Request::Panic(panic_message(&*e)));
                        }
                    }
                }
            })
            .expect("spawn simulated process thread");
        if let ProcPort::Direct(slot) = &port {
            // Recorded by the kernel from the join handle (not by the
            // process thread itself) so grants never race the store.
            slot.set_proc_thread(join.thread().clone());
        }
        let alive = self.host_alive[host.0 as usize];
        self.procs.push(ProcSlot {
            name,
            host,
            port,
            join: Some(join),
            state: if alive { PState::Alive } else { PState::Died },
        });
        if alive {
            self.push_event(t, EventKind::Start(pid));
        }
        pid
    }

    /// Schedule `amount` units of external CPU load on `host` from `start`
    /// until `end` (or forever if `end` is `None`).
    pub fn add_load_window(&mut self, host: HostId, start: f64, end: Option<f64>, amount: f64) {
        self.push_event(start, EventKind::LoadOn { host, amount });
        if let Some(e) = end {
            self.push_event(e, EventKind::LoadOff { host, amount });
        }
    }

    /// Schedule a permanent host failure at virtual time `t` (fault
    /// injection, the paper's §5 fault-tolerance direction). Every process
    /// on the host dies at that instant; new spawns onto it die
    /// immediately; in-flight communication to it is lost to the extent
    /// the protocol would lose it (receivers never resume).
    pub fn fail_host_at(&mut self, host: HostId, t: f64) {
        self.push_event(t, EventKind::HostFail { host });
    }

    /// Run until no events remain (or every process is blocked).
    pub fn run(self) -> RunReport {
        self.run_until(f64::INFINITY)
    }

    /// Run until virtual time `tmax`, no events remain, or every process is
    /// blocked — whichever comes first. All surviving processes are killed
    /// and their threads joined before returning.
    pub fn run_until(mut self, tmax: f64) -> RunReport {
        let _ = self.kernel_thread.set(std::thread::current());
        if matches!(self.events, EventQueue::Sharded(_)) {
            self.run_windowed(tmax);
        } else {
            self.run_serial(tmax);
        }
        self.finish()
    }

    /// Drive process handoff until no process is running or runnable.
    /// Returns `false` when the request channel disconnected (every process
    /// gone) and the run loop should stop.
    fn pump_processes(&mut self) -> bool {
        loop {
            if let Some(pid) = self.running.take() {
                let req = match &self.procs[pid.0 as usize].port {
                    ProcPort::Channel(_) => {
                        let (rpid, req) = match self.req_rx.recv() {
                            Ok(x) => x,
                            Err(_) => return false,
                        };
                        debug_assert_eq!(rpid, pid, "request from non-running process");
                        req
                    }
                    ProcPort::Direct(slot) => slot.wait_request(),
                };
                self.handle_request(pid, req);
                continue;
            }
            if let Some((pid, grant)) = self.runnable.pop_front() {
                if self.procs[pid.0 as usize].state == PState::Alive {
                    self.procs[pid.0 as usize].port.send_grant(grant);
                    self.running = Some(pid);
                }
                continue;
            }
            return true;
        }
    }

    /// Staleness is decided before the clock moves: a discarded event
    /// must be completely unobservable, including through `end_time`
    /// and the accrual sweep. Skipping `advance_to` on a stale pop is
    /// exact — no rate changes at a stale pop, and accrual is linear in
    /// time. Shared verbatim by the serial and windowed loops so the
    /// decision cannot drift between them.
    fn discard_if_stale(&mut self, kind: &EventKind) -> bool {
        let stale = match *kind {
            EventKind::CpuDone { id, gen } => {
                self.cpu[id].as_ref().map(|a| a.gen == gen) != Some(true)
            }
            EventKind::FlowDone { id, gen } => {
                self.flows[id].as_ref().map(|f| f.active && f.gen == gen) != Some(true)
            }
            _ => false,
        };
        if stale {
            self.stale_events = self.stale_events.saturating_sub(1);
            self.stale_discarded += 1;
        }
        stale
    }

    /// The reference run loop: one event at a time off one queue.
    fn run_serial(&mut self, tmax: f64) {
        loop {
            if !self.pump_processes() {
                break;
            }
            self.maybe_compact();
            // Deferred-recompute flush: solve the pending burst before its
            // rates become observable. The solve may push the event the
            // next peek selects, so it runs before the peek.
            if self.pending_churn > 0
                && self.must_flush_before(self.events.peek().map(|ev| (ev.t, ev.class)))
            {
                self.flush_rates();
            }
            match self.events.peek() {
                None => break,
                Some(ev) if ev.t > tmax => break,
                Some(_) => {}
            }
            let ev = self.events.pop().expect("peeked event");
            if self.discard_if_stale(&ev.kind) {
                continue;
            }
            self.advance_to(ev.t);
            self.events_processed += 1;
            self.apply_event(ev.kind);
        }
    }

    /// The conservative-parallel run loop ([`KernelMode::Windowed`]).
    ///
    /// Alternates two steps: *plan* — when no staged events remain, pre-drain
    /// the next window (events within the lookahead horizon) from every
    /// cluster shard, concurrently when the pool pays — and *merge* — apply
    /// events one at a time, always taking the global minimum of the staged
    /// window fronts and the live shard minima under the kernel's strict
    /// `(t, class, key, seq)` total order. The merge replays exactly the
    /// serial applied-event sequence: events pushed mid-window land in the
    /// live shards and win the comparison whenever the serial kernel would
    /// have popped them first, and staged completions invalidated by a
    /// mid-window re-stamp fail the same generation check stale-marked
    /// events already fail. Worker count therefore cannot perturb results.
    fn run_windowed(&mut self, tmax: f64) {
        loop {
            if !self.pump_processes() {
                break;
            }
            if self.staged_total == 0 {
                self.plan_window();
            }
            // Deferred-recompute flush, as in the serial loop. A flush
            // pushes into the live shards, where the merge's global-min
            // comparison picks it up — staged windows are unaffected.
            if self.pending_churn > 0
                && self.must_flush_before(self.peek_windowed().map(|(t, c, _)| (t, c)))
            {
                self.flush_rates();
            }
            let Some((t, _class, src)) = self.peek_windowed() else {
                break;
            };
            if t > tmax {
                break;
            }
            let ev = self.pop_windowed(src);
            if self.discard_if_stale(&ev.kind) {
                continue;
            }
            self.advance_to(ev.t);
            self.events_processed += 1;
            self.apply_event(ev.kind);
        }
    }

    /// Pre-drain the next window. Each shard pops its events with
    /// `t <= t0 + lookahead` (bounded by [`WindowPolicy::max_drain_per_shard`])
    /// into that shard's staged queue — pure motion preserving per-shard pop
    /// order, so the per-shard drains can run concurrently. Afterwards the
    /// kernel thread clears the drained completions' owner handles
    /// (serially: flow/action slots are recycled, so only the kernel may
    /// touch them) which routes later cancels/re-stamps of those owners
    /// onto the stale-generation path the merge already re-validates.
    fn plan_window(&mut self) {
        let EventQueue::Sharded(sh) = &mut self.events else {
            return;
        };
        let Some(first) = sh.peek() else {
            return;
        };
        // Infinity-safe: a single-cluster grid has no WAN latency and an
        // infinite horizon; the per-shard cap bounds the window instead.
        let horizon = first.t + self.lookahead;
        let cap = self.wpolicy.max_drain_per_shard;
        let fan_out = self.pool.is_some()
            && (self.wpolicy.force_parallel || multicore())
            && sh.len() >= self.wpolicy.min_parallel_drain;
        let shards = sh.shards_mut();
        let nparts = shards.len();
        let mut drained = vec![0usize; nparts];
        if fan_out {
            let pool = self.pool.as_ref().expect("gated on pool presence");
            let mut closures: Vec<Box<dyn FnMut() + Send>> = shards
                .iter_mut()
                .zip(self.staged.iter_mut())
                .zip(drained.iter_mut())
                .map(|((heap, staged), cnt)| {
                    Box::new(move || *cnt = Self::drain_shard(heap, staged, horizon, cap))
                        as Box<dyn FnMut() + Send>
                })
                .collect();
            let mut jobs: Vec<Job<'_>> = closures.iter_mut().map(|b| &mut **b as Job<'_>).collect();
            pool.run_batch(&mut jobs);
        } else {
            for (s, heap) in shards.iter_mut().enumerate() {
                drained[s] = Self::drain_shard(heap, &mut self.staged[s], horizon, cap);
            }
        }
        let total: usize = drained.iter().sum();
        self.staged_total += total;
        self.events_predrained += total as u64;
        self.windows_planned += 1;
        // Serial handle-clearing pass (see the doc comment above).
        for s in 0..nparts {
            for k in 0..self.staged[s].len() {
                match self.staged[s][k].kind {
                    EventKind::CpuDone { id, gen } => {
                        if let Some(a) = self.cpu[id].as_mut() {
                            if a.gen == gen {
                                a.ev = NO_HANDLE;
                            }
                        }
                    }
                    EventKind::FlowDone { id, gen } => {
                        if let Some(f) = self.flows[id].as_mut() {
                            if f.gen == gen {
                                f.ev = NO_HANDLE;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Pop one shard's current window (events up to `horizon`, at most
    /// `cap`) into its staged queue. Returns the number drained.
    fn drain_shard(
        heap: &mut IndexedHeap,
        staged: &mut VecDeque<Event>,
        horizon: f64,
        cap: usize,
    ) -> usize {
        let mut n = 0;
        while n < cap {
            match heap.peek() {
                Some(ev) if ev.t <= horizon => {}
                _ => break,
            }
            staged.push_back(heap.pop().expect("peeked event"));
            n += 1;
        }
        n
    }

    /// The source holding the globally next event under the kernel's strict
    /// total order: a staged window front or the live sharded heap. Returns
    /// the winner's `(t, class)` too — the coalesced-recompute flush rule
    /// needs both to decide whether pending churn must solve first.
    fn peek_windowed(&self) -> Option<(f64, u8, WindowSource)> {
        let EventQueue::Sharded(sh) = &self.events else {
            unreachable!("windowed loop requires the sharded queue");
        };
        let mut best: Option<(&Event, WindowSource)> = sh.peek().map(|e| (e, WindowSource::Heap));
        for (s, q) in self.staged.iter().enumerate() {
            if let Some(ev) = q.front() {
                if best.is_none_or(|(b, _)| ev.fires_before(b)) {
                    best = Some((ev, WindowSource::Staged(s)));
                }
            }
        }
        best.map(|(e, src)| (e.t, e.class, src))
    }

    /// Pop the event [`Self::peek_windowed`] selected.
    fn pop_windowed(&mut self, src: WindowSource) -> Event {
        match src {
            WindowSource::Heap => {
                let EventQueue::Sharded(sh) = &mut self.events else {
                    unreachable!("windowed loop requires the sharded queue");
                };
                sh.pop().expect("peeked event")
            }
            WindowSource::Staged(s) => {
                self.staged_total -= 1;
                self.staged[s].pop_front().expect("peeked staged event")
            }
        }
    }

    fn finish(mut self) -> RunReport {
        // Join the window workers first; nothing below fans out.
        self.pool = None;
        let mut unfinished = Vec::new();
        let mut died = Vec::new();
        for p in &self.procs {
            match p.state {
                PState::Alive => {
                    unfinished.push(p.name.to_string());
                    p.port.send_grant(Grant::Kill);
                }
                PState::Died => {
                    died.push(p.name.to_string());
                    p.port.send_grant(Grant::Kill);
                }
                _ => {}
            }
        }
        for p in &mut self.procs {
            if let Some(j) = p.join.take() {
                let _ = j.join();
            }
        }
        if self.panic_on_failure && !self.failed.is_empty() {
            panic!("simulated process failures: {:?}", self.failed);
        }
        // Flows still in flight at cutoff are credited for the bytes they
        // actually moved (completed flows were credited at their FlowDone).
        for &fi in &self.active_flows {
            let f = self.flows[fi as usize]
                .as_ref()
                .expect("active flow indexed");
            let moved = f.size - f.remaining;
            if moved > 0.0 {
                for &l in self.routes_tbl[f.route as usize].links.iter() {
                    self.link_bytes[l as usize] += moved;
                }
            }
        }
        // Processes alive (or killed) at the cutoff get their tracks
        // closed at the run's end time.
        self.rec.close_open_tracks(self.now);
        if self.obs.is_enabled() {
            self.obs
                .counter_add("sim.events_applied", self.events_processed);
            self.obs
                .counter_add("sim.events_stale_discarded", self.stale_discarded);
            self.obs
                .counter_add("sim.heap_compactions", self.compactions);
            self.obs.counter_add("sim.recomputes", self.recomputes);
            // Timing split: `recomputes` counts churn notifications (a
            // timing-invariant property of the scenario), `solves` the rate
            // solves actually run, `coalesced` the same-instant churns a
            // deferred solve absorbed. Eager: solves == recomputes.
            self.obs.counter_add("sim.recompute.solves", self.solves);
            self.obs
                .counter_add("sim.recompute.coalesced", self.coalesced_absorbed);
            self.obs.gauge_set("sim.end_time", self.now);
            // Staged-but-unapplied window events are still pending events;
            // `staged_total` is 0 outside windowed mode, so serial
            // snapshots are unchanged byte for byte.
            self.obs.gauge_set(
                "sim.final_heap_len",
                (self.events.len() + self.staged_total) as f64,
            );
            if matches!(self.kernel, KernelMode::Windowed { .. }) {
                self.obs
                    .counter_add("sim.windows_planned", self.windows_planned);
                self.obs
                    .counter_add("sim.events_predrained", self.events_predrained);
            }
        }
        RunReport {
            end_time: self.now,
            completed: self.completed.iter().map(|s| s.to_string()).collect(),
            failed: std::mem::take(&mut self.failed),
            unfinished,
            died,
            host_flops: std::mem::take(&mut self.host_flops),
            link_bytes: std::mem::take(&mut self.link_bytes),
            events_processed: self.events_processed,
            trace: std::mem::take(&mut self.trace),
        }
    }

    // ------------------------------------------------------------------
    // Time advancement and rate recomputation
    // ------------------------------------------------------------------

    fn advance_to(&mut self, t: f64) {
        let dt = t - self.last_advance;
        if dt > 0.0 && !self.accrue_parallel(dt) {
            for a in self.cpu.iter_mut().flatten() {
                let done = (a.rate * dt).min(a.remaining);
                self.host_flops[a.host] += done;
                a.remaining -= done;
            }
            for k in 0..self.active_flows.len() {
                let fi = self.active_flows[k] as usize;
                let f = self.flows[fi].as_mut().expect("active flow indexed");
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
            }
        }
        self.last_advance = t;
        self.now = t;
    }

    /// Fan the accrual sweep out to the worker pool when it pays, returning
    /// `false` (sweep left to the serial loops above) otherwise.
    ///
    /// Bitwise identical to the serial sweep by construction: CPU actions
    /// are bucketed by their host's partition in ascending id order — the
    /// serial traversal order — so each host's flop accumulation happens in
    /// exactly the serial summation order on exactly the one job owning
    /// that partition, and flows touch only their own `remaining`, making
    /// any flow chunking exact. Neither bucketing nor chunk count can
    /// change a result bit; only where the FLOP runs.
    fn accrue_parallel(&mut self, dt: f64) -> bool {
        let Some(pool) = self.pool.as_ref() else {
            return false;
        };
        if !(self.wpolicy.force_parallel || multicore()) {
            return false;
        }
        if self.cpu.len() + self.active_flows.len() < self.wpolicy.min_parallel_accrual {
            return false;
        }
        let nparts = self.nparts as usize;
        if self.accrual_parts.len() != nparts {
            self.accrual_parts = (0..nparts).map(|_| Vec::new()).collect();
        }
        for b in &mut self.accrual_parts {
            b.clear();
        }
        for (id, slot) in self.cpu.iter().enumerate() {
            if let Some(a) = slot {
                self.accrual_parts[self.part_of_host[a.host] as usize].push(id as u32);
            }
        }
        let ptrs = EntityPtrs {
            cpu: self.cpu.as_mut_ptr(),
            flows: self.flows.as_mut_ptr(),
            host_flops: self.host_flops.as_mut_ptr(),
        };
        let mut closures: Vec<Box<dyn FnMut() + Send>> = Vec::new();
        for ids in self.accrual_parts.iter().filter(|v| !v.is_empty()) {
            let ids: &[u32] = ids;
            // Capture the pointer bundle whole so its `Send` impl applies
            // (disjoint-field capture would smuggle bare raw pointers).
            let p = ptrs;
            closures.push(Box::new(move || {
                let p = p;
                for &idu in ids {
                    // SAFETY: each live action id appears in exactly one
                    // partition bucket, and a partition's hosts belong to
                    // no other bucket, so the action slot and the
                    // `host_flops` cell are touched by this job alone.
                    unsafe {
                        let a = (*p.cpu.add(idu as usize))
                            .as_mut()
                            .expect("bucketed action is live");
                        let done = (a.rate * dt).min(a.remaining);
                        *p.host_flops.add(a.host) += done;
                        a.remaining -= done;
                    }
                }
            }));
        }
        let nflows = self.active_flows.len();
        if nflows > 0 {
            let chunk = nflows.div_ceil(pool.workers() + 1);
            for ch in self.active_flows.chunks(chunk) {
                let p = ptrs;
                closures.push(Box::new(move || {
                    let p = p;
                    for &fi in ch {
                        // SAFETY: each active flow id appears exactly once
                        // in `active_flows`, so exactly one chunk job
                        // touches this slot.
                        unsafe {
                            let f = (*p.flows.add(fi as usize))
                                .as_mut()
                                .expect("active flow indexed");
                            let moved = (f.rate * dt).min(f.remaining);
                            f.remaining -= moved;
                        }
                    }
                }));
            }
        }
        let mut jobs: Vec<Job<'_>> = closures.iter_mut().map(|b| &mut **b as Job<'_>).collect();
        pool.run_batch(&mut jobs);
        true
    }

    /// Rebuild the event heap without stale completion events once they
    /// dominate it. Stale-mark mode only — the indexed queue removes
    /// cancelled events eagerly and never accumulates dead weight. Pop
    /// order is a strict total order on `(t, class, key, seq)`, so
    /// rebuilding cannot reorder live events.
    fn maybe_compact(&mut self) {
        let EventQueue::Stale(heap) = &mut self.events else {
            return;
        };
        if !self
            .compaction
            .should_compact(self.stale_events, heap.len())
        {
            return;
        }
        let drained = std::mem::take(heap).into_vec();
        let mut kept = Vec::with_capacity(drained.len() - self.stale_events);
        for ev in drained {
            let keep = match ev.kind {
                EventKind::CpuDone { id, gen } => {
                    self.cpu[id].as_ref().map(|a| a.gen == gen) == Some(true)
                }
                EventKind::FlowDone { id, gen } => {
                    self.flows[id].as_ref().map(|f| f.active && f.gen == gen) == Some(true)
                }
                _ => true,
            };
            if keep {
                kept.push(ev);
            }
        }
        *heap = BinaryHeap::from(kept);
        self.stale_events = 0;
        self.compactions += 1;
    }

    /// Note a churn (the site already marked its dirty hosts/links). Under
    /// [`RecomputeTiming::Eager`] the solve runs inline, exactly as it
    /// always did; under [`RecomputeTiming::Coalesced`] the churn joins the
    /// pending burst and the run loop flushes it before the rates become
    /// observable (see [`Self::must_flush_before`]).
    fn recompute(&mut self) {
        self.recomputes += 1;
        self.pending_churn += 1;
        if self.timing == RecomputeTiming::Eager {
            self.flush_rates();
        }
    }

    /// Whether a pending churn burst must be solved before applying the
    /// next event (`peeked = (t, class)` of the run loop's candidate, or
    /// `None` when no event is queued).
    ///
    /// The burst may keep growing across *every* same-instant event —
    /// completions included — and must land only when the clock is about
    /// to advance (accrual reads rates) or the queue is empty (the solve
    /// itself may supply the next event). Same-instant completion pops are
    /// safe to defer across because a deferred solve can never (re)stamp a
    /// completion *at* `now`:
    ///
    /// - an in-flight action due exactly at `now` has bitwise-zero
    ///   remaining work, so any post-churn rate leaves its stamp at `now`
    ///   unchanged (`now + 0.0 / rate`), and the run loop pops it off its
    ///   original stamp under the same `(t, class, key, seq)` order;
    /// - an action still in flight past `now` has `remaining > 0` and a
    ///   finite rate, so its restamp lands strictly in the future;
    /// - churn cannot *create* an at-`now` completion: zero-flop computes
    ///   never allocate a cpu action ([`Request::Compute`] guards
    ///   `flops <= 0`), and empty-route or zero-byte flows finish inline
    ///   at [`EventKind::FlowActivate`] without ever scheduling a
    ///   [`EventKind::FlowDone`].
    ///
    /// The one caveat is floating point: `now + remaining / rate` can in
    /// principle round down to `now` when the quotient is below half an
    /// ulp of `now`, which would let an eager solve pop that completion
    /// earlier within the instant than the deferred solve does. DESIGN.md
    /// records this as the pinned modeling assumption behind the flush
    /// rule; the randomized determinism suites probe it continuously.
    #[inline]
    fn must_flush_before(&self, peeked: Option<(f64, u8)>) -> bool {
        match peeked {
            None => true,
            Some((t, _class)) => t > self.now,
        }
    }

    /// Re-derive rates and reschedule completions for the pending churn
    /// burst (a burst of one, under eager timing).
    fn flush_rates(&mut self) {
        debug_assert!(self.pending_churn > 0, "flush without pending churn");
        self.solves += 1;
        self.coalesced_absorbed += (self.pending_churn - 1) as u64;
        // Dirty marking happens in every mode, so the dirty-set sizes are
        // meaningful (if unused) under Legacy/Full too. Gated: building the
        // histogram observations per solve is the only non-counter cost.
        if self.obs.is_enabled() {
            self.obs
                .observe("sim.recompute.burst", self.pending_churn as f64);
            self.obs.observe(
                "sim.dirty_hosts_per_recompute",
                self.dirty_hosts.len() as f64,
            );
            self.obs.observe(
                "sim.dirty_links_per_recompute",
                self.dirty_links.len() as f64,
            );
        }
        self.pending_churn = 0;
        match self.mode {
            RecomputeMode::Legacy => self.recompute_legacy(),
            RecomputeMode::Full => self.recompute_scoped(true),
            RecomputeMode::Incremental => self.recompute_scoped(false),
        }
    }

    /// The pre-change recompute: every rate re-derived globally, every
    /// generation re-stamped, every completion event re-pushed, routes
    /// cloned per solve.
    fn recompute_legacy(&mut self) {
        let now = self.now;
        let nhosts = self.grid.hosts().len();
        let mut counts = vec![0usize; nhosts];
        for a in self.cpu.iter().flatten() {
            counts[a.host] += 1;
        }
        let mut cpu_events = Vec::new();
        for (id, slot) in self.cpu.iter_mut().enumerate() {
            if let Some(a) = slot {
                let h = &self.grid.hosts()[a.host];
                let had_pending = a.gen != 0 && a.rate > 0.0;
                let rate = cpu_share(h.speed, h.cores, counts[a.host], self.host_load[a.host]);
                if had_pending && a.due == now {
                    // Due-now guard (see `CpuAction::due`): the event fires
                    // this instant under any rate; keep its stamp.
                    a.rate = rate;
                    continue;
                }
                a.rate = rate;
                a.gen = self.gen_counter;
                self.gen_counter += 1;
                if a.rate > 0.0 {
                    // Defer the cancel into the re-push so the indexed
                    // queue can overwrite the old event in place.
                    cpu_events.push((now + a.remaining / a.rate, id, a.gen, had_pending));
                } else if had_pending {
                    Self::cancel_ev(&mut self.events, &mut self.stale_events, &mut a.ev);
                    a.due = f64::INFINITY;
                }
            }
        }
        for (t, id, gen, had_pending) in cpu_events {
            let a = self.cpu[id].as_mut().expect("live action");
            let shard = self.part_of_host[a.host];
            a.due = t;
            Self::restamp_ev(
                &mut self.events,
                &mut self.stale_events,
                &mut self.seq,
                shard,
                &mut a.ev,
                had_pending,
                t,
                EventKind::CpuDone { id, gen },
            );
        }
        // Flat-array global solve: capacities are hoisted into engine state
        // (`link_caps`) and routes referenced in place, so the reference path
        // allocates nothing on the steady path either — legacy stays slow by
        // *scope* (global, every solve), not by incidental allocation.
        let s = &mut self.scratch;
        s.comp_flows.clear();
        s.offsets.clear();
        s.links_flat.clear();
        for (id, slot) in self.flows.iter().enumerate() {
            if let Some(f) = slot {
                if f.active {
                    s.comp_flows.push(id as u32);
                    let links = &self.routes_tbl[f.route as usize].links;
                    s.offsets
                        .push((s.links_flat.len() as u32, links.len() as u32));
                    s.links_flat.extend_from_slice(links);
                }
            }
        }
        s.fair
            .solve(&s.offsets, &s.links_flat, &self.link_caps, &mut s.rates);
        let mut flow_events = Vec::new();
        for (k, &fid) in self.scratch.comp_flows.iter().enumerate() {
            let id = fid as usize;
            let f = self.flows[id].as_mut().expect("active flow");
            let had_pending = f.gen != 0 && f.rate > 0.0;
            let rate = self.scratch.rates[k];
            if had_pending && f.due == now {
                // Due-now guard (see `CpuAction::due`).
                f.rate = rate;
                continue;
            }
            f.rate = rate;
            f.gen = self.gen_counter;
            self.gen_counter += 1;
            if f.rate > 0.0 && f.rate.is_finite() {
                flow_events.push((now + f.remaining / f.rate, id, f.gen, had_pending));
            } else if had_pending {
                Self::cancel_ev(&mut self.events, &mut self.stale_events, &mut f.ev);
                f.due = f64::INFINITY;
            }
        }
        for (t, id, gen, had_pending) in flow_events {
            let f = self.flows[id].as_mut().expect("active flow");
            let shard = f.part;
            f.due = t;
            Self::restamp_ev(
                &mut self.events,
                &mut self.stale_events,
                &mut self.seq,
                shard,
                &mut f.ev,
                had_pending,
                t,
                EventKind::FlowDone { id, gen },
            );
        }
        self.clear_dirty();
    }

    /// Scoped recompute. With `full` set, every host with actions and every
    /// active sharing component is revisited; otherwise only dirty hosts
    /// and components reachable from dirty links. Both paths run the same
    /// per-component solver over flows sorted by id and skip re-stamping
    /// entities whose rate is bitwise unchanged, so their observable
    /// behavior is identical — the determinism gate in
    /// `tests/determinism.rs` holds them to that.
    fn recompute_scoped(&mut self, full: bool) {
        let now = self.now;
        // CPU shares for scoped hosts.
        let mut scoped = std::mem::take(&mut self.scratch.scoped_hosts);
        scoped.clear();
        if full {
            scoped.extend(
                (0..self.host_actions.len())
                    .filter(|&h| !self.host_actions[h].is_empty())
                    .map(|h| h as u32),
            );
        } else {
            scoped.extend_from_slice(&self.dirty_hosts);
            scoped.sort_unstable();
        }
        for &hu in &scoped {
            let h = hu as usize;
            let n = self.host_actions[h].len();
            if n == 0 {
                continue;
            }
            let spec = &self.grid.hosts()[h];
            let rate = cpu_share(spec.speed, spec.cores, n, self.host_load[h]);
            let shard = self.part_of_host[h];
            for k in 0..n {
                let id = self.host_actions[h][k] as usize;
                let a = self.cpu[id].as_mut().expect("indexed action is live");
                if a.rate == rate {
                    continue;
                }
                let had_pending = a.gen != 0 && a.rate > 0.0;
                if had_pending && a.due == now {
                    // Due-now guard (see `CpuAction::due`).
                    a.rate = rate;
                    continue;
                }
                a.rate = rate;
                a.gen = self.gen_counter;
                self.gen_counter += 1;
                if rate > 0.0 {
                    a.due = now + a.remaining / rate;
                    Self::restamp_ev(
                        &mut self.events,
                        &mut self.stale_events,
                        &mut self.seq,
                        shard,
                        &mut a.ev,
                        had_pending,
                        a.due,
                        EventKind::CpuDone { id, gen: a.gen },
                    );
                } else if had_pending {
                    Self::cancel_ev(&mut self.events, &mut self.stale_events, &mut a.ev);
                    a.due = f64::INFINITY;
                }
            }
        }
        scoped.clear();
        self.scratch.scoped_hosts = scoped;
        // Network: solve each affected sharing component.
        self.scratch.flow_mark.ensure(self.flows.len());
        self.scratch.flow_mark.begin();
        self.scratch.comp_link_mark.begin();
        if full {
            for id in 0..self.flows.len() {
                let is_root = self.flows[id].as_ref().map(|f| f.active) == Some(true)
                    && !self.scratch.flow_mark.contains(id);
                if !is_root {
                    continue;
                }
                let route = self.flows[id].as_ref().expect("checked above").route as usize;
                for k in 0..self.routes_tbl[route].links.len() {
                    let l = self.routes_tbl[route].links[k] as usize;
                    if !self.scratch.comp_link_mark.contains(l) {
                        self.scratch.comp_link_mark.set(l, 0);
                        self.scratch.link_stack.push(l as u32);
                    }
                }
                self.flood_component();
                self.solve_component(now);
            }
        } else {
            let mut roots = std::mem::take(&mut self.dirty_links);
            roots.sort_unstable();
            for &lu in &roots {
                let l = lu as usize;
                if self.scratch.comp_link_mark.contains(l) {
                    continue;
                }
                self.scratch.comp_link_mark.set(l, 0);
                self.scratch.link_stack.push(lu);
                self.flood_component();
                self.solve_component(now);
            }
            roots.clear();
            self.dirty_links = roots;
        }
        self.clear_dirty();
    }

    fn clear_dirty(&mut self) {
        self.dirty_hosts.clear();
        self.dirty_links.clear();
        self.dirty_host_mark.begin();
        self.dirty_link_mark.begin();
    }

    /// Flood one connected sharing component from the seed links already on
    /// `scratch.link_stack` (and marked visited), collecting its flows into
    /// `scratch.comp_flows`.
    fn flood_component(&mut self) {
        let s = &mut self.scratch;
        s.comp_flows.clear();
        while let Some(l) = s.link_stack.pop() {
            for &fid in &self.link_flows[l as usize] {
                if s.flow_mark.contains(fid as usize) {
                    continue;
                }
                s.flow_mark.set(fid as usize, 0);
                s.comp_flows.push(fid);
                let f = self.flows[fid as usize].as_ref().expect("indexed flow");
                for &l2 in self.routes_tbl[f.route as usize].links.iter() {
                    if !s.comp_link_mark.contains(l2 as usize) {
                        s.comp_link_mark.set(l2 as usize, 0);
                        s.link_stack.push(l2);
                    }
                }
            }
        }
    }

    /// Max-min solve the component collected by `flood_component` and apply
    /// the resulting rates.
    ///
    /// Flows are sorted by id, grouped into *route classes* (flows sharing
    /// one interned route — concurrent transfers between the same host
    /// pair, e.g. a bulk migration alongside application traffic), and the
    /// progressive filling runs over distinct classes with multiplicity
    /// weights ([`FairScratch::solve_classes`]) — arithmetically identical
    /// to the per-flow solve, at O(classes) per filling round instead of
    /// O(flows).
    ///
    /// Classes and component-local link indices are assigned in
    /// first-encounter order over the sorted flow list (repeat routes
    /// introduce no new links, so the link enumeration matches the per-flow
    /// solver's exactly), keeping the solver input — and hence every
    /// rounding decision — a pure function of the component's membership,
    /// independent of flood traversal order or which dirty link seeded it.
    fn solve_component(&mut self, now: f64) {
        let s = &mut self.scratch;
        if s.comp_flows.is_empty() {
            return;
        }
        s.comp_flows.sort_unstable();
        s.offsets.clear();
        s.links_flat.clear();
        s.caps_local.clear();
        s.link_local.begin();
        s.class_of.clear();
        s.class_mult.clear();
        s.route_class.ensure(self.routes_tbl.len());
        s.route_class.begin();
        for &fid in &s.comp_flows {
            let f = self.flows[fid as usize].as_ref().expect("indexed flow");
            if let Some(c) = s.route_class.get(f.route as usize) {
                s.class_of.push(c);
                s.class_mult[c as usize] += 1;
                continue;
            }
            let c = s.class_mult.len() as u32;
            s.route_class.set(f.route as usize, c);
            s.class_of.push(c);
            s.class_mult.push(1);
            let links = &self.routes_tbl[f.route as usize].links;
            s.offsets
                .push((s.links_flat.len() as u32, links.len() as u32));
            for &l in links.iter() {
                let li = match s.link_local.get(l as usize) {
                    Some(v) => v,
                    None => {
                        let v = s.caps_local.len() as u32;
                        s.caps_local.push(self.link_caps[l as usize]);
                        s.link_local.set(l as usize, v);
                        v
                    }
                };
                s.links_flat.push(li);
            }
        }
        s.fair.solve_classes(
            &s.offsets,
            &s.links_flat,
            &s.caps_local,
            &s.class_mult,
            &mut s.class_rates,
        );
        for (k, &fid) in s.comp_flows.iter().enumerate() {
            let id = fid as usize;
            let rate = s.class_rates[s.class_of[k] as usize];
            let f = self.flows[id].as_mut().expect("indexed flow");
            if f.rate == rate {
                continue;
            }
            let had_pending = f.gen != 0 && f.rate > 0.0;
            if had_pending && f.due == now {
                // Due-now guard (see `CpuAction::due`).
                f.rate = rate;
                continue;
            }
            f.rate = rate;
            f.gen = self.gen_counter;
            self.gen_counter += 1;
            if rate > 0.0 && rate.is_finite() {
                f.due = now + f.remaining / rate;
                Self::restamp_ev(
                    &mut self.events,
                    &mut self.stale_events,
                    &mut self.seq,
                    f.part,
                    &mut f.ev,
                    had_pending,
                    f.due,
                    EventKind::FlowDone { id, gen: f.gen },
                );
            } else if had_pending {
                Self::cancel_ev(&mut self.events, &mut self.stale_events, &mut f.ev);
                f.due = f64::INFINITY;
            }
        }
    }

    // ------------------------------------------------------------------
    // Process resumption
    // ------------------------------------------------------------------

    /// Queue a resumption at the back (woken by an event).
    fn resume(&mut self, pid: ProcId, grant: Grant) {
        self.runnable.push_back((pid, grant));
    }

    /// Queue a resumption at the front (immediate reply to the process that
    /// just issued a request — it continues before anything else runs).
    fn resume_first(&mut self, pid: ProcId, grant: Grant) {
        self.runnable.push_front((pid, grant));
    }

    fn record(&mut self, pid: Option<ProcId>, kind: TraceKind) {
        self.trace.records.push(TraceRecord {
            t: self.now,
            pid,
            kind,
        });
    }

    // ------------------------------------------------------------------
    // Requests
    // ------------------------------------------------------------------

    fn handle_request(&mut self, pid: ProcId, req: Request) {
        match req {
            Request::Now => self.resume_first(pid, Grant::Time(self.now)),
            Request::Compute { flops } => {
                if flops <= 0.0 {
                    self.resume_first(pid, Grant::Unit);
                } else {
                    let host = self.procs[pid.0 as usize].host.0 as usize;
                    self.alloc_cpu(host, pid, flops);
                    self.recompute();
                }
            }
            Request::Sleep { dt } => {
                if dt <= 0.0 {
                    self.resume_first(pid, Grant::Unit);
                } else {
                    let t = self.now + dt;
                    self.push_event(t, EventKind::SleepDone(pid));
                }
            }
            Request::Send {
                key,
                dst,
                bytes,
                payload,
                mode,
            } => self.do_send(pid, key, dst, bytes, payload, mode),
            Request::Recv { key } => self.do_recv(pid, key),
            Request::TryRecv { key } => {
                let p = self
                    .mailboxes
                    .get_mut(key)
                    .and_then(|mb| mb.arrived.pop_front());
                if p.is_some() {
                    self.mailboxes.release_if_empty(key);
                }
                self.resume_first(pid, Grant::MaybePayload(p));
            }
            Request::Transfer { dst, bytes } => {
                let src = self.procs[pid.0 as usize].host;
                self.start_flow(src, dst, bytes, None, OnDone::Wake(pid));
            }
            Request::Spawn { name, host, f } => {
                let child = self.spawn_at(self.now, &name, host, f);
                self.resume_first(pid, Grant::Proc(child));
            }
            Request::InjectLoad { host, amount } => {
                self.host_load[host.0 as usize] += amount;
                let total = self.host_load[host.0 as usize];
                self.record(Some(pid), TraceKind::LoadChange { host, total });
                self.mark_host_dirty(host.0 as usize);
                self.recompute();
                self.resume_first(pid, Grant::Unit);
            }
            Request::RemoveLoad { host, amount } => {
                let l = &mut self.host_load[host.0 as usize];
                *l = (*l - amount).max(0.0);
                let total = *l;
                self.record(Some(pid), TraceKind::LoadChange { host, total });
                self.mark_host_dirty(host.0 as usize);
                self.recompute();
                self.resume_first(pid, Grant::Unit);
            }
            Request::Trace { label, value } => {
                self.record(Some(pid), TraceKind::Custom { label, value });
                self.resume_first(pid, Grant::Unit);
            }
            Request::Exit => {
                let slot = &mut self.procs[pid.0 as usize];
                slot.state = PState::Done;
                let name = slot.name.clone();
                self.completed.push(name.clone());
                self.record(Some(pid), TraceKind::ProcExit { name });
                self.rec.track_end(pid.0, self.now);
            }
            Request::Panic(msg) => {
                let slot = &mut self.procs[pid.0 as usize];
                slot.state = PState::Failed;
                let name = slot.name.clone();
                self.failed.push((name.to_string(), msg.clone()));
                self.record(Some(pid), TraceKind::ProcFail { name, message: msg });
                self.rec.track_end(pid.0, self.now);
            }
        }
    }

    fn alloc_cpu(&mut self, host: usize, pid: ProcId, flops: f64) {
        let action = CpuAction {
            host,
            pid,
            remaining: flops,
            rate: 0.0,
            gen: 0,
            ev: NO_HANDLE,
            due: f64::INFINITY,
        };
        let id = match self.free_cpu.pop() {
            Some(i) => {
                self.cpu[i as usize] = Some(action);
                i as usize
            }
            None => {
                self.cpu.push(Some(action));
                self.cpu.len() - 1
            }
        };
        self.host_actions[host].push(id as u32);
        self.mark_host_dirty(host);
    }

    fn do_send(
        &mut self,
        pid: ProcId,
        key: MailKey,
        dst: HostId,
        bytes: f64,
        payload: Payload,
        mode: SendMode,
    ) {
        let src = self.procs[pid.0 as usize].host;
        match mode {
            SendMode::Eager => {
                self.start_flow(src, dst, bytes, Some(payload), OnDone::Deliver { key });
                self.resume_first(pid, Grant::Unit);
            }
            SendMode::Rendezvous => {
                let waiting = self.pop_alive_waiting(key);
                match waiting {
                    Some(recv) => {
                        // Deliver to the receiver's actual host (robust if a
                        // logical destination was remapped by swapping).
                        let rdst = self.procs[recv.0 as usize].host;
                        self.start_flow(
                            src,
                            rdst,
                            bytes,
                            Some(payload),
                            OnDone::Rendezvous { recv, send: pid },
                        );
                    }
                    None => {
                        self.mailboxes
                            .get_or_insert(key)
                            .queued_sync
                            .push_back(QueuedSend {
                                sender: pid,
                                src,
                                bytes,
                                payload,
                            });
                    }
                }
            }
        }
    }

    /// Pop the first still-alive waiting receiver on a mailbox, discarding
    /// any that died with their host. Releases the mailbox if that leaves
    /// it empty.
    fn pop_alive_waiting(&mut self, key: MailKey) -> Option<ProcId> {
        let mb = self.mailboxes.get_mut(key)?;
        let mut found = None;
        while let Some(r) = mb.waiting.pop_front() {
            if self.procs[r.0 as usize].state == PState::Alive {
                found = Some(r);
                break;
            }
        }
        self.mailboxes.release_if_empty(key);
        found
    }

    fn do_recv(&mut self, pid: ProcId, key: MailKey) {
        if let Some(mb) = self.mailboxes.get_mut(key) {
            if let Some(p) = mb.arrived.pop_front() {
                self.mailboxes.release_if_empty(key);
                self.resume_first(pid, Grant::Payload(p));
                return;
            }
            if let Some(qs) = mb.queued_sync.pop_front() {
                self.mailboxes.release_if_empty(key);
                let dst = self.procs[pid.0 as usize].host;
                self.start_flow(
                    qs.src,
                    dst,
                    qs.bytes,
                    Some(qs.payload),
                    OnDone::Rendezvous {
                        recv: pid,
                        send: qs.sender,
                    },
                );
                return;
            }
        }
        self.mailboxes.get_or_insert(key).waiting.push_back(pid);
    }

    /// Interned route lookup: resolves each (src, dst) pair once and shares
    /// the link list for every subsequent flow.
    /// Intern the route for a host pair, deduplicating by *content*
    /// (link list + latency): every pair sharing one physical path maps to
    /// a single route id, which is what [`Self::solve_component`] groups
    /// route classes by. Hosts have private NIC uplinks, so distinct pairs
    /// stay distinct; the dedup collapses repeated lookups of one pair,
    /// and all same-host (empty-route) transfers grid-wide.
    fn route_id(&mut self, src: HostId, dst: HostId) -> u32 {
        if let Some(&id) = self.route_ids.get(&(src.0, dst.0)) {
            return id;
        }
        let mut links = std::mem::take(&mut self.scratch.route_tmp);
        links.clear();
        let latency = self.grid.route_links_into(src, dst, &mut links);
        let content = (links[..].into(), latency.to_bits());
        let id = match self.route_contents.get(&content) {
            Some(&id) => id,
            None => {
                let id = self.routes_tbl.len() as u32;
                self.routes_tbl.push(RouteEntry {
                    links: content.0.clone(),
                    latency,
                });
                self.route_contents.insert(content, id);
                id
            }
        };
        self.scratch.route_tmp = links;
        self.route_ids.insert((src.0, dst.0), id);
        id
    }

    fn start_flow(
        &mut self,
        src: HostId,
        dst: HostId,
        bytes: f64,
        payload: Option<Payload>,
        on_done: OnDone,
    ) {
        let rid = self.route_id(src, dst);
        let latency = self.routes_tbl[rid as usize].latency;
        let flow = Flow {
            route: rid,
            size: bytes.max(0.0),
            remaining: bytes.max(0.0),
            rate: 0.0,
            gen: 0,
            active: false,
            act_idx: u32::MAX,
            ev: NO_HANDLE,
            due: f64::INFINITY,
            part: self.part_of_host[src.0 as usize],
            payload,
            on_done,
        };
        let id = match self.free_flows.pop() {
            Some(i) => {
                self.flows[i as usize] = Some(flow);
                i as usize
            }
            None => {
                self.flows.push(Some(flow));
                self.flows.len() - 1
            }
        };
        let t = self.now + latency;
        self.push_event(t, EventKind::FlowActivate { id });
    }

    // ------------------------------------------------------------------
    // Events
    // ------------------------------------------------------------------

    /// Apply a popped event. `CpuDone`/`FlowDone` staleness was already
    /// checked by the run loop; the generations seen here are live.
    fn apply_event(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start(pid) => {
                let name = self.procs[pid.0 as usize].name.clone();
                self.record(Some(pid), TraceKind::ProcStart { name });
                self.rec.track_start(pid.0, self.now);
                self.resume(pid, Grant::Unit);
            }
            EventKind::SleepDone(pid) => self.resume(pid, Grant::Unit),
            EventKind::CpuDone { id, .. } => {
                let a = self.cpu[id].take().expect("validated by run loop");
                let ha = &mut self.host_actions[a.host];
                let pos = ha
                    .iter()
                    .position(|&x| x == id as u32)
                    .expect("action indexed on its host");
                ha.swap_remove(pos);
                self.free_cpu.push(id as u32);
                self.mark_host_dirty(a.host);
                self.resume(a.pid, Grant::Unit);
                self.recompute();
            }
            EventKind::FlowActivate { id } => {
                let f = self.flows[id].as_mut().expect("flow exists at activate");
                f.active = true;
                let route = f.route as usize;
                let instant = self.routes_tbl[route].links.is_empty() || f.remaining <= 0.0;
                if instant {
                    self.finish_flow(id);
                } else {
                    let f = self.flows[id].as_mut().expect("flow exists at activate");
                    f.act_idx = self.active_flows.len() as u32;
                    self.active_flows.push(id as u32);
                    for k in 0..self.routes_tbl[route].links.len() {
                        let l = self.routes_tbl[route].links[k] as usize;
                        self.link_flows[l].push(id as u32);
                        if !self.dirty_link_mark.contains(l) {
                            self.dirty_link_mark.set(l, 0);
                            self.dirty_links.push(l as u32);
                        }
                    }
                    self.recompute();
                }
            }
            EventKind::FlowDone { id, .. } => {
                let (route, act_idx, size) = {
                    let f = self.flows[id].as_ref().expect("validated by run loop");
                    (f.route as usize, f.act_idx as usize, f.size)
                };
                for k in 0..self.routes_tbl[route].links.len() {
                    let l = self.routes_tbl[route].links[k] as usize;
                    // The whole transfer is credited at completion; the
                    // accrual sweep no longer touches link counters.
                    self.link_bytes[l] += size;
                    let v = &mut self.link_flows[l];
                    let pos = v
                        .iter()
                        .position(|&x| x == id as u32)
                        .expect("flow indexed on its links");
                    v.swap_remove(pos);
                    if !self.dirty_link_mark.contains(l) {
                        self.dirty_link_mark.set(l, 0);
                        self.dirty_links.push(l as u32);
                    }
                }
                self.active_flows.swap_remove(act_idx);
                if let Some(&moved) = self.active_flows.get(act_idx) {
                    self.flows[moved as usize]
                        .as_mut()
                        .expect("active flow indexed")
                        .act_idx = act_idx as u32;
                }
                self.finish_flow(id);
                self.recompute();
            }
            EventKind::HostFail { host } => {
                let h = host.0 as usize;
                self.host_alive[h] = false;
                self.host_load[h] = 0.0;
                // Kill every process on the host and drop its CPU actions.
                let pids: Vec<ProcId> = self
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.host == host && p.state == PState::Alive)
                    .map(|(i, _)| ProcId(i as u32))
                    .collect();
                for pid in &pids {
                    self.procs[pid.0 as usize].state = PState::Died;
                    self.rec.track_end(pid.0, self.now);
                }
                let ids = std::mem::take(&mut self.host_actions[h]);
                for &idu in &ids {
                    let a = self.cpu[idu as usize]
                        .take()
                        .expect("action live on failed host");
                    if a.gen != 0 && a.rate > 0.0 {
                        let mut ev = a.ev;
                        Self::cancel_ev(&mut self.events, &mut self.stale_events, &mut ev);
                    }
                    self.free_cpu.push(idu);
                }
                // Drop queued resumptions for dead processes.
                self.runnable
                    .retain(|(pid, _)| self.procs[pid.0 as usize].state == PState::Alive);
                self.record(None, TraceKind::HostFail { host });
                self.mark_host_dirty(h);
                self.recompute();
            }
            EventKind::LoadOn { host, amount } => {
                self.host_load[host.0 as usize] += amount;
                let total = self.host_load[host.0 as usize];
                self.record(None, TraceKind::LoadChange { host, total });
                self.mark_host_dirty(host.0 as usize);
                self.recompute();
            }
            EventKind::LoadOff { host, amount } => {
                let l = &mut self.host_load[host.0 as usize];
                *l = (*l - amount).max(0.0);
                let total = *l;
                self.record(None, TraceKind::LoadChange { host, total });
                self.mark_host_dirty(host.0 as usize);
                self.recompute();
            }
        }
    }

    fn finish_flow(&mut self, id: usize) {
        let f = self.flows[id].take().expect("flow exists at completion");
        self.free_flows.push(id as u32);
        match f.on_done {
            OnDone::Wake(pid) => self.resume(pid, Grant::Unit),
            OnDone::Deliver { key } => {
                let payload = f.payload.expect("eager flow carries a payload");
                if let Some(r) = self.pop_alive_waiting(key) {
                    self.resume(r, Grant::Payload(payload));
                } else {
                    self.mailboxes.get_or_insert(key).arrived.push_back(payload);
                }
            }
            OnDone::Rendezvous { recv, send } => {
                let payload = f.payload.expect("rendezvous flow carries a payload");
                self.resume(recv, Grant::Payload(payload));
                self.resume(send, Grant::Unit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::mail_key;
    use crate::topology::{GridBuilder, HostSpec};

    fn one_host_grid(speed: f64) -> (Grid, HostId) {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        let hs = b.add_hosts(c, 1, &HostSpec::with_speed(speed));
        (b.build().unwrap(), hs[0])
    }

    fn two_host_grid() -> (Grid, HostId, HostId) {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        b.local_link(c, 1e6, 0.01);
        let hs = b.add_hosts(c, 2, &HostSpec::with_speed(100.0));
        (b.build().unwrap(), hs[0], hs[1])
    }

    #[test]
    fn compute_takes_flops_over_speed() {
        let (g, h) = one_host_grid(100.0);
        let mut eng = Engine::new(g);
        eng.spawn("w", h, |ctx| {
            ctx.compute(250.0);
            let t = ctx.now();
            ctx.trace("t", t);
        });
        let r = eng.run();
        assert!((r.trace.last_value("t").unwrap() - 2.5).abs() < 1e-9);
        assert_eq!(r.completed, vec!["w".to_string()]);
        assert!(r.unfinished.is_empty());
    }

    #[test]
    fn two_actions_share_single_core() {
        let (g, h) = one_host_grid(100.0);
        let mut eng = Engine::new(g);
        for i in 0..2 {
            eng.spawn(&format!("w{i}"), h, |ctx| {
                ctx.compute(100.0);
                let t = ctx.now();
                ctx.trace("t", t);
            });
        }
        let r = eng.run();
        for (_, v) in r.trace.series("t") {
            assert!((v - 2.0).abs() < 1e-9, "expected 2.0, got {v}");
        }
    }

    #[test]
    fn injected_load_halves_rate() {
        let (g, h) = one_host_grid(100.0);
        let mut eng = Engine::new(g);
        eng.add_load_window(h, 0.0, None, 1.0);
        eng.spawn("w", h, |ctx| {
            ctx.compute(100.0);
            let t = ctx.now();
            ctx.trace("t", t);
        });
        let r = eng.run();
        assert!((r.trace.last_value("t").unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn load_window_ends() {
        // 1s at half speed (50 flops done), then full speed for the other 50.
        let (g, h) = one_host_grid(100.0);
        let mut eng = Engine::new(g);
        eng.add_load_window(h, 0.0, Some(1.0), 1.0);
        eng.spawn("w", h, |ctx| {
            ctx.compute(100.0);
            let t = ctx.now();
            ctx.trace("t", t);
        });
        let r = eng.run();
        assert!((r.trace.last_value("t").unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn dual_core_absorbs_competitor() {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        let hs = b.add_hosts(
            c,
            1,
            &HostSpec {
                speed: 100.0,
                cores: 2,
                ..Default::default()
            },
        );
        let g = b.build().unwrap();
        let mut eng = Engine::new(g);
        eng.add_load_window(hs[0], 0.0, None, 1.0);
        eng.spawn("w", hs[0], |ctx| {
            ctx.compute(100.0);
            let t = ctx.now();
            ctx.trace("t", t);
        });
        let r = eng.run();
        assert!((r.trace.last_value("t").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn message_timing_includes_latency_and_bandwidth() {
        let (g, a, bhost) = two_host_grid();
        let mut eng = Engine::new(g);
        let key = mail_key(&[1]);
        eng.spawn("recv", bhost, move |ctx| {
            let p = ctx.recv(key);
            let v = *p.downcast::<u64>().unwrap();
            let t = ctx.now();
            ctx.trace("rt", t);
            ctx.trace("val", v as f64);
        });
        eng.spawn("send", a, move |ctx| {
            ctx.send(key, bhost, 1e6, Box::new(42u64));
            let t = ctx.now();
            ctx.trace("st", t);
        });
        let r = eng.run();
        // Route: two 1 MB/s uplinks, 10 ms each. Latency 0.02 + 1.0 s data.
        let rt = r.trace.last_value("rt").unwrap();
        assert!((rt - 1.02).abs() < 1e-6, "rt = {rt}");
        let st = r.trace.last_value("st").unwrap();
        assert!(
            (st - 1.02).abs() < 1e-6,
            "sender blocked until delivery: {st}"
        );
        assert_eq!(r.trace.last_value("val").unwrap(), 42.0);
    }

    #[test]
    fn eager_send_does_not_block() {
        let (g, a, bhost) = two_host_grid();
        let mut eng = Engine::new(g);
        let key = mail_key(&[2]);
        eng.spawn("send", a, move |ctx| {
            ctx.isend(key, bhost, 1e6, Box::new(1u8));
            let t = ctx.now();
            ctx.trace("st", t);
        });
        eng.spawn("recv", bhost, move |ctx| {
            ctx.sleep(5.0);
            let _ = ctx.recv(key);
            let t = ctx.now();
            ctx.trace("rt", t);
        });
        let r = eng.run();
        assert!(r.trace.last_value("st").unwrap() < 1e-9);
        // Flow completed at ~1.02 s; receiver picks it up at t=5 instantly.
        assert!((r.trace.last_value("rt").unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rendezvous_waits_for_receiver() {
        let (g, a, bhost) = two_host_grid();
        let mut eng = Engine::new(g);
        let key = mail_key(&[3]);
        eng.spawn("send", a, move |ctx| {
            ctx.send(key, bhost, 1e6, Box::new(1u8));
            let t = ctx.now();
            ctx.trace("st", t);
        });
        eng.spawn("recv", bhost, move |ctx| {
            ctx.sleep(5.0);
            let _ = ctx.recv(key);
            let t = ctx.now();
            ctx.trace("rt", t);
        });
        let r = eng.run();
        // Transfer starts at t=5 when the receive is posted.
        assert!((r.trace.last_value("rt").unwrap() - 6.02).abs() < 1e-6);
        assert!((r.trace.last_value("st").unwrap() - 6.02).abs() < 1e-6);
    }

    #[test]
    fn same_host_message_is_instant() {
        let (g, h) = one_host_grid(100.0);
        let mut eng = Engine::new(g);
        let key = mail_key(&[4]);
        eng.spawn("recv", h, move |ctx| {
            let _ = ctx.recv(key);
            let t = ctx.now();
            ctx.trace("rt", t);
        });
        eng.spawn("send", h, move |ctx| {
            ctx.send(key, h, 1e9, Box::new(0u8));
        });
        let r = eng.run();
        assert!(r.trace.last_value("rt").unwrap() < 1e-9);
    }

    #[test]
    fn concurrent_flows_share_bandwidth() {
        // Two flows from a to b: each uplink carries both, so each gets half.
        let (g, a, bhost) = two_host_grid();
        let mut eng = Engine::new(g);
        for i in 0..2u64 {
            let key = mail_key(&[10 + i]);
            eng.spawn(&format!("r{i}"), bhost, move |ctx| {
                let _ = ctx.recv(key);
                let t = ctx.now();
                ctx.trace("rt", t);
            });
            eng.spawn(&format!("s{i}"), a, move |ctx| {
                ctx.isend(key, bhost, 1e6, Box::new(0u8));
            });
        }
        let r = eng.run();
        for (_, v) in r.trace.series("rt") {
            assert!((v - 2.02).abs() < 1e-3, "expected ~2.02, got {v}");
        }
    }

    #[test]
    fn try_recv_polls_without_blocking() {
        let (g, a, bhost) = two_host_grid();
        let mut eng = Engine::new(g);
        let key = mail_key(&[20]);
        eng.spawn("poll", bhost, move |ctx| {
            assert!(ctx.try_recv(key).is_none());
            ctx.sleep(3.0);
            let got = ctx.try_recv(key).is_some();
            ctx.trace("got", if got { 1.0 } else { 0.0 });
        });
        eng.spawn("send", a, move |ctx| {
            ctx.isend(key, bhost, 1e6, Box::new(0u8));
        });
        let r = eng.run();
        assert_eq!(r.trace.last_value("got").unwrap(), 1.0);
    }

    #[test]
    fn transfer_blocks_for_duration() {
        let (g, a, bhost) = two_host_grid();
        let mut eng = Engine::new(g);
        eng.spawn("w", a, move |ctx| {
            ctx.transfer(bhost, 2e6);
            let t = ctx.now();
            ctx.trace("t", t);
        });
        let r = eng.run();
        assert!((r.trace.last_value("t").unwrap() - 2.02).abs() < 1e-6);
    }

    #[test]
    fn runtime_spawn_and_load_injection() {
        let (g, h) = one_host_grid(100.0);
        let mut eng = Engine::new(g);
        eng.spawn("driver", h, move |ctx| {
            ctx.spawn("child", h, |cctx| {
                cctx.compute(100.0);
                let t = cctx.now();
                cctx.trace("child_done", t);
            });
            ctx.sleep(0.5);
            ctx.inject_load(h, 1.0);
        });
        let r = eng.run();
        // Child: 0.5 s at full speed (50 flops), then 50 flops at half
        // speed = 1.0 s more -> 1.5 s total.
        assert!((r.trace.last_value("child_done").unwrap() - 1.5).abs() < 1e-9);
        assert!(r.completed.contains(&"child".to_string()));
    }

    #[test]
    fn deadlocked_process_reported_and_killed() {
        let (g, h) = one_host_grid(100.0);
        let mut eng = Engine::new(g);
        let key = mail_key(&[99]);
        eng.spawn("stuck", h, move |ctx| {
            let _ = ctx.recv(key); // nobody ever sends
        });
        let r = eng.run();
        assert_eq!(r.unfinished, vec!["stuck".to_string()]);
        assert!(r.completed.is_empty());
    }

    #[test]
    fn run_until_cuts_off() {
        let (g, h) = one_host_grid(1.0);
        let mut eng = Engine::new(g);
        eng.spawn("slow", h, |ctx| {
            ctx.compute(1e9);
        });
        let r = eng.run_until(10.0);
        assert!(r.end_time <= 10.0);
        assert_eq!(r.unfinished, vec!["slow".to_string()]);
    }

    #[test]
    fn process_panic_is_reported() {
        let (g, h) = one_host_grid(1.0);
        let mut eng = Engine::new(g);
        eng.panic_on_failure = false;
        eng.spawn("bad", h, |_ctx| {
            panic!("boom");
        });
        let r = eng.run();
        assert_eq!(r.failed.len(), 1);
        assert_eq!(r.failed[0].0, "bad");
        assert!(r.failed[0].1.contains("boom"));
    }

    #[test]
    fn host_failure_kills_processes() {
        let (g, a, bhost) = two_host_grid();
        let mut eng = Engine::new(g);
        eng.fail_host_at(a, 1.0);
        eng.spawn("victim", a, |ctx| {
            ctx.compute(1e9); // 10 s of work: dies mid-flight
            ctx.trace("never", 1.0);
        });
        eng.spawn("survivor", bhost, |ctx| {
            ctx.compute(200.0); // 2 s
            let t = ctx.now();
            ctx.trace("t", t);
        });
        let r = eng.run();
        assert_eq!(r.died, vec!["victim".to_string()]);
        assert!(r.trace.series("never").is_empty());
        assert!((r.trace.last_value("t").unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(r.completed, vec!["survivor".to_string()]);
    }

    #[test]
    fn spawn_on_dead_host_dies_immediately() {
        let (g, a, bhost) = two_host_grid();
        let mut eng = Engine::new(g);
        eng.fail_host_at(a, 0.5);
        eng.spawn("spawner", bhost, move |ctx| {
            ctx.sleep(1.0);
            ctx.spawn("late", a, |c| {
                c.trace("late_ran", 1.0);
            });
            ctx.sleep(1.0);
        });
        let r = eng.run();
        assert!(r.trace.series("late_ran").is_empty());
        assert!(r.died.contains(&"late".to_string()));
    }

    #[test]
    fn receiver_death_leaves_sender_blocked() {
        // A rendezvous send to a process that died waiting: the sender
        // blocks forever (like MPI on peer failure) and is reported
        // unfinished.
        let (g, a, bhost) = two_host_grid();
        let mut eng = Engine::new(g);
        let key = mail_key(&[77]);
        eng.fail_host_at(bhost, 0.5);
        eng.spawn("recv", bhost, move |ctx| {
            let _ = ctx.recv(key);
        });
        eng.spawn("send", a, move |ctx| {
            ctx.sleep(1.0);
            ctx.send(key, bhost, 1e6, Box::new(1u8));
            ctx.trace("sent", 1.0);
        });
        let r = eng.run();
        assert!(r.died.contains(&"recv".to_string()));
        assert!(r.trace.series("sent").is_empty());
        assert_eq!(r.unfinished, vec!["send".to_string()]);
    }

    #[test]
    fn utilization_accounting() {
        let (g, h) = one_host_grid(100.0);
        let grid = g.clone();
        let mut eng = Engine::new(g);
        eng.spawn("w", h, |ctx| {
            ctx.compute(500.0); // 5 s of the run
            ctx.sleep(5.0); // idle 5 s
        });
        let r = eng.run();
        assert!((r.host_flops[0] - 500.0).abs() < 1e-6);
        assert!((r.host_utilization(&grid, h) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn multicore_utilization_normalizes_by_cores() {
        // Two actions on a dual-core host both run at full single-core
        // speed; the host is fully busy, so utilization is 1.0 (the old
        // single-core normalization wrongly reported 2.0).
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        let hs = b.add_hosts(
            c,
            1,
            &HostSpec {
                speed: 100.0,
                cores: 2,
                ..Default::default()
            },
        );
        let g = b.build().unwrap();
        let grid = g.clone();
        let mut eng = Engine::new(g);
        for i in 0..2 {
            eng.spawn(&format!("w{i}"), hs[0], |ctx| {
                ctx.compute(200.0); // 2 s at one core each
            });
        }
        let r = eng.run();
        assert!((r.host_flops[0] - 400.0).abs() < 1e-6);
        assert!((r.host_utilization(&grid, hs[0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn link_byte_accounting() {
        let (g, a, bhost) = two_host_grid();
        let grid = g.clone();
        let mut eng = Engine::new(g);
        eng.spawn("w", a, move |ctx| {
            ctx.transfer(bhost, 2e6);
        });
        let r = eng.run();
        let route = grid.route(a, bhost);
        for &l in &route.links {
            assert!(
                (r.link_bytes[l.0 as usize] - 2e6).abs() < 1.0,
                "link {l:?}: {}",
                r.link_bytes[l.0 as usize]
            );
        }
        // A link not on the route carried nothing.
        let other = grid.host(bhost).uplink_tx;
        assert_eq!(r.link_bytes[other.0 as usize], 0.0);
    }

    #[test]
    fn determinism_same_seedless_run_twice() {
        let build = || {
            let (g, a, bhost) = two_host_grid();
            let mut eng = Engine::new(g);
            for i in 0..4u64 {
                let key = mail_key(&[i]);
                eng.spawn(&format!("r{i}"), bhost, move |ctx| {
                    let _ = ctx.recv(key);
                    ctx.compute(50.0 * (i + 1) as f64);
                    let t = ctx.now();
                    ctx.trace("done", t);
                });
                eng.spawn(&format!("s{i}"), a, move |ctx| {
                    ctx.sleep(0.1 * i as f64);
                    ctx.send(key, bhost, 1e5 * (i + 1) as f64, Box::new(i));
                });
            }
            eng.run()
        };
        let r1 = build();
        let r2 = build();
        let s1 = r1.trace.series("done");
        let s2 = r2.trace.series("done");
        assert_eq!(s1.len(), s2.len());
        for (x, y) in s1.iter().zip(&s2) {
            assert_eq!(x, y);
        }
    }

    /// Run a small mixed compute/communication scenario under one mode.
    fn mode_scenario(mode: RecomputeMode) -> RunReport {
        let (g, a, bhost) = two_host_grid();
        let mut eng = Engine::new(g);
        eng.set_recompute_mode(mode);
        eng.add_load_window(a, 0.3, Some(1.1), 1.0);
        for i in 0..3u64 {
            let key = mail_key(&[40 + i]);
            eng.spawn(&format!("r{i}"), bhost, move |ctx| {
                let _ = ctx.recv(key);
                ctx.compute(80.0 * (i + 1) as f64);
                let t = ctx.now();
                ctx.trace("done", t);
            });
            eng.spawn(&format!("s{i}"), a, move |ctx| {
                ctx.compute(30.0 * (i + 1) as f64);
                ctx.send(key, bhost, 2e5 * (i + 1) as f64, Box::new(i));
            });
        }
        eng.run()
    }

    #[test]
    fn incremental_matches_full_bitwise() {
        let inc = mode_scenario(RecomputeMode::Incremental);
        let full = mode_scenario(RecomputeMode::Full);
        assert_eq!(inc, full);
    }

    #[test]
    fn incremental_matches_legacy_timing() {
        // Legacy re-stamps everything, so stale-pop timing chunks floating
        // point accrual differently; results agree to tolerance, not bits.
        let inc = mode_scenario(RecomputeMode::Incremental);
        let leg = mode_scenario(RecomputeMode::Legacy);
        assert_eq!(inc.completed, leg.completed);
        assert_eq!(inc.events_processed, leg.events_processed);
        let si = inc.trace.series("done");
        let sl = leg.trace.series("done");
        assert_eq!(si.len(), sl.len());
        for ((ti, vi), (tl, vl)) in si.iter().zip(&sl) {
            assert!((ti - tl).abs() < 1e-6, "times differ: {ti} vs {tl}");
            assert!((vi - vl).abs() < 1e-6);
        }
        for (x, y) in inc.host_flops.iter().zip(&leg.host_flops) {
            assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0));
        }
    }

    /// Three clusters over WAN links, cross-cluster message rings, local
    /// contention, external load churn and a host failure — every event
    /// class the windowed kernel must merge correctly.
    fn cross_cluster_scenario(kernel: KernelMode, policy: WindowPolicy) -> RunReport {
        cross_cluster_scenario_tuned(
            EngineTune {
                kernel,
                ..Default::default()
            },
            policy,
        )
    }

    fn cross_cluster_scenario_tuned(tune: EngineTune, policy: WindowPolicy) -> RunReport {
        let mut b = GridBuilder::new();
        let mut all_hosts = Vec::new();
        let mut clusters = Vec::new();
        for name in ["A", "B", "C"] {
            let c = b.cluster(name);
            b.local_link(c, 1e8, 1e-4);
            all_hosts.push(b.add_hosts(c, 3, &HostSpec::with_speed(100.0)));
            clusters.push(c);
        }
        b.connect(clusters[0], clusters[1], 1e7, 0.02);
        b.connect(clusters[1], clusters[2], 2e7, 0.035);
        b.connect(clusters[0], clusters[2], 5e6, 0.05);
        let grid = b.build().unwrap();
        let mut eng = Engine::new(grid);
        eng.apply_tune(tune);
        eng.set_window_policy(policy);
        // Cross-cluster ring: each hop computes then forwards.
        for ring in 0..3u64 {
            // Host index stays in {0, 1}: index 2 of cluster C is the
            // fault-injection victim below.
            let path: Vec<HostId> = (0..3)
                .map(|c| all_hosts[(c + ring as usize) % 3][(ring as usize + c) % 2])
                .collect();
            let key0 = mail_key(&[ring, 0]);
            let key1 = mail_key(&[ring, 1]);
            let h1 = path[1];
            let h2 = path[2];
            eng.spawn(&format!("src{ring}"), path[0], move |ctx| {
                ctx.compute(150.0 + 10.0 * ring as f64);
                ctx.send(key0, h1, 2e5, Box::new(ring));
            });
            eng.spawn(&format!("mid{ring}"), path[1], move |ctx| {
                let v = ctx.recv(key0);
                ctx.compute(80.0);
                ctx.send(key1, h2, 3e5, Box::new(v));
            });
            eng.spawn(&format!("dst{ring}"), path[2], move |ctx| {
                let _ = ctx.recv(key1);
                ctx.compute(40.0);
                let t = ctx.now();
                ctx.trace("ring_done", t);
            });
        }
        // Local contention plus load churn in cluster B.
        for i in 0..4u64 {
            eng.spawn(&format!("local{i}"), all_hosts[1][i as usize % 3], |ctx| {
                for _ in 0..3 {
                    ctx.compute(60.0);
                    ctx.sleep(0.5);
                }
            });
        }
        eng.add_load_window(all_hosts[1][0], 1.0, Some(4.0), 1.5);
        eng.add_load_window(all_hosts[2][1], 0.5, None, 0.7);
        // Fault injection in cluster C: one victim mid-run.
        eng.spawn("victim", all_hosts[2][2], |ctx| {
            ctx.compute(1e9);
        });
        eng.fail_host_at(all_hosts[2][2], 2.5);
        eng.panic_on_failure = false;
        eng.run_until(500.0)
    }

    /// The windowed kernel replays the serial applied-event sequence
    /// exactly, so every result — times, flops, bytes, trace — is bitwise
    /// identical at any worker count, pool dispatch forced on or off.
    #[test]
    fn windowed_matches_serial_bitwise_at_any_worker_count() {
        let serial = cross_cluster_scenario(KernelMode::Serial, WindowPolicy::default());
        assert!(
            serial.trace.series("ring_done").len() == 3,
            "scenario exercises all rings"
        );
        for workers in [1, 2, 4] {
            for force_parallel in [false, true] {
                let policy = WindowPolicy {
                    force_parallel,
                    min_parallel_drain: 0,
                    min_parallel_accrual: 0,
                    ..WindowPolicy::default()
                };
                let windowed = cross_cluster_scenario(KernelMode::Windowed { workers }, policy);
                assert_eq!(
                    serial, windowed,
                    "workers={workers} force_parallel={force_parallel}"
                );
            }
        }
    }

    /// Window policy knobs are dispatch-only: no threshold choice may
    /// perturb a single result bit.
    #[test]
    fn windowed_policy_does_not_perturb_results() {
        let reference =
            cross_cluster_scenario(KernelMode::Windowed { workers: 2 }, WindowPolicy::default());
        for policy in [
            WindowPolicy {
                max_drain_per_shard: 1,
                ..WindowPolicy::default()
            },
            WindowPolicy {
                max_drain_per_shard: 7,
                min_parallel_drain: 0,
                min_parallel_accrual: 0,
                force_parallel: true,
            },
            WindowPolicy {
                max_drain_per_shard: 100_000,
                min_parallel_drain: 1_000_000,
                min_parallel_accrual: 1_000_000,
                force_parallel: false,
            },
        ] {
            let r = cross_cluster_scenario(KernelMode::Windowed { workers: 2 }, policy);
            assert_eq!(reference, r, "{policy:?}");
        }
    }

    /// A single-cluster grid has no WAN latency: the lookahead is infinite
    /// and the drain cap alone bounds windows. Still bit-identical.
    #[test]
    fn windowed_handles_single_cluster_infinite_lookahead() {
        let run = |kernel: KernelMode| {
            let (g, h0, h1) = two_host_grid();
            let mut eng = Engine::new(g);
            eng.apply_tune(EngineTune {
                kernel,
                ..Default::default()
            });
            let key = mail_key(&[9]);
            eng.spawn("a", h0, move |ctx| {
                ctx.compute(120.0);
                ctx.send(key, h1, 5e5, Box::new(1u8));
            });
            eng.spawn("b", h1, move |ctx| {
                let _ = ctx.recv(key);
                ctx.compute(60.0);
                let t = ctx.now();
                ctx.trace("done", t);
            });
            eng.run()
        };
        let serial = run(KernelMode::Serial);
        let windowed = run(KernelMode::Windowed { workers: 4 });
        assert_eq!(serial, windowed);
        assert!(serial.trace.last_value("done").is_some());
    }

    /// Switching to windowed mode and back migrates pending events (and
    /// their cancellation handles) without loss.
    #[test]
    fn kernel_mode_round_trip_preserves_pending_events() {
        let (g, h) = one_host_grid(100.0);
        let mut eng = Engine::new(g);
        eng.add_load_window(h, 1.0, Some(2.0), 1.0);
        eng.spawn("w", h, |ctx| {
            ctx.compute(180.0);
            let t = ctx.now();
            ctx.trace("t", t);
        });
        let before = eng.events.len();
        eng.set_kernel_mode(KernelMode::Windowed { workers: 2 });
        assert!(matches!(eng.events, EventQueue::Sharded(_)));
        assert_eq!(eng.events.len(), before);
        eng.set_kernel_mode(KernelMode::Serial);
        assert!(matches!(eng.events, EventQueue::Indexed(_)));
        assert_eq!(eng.events.len(), before);
        let r = eng.run();
        // 100 flops in [0,1) at full rate, 50 in [1,2) at half (load 1.0),
        // the last 30 at full rate again: done at t = 2.3.
        assert!((r.trace.last_value("t").unwrap() - 2.3).abs() < 1e-9);
    }

    /// Coalesced timing is a pure scheduling change: on the mixed
    /// cross-cluster scenario (WAN flows, load windows, a host failure) the
    /// run report matches the eager reference bit for bit under both
    /// kernels. Unit level of the three-level pin (property:
    /// `tests/prop_coalesced.rs`, e2e: `tests/substrate_determinism.rs`).
    #[test]
    fn coalesced_recompute_matches_eager_bitwise() {
        for kernel in [KernelMode::Serial, KernelMode::Windowed { workers: 2 }] {
            let eager = cross_cluster_scenario_tuned(
                EngineTune {
                    kernel,
                    recompute: RecomputeTiming::Eager,
                    ..Default::default()
                },
                WindowPolicy::default(),
            );
            let coalesced = cross_cluster_scenario_tuned(
                EngineTune {
                    kernel,
                    recompute: RecomputeTiming::Coalesced,
                    ..Default::default()
                },
                WindowPolicy::default(),
            );
            assert_eq!(eager, coalesced, "{kernel:?}");
        }
    }

    /// Coalescing actually coalesces: a same-instant send burst (one
    /// process issuing several non-blocking sends back to back) runs fewer
    /// rate solves than churn notifications, while eager runs exactly one
    /// solve per churn. Both see the same churn count — `sim.recomputes`
    /// is a property of the scenario, not of the timing.
    #[test]
    fn coalescing_reduces_solves_on_same_instant_bursts() {
        let run = |timing: RecomputeTiming| {
            let (g, h0, h1) = two_host_grid();
            let mut eng = Engine::new(g);
            eng.apply_tune(EngineTune {
                recompute: timing,
                ..Default::default()
            });
            let obs = grads_obs::Obs::enabled();
            eng.set_obs(obs.clone());
            for i in 0..4u64 {
                let key = mail_key(&[i]);
                eng.spawn(&format!("s{i}"), h0, move |ctx| {
                    ctx.isend(key, h1, 1e5, Box::new(i));
                });
                eng.spawn(&format!("r{i}"), h1, move |ctx| {
                    let _ = ctx.recv(key);
                });
            }
            let report = eng.run();
            let snap = obs.snapshot();
            (
                report,
                snap.counter("sim.recomputes").unwrap_or(0),
                snap.counter("sim.recompute.solves").unwrap_or(0),
                snap.counter("sim.recompute.coalesced").unwrap_or(0),
            )
        };
        let (re, churn_e, solves_e, absorbed_e) = run(RecomputeTiming::Eager);
        let (rc, churn_c, solves_c, absorbed_c) = run(RecomputeTiming::Coalesced);
        assert_eq!(re, rc, "burst reports must be bit-identical");
        assert_eq!(churn_e, churn_c, "churn count is timing-invariant");
        assert_eq!(solves_e, churn_e, "eager solves once per churn");
        assert_eq!(absorbed_e, 0, "eager absorbs nothing");
        assert!(
            solves_c < solves_e,
            "coalescing must absorb same-instant churn: {solves_c} vs {solves_e}"
        );
        assert_eq!(
            solves_c + absorbed_c,
            churn_c,
            "every churn is either solved or absorbed"
        );
    }

    /// Content-deduplicated route interning: repeated lookups of one pair
    /// and all same-host (empty) routes share an id, while distinct pairs
    /// stay distinct — hosts have private NIC uplinks, so their routes
    /// really are different links.
    #[test]
    fn route_interning_dedups_by_content() {
        let mut b = GridBuilder::new();
        let c0 = b.cluster("A");
        b.local_link(c0, 1e8, 1e-4);
        let ha = b.add_hosts(c0, 3, &HostSpec::with_speed(100.0));
        let c1 = b.cluster("B");
        b.local_link(c1, 1e8, 1e-4);
        let hb = b.add_hosts(c1, 3, &HostSpec::with_speed(100.0));
        b.connect(c0, c1, 1e7, 0.02);
        let mut eng = Engine::new(b.build().unwrap());
        // Same pair → same id (concurrent same-pair transfers share a
        // route class with multiplicity > 1).
        assert_eq!(eng.route_id(ha[0], hb[0]), eng.route_id(ha[0], hb[0]));
        // Distinct pairs → distinct ids: src/dst NIC links differ.
        assert_ne!(eng.route_id(ha[0], hb[0]), eng.route_id(ha[0], hb[1]));
        assert_ne!(eng.route_id(ha[0], hb[0]), eng.route_id(ha[1], hb[0]));
        // Every same-host transfer grid-wide shares the one empty route.
        let loop0 = eng.route_id(ha[0], ha[0]);
        assert_eq!(loop0, eng.route_id(hb[2], hb[2]));
        assert!(eng.routes_tbl[loop0 as usize].links.is_empty());
    }
}
