//! Direct kernel ↔ process handoff.
//!
//! The kernel grants execution to exactly one simulated process at a time,
//! so the process ↔ kernel transport is always a strict two-party
//! alternation: the kernel writes one grant, the process runs and writes
//! one request, and so on. The seed implementation paid a central
//! multiplexer for that: every request traveled through one shared
//! `mpsc` channel (heap-allocated node per message, mutex + OS wakeup)
//! and every grant through a second per-process channel (another node,
//! another wakeup).
//!
//! [`HandoffSlot`] replaces the pair with a single-slot rendezvous per
//! process: one atomic state word, two in-place message cells, and
//! spin-then-park waiting. No allocation per call, no multiplexer, and
//! when the peer responds within the spin budget no OS wakeup at all.
//!
//! # Protocol
//!
//! The slot is a three-state machine (`IDLE → REQ → IDLE → GRANT → IDLE`)
//! shared by exactly two threads:
//!
//! * the **process** may write the request cell only in `IDLE` (it just
//!   consumed a grant, or has never run), then publishes `REQ`;
//! * the **kernel** consumes the request (`REQ → IDLE`), handles it, and
//!   eventually writes the grant cell and publishes `GRANT`;
//! * the process consumes the grant (`GRANT → IDLE`) and continues.
//!
//! The one-runnable-process invariant is what makes the two-party slot
//! sufficient: the kernel never issues a grant to a process that is not
//! parked (or about to park) in [`HandoffSlot::wait_grant`], and only the
//! single running process can publish a request, so each cell always has
//! exactly one writer and one reader separated by the Release/Acquire
//! edge on `state`. Determinism is preserved by construction — the
//! transport carries the same messages in the same order as the channel
//! pair, it just carries them faster.

use crate::process::{Grant, Request};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::Thread;

/// No message in flight; the cell owner may write.
const IDLE: u8 = 0;
/// A request is published for the kernel.
const REQ: u8 = 1;
/// A grant is published for the process.
const GRANT: u8 = 2;

/// How many times to poll the state word before parking the thread. When
/// the peer responds within the budget (the common case on unloaded
/// multicore hosts: the kernel handles most primitives in well under a
/// microsecond) the handoff completes without any OS-level block/wake.
/// Kept modest so oversubscribed runs — e.g. the parallel sweep runner —
/// do not burn cores spinning.
const SPIN: u32 = 384;

/// How many times to `yield_now` before parking on a single-CPU machine.
/// There spinning is pure waste (the peer cannot run while we spin), but
/// yielding hands the core straight to the peer — the only other runnable
/// thread under the one-runnable-process invariant — so the alternation
/// usually completes without any futex sleep/wake at all. Bounded so a
/// genuinely long block (a process parked in `recv` for ages of virtual
/// time) still ends in a proper park.
const YIELDS: u32 = 32;

/// `true` once we know this machine has more than one CPU. Computed once.
/// Shared with the windowed kernel's dispatch gating: concurrency that
/// cannot overlap in hardware is pure overhead.
#[inline]
pub(crate) fn multicore() -> bool {
    use std::sync::atomic::AtomicU8;
    static CACHED: AtomicU8 = AtomicU8::new(0);
    match CACHED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let multi = std::thread::available_parallelism()
                .map(|n| n.get() > 1)
                .unwrap_or(false);
            CACHED.store(if multi { 1 } else { 2 }, Ordering::Relaxed);
            multi
        }
    }
}

/// Pre-park waiting strategy for the direct handoff slot, overriding the
/// machine-derived default. A wait-strategy-only knob: it decides how the
/// waiting side burns the gap until the peer's Release store lands, never
/// what is communicated, so any policy yields bit-identical runs. Exposed
/// so the `sim_hotpath` benchmark can measure spin vs. yield on the same
/// machine (ROADMAP's "spin path unmeasured" note).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaitPolicy {
    /// Spin on multicore machines, yield on single-CPU ones (the default).
    #[default]
    Auto,
    /// Always poll the state word in a busy-spin loop before parking.
    Spin,
    /// Always `yield_now` to the peer before parking.
    Yield,
}

/// Process-global wait-policy override (0 = auto, 1 = spin, 2 = yield).
/// Global rather than per-slot because the benchmark compares whole runs;
/// set it before spawning processes.
static WAIT_POLICY: AtomicU8 = AtomicU8::new(0);

/// Select the pre-park waiting strategy for all handoff slots in this
/// process. See [`WaitPolicy`].
pub fn set_wait_policy(p: WaitPolicy) {
    WAIT_POLICY.store(
        match p {
            WaitPolicy::Auto => 0,
            WaitPolicy::Spin => 1,
            WaitPolicy::Yield => 2,
        },
        Ordering::Relaxed,
    );
}

/// The active pre-park waiting strategy.
pub fn wait_policy() -> WaitPolicy {
    match WAIT_POLICY.load(Ordering::Relaxed) {
        1 => WaitPolicy::Spin,
        2 => WaitPolicy::Yield,
        _ => WaitPolicy::Auto,
    }
}

/// Shared handle to the kernel's OS thread, set once when `Engine::run`
/// begins (the engine may be built on a different thread than it runs
/// on). Processes only need it after receiving their first grant, which
/// the run loop sends, so the handle is always visible by then.
pub(crate) type KernelThread = Arc<OnceLock<Thread>>;

/// A per-process single-slot rendezvous between the kernel and one
/// simulated process. See the module docs for the protocol.
pub(crate) struct HandoffSlot {
    state: AtomicU8,
    req: UnsafeCell<Option<Request>>,
    grant: UnsafeCell<Option<Grant>>,
    kernel: KernelThread,
    /// The process's OS thread, set by the kernel right after spawning it
    /// (from `JoinHandle::thread`, so it is available before the thread
    /// runs). Only the kernel reads it.
    proc: OnceLock<Thread>,
}

// SAFETY: the cells are accessed under the `state` protocol above — each
// cell has exactly one writer and one reader per transition, ordered by
// the Release store / Acquire load pair on `state`.
unsafe impl Send for HandoffSlot {}
unsafe impl Sync for HandoffSlot {}

impl HandoffSlot {
    pub(crate) fn new(kernel: KernelThread) -> Self {
        HandoffSlot {
            state: AtomicU8::new(IDLE),
            req: UnsafeCell::new(None),
            grant: UnsafeCell::new(None),
            kernel,
            proc: OnceLock::new(),
        }
    }

    /// Record the process thread to unpark on grants. Called by the
    /// kernel immediately after spawning the thread.
    pub(crate) fn set_proc_thread(&self, t: Thread) {
        let _ = self.proc.set(t);
    }

    /// Wait until `state` equals `want`: spin (multicore) or yield to the
    /// peer (single core) per the active [`WaitPolicy`], then park.
    #[inline]
    fn await_state(&self, want: u8) {
        let spin = match wait_policy() {
            WaitPolicy::Auto => multicore(),
            WaitPolicy::Spin => true,
            WaitPolicy::Yield => false,
        };
        if spin {
            for _ in 0..SPIN {
                if self.state.load(Ordering::Acquire) == want {
                    return;
                }
                std::hint::spin_loop();
            }
        } else {
            for _ in 0..YIELDS {
                if self.state.load(Ordering::Acquire) == want {
                    return;
                }
                std::thread::yield_now();
            }
        }
        while self.state.load(Ordering::Acquire) != want {
            std::thread::park();
        }
    }

    /// Process side: publish a request and wake the kernel. The slot must
    /// be `IDLE` (guaranteed by the alternation protocol).
    pub(crate) fn send_request(&self, req: Request) {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), IDLE);
        // SAFETY: state is IDLE, so the kernel is not reading the cell.
        unsafe { *self.req.get() = Some(req) };
        self.state.store(REQ, Ordering::Release);
        if let Some(k) = self.kernel.get() {
            k.unpark();
        }
    }

    /// Process side: wait for and consume the next grant.
    pub(crate) fn wait_grant(&self) -> Grant {
        self.await_state(GRANT);
        // SAFETY: state is GRANT, so the kernel has published the grant
        // and will not touch the cell until the next REQ→IDLE transition.
        let g = unsafe { (*self.grant.get()).take() }.expect("GRANT state implies a grant");
        self.state.store(IDLE, Ordering::Release);
        g
    }

    /// Kernel side: wait for and consume the running process's request.
    pub(crate) fn wait_request(&self) -> Request {
        self.await_state(REQ);
        // SAFETY: state is REQ, so the process has published the request
        // and is now waiting in `wait_grant`.
        let r = unsafe { (*self.req.get()).take() }.expect("REQ state implies a request");
        self.state.store(IDLE, Ordering::Release);
        r
    }

    /// Kernel side: publish a grant and wake the process. The slot must be
    /// `IDLE`: the target process is parked (or spinning) in `wait_grant`.
    pub(crate) fn send_grant(&self, g: Grant) {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), IDLE);
        // SAFETY: state is IDLE, so the process is not reading the cell.
        unsafe { *self.grant.get() = Some(g) };
        self.state.store(GRANT, Ordering::Release);
        if let Some(t) = self.proc.get() {
            t.unpark();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One full request/grant alternation across two real threads,
    /// including the "grant before the process thread even polls" start
    /// edge.
    #[test]
    fn alternation_across_threads() {
        let kernel: KernelThread = Arc::new(OnceLock::new());
        let slot = Arc::new(HandoffSlot::new(kernel.clone()));
        let s2 = slot.clone();
        let join = std::thread::spawn(move || {
            // Start gate: wait for the kernel's first grant.
            match s2.wait_grant() {
                Grant::Unit => {}
                _ => panic!("expected start grant"),
            }
            for i in 0..1000u64 {
                s2.send_request(Request::Compute { flops: i as f64 });
                match s2.wait_grant() {
                    Grant::Time(t) => assert_eq!(t, i as f64),
                    _ => panic!("expected time grant"),
                }
            }
            s2.send_request(Request::Exit);
        });
        kernel.set(std::thread::current()).unwrap();
        slot.set_proc_thread(join.thread().clone());
        slot.send_grant(Grant::Unit);
        let mut seen = 0u64;
        loop {
            match slot.wait_request() {
                Request::Compute { flops } => {
                    slot.send_grant(Grant::Time(flops));
                    seen += 1;
                }
                Request::Exit => break,
                _ => panic!("unexpected request"),
            }
        }
        assert_eq!(seen, 1000);
        join.join().unwrap();
    }

    /// A kill grant delivered while the process is parked in `wait_grant`
    /// is observed as `Grant::Kill`.
    #[test]
    fn kill_wakes_waiter() {
        let kernel: KernelThread = Arc::new(OnceLock::new());
        kernel.set(std::thread::current()).unwrap();
        let slot = Arc::new(HandoffSlot::new(kernel));
        let s2 = slot.clone();
        let join = std::thread::spawn(move || matches!(s2.wait_grant(), Grant::Kill));
        slot.set_proc_thread(join.thread().clone());
        // Give the thread a chance to actually park.
        std::thread::sleep(std::time::Duration::from_millis(10));
        slot.send_grant(Grant::Kill);
        assert!(join.join().unwrap());
    }
}
