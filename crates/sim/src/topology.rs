//! Grid topology: hosts, clusters, links, and routing.
//!
//! The emulated grid mirrors the structure of the GrADS testbeds: a set of
//! *clusters* (UCSD, UTK, UIUC, UH in the paper), each containing *hosts*
//! connected to a cluster switch by a local link, with *WAN links* joining
//! cluster switches across the (emulated) Internet.
//!
//! Routes are host → switch → (WAN hops) → switch → host; the WAN hop
//! sequence is the minimum-hop path over the cluster graph, computed by BFS
//! and cached.

use std::collections::HashMap;
use std::fmt;

/// Identifies a host in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Identifies a cluster (a LAN of hosts behind one switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

/// Identifies a network link (host uplink or WAN link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Processor architecture of a host. The binder uses this to pick
/// architecture-specific configuration (the paper's IA-32/IA-64 heterogeneity
/// demonstration).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Arch {
    /// 32-bit x86 (the original GrADS testbed Pentiums).
    Ia32,
    /// Itanium (added for the SC2003 heterogeneity demo).
    Ia64,
    /// Anything else, by name.
    Other(String),
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arch::Ia32 => write!(f, "ia32"),
            Arch::Ia64 => write!(f, "ia64"),
            Arch::Other(s) => write!(f, "{s}"),
        }
    }
}

/// Static description of a host used when adding hosts to a builder.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Peak floating-point rate of one core, in flop/s.
    pub speed: f64,
    /// Number of cores (the UTK nodes in the paper are dual-processor).
    pub cores: u32,
    /// Processor architecture.
    pub arch: Arch,
    /// Memory capacity in bytes (checked by schedulers as a minimum
    /// requirement; components that do not fit get rank = infinity).
    pub memory: u64,
    /// Cache capacity in bytes (used by the reuse-distance cache model).
    pub cache_bytes: u64,
}

impl Default for HostSpec {
    fn default() -> Self {
        HostSpec {
            speed: 1e9,
            cores: 1,
            arch: Arch::Ia32,
            memory: 1 << 30,
            cache_bytes: 512 * 1024,
        }
    }
}

impl HostSpec {
    /// Convenience constructor with the given speed in flop/s.
    pub fn with_speed(speed: f64) -> Self {
        HostSpec {
            speed,
            ..Default::default()
        }
    }
}

/// A host in the built grid.
#[derive(Debug, Clone)]
pub struct Host {
    /// Human-readable name, e.g. `"utk-0"`.
    pub name: String,
    /// Cluster membership.
    pub cluster: ClusterId,
    /// Peak per-core rate, flop/s.
    pub speed: f64,
    /// Core count.
    pub cores: u32,
    /// Architecture.
    pub arch: Arch,
    /// Memory in bytes.
    pub memory: u64,
    /// Cache size in bytes.
    pub cache_bytes: u64,
    /// Transmit link from this host to its cluster switch (full-duplex
    /// NIC: transmit and receive have independent capacity).
    pub uplink_tx: LinkId,
    /// Receive link from the cluster switch to this host.
    pub uplink_rx: LinkId,
}

/// A network link with fixed capacity and latency.
#[derive(Debug, Clone)]
pub struct Link {
    /// Name for traces, e.g. `"utk-0<->utk"` or `"utk<->uiuc"`.
    pub name: String,
    /// Capacity in bytes/s, shared max-min fairly among flows.
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
}

/// A cluster: a named switch plus member hosts.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Cluster name, e.g. `"UTK"`.
    pub name: String,
    /// Hosts in this cluster.
    pub hosts: Vec<HostId>,
    /// WAN adjacency: (peer cluster, link joining the two switches).
    pub wan: Vec<(ClusterId, LinkId)>,
}

/// A resolved route between two hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Links traversed, in order. Empty for a same-host route.
    pub links: Vec<LinkId>,
    /// Total one-way latency in seconds.
    pub latency: f64,
}

/// An immutable grid topology produced by [`GridBuilder::build`].
#[derive(Debug, Clone)]
pub struct Grid {
    hosts: Vec<Host>,
    clusters: Vec<Cluster>,
    links: Vec<Link>,
    /// Cache of cluster-to-cluster link paths (by BFS hop count).
    cluster_paths: HashMap<(ClusterId, ClusterId), Vec<LinkId>>,
}

impl Grid {
    /// All hosts, indexable by `HostId.0`.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// All clusters, indexable by `ClusterId.0`.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// All links, indexable by `LinkId.0`.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Look up one host.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    /// Look up one link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Look up one cluster.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.0 as usize]
    }

    /// Find a host by name. O(n); intended for test and setup code.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.hosts
            .iter()
            .position(|h| h.name == name)
            .map(|i| HostId(i as u32))
    }

    /// Find a cluster by name. O(n); intended for test and setup code.
    pub fn cluster_by_name(&self, name: &str) -> Option<ClusterId> {
        self.clusters
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClusterId(i as u32))
    }

    /// Resolve the route between two hosts.
    ///
    /// Same-host routes are empty with zero latency. Intra-cluster routes
    /// traverse both host uplinks. Inter-cluster routes additionally traverse
    /// the minimum-hop WAN path between the two cluster switches.
    ///
    /// # Panics
    /// Panics if the clusters are not connected (the builder validates
    /// connectivity, so this cannot happen for a built grid).
    pub fn route(&self, src: HostId, dst: HostId) -> Route {
        if src == dst {
            return Route {
                links: Vec::new(),
                latency: 0.0,
            };
        }
        let (sc, dc) = (self.host(src).cluster, self.host(dst).cluster);
        let mut links = vec![self.host(src).uplink_tx];
        if sc != dc {
            let path = self
                .cluster_paths
                .get(&(sc, dc))
                .expect("clusters disconnected: builder validation should prevent this");
            links.extend_from_slice(path);
        }
        links.push(self.host(dst).uplink_rx);
        let latency = links.iter().map(|l| self.link(*l).latency).sum();
        Route { links, latency }
    }

    /// Allocation-light variant of [`Grid::route`]: appends the route's link
    /// indices (as raw `u32`s) to `out` and returns the total one-way
    /// latency. The kernel uses this to build its interned route table
    /// without cloning `Vec<LinkId>` per lookup.
    ///
    /// # Panics
    /// Panics if the clusters are not connected, like [`Grid::route`].
    pub fn route_links_into(&self, src: HostId, dst: HostId, out: &mut Vec<u32>) -> f64 {
        if src == dst {
            return 0.0;
        }
        let (sc, dc) = (self.host(src).cluster, self.host(dst).cluster);
        let start = out.len();
        out.push(self.host(src).uplink_tx.0);
        if sc != dc {
            let path = self
                .cluster_paths
                .get(&(sc, dc))
                .expect("clusters disconnected: builder validation should prevent this");
            out.extend(path.iter().map(|l| l.0));
        }
        out.push(self.host(dst).uplink_rx.0);
        out[start..]
            .iter()
            .map(|&l| self.link(LinkId(l)).latency)
            .sum()
    }

    /// The conservative-parallel lookahead bound: the minimum one-way
    /// latency over all WAN links, or `None` for a single-cluster grid
    /// (no WAN links — there is no inter-partition coupling to bound).
    ///
    /// Every inter-cluster route traverses at least one WAN link, and every
    /// link latency is additive, so no event applied in one cluster at time
    /// `t` can schedule a *flow activation* in another cluster before
    /// `t + min_wan_latency()`. The windowed kernel
    /// ([`crate::engine::KernelMode::Windowed`]) uses this as its event
    /// window width; it is a batching hint, not a correctness bound —
    /// zero-latency cross-cluster interactions (remote spawn, remote load
    /// injection, mailbox rendezvous matching) exist, and the merge layer
    /// re-validates every pre-drained completion by generation instead of
    /// trusting the window.
    pub fn min_wan_latency(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for c in &self.clusters {
            for &(_, l) in &c.wan {
                let lat = self.link(l).latency;
                best = Some(match best {
                    Some(b) if b <= lat => b,
                    _ => lat,
                });
            }
        }
        best
    }

    /// Hosts of a given cluster, by name.
    pub fn hosts_of(&self, cluster: &str) -> Vec<HostId> {
        match self.cluster_by_name(cluster) {
            Some(c) => self.cluster(c).hosts.clone(),
            None => Vec::new(),
        }
    }
}

/// Errors raised while building a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Two clusters cannot reach each other over WAN links.
    Disconnected(String, String),
    /// A duplicate cluster name was registered.
    DuplicateCluster(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Disconnected(a, b) => {
                write!(f, "clusters {a:?} and {b:?} are not connected")
            }
            TopologyError::DuplicateCluster(n) => write!(f, "duplicate cluster name {n:?}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incremental builder for [`Grid`] topologies.
///
/// ```
/// use grads_sim::topology::{GridBuilder, HostSpec};
///
/// let mut b = GridBuilder::new();
/// let utk = b.cluster("UTK");
/// let uiuc = b.cluster("UIUC");
/// b.add_hosts(utk, 4, &HostSpec::with_speed(933e6));
/// b.add_hosts(uiuc, 8, &HostSpec::with_speed(450e6));
/// b.connect(utk, uiuc, 12.5e6, 0.011); // 100 Mb/s, 11 ms
/// let grid = b.build().unwrap();
/// assert_eq!(grid.hosts().len(), 12);
/// ```
#[derive(Debug, Default)]
pub struct GridBuilder {
    hosts: Vec<Host>,
    clusters: Vec<Cluster>,
    links: Vec<Link>,
    /// Default intra-cluster uplink characteristics per cluster.
    local_link: HashMap<ClusterId, (f64, f64)>,
}

/// Default host-to-switch bandwidth: 1 Gb/s in bytes/s.
pub const DEFAULT_LOCAL_BW: f64 = 125e6;
/// Default host-to-switch latency: 50 µs.
pub const DEFAULT_LOCAL_LAT: f64 = 50e-6;

impl GridBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a cluster and return its id.
    pub fn cluster(&mut self, name: &str) -> ClusterId {
        let id = ClusterId(self.clusters.len() as u32);
        self.clusters.push(Cluster {
            name: name.to_string(),
            hosts: Vec::new(),
            wan: Vec::new(),
        });
        id
    }

    /// Set the local (host-to-switch) link characteristics used for hosts
    /// subsequently added to `cluster`.
    pub fn local_link(&mut self, cluster: ClusterId, bandwidth: f64, latency: f64) {
        self.local_link.insert(cluster, (bandwidth, latency));
    }

    /// Add `n` identical hosts to a cluster; returns their ids.
    pub fn add_hosts(&mut self, cluster: ClusterId, n: usize, spec: &HostSpec) -> Vec<HostId> {
        (0..n).map(|_| self.add_host(cluster, spec)).collect()
    }

    /// Add one host to a cluster.
    pub fn add_host(&mut self, cluster: ClusterId, spec: &HostSpec) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        let cname = self.clusters[cluster.0 as usize].name.clone();
        let (bw, lat) = self
            .local_link
            .get(&cluster)
            .copied()
            .unwrap_or((DEFAULT_LOCAL_BW, DEFAULT_LOCAL_LAT));
        let uplink_tx = LinkId(self.links.len() as u32);
        let uplink_rx = LinkId(self.links.len() as u32 + 1);
        let idx = self.clusters[cluster.0 as usize].hosts.len();
        let name = format!("{}-{}", cname.to_lowercase(), idx);
        self.links.push(Link {
            name: format!("{name}->{cname}"),
            bandwidth: bw,
            latency: lat,
        });
        self.links.push(Link {
            name: format!("{cname}->{name}"),
            bandwidth: bw,
            latency: lat,
        });
        self.hosts.push(Host {
            name,
            cluster,
            speed: spec.speed,
            cores: spec.cores,
            arch: spec.arch.clone(),
            memory: spec.memory,
            cache_bytes: spec.cache_bytes,
            uplink_tx,
            uplink_rx,
        });
        self.clusters[cluster.0 as usize].hosts.push(id);
        id
    }

    /// Connect two cluster switches with a WAN link.
    pub fn connect(&mut self, a: ClusterId, b: ClusterId, bandwidth: f64, latency: f64) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        let an = self.clusters[a.0 as usize].name.clone();
        let bn = self.clusters[b.0 as usize].name.clone();
        self.links.push(Link {
            name: format!("{an}<->{bn}"),
            bandwidth,
            latency,
        });
        self.clusters[a.0 as usize].wan.push((b, id));
        self.clusters[b.0 as usize].wan.push((a, id));
        id
    }

    /// Validate and freeze the topology.
    ///
    /// Computes all-pairs minimum-hop WAN paths; returns an error if any two
    /// clusters (that both contain hosts) cannot reach each other.
    #[allow(clippy::needless_range_loop)] // BFS over indexed cluster ids
    pub fn build(self) -> Result<Grid, TopologyError> {
        // Duplicate-name check.
        for (i, c) in self.clusters.iter().enumerate() {
            if self.clusters[..i].iter().any(|o| o.name == c.name) {
                return Err(TopologyError::DuplicateCluster(c.name.clone()));
            }
        }
        // BFS from every cluster over the WAN graph.
        let n = self.clusters.len();
        let mut cluster_paths = HashMap::new();
        for s in 0..n {
            let src = ClusterId(s as u32);
            let mut prev: Vec<Option<(ClusterId, LinkId)>> = vec![None; n];
            let mut seen = vec![false; n];
            let mut queue = std::collections::VecDeque::new();
            seen[s] = true;
            queue.push_back(src);
            while let Some(c) = queue.pop_front() {
                for &(peer, link) in &self.clusters[c.0 as usize].wan {
                    if !seen[peer.0 as usize] {
                        seen[peer.0 as usize] = true;
                        prev[peer.0 as usize] = Some((c, link));
                        queue.push_back(peer);
                    }
                }
            }
            for d in 0..n {
                if d == s {
                    continue;
                }
                if !seen[d] {
                    if !self.clusters[s].hosts.is_empty() && !self.clusters[d].hosts.is_empty() {
                        return Err(TopologyError::Disconnected(
                            self.clusters[s].name.clone(),
                            self.clusters[d].name.clone(),
                        ));
                    }
                    continue;
                }
                // Reconstruct path s -> d.
                let mut path = Vec::new();
                let mut cur = ClusterId(d as u32);
                while cur.0 as usize != s {
                    let (p, l) = prev[cur.0 as usize].expect("BFS predecessor");
                    path.push(l);
                    cur = p;
                }
                path.reverse();
                cluster_paths.insert((src, ClusterId(d as u32)), path);
            }
        }
        Ok(Grid {
            hosts: self.hosts,
            clusters: self.clusters,
            links: self.links,
            cluster_paths,
        })
    }
}

/// Build the paper's MacroGrid QR testbed (§4.1.2): 4 dual-processor 933 MHz
/// UTK nodes on 100 Mb switched Ethernet, 8 single-processor 450 MHz UIUC
/// nodes on 1.28 Gb/s Myrinet, joined by an Internet path.
pub fn macrogrid_qr() -> Grid {
    let mut b = GridBuilder::new();
    let utk = b.cluster("UTK");
    b.local_link(utk, 12.5e6, 100e-6); // 100 Mb/s switched Ethernet
    b.add_hosts(
        utk,
        4,
        &HostSpec {
            speed: 933e6,
            cores: 2,
            arch: Arch::Ia32,
            memory: 2 << 30,
            cache_bytes: 256 * 1024,
        },
    );
    let uiuc = b.cluster("UIUC");
    b.local_link(uiuc, 160e6, 20e-6); // 1.28 Gb/s full-duplex Myrinet
    b.add_hosts(
        uiuc,
        8,
        &HostSpec {
            speed: 450e6,
            cores: 1,
            arch: Arch::Ia32,
            memory: 1 << 30,
            cache_bytes: 512 * 1024,
        },
    );
    // Internet path between the sites: modest shared bandwidth, wide-area
    // latency. (The paper reports the clusters are "connected via the
    // Internet"; 4 MB/s with 30 ms one-way latency is representative of 2003
    // academic Internet2 paths.)
    b.connect(utk, uiuc, 4e6, 0.030);
    b.build().expect("static topology")
}

/// Build the paper's MicroGrid N-body testbed (§4.2.2): three 550 MHz UTK
/// nodes, three 450 MHz UIUC nodes (both on Gigabit Ethernet LANs), and one
/// 1.7 GHz UCSD node; 30 ms latency UCSD<->others, 11 ms UTK<->UIUC.
pub fn microgrid_nbody() -> Grid {
    let mut b = GridBuilder::new();
    let utk = b.cluster("UTK");
    b.local_link(utk, 125e6, 50e-6);
    b.add_hosts(
        utk,
        3,
        &HostSpec {
            speed: 550e6,
            cores: 1,
            arch: Arch::Ia32,
            memory: 1 << 30,
            cache_bytes: 512 * 1024,
        },
    );
    let uiuc = b.cluster("UIUC");
    b.local_link(uiuc, 125e6, 50e-6);
    b.add_hosts(
        uiuc,
        3,
        &HostSpec {
            speed: 450e6,
            cores: 1,
            arch: Arch::Ia32,
            memory: 1 << 30,
            cache_bytes: 512 * 1024,
        },
    );
    let ucsd = b.cluster("UCSD");
    b.local_link(ucsd, 125e6, 50e-6);
    b.add_hosts(
        ucsd,
        1,
        &HostSpec {
            speed: 1.7e9,
            cores: 1,
            arch: Arch::Ia32,
            memory: 1 << 30,
            cache_bytes: 256 * 1024,
        },
    );
    b.connect(utk, uiuc, 8e6, 0.011);
    b.connect(ucsd, utk, 8e6, 0.030);
    b.connect(ucsd, uiuc, 8e6, 0.030);
    b.build().expect("static topology")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_routes_same_host() {
        let g = macrogrid_qr();
        let h = g.hosts_of("UTK")[0];
        let r = g.route(h, h);
        assert!(r.links.is_empty());
        assert_eq!(r.latency, 0.0);
    }

    #[test]
    fn intra_cluster_route_uses_two_uplinks() {
        let g = macrogrid_qr();
        let hs = g.hosts_of("UTK");
        let r = g.route(hs[0], hs[1]);
        assert_eq!(r.links.len(), 2);
        assert!((r.latency - 200e-6).abs() < 1e-12);
    }

    #[test]
    fn inter_cluster_route_traverses_wan() {
        let g = macrogrid_qr();
        let a = g.hosts_of("UTK")[0];
        let b = g.hosts_of("UIUC")[0];
        let r = g.route(a, b);
        assert_eq!(r.links.len(), 3);
        assert!(r.latency > 0.030);
    }

    #[test]
    fn multi_hop_wan_path() {
        let mut b = GridBuilder::new();
        let a = b.cluster("A");
        let c = b.cluster("B");
        let d = b.cluster("C");
        b.add_hosts(a, 1, &HostSpec::default());
        b.add_hosts(c, 1, &HostSpec::default());
        b.add_hosts(d, 1, &HostSpec::default());
        // Chain A - B - C; no direct A-C link.
        b.connect(a, c, 1e6, 0.01);
        b.connect(c, d, 1e6, 0.01);
        let g = b.build().unwrap();
        let r = g.route(HostId(0), HostId(2));
        // uplink + 2 WAN hops + uplink
        assert_eq!(r.links.len(), 4);
    }

    #[test]
    fn disconnected_clusters_rejected() {
        let mut b = GridBuilder::new();
        let a = b.cluster("A");
        let c = b.cluster("B");
        b.add_hosts(a, 1, &HostSpec::default());
        b.add_hosts(c, 1, &HostSpec::default());
        assert!(matches!(b.build(), Err(TopologyError::Disconnected(_, _))));
    }

    #[test]
    fn duplicate_cluster_rejected() {
        let mut b = GridBuilder::new();
        b.cluster("A");
        b.cluster("A");
        assert!(matches!(b.build(), Err(TopologyError::DuplicateCluster(_))));
    }

    #[test]
    fn microgrid_matches_paper_shape() {
        let g = microgrid_nbody();
        assert_eq!(g.hosts_of("UTK").len(), 3);
        assert_eq!(g.hosts_of("UIUC").len(), 3);
        assert_eq!(g.hosts_of("UCSD").len(), 1);
        let utk0 = g.hosts_of("UTK")[0];
        assert_eq!(g.host(utk0).speed, 550e6);
        let ucsd = g.hosts_of("UCSD")[0];
        let r = g.route(ucsd, utk0);
        assert!(r.latency > 0.030 && r.latency < 0.032);
    }

    #[test]
    fn host_lookup_by_name() {
        let g = macrogrid_qr();
        let id = g.host_by_name("utk-2").unwrap();
        assert_eq!(g.host(id).name, "utk-2");
        assert!(g.host_by_name("nope").is_none());
    }
}
