//! Mailbox directory: an open-addressed, identity-hashed map from
//! [`MailKey`] to dense, recycled [`Mailbox`] slots.
//!
//! The seed kernel kept mailboxes in a `HashMap<MailKey, Mailbox>` and
//! never removed entries. That is quadratic trouble for MPI traffic:
//! `mpi::Comm` derives a *fresh* key per point-to-point message (the key
//! hashes a per-(peer, tag) sequence number), so the map grew by one entry
//! per message ever sent and every lookup re-hashed the key with SipHash.
//!
//! [`MailDir`] exploits two facts. First, `MailKey`s are already FNV-mixed
//! by [`mail_key`](crate::process::mail_key), so the low bits are usable
//! as a table index directly — no second hash. Second, a mailbox is dead
//! the moment it has no arrived messages, no queued rendezvous sends, and
//! no waiting receivers — which for MPI-shaped keys is right after the
//! single matching receive. The directory releases empty mailboxes back to
//! a free list (keeping their buffer capacity for reuse), so steady-state
//! size tracks *live* mailboxes, not total messages ever sent.

use crate::process::{MailKey, Payload, ProcId};
use crate::topology::HostId;
use std::collections::VecDeque;

/// A rendezvous send parked in a mailbox, waiting for its receiver.
pub(crate) struct QueuedSend {
    pub(crate) sender: ProcId,
    pub(crate) src: HostId,
    pub(crate) bytes: f64,
    pub(crate) payload: Payload,
}

/// Per-key mailbox state.
#[derive(Default)]
pub(crate) struct Mailbox {
    /// Fully delivered eager payloads awaiting a receive.
    pub(crate) arrived: VecDeque<Payload>,
    /// Rendezvous sends posted before their matching receive.
    pub(crate) queued_sync: VecDeque<QueuedSend>,
    /// Receivers blocked on this key, in arrival order.
    pub(crate) waiting: VecDeque<ProcId>,
}

impl Mailbox {
    pub(crate) fn is_empty(&self) -> bool {
        self.arrived.is_empty() && self.queued_sync.is_empty() && self.waiting.is_empty()
    }

    fn clear(&mut self) {
        self.arrived.clear();
        self.queued_sync.clear();
        self.waiting.clear();
    }
}

/// Sentinel: table bucket holds no slot.
const EMPTY: u32 = 0;

/// Open-addressed directory of live mailboxes. Linear probing over an
/// identity-indexed table (keys are pre-mixed), dense slab of recycled
/// `Mailbox` slots.
pub(crate) struct MailDir {
    /// `(key, slot + 1)` pairs; slot-part [`EMPTY`] marks a free bucket.
    table: Vec<(u64, u32)>,
    mask: usize,
    occupied: usize,
    slab: Vec<Mailbox>,
    free: Vec<u32>,
}

impl MailDir {
    pub(crate) fn new() -> Self {
        MailDir {
            table: vec![(0, EMPTY); 64],
            mask: 63,
            occupied: 0,
            slab: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of live (non-released) mailboxes.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.occupied
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> Option<usize> {
        let mut i = key as usize & self.mask;
        loop {
            let (k, s) = self.table[i];
            if s == EMPTY {
                return None;
            }
            if k == key {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    pub(crate) fn get_mut(&mut self, key: MailKey) -> Option<&mut Mailbox> {
        let b = self.bucket_of(key.0)?;
        let slot = self.table[b].1 - 1;
        Some(&mut self.slab[slot as usize])
    }

    pub(crate) fn get_or_insert(&mut self, key: MailKey) -> &mut Mailbox {
        if let Some(b) = self.bucket_of(key.0) {
            let slot = self.table[b].1 - 1;
            return &mut self.slab[slot as usize];
        }
        if (self.occupied + 1) * 4 > self.table.len() * 3 {
            self.grow();
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slab.push(Mailbox::default());
                (self.slab.len() - 1) as u32
            }
        };
        let mut i = key.0 as usize & self.mask;
        while self.table[i].1 != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.table[i] = (key.0, slot + 1);
        self.occupied += 1;
        &mut self.slab[slot as usize]
    }

    /// Release `key`'s mailbox back to the free list if it is empty. The
    /// slot's buffers keep their capacity for the next mailbox that reuses
    /// the slot.
    pub(crate) fn release_if_empty(&mut self, key: MailKey) {
        let Some(b) = self.bucket_of(key.0) else {
            return;
        };
        let slot = self.table[b].1 - 1;
        if !self.slab[slot as usize].is_empty() {
            return;
        }
        self.slab[slot as usize].clear();
        self.free.push(slot);
        self.occupied -= 1;
        self.delete_bucket(b);
    }

    /// Backward-shift deletion keeps every remaining element reachable
    /// from its home bucket without tombstones.
    fn delete_bucket(&mut self, mut i: usize) {
        loop {
            self.table[i] = (0, EMPTY);
            let mut j = i;
            loop {
                j = (j + 1) & self.mask;
                let (k, s) = self.table[j];
                if s == EMPTY {
                    return;
                }
                let home = k as usize & self.mask;
                // The element at `j` may stay only if its home lies
                // cyclically within (i, j]; otherwise the new hole at `i`
                // would break its probe chain, so move it into the hole.
                let reachable = if i <= j {
                    home > i && home <= j
                } else {
                    home > i || home <= j
                };
                if !reachable {
                    self.table[i] = (k, s);
                    i = j;
                    break;
                }
            }
        }
    }

    fn grow(&mut self) {
        let new_len = self.table.len() * 2;
        let old = std::mem::replace(&mut self.table, vec![(0, EMPTY); new_len]);
        self.mask = new_len - 1;
        for (k, s) in old {
            if s != EMPTY {
                let mut i = k as usize & self.mask;
                while self.table[i].1 != EMPTY {
                    i = (i + 1) & self.mask;
                }
                self.table[i] = (k, s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::mail_key;
    use std::collections::HashMap;

    #[test]
    fn insert_lookup_release_roundtrip() {
        let mut d = MailDir::new();
        let k = mail_key(&[1, 2, 3]);
        assert!(d.get_mut(k).is_none());
        d.get_or_insert(k).waiting.push_back(ProcId(7));
        assert_eq!(d.get_mut(k).unwrap().waiting[0], ProcId(7));
        d.release_if_empty(k); // not empty: still there
        assert!(d.get_mut(k).is_some());
        d.get_mut(k).unwrap().waiting.clear();
        d.release_if_empty(k);
        assert!(d.get_mut(k).is_none());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn slots_are_recycled() {
        let mut d = MailDir::new();
        for round in 0..1000u64 {
            let k = mail_key(&[round, 42]);
            d.get_or_insert(k).arrived.push_back(Box::new(round));
            let got = d.get_mut(k).unwrap().arrived.pop_front().unwrap();
            assert_eq!(*got.downcast::<u64>().unwrap(), round);
            d.release_if_empty(k);
        }
        assert_eq!(d.len(), 0);
        assert!(d.slab.len() <= 2, "slab should recycle, not grow per key");
    }

    /// Model test: random interleavings of insert/lookup/release against a
    /// std HashMap oracle, exercising growth and backward-shift deletion.
    #[test]
    fn matches_hashmap_model() {
        let mut d = MailDir::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        // Deterministic pseudo-random op stream.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = mail_key(&[x % 512]);
            match x % 3 {
                0 => {
                    let mb = d.get_or_insert(key);
                    mb.arrived.push_back(Box::new(step));
                    *model.entry(key.0).or_insert(0) += 1;
                }
                1 => {
                    let got = d.get_mut(key).map(|m| m.arrived.len());
                    assert_eq!(got, model.get(&key.0).map(|&n| n as usize));
                }
                _ => {
                    if let Some(mb) = d.get_mut(key) {
                        mb.arrived.clear();
                    }
                    d.release_if_empty(key);
                    model.remove(&key.0);
                }
            }
        }
        assert_eq!(d.len(), model.len());
        for (&k, &n) in &model {
            assert_eq!(d.get_mut(MailKey(k)).unwrap().arrived.len(), n as usize);
        }
    }
}
