//! Simulation trace: a timestamped record of what happened during a run.
//!
//! Figure harnesses extract progress series from custom trace points (e.g.
//! the N-body application emits `("iteration", k)` each step, reproducing
//! the paper's Figure 4 axes directly).

use crate::process::ProcId;
use crate::topology::HostId;
use std::sync::Arc;

/// One timestamped record.
///
/// `PartialEq` compares timestamps bitwise (via `f64` equality), which is
/// exactly what the kernel's determinism tests need: two runs are equivalent
/// only if every record matches bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the event, seconds.
    pub t: f64,
    /// Process that caused the record, if any.
    pub pid: Option<ProcId>,
    /// What happened.
    pub kind: TraceKind,
}

/// Kinds of trace records.
///
/// Names and labels are interned `Arc<str>`s: the kernel's hot paths share
/// one allocation per distinct string instead of cloning a `String` per
/// record. Equality still compares string contents.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A process started.
    ProcStart {
        /// The process's spawn name.
        name: Arc<str>,
    },
    /// A process exited normally.
    ProcExit {
        /// The process's spawn name.
        name: Arc<str>,
    },
    /// A process failed (panicked); message attached.
    ProcFail {
        /// The process's spawn name.
        name: Arc<str>,
        /// The panic payload, stringified.
        message: String,
    },
    /// Total external load on a host changed.
    LoadChange {
        /// The host whose load changed.
        host: HostId,
        /// The host's total external load after the change.
        total: f64,
    },
    /// A host failed permanently (fault injection).
    HostFail {
        /// The host that failed.
        host: HostId,
    },
    /// A custom application-level marker.
    Custom {
        /// Application-chosen marker label.
        label: Arc<str>,
        /// Application-chosen value.
        value: f64,
    },
}

/// Full trace of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Records in (virtual) chronological order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Extract the `(t, value)` series of all custom records with `label`.
    pub fn series(&self, label: &str) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .filter_map(|r| match &r.kind {
                TraceKind::Custom { label: l, value } if l.as_ref() == label => Some((r.t, *value)),
                _ => None,
            })
            .collect()
    }

    /// Extract the `(t, value)` series of custom records with `label`
    /// emitted by one specific process.
    pub fn series_of(&self, pid: ProcId, label: &str) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .filter_map(|r| match &r.kind {
                TraceKind::Custom { label: l, value }
                    if l.as_ref() == label && r.pid == Some(pid) =>
                {
                    Some((r.t, *value))
                }
                _ => None,
            })
            .collect()
    }

    /// Last value of a labelled series, if any record exists.
    pub fn last_value(&self, label: &str) -> Option<f64> {
        self.series(label).last().map(|&(_, v)| v)
    }

    /// Render the trace as CSV (`time,pid,kind,detail,value`) for external
    /// plotting of figure series.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,pid,kind,detail,value\n");
        for r in &self.records {
            let pid = r.pid.map(|p| p.0.to_string()).unwrap_or_default();
            let (kind, detail, value) = match &r.kind {
                TraceKind::ProcStart { name } => ("proc_start", name.to_string(), String::new()),
                TraceKind::ProcExit { name } => ("proc_exit", name.to_string(), String::new()),
                TraceKind::ProcFail { name, message } => {
                    ("proc_fail", format!("{name}: {message}"), String::new())
                }
                TraceKind::LoadChange { host, total } => {
                    ("load", host.to_string(), format!("{total}"))
                }
                TraceKind::HostFail { host } => ("host_fail", host.to_string(), String::new()),
                TraceKind::Custom { label, value } => {
                    ("custom", label.to_string(), format!("{value}"))
                }
            };
            let detail = detail.replace(',', ";");
            out.push_str(&format!("{},{},{},{},{}\n", r.t, pid, kind, detail, value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_filters_by_label_and_pid() {
        let mut tr = Trace::default();
        tr.records.push(TraceRecord {
            t: 1.0,
            pid: Some(ProcId(0)),
            kind: TraceKind::Custom {
                label: "a".into(),
                value: 10.0,
            },
        });
        tr.records.push(TraceRecord {
            t: 2.0,
            pid: Some(ProcId(1)),
            kind: TraceKind::Custom {
                label: "a".into(),
                value: 20.0,
            },
        });
        tr.records.push(TraceRecord {
            t: 3.0,
            pid: Some(ProcId(0)),
            kind: TraceKind::Custom {
                label: "b".into(),
                value: 30.0,
            },
        });
        assert_eq!(tr.series("a"), vec![(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(tr.series_of(ProcId(0), "a"), vec![(1.0, 10.0)]);
        assert_eq!(tr.last_value("b"), Some(30.0));
        assert_eq!(tr.last_value("c"), None);
    }

    #[test]
    fn csv_export_has_all_records() {
        let mut tr = Trace::default();
        tr.records.push(TraceRecord {
            t: 1.5,
            pid: Some(ProcId(3)),
            kind: TraceKind::Custom {
                label: "iteration, one".into(),
                value: 7.0,
            },
        });
        tr.records.push(TraceRecord {
            t: 2.0,
            pid: None,
            kind: TraceKind::HostFail {
                host: crate::topology::HostId(1),
            },
        });
        let csv = tr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "time,pid,kind,detail,value");
        assert!(lines[1].contains("custom"));
        assert!(
            lines[1].contains("iteration; one"),
            "commas escaped: {}",
            lines[1]
        );
        assert!(lines[2].contains("host_fail"));
    }
}
