//! A DML-style textual topology format.
//!
//! The MicroGrid's virtual resources were *"described ... in standard
//! Domain Modeling Language (DML) and a simple resource description for
//! the processor nodes"* (§4.2.2). This module provides the equivalent for
//! our emulator: a small declarative format that builds a [`Grid`], so
//! experiment configurations can live in text files rather than code.
//!
//! ```text
//! # The paper's QR testbed.
//! cluster UTK {
//!     hosts 4
//!     speed 933e6
//!     cores 2
//!     arch ia32
//!     link 12.5e6 100e-6     # local bandwidth (B/s), latency (s)
//! }
//! cluster UIUC {
//!     hosts 8
//!     speed 450e6
//!     link 160e6 20e-6
//! }
//! connect UTK UIUC 4e6 0.030
//! ```
//!
//! Keys inside a cluster block: `hosts`, `speed`, `cores`, `arch`
//! (`ia32`/`ia64`/anything else), `memory`, `cache`, `link BW LAT`.
//! Top level: `cluster NAME { ... }` and `connect A B BW LAT`.

use crate::topology::{Arch, Grid, GridBuilder, HostSpec};

/// Parse errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum DmlError {
    /// Malformed syntax.
    Syntax {
        /// 1-based source line of the offending token.
        line: usize,
        /// What was expected or what went wrong.
        message: String,
    },
    /// A `connect` referenced an unknown cluster.
    UnknownCluster {
        /// 1-based source line of the `connect` statement.
        line: usize,
        /// The cluster name that did not resolve.
        name: String,
    },
    /// The resulting topology failed validation.
    Topology(String),
}

impl std::fmt::Display for DmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmlError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            DmlError::UnknownCluster { line, name } => {
                write!(f, "line {line}: unknown cluster {name:?}")
            }
            DmlError::Topology(m) => write!(f, "topology: {m}"),
        }
    }
}

impl std::error::Error for DmlError {}

fn syntax(line: usize, message: impl Into<String>) -> DmlError {
    DmlError::Syntax {
        line,
        message: message.into(),
    }
}

fn parse_f64(line: usize, tok: &str, what: &str) -> Result<f64, DmlError> {
    tok.parse::<f64>()
        .map_err(|_| syntax(line, format!("bad {what} {tok:?}")))
}

/// Parse a DML-style description into a built [`Grid`].
pub fn parse_dml(src: &str) -> Result<Grid, DmlError> {
    let mut b = GridBuilder::new();
    let mut names: Vec<String> = Vec::new();
    let mut ids = Vec::new();

    struct Block {
        name: String,
        start_line: usize,
        hosts: Option<usize>,
        spec: HostSpec,
        link: Option<(f64, f64)>,
    }

    let mut block: Option<Block> = None;
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match (&mut block, toks[0]) {
            (None, "cluster") => {
                if toks.len() < 3 || toks[2] != "{" {
                    return Err(syntax(line_no, "expected `cluster NAME {`"));
                }
                block = Some(Block {
                    name: toks[1].to_string(),
                    start_line: line_no,
                    hosts: None,
                    spec: HostSpec::with_speed(1e9),
                    link: None,
                });
            }
            (None, "connect") => {
                if toks.len() != 5 {
                    return Err(syntax(line_no, "expected `connect A B BW LAT`"));
                }
                let find = |n: &str| -> Result<usize, DmlError> {
                    names
                        .iter()
                        .position(|x| x == n)
                        .ok_or(DmlError::UnknownCluster {
                            line: line_no,
                            name: n.to_string(),
                        })
                };
                let a = find(toks[1])?;
                let c = find(toks[2])?;
                let bw = parse_f64(line_no, toks[3], "bandwidth")?;
                let lat = parse_f64(line_no, toks[4], "latency")?;
                b.connect(ids[a], ids[c], bw, lat);
            }
            (None, other) => {
                return Err(syntax(line_no, format!("unexpected {other:?}")));
            }
            (Some(_blk), "}") => {
                let blk = block.take().expect("inside a block");
                let id = b.cluster(&blk.name);
                if let Some((bw, lat)) = blk.link {
                    b.local_link(id, bw, lat);
                }
                let n = blk.hosts.ok_or(syntax(
                    blk.start_line,
                    format!("cluster {:?} missing `hosts N`", blk.name),
                ))?;
                b.add_hosts(id, n, &blk.spec);
                names.push(blk.name);
                ids.push(id);
            }
            (Some(blk), key) => match key {
                "hosts" if toks.len() == 2 => {
                    blk.hosts = Some(
                        toks[1]
                            .parse()
                            .map_err(|_| syntax(line_no, "bad host count"))?,
                    );
                }
                "speed" if toks.len() == 2 => {
                    blk.spec.speed = parse_f64(line_no, toks[1], "speed")?;
                }
                "cores" if toks.len() == 2 => {
                    blk.spec.cores = toks[1]
                        .parse()
                        .map_err(|_| syntax(line_no, "bad core count"))?;
                }
                "arch" if toks.len() == 2 => {
                    blk.spec.arch = match toks[1] {
                        "ia32" => Arch::Ia32,
                        "ia64" => Arch::Ia64,
                        other => Arch::Other(other.to_string()),
                    };
                }
                "memory" if toks.len() == 2 => {
                    blk.spec.memory = parse_f64(line_no, toks[1], "memory")? as u64;
                }
                "cache" if toks.len() == 2 => {
                    blk.spec.cache_bytes = parse_f64(line_no, toks[1], "cache")? as u64;
                }
                "link" if toks.len() == 3 => {
                    blk.link = Some((
                        parse_f64(line_no, toks[1], "bandwidth")?,
                        parse_f64(line_no, toks[2], "latency")?,
                    ));
                }
                other => {
                    return Err(syntax(line_no, format!("unknown key {other:?}")));
                }
            },
        }
    }
    if let Some(blk) = block {
        return Err(syntax(blk.start_line, "unterminated cluster block"));
    }
    b.build().map_err(|e| DmlError::Topology(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const QR_TESTBED: &str = r#"
# The paper's QR testbed.
cluster UTK {
    hosts 4
    speed 933e6
    cores 2
    arch ia32
    link 12.5e6 100e-6
}
cluster UIUC {
    hosts 8
    speed 450e6
    link 160e6 20e-6
}
connect UTK UIUC 4e6 0.030
"#;

    #[test]
    fn parses_the_qr_testbed() {
        let g = parse_dml(QR_TESTBED).unwrap();
        assert_eq!(g.hosts_of("UTK").len(), 4);
        assert_eq!(g.hosts_of("UIUC").len(), 8);
        let utk0 = g.hosts_of("UTK")[0];
        assert_eq!(g.host(utk0).speed, 933e6);
        assert_eq!(g.host(utk0).cores, 2);
        assert_eq!(g.host(utk0).arch, Arch::Ia32);
        let uiuc0 = g.hosts_of("UIUC")[0];
        let r = g.route(utk0, uiuc0);
        assert!((r.latency - (100e-6 + 0.030 + 20e-6)).abs() < 1e-9);
    }

    #[test]
    fn matches_the_builder_equivalent() {
        let g = parse_dml(QR_TESTBED).unwrap();
        let b = crate::topology::macrogrid_qr();
        assert_eq!(g.hosts().len(), b.hosts().len());
        for (x, y) in g.hosts().iter().zip(b.hosts()) {
            assert_eq!(x.speed, y.speed);
            assert_eq!(x.cores, y.cores);
        }
    }

    #[test]
    fn arch_variants_and_extras() {
        let g =
            parse_dml("cluster A {\n hosts 1\n arch ia64\n memory 2e9\n cache 3e6\n}\n").unwrap();
        let h = g.host(g.hosts_of("A")[0]);
        assert_eq!(h.arch, Arch::Ia64);
        assert_eq!(h.memory, 2_000_000_000);
        assert_eq!(h.cache_bytes, 3_000_000);
        let g2 = parse_dml("cluster B {\n hosts 1\n arch sparc\n}\n").unwrap();
        assert_eq!(
            g2.host(g2.hosts_of("B")[0]).arch,
            Arch::Other("sparc".to_string())
        );
    }

    #[test]
    fn error_unknown_cluster_in_connect() {
        let err = parse_dml("cluster A {\n hosts 1\n}\nconnect A NOPE 1e6 0.01\n").unwrap_err();
        assert!(matches!(err, DmlError::UnknownCluster { name, .. } if name == "NOPE"));
    }

    #[test]
    fn error_unknown_key() {
        let err = parse_dml("cluster A {\n wibble 3\n}\n").unwrap_err();
        assert!(matches!(err, DmlError::Syntax { line: 2, .. }), "{err}");
    }

    #[test]
    fn error_missing_hosts() {
        let err = parse_dml("cluster A {\n speed 1e9\n}\n").unwrap_err();
        assert!(matches!(err, DmlError::Syntax { .. }));
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn error_unterminated_block() {
        let err = parse_dml("cluster A {\n hosts 1\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn error_disconnected_topology() {
        let err = parse_dml("cluster A {\n hosts 1\n}\ncluster B {\n hosts 1\n}\n").unwrap_err();
        assert!(matches!(err, DmlError::Topology(_)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_dml("\n# hi\ncluster A { # open\n hosts 2 # two\n}\n").unwrap();
        assert_eq!(g.hosts_of("A").len(), 2);
    }
}
