//! Kernel event queue: shared event/order definitions plus the indexed
//! (position-tracked) heap that makes cancellations O(log n) removals.
//!
//! The seed kernel kept completion events in a plain `BinaryHeap` and
//! *stale-marked* cancellations: a re-stamped action or flow bumped its
//! generation, the obsolete completion event stayed in the heap, and pops
//! discarded it when the generation no longer matched — with a
//! [`CompactionPolicy`](crate::engine::CompactionPolicy)-driven rebuild
//! once stale events dominated. [`IndexedHeap`] tracks every event's heap
//! position through a stable handle, so a cancellation removes the event
//! immediately and the heap never carries dead weight.
//!
//! Both queues pop in the same strict total order on
//! `(t, class, key, seq)`, and both modes push exactly the same live
//! events with the same sequence numbers, so their applied-event
//! sequences are identical — the randomized push/cancel property test
//! below and the determinism gate hold them to that bit for bit.

use crate::process::ProcId;
use crate::topology::HostId;

/// What a scheduled kernel event does when it fires.
#[derive(Debug, Clone)]
pub(crate) enum EventKind {
    Start(ProcId),
    HostFail { host: HostId },
    CpuDone { id: usize, gen: u64 },
    FlowActivate { id: usize },
    FlowDone { id: usize, gen: u64 },
    SleepDone(ProcId),
    LoadOn { host: HostId, amount: f64 },
    LoadOff { host: HostId, amount: f64 },
}

/// Tie-break class and entity key for an event, precomputed at push time.
///
/// Events at equal timestamps pop in `(class, key)` order rather than
/// insertion order, so the pop sequence is independent of *how often* rates
/// were re-stamped — a prerequisite for the incremental and full recompute
/// paths (which push different numbers of events) to stay bit-identical.
/// Classes 6 and up are rate-derived completion events (`CpuDone`,
/// `FlowDone`) — the only kinds a rate solve can (re)schedule. A deferred
/// solve never needs to slot one *before* a same-instant event already
/// queued: completions due exactly at `now` carry bitwise-zero remaining
/// work (their stamps survive any rate change), and churn cannot create an
/// at-`now` completion (zero-work actions finish inline without scheduling
/// events) — see `Engine::must_flush_before` for the full argument that
/// lets the coalesced flush defer across completion pops.
pub(crate) fn class_key(kind: &EventKind) -> (u8, u64) {
    match kind {
        EventKind::Start(pid) => (0, pid.0 as u64),
        EventKind::LoadOn { host, .. } => (1, host.0 as u64),
        EventKind::LoadOff { host, .. } => (2, host.0 as u64),
        EventKind::HostFail { host } => (3, host.0 as u64),
        EventKind::SleepDone(pid) => (4, pid.0 as u64),
        EventKind::FlowActivate { id } => (5, *id as u64),
        EventKind::CpuDone { id, .. } => (6, *id as u64),
        EventKind::FlowDone { id, .. } => (7, *id as u64),
    }
}

#[derive(Debug)]
pub(crate) struct Event {
    pub(crate) t: f64,
    pub(crate) class: u8,
    pub(crate) key: u64,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl Event {
    /// `true` when `self` fires strictly before `other` in the kernel's
    /// total order `(t, class, key, seq)`.
    #[inline]
    pub(crate) fn fires_before(&self, other: &Event) -> bool {
        self.t
            .total_cmp(&other.t)
            .then_with(|| self.class.cmp(&other.class))
            .then_with(|| self.key.cmp(&other.key))
            .then_with(|| self.seq.cmp(&other.seq))
            .is_lt()
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t
            && self.class == other.class
            && self.key == other.key
            && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed so that BinaryHeap pops the earliest (t, class, key, seq).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle value meaning "no pending event".
pub(crate) const NO_HANDLE: u32 = u32::MAX;

/// A binary min-heap of [`Event`]s that tracks every element's position
/// through a stable `u32` handle, so any pending event can be removed in
/// O(log n) without disturbing the pop order of the rest.
#[derive(Default)]
pub(crate) struct IndexedHeap {
    /// `(event, handle)` pairs in binary-heap order.
    heap: Vec<(Event, u32)>,
    /// Handle → current index in `heap`, or [`NO_HANDLE`] when the
    /// handle's event has been popped or removed.
    pos: Vec<u32>,
    /// Recycled handles.
    free: Vec<u32>,
}

impl IndexedHeap {
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Push an event, returning its handle (stable until pop/remove).
    pub(crate) fn push(&mut self, ev: Event) -> u32 {
        let h = match self.free.pop() {
            Some(h) => h,
            None => {
                self.pos.push(NO_HANDLE);
                (self.pos.len() - 1) as u32
            }
        };
        let i = self.heap.len();
        self.heap.push((ev, h));
        self.pos[h as usize] = i as u32;
        self.sift_up(i);
        h
    }

    /// The earliest pending event, if any.
    pub(crate) fn peek(&self) -> Option<&Event> {
        self.heap.first().map(|(e, _)| e)
    }

    /// Pop the earliest pending event. Its handle is recycled.
    pub(crate) fn pop(&mut self) -> Option<Event> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let (ev, h) = self.heap.pop().expect("non-empty heap");
        self.pos[h as usize] = NO_HANDLE;
        self.free.push(h);
        if !self.heap.is_empty() {
            self.pos[self.heap[0].1 as usize] = 0;
            self.sift_down(0);
        }
        Some(ev)
    }

    /// Remove the event behind `handle`. Returns `false` if the handle is
    /// not pending (already popped or removed).
    pub(crate) fn remove(&mut self, handle: u32) -> bool {
        if handle == NO_HANDLE {
            return false;
        }
        let i = self.pos[handle as usize];
        if i == NO_HANDLE {
            return false;
        }
        let i = i as usize;
        let last = self.heap.len() - 1;
        self.heap.swap(i, last);
        self.heap.pop();
        self.pos[handle as usize] = NO_HANDLE;
        self.free.push(handle);
        if i <= last && i < self.heap.len() {
            self.pos[self.heap[i].1 as usize] = i as u32;
            // The swapped-in element may violate the heap property in
            // either direction relative to its new position.
            self.sift_down(i);
            self.sift_up(self.pos[self.heap_index_of_recheck(i)] as usize);
        }
        true
    }

    /// Overwrite the event behind `handle` in place and restore heap order
    /// with a single sift — the fast path for the kernel's re-stamp pattern
    /// (cancel an entity's completion event, immediately schedule its
    /// successor). The new time is usually close to the old one, so the
    /// sift terminates after a step or two, versus a full `remove` + `push`
    /// (three sifts plus swap bookkeeping). Falls back to a plain push if
    /// the handle is not pending. Returns the (possibly fresh) handle.
    pub(crate) fn replace(&mut self, handle: u32, ev: Event) -> u32 {
        if handle == NO_HANDLE {
            return self.push(ev);
        }
        let i = self.pos[handle as usize];
        if i == NO_HANDLE {
            return self.push(ev);
        }
        let i = i as usize;
        self.heap[i].0 = ev;
        // Decrease-or-increase key: sift_up moves it if it now fires
        // earlier than its parent; otherwise sift_down from wherever it
        // sits handles the later-firing case.
        self.sift_up(i);
        self.sift_down(self.pos[handle as usize] as usize);
        handle
    }

    /// After a sift_down from `i`, the element that started at `i` may
    /// have stayed put and still need sifting up. Track it by handle.
    fn heap_index_of_recheck(&self, i: usize) -> usize {
        self.heap[i].1 as usize
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let p = (i - 1) / 2;
            if self.heap[i].0.fires_before(&self.heap[p].0) {
                self.swap_nodes(i, p);
                i = p;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut m = i;
            if l < self.heap.len() && self.heap[l].0.fires_before(&self.heap[m].0) {
                m = l;
            }
            if r < self.heap.len() && self.heap[r].0.fires_before(&self.heap[m].0) {
                m = r;
            }
            if m == i {
                break;
            }
            self.swap_nodes(i, m);
            i = m;
        }
    }

    #[inline]
    fn swap_nodes(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1 as usize] = a as u32;
        self.pos[self.heap[b].1 as usize] = b as u32;
    }
}

/// Maximum number of shards a [`ShardedHeap`] supports. Shard indices are
/// packed into the top bits of the handle word, so the cap keeps 24 bits
/// (16M concurrent events per shard) for the slot index.
pub(crate) const MAX_SHARDS: usize = 128;

/// Bits of a [`ShardedHeap`] handle that hold the within-shard slot.
const SHARD_SHIFT: u32 = 24;
const LOCAL_MASK: u32 = (1 << SHARD_SHIFT) - 1;

/// One [`IndexedHeap`] per logical partition, popping globally in the same
/// strict `(t, class, key, seq)` total order as a single heap.
///
/// The windowed kernel ([`crate::engine::KernelMode::Windowed`]) keys
/// shards by cluster so per-partition event windows can be drained by
/// concurrent workers without touching each other's heaps; the global
/// `peek`/`pop` scan the O(shards) per-shard minima, which is exactly a
/// tournament over the same comparator a single heap uses — seq numbers
/// are unique, so the order is total and the pop sequence is identical.
/// The randomized `sharding_preserves_pop_order` test pins that.
///
/// Handles encode `(shard, slot)` in one `u32`, so the engine's
/// per-entity `ev` words work unchanged; an entity's events always live
/// in its partition's shard (completions are keyed by host/flow
/// placement), so `replace` never needs to move an event across shards.
pub(crate) struct ShardedHeap {
    shards: Vec<IndexedHeap>,
}

impl ShardedHeap {
    /// A heap with `n` shards (1 ≤ n ≤ [`MAX_SHARDS`]).
    pub(crate) fn new(n: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&n),
            "shard count {n} out of range"
        );
        ShardedHeap {
            shards: (0..n).map(|_| IndexedHeap::default()).collect(),
        }
    }

    pub(crate) fn nshards(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    #[inline]
    fn encode(shard: u32, local: u32) -> u32 {
        assert!(local < LOCAL_MASK, "shard slot overflow");
        (shard << SHARD_SHIFT) | local
    }

    /// Push into `shard`, returning a global handle.
    pub(crate) fn push(&mut self, shard: u32, ev: Event) -> u32 {
        let local = self.shards[shard as usize].push(ev);
        Self::encode(shard, local)
    }

    /// Index of the shard holding the globally earliest event, if any.
    fn min_shard(&self) -> Option<usize> {
        let mut best: Option<(usize, &Event)> = None;
        for (i, s) in self.shards.iter().enumerate() {
            if let Some(e) = s.peek() {
                if best.is_none_or(|(_, b)| e.fires_before(b)) {
                    best = Some((i, e));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// The globally earliest pending event, if any.
    pub(crate) fn peek(&self) -> Option<&Event> {
        self.min_shard().and_then(|i| self.shards[i].peek())
    }

    /// Pop the globally earliest pending event.
    pub(crate) fn pop(&mut self) -> Option<Event> {
        self.min_shard().and_then(|i| self.shards[i].pop())
    }

    /// Remove the event behind a global handle. Returns `false` if the
    /// handle is not pending.
    pub(crate) fn remove(&mut self, handle: u32) -> bool {
        if handle == NO_HANDLE {
            return false;
        }
        self.shards[(handle >> SHARD_SHIFT) as usize].remove(handle & LOCAL_MASK)
    }

    /// In-place replace within `shard` (the kernel's re-stamp pattern; an
    /// entity's shard never changes). Falls back to a push when `handle`
    /// is dead or [`NO_HANDLE`]. Returns the (possibly fresh) handle.
    pub(crate) fn replace(&mut self, handle: u32, shard: u32, ev: Event) -> u32 {
        if handle == NO_HANDLE {
            return self.push(shard, ev);
        }
        debug_assert_eq!(
            handle >> SHARD_SHIFT,
            shard,
            "an entity's completion events never change shard"
        );
        let local = self.shards[shard as usize].replace(handle & LOCAL_MASK, ev);
        Self::encode(shard, local)
    }

    /// The per-shard heaps, for the windowed kernel's parallel drain
    /// (each worker owns a disjoint slice of shards).
    pub(crate) fn shards_mut(&mut self) -> &mut [IndexedHeap] {
        &mut self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, seq: u64) -> Event {
        Event {
            t,
            class: 6,
            key: seq,
            seq,
            kind: EventKind::CpuDone {
                id: seq as usize,
                gen: 1,
            },
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut h = IndexedHeap::default();
        for (i, &t) in [5.0, 1.0, 3.0, 2.0, 4.0].iter().enumerate() {
            h.push(ev(t, i as u64));
        }
        let mut out = Vec::new();
        while let Some(e) = h.pop() {
            out.push(e.t);
        }
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn remove_excises_exactly_one() {
        let mut h = IndexedHeap::default();
        let mut handles = Vec::new();
        for i in 0..10u64 {
            handles.push(h.push(ev(10.0 - i as f64, i)));
        }
        assert!(h.remove(handles[3])); // t = 7.0
        assert!(!h.remove(handles[3]), "double remove must fail");
        let mut out = Vec::new();
        while let Some(e) = h.pop() {
            out.push(e.t);
        }
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn handles_are_recycled() {
        let mut h = IndexedHeap::default();
        let a = h.push(ev(1.0, 0));
        assert!(h.pop().is_some());
        let b = h.push(ev(2.0, 1));
        assert_eq!(a, b, "popped handle is recycled");
        assert!(h.remove(b));
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
    }

    /// Randomized push/cancel scripts: the indexed heap's pop sequence is
    /// identical to the seed strategy (plain `BinaryHeap` + stale-marking
    /// cancelled events and discarding them at pop time). This is the
    /// property the engine's `EventQueueMode` bit-identity rests on.
    #[test]
    fn matches_stale_mark_model_on_random_scripts() {
        let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            // xorshift64* — deterministic, no external RNG dep.
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };

        for round in 0..50u64 {
            let mut indexed = IndexedHeap::default();
            let mut model: std::collections::BinaryHeap<Event> =
                std::collections::BinaryHeap::new();
            let mut cancelled: std::collections::HashSet<u64> = std::collections::HashSet::new();
            // (seq, indexed-handle) pairs still live in both queues.
            let mut live: Vec<(u64, u32)> = Vec::new();
            let mut seq = round * 10_000;

            for _ in 0..400 {
                let r = next();
                if r % 6 == 1 && !live.is_empty() {
                    // Re-stamp a random live event: in-place replace on the
                    // indexed heap, cancel-then-fresh-push on the model —
                    // the kernel's restamp_ev pattern.
                    let i = (r >> 8) as usize % live.len();
                    let (old_s, h) = live[i];
                    let t = (r >> 8) % 16;
                    let class = ((r >> 16) % 8) as u8;
                    let key = (r >> 32) % 4;
                    let mk = |s: u64| Event {
                        t: t as f64,
                        class,
                        key,
                        seq: s,
                        kind: EventKind::CpuDone {
                            id: s as usize,
                            gen: 1,
                        },
                    };
                    let h2 = indexed.replace(h, mk(seq));
                    assert_eq!(h, h2, "replace of a live handle keeps it");
                    cancelled.insert(old_s);
                    model.push(mk(seq));
                    live[i] = (seq, h2);
                    seq += 1;
                } else if r % 3 != 0 || live.is_empty() {
                    // Push the same event into both queues. Times collide
                    // often (16 buckets) to stress the tie-break order.
                    let t = (r >> 8) % 16;
                    let class = ((r >> 16) % 8) as u8;
                    let key = (r >> 32) % 4;
                    let mk = |s: u64| Event {
                        t: t as f64,
                        class,
                        key,
                        seq: s,
                        kind: EventKind::CpuDone {
                            id: s as usize,
                            gen: 1,
                        },
                    };
                    let h = indexed.push(mk(seq));
                    model.push(mk(seq));
                    live.push((seq, h));
                    seq += 1;
                } else {
                    // Cancel a random live event: O(log n) removal on the
                    // indexed heap, stale-marking on the model.
                    let i = (r >> 8) as usize % live.len();
                    let (s, h) = live.swap_remove(i);
                    assert!(indexed.remove(h), "live handle must remove");
                    cancelled.insert(s);
                }
            }

            // Drain both; the model discards stale events at pop time.
            let mut a = Vec::new();
            while let Some(e) = indexed.pop() {
                a.push((e.t.to_bits(), e.class, e.key, e.seq));
            }
            let mut b = Vec::new();
            while let Some(e) = model.pop() {
                if !cancelled.contains(&e.seq) {
                    b.push((e.t.to_bits(), e.class, e.key, e.seq));
                }
            }
            assert_eq!(a, b, "round {round}: pop sequences diverged");
        }
    }

    #[test]
    fn replace_moves_in_both_directions() {
        let mut h = IndexedHeap::default();
        let mut handles = Vec::new();
        for i in 0..8u64 {
            handles.push(h.push(ev(i as f64 + 1.0, i)));
        }
        // Decrease-key: t=6.0 → t=0.5 must pop first.
        assert_eq!(h.replace(handles[5], ev(0.5, 100)), handles[5]);
        // Increase-key: t=1.0 → t=99.0 must pop last.
        assert_eq!(h.replace(handles[0], ev(99.0, 101)), handles[0]);
        let out: Vec<f64> = std::iter::from_fn(|| h.pop()).map(|e| e.t).collect();
        assert_eq!(out, vec![0.5, 2.0, 3.0, 4.0, 5.0, 7.0, 8.0, 99.0]);
        // A dead handle degrades to a plain push.
        let fresh = h.replace(handles[3], ev(1.0, 102));
        assert_eq!(h.pop().map(|e| e.seq), Some(102));
        let _ = fresh;
    }

    #[test]
    fn equal_times_break_by_class_key_seq() {
        let mut h = IndexedHeap::default();
        let mk = |class: u8, key: u64, seq: u64| Event {
            t: 1.0,
            class,
            key,
            seq,
            kind: EventKind::SleepDone(ProcId(0)),
        };
        h.push(mk(4, 2, 10));
        h.push(mk(4, 1, 11));
        h.push(mk(0, 9, 12));
        h.push(mk(4, 1, 5));
        let order: Vec<(u8, u64, u64)> = std::iter::from_fn(|| h.pop())
            .map(|e| (e.class, e.key, e.seq))
            .collect();
        assert_eq!(order, vec![(0, 9, 12), (4, 1, 5), (4, 1, 11), (4, 2, 10)]);
    }

    /// Randomized push/remove/replace scripts against a single
    /// [`IndexedHeap`] model: splitting the same events across shards (by
    /// a deterministic but arbitrary key) must not change the global pop
    /// sequence. This is the property the windowed kernel's merge rests
    /// on: the sharded queue is the same priority queue, just partitioned.
    #[test]
    fn sharding_preserves_pop_order() {
        let mut rng: u64 = 0xdead_beef_cafe_f00d;
        let mut next = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        for round in 0..40u64 {
            let nshards = 1 + (round as usize % 7);
            let mut sharded = ShardedHeap::new(nshards);
            assert_eq!(sharded.nshards(), nshards);
            let mut model = IndexedHeap::default();
            // (seq, sharded-handle, model-handle, shard) still live.
            let mut live: Vec<(u64, u32, u32, u32)> = Vec::new();
            let mut seq = round * 100_000;
            for _ in 0..500 {
                let r = next();
                let mk = |s: u64, r: u64| Event {
                    t: ((r >> 8) % 16) as f64,
                    class: ((r >> 16) % 8) as u8,
                    key: (r >> 32) % 4,
                    seq: s,
                    kind: EventKind::CpuDone {
                        id: s as usize,
                        gen: 1,
                    },
                };
                match r % 5 {
                    0 if !live.is_empty() => {
                        let i = (r >> 8) as usize % live.len();
                        let (_, sh, mh, _) = live.swap_remove(i);
                        assert_eq!(sharded.remove(sh), model.remove(mh));
                    }
                    1 if !live.is_empty() => {
                        let i = (r >> 8) as usize % live.len();
                        let (_, sh, mh, shard) = live[i];
                        let sh2 = sharded.replace(sh, shard, mk(seq, r));
                        let mh2 = model.replace(mh, mk(seq, r));
                        live[i] = (seq, sh2, mh2, shard);
                        seq += 1;
                    }
                    _ => {
                        let shard = ((r >> 24) % nshards as u64) as u32;
                        let sh = sharded.push(shard, mk(seq, r));
                        let mh = model.push(mk(seq, r));
                        live.push((seq, sh, mh, shard));
                        seq += 1;
                    }
                }
            }
            assert_eq!(sharded.len(), model.len(), "round {round}: lengths");
            let mut a = Vec::new();
            while let Some(e) = sharded.pop() {
                a.push((e.t.to_bits(), e.class, e.key, e.seq));
            }
            let mut b = Vec::new();
            while let Some(e) = model.pop() {
                b.push((e.t.to_bits(), e.class, e.key, e.seq));
            }
            assert_eq!(a, b, "round {round}: pop sequences diverged");
        }
    }

    #[test]
    fn sharded_handles_round_trip() {
        let mut h = ShardedHeap::new(3);
        let a = h.push(0, ev(5.0, 1));
        let b = h.push(2, ev(1.0, 2));
        let c = h.push(1, ev(3.0, 3));
        assert_eq!(h.len(), 3);
        assert_eq!(h.peek().map(|e| e.seq), Some(2));
        assert!(h.remove(c));
        assert!(!h.remove(c), "double remove must fail");
        assert!(!h.remove(NO_HANDLE));
        // Replace within the same shard moves the event's order.
        let a2 = h.replace(a, 0, ev(0.5, 4));
        assert_eq!(a2 >> SHARD_SHIFT, 0, "replace keeps the shard");
        let order: Vec<u64> = std::iter::from_fn(|| h.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![4, 2]);
        let _ = b;
    }
}
