//! # grads-sim — deterministic grid emulator
//!
//! The substrate every other crate in this workspace runs on. It plays the
//! role of the GrADS testbeds: the *MacroGrid* (real clusters at UCSD, UTK,
//! UIUC, UH) and the *MicroGrid* (the paper's own grid emulation
//! environment, §4.2). Topologies describe clusters of hosts joined by WAN
//! links; simulated processes execute real Rust code against blocking
//! `compute`/`send`/`recv` primitives while the kernel advances virtual
//! time using fluid resource-sharing models:
//!
//! * CPU: equal sharing among compute actions and injected external load,
//!   capped per action at one core's speed;
//! * network: max-min fair bandwidth allocation over multi-link routes with
//!   additive one-way latency.
//!
//! Runs are fully deterministic: exactly one simulated process executes at
//! a time and all event ties are broken by insertion order. The kernel can
//! execute in a conservative-parallel windowed mode (`KernelMode::Windowed`)
//! that shards the event queue by cluster and pre-drains per-cluster event
//! windows on a worker pool — results stay bit-identical to the serial
//! kernel at any worker count (DESIGN.md, "Parallel kernel").
//!
//! ```
//! use grads_sim::prelude::*;
//!
//! let mut b = GridBuilder::new();
//! let c = b.cluster("LOCAL");
//! let hosts = b.add_hosts(c, 2, &HostSpec::with_speed(1e9));
//! let mut eng = Engine::new(b.build().unwrap());
//! let key = mail_key(&[7]);
//! let h1 = hosts[1];
//! eng.spawn("producer", hosts[0], move |ctx| {
//!     ctx.compute(2e9); // two virtual seconds of work
//!     ctx.send(key, h1, 1e6, Box::new(vec![1.0f64, 2.0, 3.0]));
//! });
//! eng.spawn("consumer", hosts[1], move |ctx| {
//!     let data = ctx.recv(key).downcast::<Vec<f64>>().unwrap();
//!     assert_eq!(data.len(), 3);
//! });
//! let report = eng.run();
//! assert_eq!(report.completed.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod dml;
pub mod engine;
pub(crate) mod equeue;
pub(crate) mod handoff;
pub(crate) mod maildir;
pub mod process;
pub mod sharing;
pub mod topology;
pub mod trace;
pub(crate) mod window;

pub use handoff::{set_wait_policy, wait_policy, WaitPolicy};
pub use window::WindowPolicy;

/// Convenient re-exports of the commonly used types.
pub mod prelude {
    pub use crate::engine::{
        CompactionPolicy, Engine, EngineTune, EventQueueMode, HandoffMode, KernelMode,
        RecomputeMode, RecomputeTiming, RunReport,
    };
    pub use crate::handoff::{set_wait_policy, WaitPolicy};
    pub use crate::process::{mail_key, Ctx, MailKey, Payload, ProcId, SendMode};
    pub use crate::topology::{
        macrogrid_qr, microgrid_nbody, Arch, ClusterId, Grid, GridBuilder, Host, HostId, HostSpec,
        LinkId,
    };
    pub use crate::trace::{Trace, TraceKind, TraceRecord};
    pub use crate::window::WindowPolicy;
}

pub use dml::{parse_dml, DmlError};
pub use prelude::*;
