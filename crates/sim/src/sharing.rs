//! Fluid resource-sharing models.
//!
//! Two rate-assignment problems arise in the emulator:
//!
//! * **CPU sharing**: all compute actions on a host (plus injected external
//!   load) divide the host's aggregate capacity equally, with each action
//!   capped at one core's speed.
//! * **Network sharing**: concurrent flows divide link bandwidth max-min
//!   fairly (progressive filling), each flow bottlenecked by the tightest
//!   link on its route.
//!
//! Both functions are pure: they map demand sets to rate vectors and are
//! re-invoked by the kernel whenever the demand set churns.

/// Per-action CPU rate on a host with `cores` cores of `speed` flop/s each,
/// shared by `n_actions` compute actions plus `load_units` units of external
/// competing load.
///
/// The fluid model: total capacity is `cores * speed`; every claimant
/// (action or load unit) receives an equal share, but no single action can
/// exceed one core (`speed`). With fewer claimants than cores every action
/// runs at full single-core speed — this matches the paper's dual-processor
/// UTK nodes, where one competing process does not slow a single application
/// process.
pub fn cpu_share(speed: f64, cores: u32, n_actions: usize, load_units: f64) -> f64 {
    if n_actions == 0 {
        return 0.0;
    }
    let claimants = n_actions as f64 + load_units;
    let equal = (cores as f64) * speed / claimants;
    equal.min(speed)
}

/// Max-min fair ("progressive filling") bandwidth allocation.
///
/// `routes[f]` lists the link indices used by flow `f`; `capacity[l]` is link
/// `l`'s bandwidth. Returns one rate per flow. Flows with empty routes get
/// `f64::INFINITY` (same-host transfers are not bandwidth-limited).
///
/// The algorithm raises all undecided flow rates uniformly until some link
/// saturates, fixes the flows crossing that link, and repeats. Complexity is
/// O(F·L) per round and at most F rounds — ample for emulation scale.
pub fn max_min_fair(routes: &[Vec<usize>], capacity: &[f64]) -> Vec<f64> {
    let nf = routes.len();
    let nl = capacity.len();
    let mut rate = vec![0.0f64; nf];
    let mut fixed = vec![false; nf];
    for (f, r) in routes.iter().enumerate() {
        if r.is_empty() {
            rate[f] = f64::INFINITY;
            fixed[f] = true;
        }
    }
    let mut rem_cap = capacity.to_vec();
    let mut count = vec![0usize; nl];
    for (f, r) in routes.iter().enumerate() {
        if !fixed[f] {
            for &l in r {
                count[l] += 1;
            }
        }
    }
    loop {
        // Find the tightest link among links still carrying undecided flows.
        let mut best: Option<(usize, f64)> = None;
        for l in 0..nl {
            if count[l] == 0 {
                continue;
            }
            let fair = rem_cap[l] / count[l] as f64;
            match best {
                Some((_, b)) if fair >= b => {}
                _ => best = Some((l, fair)),
            }
        }
        let Some((_, inc)) = best else { break };
        // All undecided flows rise by `inc`; flows crossing any link that
        // saturates at this level become fixed.
        let mut saturated = vec![false; nl];
        for l in 0..nl {
            if count[l] > 0 && (rem_cap[l] / count[l] as f64 - inc).abs() <= 1e-9 * inc.max(1.0) {
                saturated[l] = true;
            }
        }
        for f in 0..nf {
            if fixed[f] {
                continue;
            }
            rate[f] += inc;
        }
        // Deduct this round's increment from every link carrying undecided
        // flows, then fix flows that cross a saturated link.
        for l in 0..nl {
            if count[l] > 0 {
                rem_cap[l] -= inc * count[l] as f64;
                if rem_cap[l] < 0.0 {
                    rem_cap[l] = 0.0;
                }
            }
        }
        let mut any_fixed = false;
        for f in 0..nf {
            if fixed[f] {
                continue;
            }
            if routes[f].iter().any(|&l| saturated[l]) {
                fixed[f] = true;
                any_fixed = true;
                for &l in &routes[f] {
                    count[l] -= 1;
                }
            }
        }
        if !any_fixed {
            // Numerical safety: fix everything remaining at current rates.
            for f in 0..nf {
                if !fixed[f] {
                    fixed[f] = true;
                    for &l in &routes[f] {
                        count[l] -= 1;
                    }
                }
            }
        }
        if fixed.iter().all(|&x| x) {
            break;
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn cpu_single_core_splits_evenly() {
        assert!(close(cpu_share(100.0, 1, 2, 0.0), 50.0));
        assert!(close(cpu_share(100.0, 1, 1, 0.0), 100.0));
        assert!(close(cpu_share(100.0, 1, 1, 1.0), 50.0));
    }

    #[test]
    fn cpu_dual_core_absorbs_one_competitor() {
        // One app action + one load unit on a dual-core host: both fit.
        assert!(close(cpu_share(100.0, 2, 1, 1.0), 100.0));
        // Two app actions + two load units: each gets half a core.
        assert!(close(cpu_share(100.0, 2, 2, 2.0), 50.0));
    }

    #[test]
    fn cpu_share_capped_at_one_core() {
        assert!(close(cpu_share(100.0, 4, 1, 0.0), 100.0));
    }

    #[test]
    fn cpu_no_actions_is_zero() {
        assert_eq!(cpu_share(100.0, 2, 0, 5.0), 0.0);
    }

    #[test]
    fn maxmin_single_link_splits() {
        let rates = max_min_fair(&[vec![0], vec![0]], &[10.0]);
        assert!(close(rates[0], 5.0) && close(rates[1], 5.0));
    }

    #[test]
    fn maxmin_empty_route_unlimited() {
        let rates = max_min_fair(&[vec![]], &[10.0]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn maxmin_classic_three_flow() {
        // Two links of cap 10. Flow A uses both, B uses link 0, C uses link 1.
        // Max-min: A=5, B=5, C=5.
        let rates = max_min_fair(&[vec![0, 1], vec![0], vec![1]], &[10.0, 10.0]);
        assert!(close(rates[0], 5.0));
        assert!(close(rates[1], 5.0));
        assert!(close(rates[2], 5.0));
    }

    #[test]
    fn maxmin_unequal_links() {
        // Link 0 cap 10 shared by A,B; link 1 cap 100 used by A only.
        // A and B both get 5 (bottleneck link 0).
        let rates = max_min_fair(&[vec![0, 1], vec![0]], &[10.0, 100.0]);
        assert!(close(rates[0], 5.0));
        assert!(close(rates[1], 5.0));
    }

    #[test]
    fn maxmin_leftover_capacity_goes_to_unconstrained() {
        // Link 0 cap 2 carries A,B; link 1 cap 10 carries B only — wait, B
        // crosses both. A: link0; B: link0+link1; C: link1.
        // Round 1: link0 fair=1 saturates -> A=B=1. C continues on link1
        // (cap 10 - 1 = 9) -> C=9... progressive filling: C rises to 1 with
        // others, then link1 has 10-2=8 left for C alone -> C = 1+8 = 9.
        let rates = max_min_fair(&[vec![0], vec![0, 1], vec![1]], &[2.0, 10.0]);
        assert!(close(rates[0], 1.0));
        assert!(close(rates[1], 1.0));
        assert!(close(rates[2], 9.0));
    }

    #[test]
    fn maxmin_conserves_capacity() {
        // Total allocated on any link never exceeds capacity.
        let routes = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 2],
            vec![0],
            vec![1],
            vec![2],
        ];
        let caps = [7.0, 11.0, 5.0];
        let rates = max_min_fair(&routes, &caps);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = routes
                .iter()
                .zip(&rates)
                .filter(|(r, _)| r.contains(&l))
                .map(|(_, &x)| x)
                .sum();
            assert!(used <= cap * (1.0 + 1e-6), "link {l}: {used} > {cap}");
        }
    }
}
