//! Fluid resource-sharing models.
//!
//! Two rate-assignment problems arise in the emulator:
//!
//! * **CPU sharing**: all compute actions on a host (plus injected external
//!   load) divide the host's aggregate capacity equally, with each action
//!   capped at one core's speed.
//! * **Network sharing**: concurrent flows divide link bandwidth max-min
//!   fairly (progressive filling), each flow bottlenecked by the tightest
//!   link on its route.
//!
//! Both models are pure: they map demand sets to rate vectors and are
//! re-invoked by the kernel whenever the demand set churns. The kernel
//! recomputes rates *incrementally* — one connected sharing component at a
//! time — so the network solver is exposed in two layers: a reusable
//! flat-array core ([`FairScratch::solve`]) that allocates nothing on the
//! steady path, and the original slice-of-`Vec` convenience wrapper
//! ([`max_min_fair`]).

/// Per-action CPU rate on a host with `cores` cores of `speed` flop/s each,
/// shared by `n_actions` compute actions plus `load_units` units of external
/// competing load.
///
/// The fluid model: total capacity is `cores * speed`; every claimant
/// (action or load unit) receives an equal share, but no single action can
/// exceed one core (`speed`). With fewer claimants than cores every action
/// runs at full single-core speed — this matches the paper's dual-processor
/// UTK nodes, where one competing process does not slow a single application
/// process.
pub fn cpu_share(speed: f64, cores: u32, n_actions: usize, load_units: f64) -> f64 {
    if n_actions == 0 {
        return 0.0;
    }
    let claimants = n_actions as f64 + load_units;
    let equal = (cores as f64) * speed / claimants;
    equal.min(speed)
}

/// Reusable buffers for the progressive-filling solver.
///
/// The kernel keeps one of these alive across recomputations so that the
/// steady-state path performs no heap allocation. Inputs are flat arrays:
/// flow `f`'s route is `links_flat[offsets[f].0 .. offsets[f].0 + offsets[f].1]`,
/// link indices are *local* to the `caps` array (the caller maps global link
/// ids down to a dense component-local range).
#[derive(Default, Debug)]
pub struct FairScratch {
    rem_cap: Vec<f64>,
    count: Vec<u32>,
    fixed: Vec<bool>,
    saturated: Vec<bool>,
    /// Links still carrying undecided flows, ascending — the aggregated
    /// solver's filling rounds scan this instead of every link.
    live: Vec<u32>,
    /// Classes not yet fixed, ascending — the aggregated solver's rate
    /// accumulation and fixing sweeps scan this instead of every class.
    undecided: Vec<u32>,
}

impl FairScratch {
    /// Max-min fair allocation over flat route arrays.
    ///
    /// `offsets[f] = (start, len)` into `links_flat`; `caps[l]` is the
    /// capacity of local link `l`. On return `rates` holds one rate per
    /// flow; flows with empty routes get `f64::INFINITY`.
    ///
    /// Progressive filling raises all undecided flows uniformly by the
    /// tightest link's fair share, then fixes every flow crossing a link
    /// whose remaining capacity is exhausted (within a small relative
    /// epsilon of the link's *original* capacity, which is robust to
    /// catastrophic cancellation on wildly mixed magnitudes). The tightest
    /// link itself is always treated as exhausted, so at least one flow is
    /// fixed per round and the loop terminates after at most `nf` rounds —
    /// no "fix everything" fallback is needed, and every flow ends up
    /// bottlenecked by a genuinely saturated link.
    pub fn solve(
        &mut self,
        offsets: &[(u32, u32)],
        links_flat: &[u32],
        caps: &[f64],
        rates: &mut Vec<f64>,
    ) {
        let nf = offsets.len();
        let nl = caps.len();
        rates.clear();
        rates.resize(nf, 0.0);
        self.rem_cap.clear();
        self.rem_cap.extend_from_slice(caps);
        self.count.clear();
        self.count.resize(nl, 0);
        self.fixed.clear();
        self.fixed.resize(nf, false);
        self.saturated.clear();
        self.saturated.resize(nl, false);

        let route = |f: usize| {
            let (s, n) = offsets[f];
            &links_flat[s as usize..s as usize + n as usize]
        };
        let mut undecided = 0usize;
        for (f, rate) in rates.iter_mut().enumerate().take(nf) {
            let r = route(f);
            if r.is_empty() {
                *rate = f64::INFINITY;
                self.fixed[f] = true;
            } else {
                undecided += 1;
                for &l in r {
                    self.count[l as usize] += 1;
                }
            }
        }
        while undecided > 0 {
            // Tightest link among links still carrying undecided flows.
            let mut best: Option<(usize, f64)> = None;
            for l in 0..nl {
                if self.count[l] == 0 {
                    continue;
                }
                let fair = self.rem_cap[l] / self.count[l] as f64;
                match best {
                    Some((_, b)) if fair >= b => {}
                    _ => best = Some((l, fair)),
                }
            }
            let Some((argmin, inc)) = best else { break };
            for (f, r) in rates.iter_mut().enumerate().take(nf) {
                if !self.fixed[f] {
                    *r += inc;
                }
            }
            // Deduct this round's allocation; a link is exhausted when what
            // remains is negligible relative to its original capacity.
            for (l, &cap) in caps.iter().enumerate().take(nl) {
                self.saturated[l] = false;
                if self.count[l] > 0 {
                    self.rem_cap[l] -= inc * self.count[l] as f64;
                    if self.rem_cap[l] <= 1e-12 * cap {
                        self.rem_cap[l] = 0.0;
                        self.saturated[l] = true;
                    }
                }
            }
            // Progress guarantee: the argmin link is saturated by
            // construction even if round-off left it marginally positive.
            self.rem_cap[argmin] = 0.0;
            self.saturated[argmin] = true;
            for f in 0..nf {
                if self.fixed[f] {
                    continue;
                }
                if route(f).iter().any(|&l| self.saturated[l as usize]) {
                    self.fixed[f] = true;
                    undecided -= 1;
                    for &l in route(f) {
                        self.count[l as usize] -= 1;
                    }
                }
            }
        }
    }

    /// Max-min fair allocation over *route classes* — groups of flows that
    /// share the exact same route, weighted by multiplicity.
    ///
    /// `offsets[c] = (start, len)` into `links_flat` gives class `c`'s route;
    /// `mult[c]` is how many flows travel it. On return `rates[c]` is the
    /// per-flow rate of every flow in class `c` (classes with empty routes
    /// get `f64::INFINITY`).
    ///
    /// Arithmetically identical to running [`FairScratch::solve`] over the
    /// expanded per-flow inputs, bit for bit: a link's claimant count is the
    /// *sum of multiplicities* (the same integer the per-flow solver counts
    /// one flow at a time), so each round's fair-share increment
    /// `rem_cap / count` is the identical `f64`; per-flow rates accumulate
    /// the identical increment sequence (one addition per round, whether a
    /// round's increment is added to one class accumulator or to each member
    /// flow separately — same operands, same order); capacity deduction
    /// `inc * count` multiplies the same values; and classes fix exactly
    /// when all their member flows would (members share every route link).
    /// `prop_sharing.rs` pins the equivalence over randomized inputs.
    ///
    /// Unlike the per-flow reference, every per-round sweep here runs over
    /// a compact list instead of the full index range: the tightest-link
    /// search and capacity deduction scan a *live-link list* (links still
    /// carrying undecided classes) and the rate accumulation and fixing
    /// test scan an *undecided-class list*. Both lists are built and
    /// maintained ascending (`Vec::retain` preserves order), so argmin
    /// tie-breaks, rate additions and fix decisions happen in exactly the
    /// reference's `0..nl` / `0..nc` order.
    pub fn solve_classes(
        &mut self,
        offsets: &[(u32, u32)],
        links_flat: &[u32],
        caps: &[f64],
        mult: &[u32],
        rates: &mut Vec<f64>,
    ) {
        let nc = offsets.len();
        let nl = caps.len();
        rates.clear();
        rates.resize(nc, 0.0);
        self.rem_cap.clear();
        self.rem_cap.extend_from_slice(caps);
        self.count.clear();
        self.count.resize(nl, 0);
        self.saturated.clear();
        self.saturated.resize(nl, false);

        let route = |c: usize| {
            let (s, n) = offsets[c];
            &links_flat[s as usize..s as usize + n as usize]
        };
        self.undecided.clear();
        for (c, rate) in rates.iter_mut().enumerate().take(nc) {
            let r = route(c);
            if r.is_empty() {
                *rate = f64::INFINITY;
            } else {
                self.undecided.push(c as u32);
                for &l in r {
                    self.count[l as usize] += mult[c];
                }
            }
        }
        // Ascending build: ties in the argmin scan must resolve to the
        // lowest link index, exactly as the reference's 0..nl sweep does.
        self.live.clear();
        self.live
            .extend((0..nl as u32).filter(|&l| self.count[l as usize] > 0));
        // The borrow checker cannot see that `undecided` and the other
        // scratch vectors are disjoint fields once a closure captures
        // `self`, so the list is moved out for the duration of the loop.
        let mut undecided = std::mem::take(&mut self.undecided);
        while !undecided.is_empty() {
            // Tightest link among links still carrying undecided classes.
            // Every live link has count > 0 by maintenance below.
            let mut best: Option<(usize, f64)> = None;
            for &lu in &self.live {
                let l = lu as usize;
                let fair = self.rem_cap[l] / self.count[l] as f64;
                match best {
                    Some((_, b)) if fair >= b => {}
                    _ => best = Some((l, fair)),
                }
            }
            let Some((argmin, inc)) = best else { break };
            for &cu in &undecided {
                rates[cu as usize] += inc;
            }
            // Deduct this round's allocation; a link is exhausted when what
            // remains is negligible relative to its original capacity.
            for &lu in &self.live {
                let l = lu as usize;
                self.saturated[l] = false;
                self.rem_cap[l] -= inc * self.count[l] as f64;
                if self.rem_cap[l] <= 1e-12 * caps[l] {
                    self.rem_cap[l] = 0.0;
                    self.saturated[l] = true;
                }
            }
            // Progress guarantee: the argmin link is saturated by
            // construction even if round-off left it marginally positive.
            self.rem_cap[argmin] = 0.0;
            self.saturated[argmin] = true;
            // Fix every class crossing a link saturated this round. The
            // fix test reads only `saturated`, never `count`, so the
            // in-pass count decrements cannot change later decisions.
            let count = &mut self.count;
            let saturated = &self.saturated;
            undecided.retain(|&cu| {
                let c = cu as usize;
                if route(c).iter().any(|&l| saturated[l as usize]) {
                    for &l in route(c) {
                        count[l as usize] -= mult[c];
                    }
                    false
                } else {
                    true
                }
            });
            // An undecided class's route links all stay live (none can be
            // saturated, and the class itself keeps their counts positive),
            // so shedding saturated and emptied links here never removes a
            // link the fixing test or the next argmin scan still needs.
            self.live
                .retain(|&lu| count[lu as usize] > 0 && !saturated[lu as usize]);
        }
        self.undecided = undecided;
    }
}

/// Max-min fair ("progressive filling") bandwidth allocation.
///
/// `routes[f]` lists the link indices used by flow `f`; `capacity[l]` is link
/// `l`'s bandwidth. Returns one rate per flow. Flows with empty routes get
/// `f64::INFINITY` (same-host transfers are not bandwidth-limited).
///
/// Convenience wrapper over [`FairScratch::solve`]; the kernel calls the
/// flat-array core directly to avoid per-recompute allocation.
pub fn max_min_fair(routes: &[Vec<usize>], capacity: &[f64]) -> Vec<f64> {
    let mut offsets = Vec::with_capacity(routes.len());
    let mut links_flat = Vec::new();
    for r in routes {
        offsets.push((links_flat.len() as u32, r.len() as u32));
        links_flat.extend(r.iter().map(|&l| l as u32));
    }
    let mut scratch = FairScratch::default();
    let mut rates = Vec::new();
    scratch.solve(&offsets, &links_flat, capacity, &mut rates);
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn cpu_single_core_splits_evenly() {
        assert!(close(cpu_share(100.0, 1, 2, 0.0), 50.0));
        assert!(close(cpu_share(100.0, 1, 1, 0.0), 100.0));
        assert!(close(cpu_share(100.0, 1, 1, 1.0), 50.0));
    }

    #[test]
    fn cpu_dual_core_absorbs_one_competitor() {
        // One app action + one load unit on a dual-core host: both fit.
        assert!(close(cpu_share(100.0, 2, 1, 1.0), 100.0));
        // Two app actions + two load units: each gets half a core.
        assert!(close(cpu_share(100.0, 2, 2, 2.0), 50.0));
    }

    #[test]
    fn cpu_share_capped_at_one_core() {
        assert!(close(cpu_share(100.0, 4, 1, 0.0), 100.0));
    }

    #[test]
    fn cpu_no_actions_is_zero() {
        assert_eq!(cpu_share(100.0, 2, 0, 5.0), 0.0);
    }

    #[test]
    fn maxmin_single_link_splits() {
        let rates = max_min_fair(&[vec![0], vec![0]], &[10.0]);
        assert!(close(rates[0], 5.0) && close(rates[1], 5.0));
    }

    #[test]
    fn maxmin_empty_route_unlimited() {
        let rates = max_min_fair(&[vec![]], &[10.0]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn maxmin_classic_three_flow() {
        // Two links of cap 10. Flow A uses both, B uses link 0, C uses link 1.
        // Max-min: A=5, B=5, C=5.
        let rates = max_min_fair(&[vec![0, 1], vec![0], vec![1]], &[10.0, 10.0]);
        assert!(close(rates[0], 5.0));
        assert!(close(rates[1], 5.0));
        assert!(close(rates[2], 5.0));
    }

    #[test]
    fn maxmin_unequal_links() {
        // Link 0 cap 10 shared by A,B; link 1 cap 100 used by A only.
        // A and B both get 5 (bottleneck link 0).
        let rates = max_min_fair(&[vec![0, 1], vec![0]], &[10.0, 100.0]);
        assert!(close(rates[0], 5.0));
        assert!(close(rates[1], 5.0));
    }

    #[test]
    fn maxmin_leftover_capacity_goes_to_unconstrained() {
        // A: link0; B: link0+link1; C: link1. Caps 2 and 10.
        // Round 1: link0 fair=1 saturates -> A=B=1. C continues on link1
        // (cap 10 - 2 = 8 left for C alone) -> C = 1+8 = 9.
        let rates = max_min_fair(&[vec![0], vec![0, 1], vec![1]], &[2.0, 10.0]);
        assert!(close(rates[0], 1.0));
        assert!(close(rates[1], 1.0));
        assert!(close(rates[2], 9.0));
    }

    #[test]
    fn maxmin_conserves_capacity() {
        // Total allocated on any link never exceeds capacity.
        let routes = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 2],
            vec![0],
            vec![1],
            vec![2],
        ];
        let caps = [7.0, 11.0, 5.0];
        let rates = max_min_fair(&routes, &caps);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = routes
                .iter()
                .zip(&rates)
                .filter(|(r, _)| r.contains(&l))
                .map(|(_, &x)| x)
                .sum();
            assert!(used <= cap * (1.0 + 1e-6), "link {l}: {used} > {cap}");
        }
    }

    #[test]
    fn maxmin_mixed_magnitudes_terminate_and_conserve() {
        // Capacities spanning twelve orders of magnitude used to be able to
        // trip the old absolute-epsilon saturation test; the relative test
        // plus argmin-forcing keeps every round productive.
        let routes = vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![1]];
        let caps = [1e-6, 3.0e6, 7.5e-3];
        let rates = max_min_fair(&routes, &caps);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = routes
                .iter()
                .zip(&rates)
                .filter(|(r, _)| r.contains(&l))
                .map(|(_, &x)| x)
                .sum();
            assert!(used <= cap * (1.0 + 1e-6), "link {l}: {used} > {cap}");
            assert!(rates.iter().all(|r| r.is_finite() && *r >= 0.0));
        }
    }

    /// Expand class inputs to per-flow inputs and check the aggregated
    /// solver reproduces the per-flow reference bit for bit.
    fn assert_classes_match_flows(class_routes: &[Vec<u32>], mult: &[u32], caps: &[f64]) {
        let mut offsets = Vec::new();
        let mut links_flat = Vec::new();
        for r in class_routes {
            offsets.push((links_flat.len() as u32, r.len() as u32));
            links_flat.extend_from_slice(r);
        }
        // Per-flow expansion: every class repeated `mult` times.
        let mut f_offsets = Vec::new();
        let mut f_links = Vec::new();
        for (c, r) in class_routes.iter().enumerate() {
            for _ in 0..mult[c] {
                f_offsets.push((f_links.len() as u32, r.len() as u32));
                f_links.extend_from_slice(r);
            }
        }
        let mut scratch = FairScratch::default();
        let mut class_rates = Vec::new();
        scratch.solve_classes(&offsets, &links_flat, caps, mult, &mut class_rates);
        let mut flow_rates = Vec::new();
        scratch.solve(&f_offsets, &f_links, caps, &mut flow_rates);
        let mut k = 0;
        for (c, &m) in mult.iter().enumerate() {
            for _ in 0..m {
                assert_eq!(
                    class_rates[c].to_bits(),
                    flow_rates[k].to_bits(),
                    "class {c} vs expanded flow {k}: {} vs {}",
                    class_rates[c],
                    flow_rates[k]
                );
                k += 1;
            }
        }
    }

    #[test]
    fn class_solver_matches_flow_solver_on_shared_bottleneck() {
        // Two classes over a shared link plus private tails; weights 3 and 2.
        assert_classes_match_flows(
            &[vec![0, 1], vec![0, 2], vec![2]],
            &[3, 2, 4],
            &[10.0, 100.0, 7.0],
        );
    }

    #[test]
    fn class_solver_matches_flow_solver_with_empty_routes_and_unit_weights() {
        assert_classes_match_flows(
            &[vec![], vec![0], vec![0, 1], vec![1]],
            &[2, 1, 1, 1],
            &[4.0, 6.0],
        );
    }

    #[test]
    fn class_solver_matches_flow_solver_on_mixed_magnitudes() {
        assert_classes_match_flows(
            &[vec![0, 1], vec![1, 2], vec![0, 2], vec![1]],
            &[7, 1, 13, 2],
            &[1e-6, 3.0e6, 7.5e-3],
        );
    }

    #[test]
    fn class_solver_scratch_reuse_is_clean() {
        let offsets = [(0u32, 2u32), (2, 1)];
        let links = [0u32, 1, 0];
        let caps = [9.0, 3.0];
        let mult = [2u32, 5];
        let mut scratch = FairScratch::default();
        let mut a = Vec::new();
        scratch.solve_classes(&offsets, &links, &caps, &mult, &mut a);
        let mut b = Vec::new();
        scratch.solve_classes(&offsets, &links, &caps, &mult, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn flat_solver_matches_wrapper() {
        let routes = vec![vec![0usize, 1], vec![0], vec![1], vec![]];
        let caps = [4.0, 6.0];
        let via_wrapper = max_min_fair(&routes, &caps);
        let offsets = [(0u32, 2u32), (2, 1), (3, 1), (4, 0)];
        let links_flat = [0u32, 1, 0, 1];
        let mut scratch = FairScratch::default();
        let mut rates = Vec::new();
        scratch.solve(&offsets, &links_flat, &caps, &mut rates);
        assert_eq!(via_wrapper, rates);
        // Scratch reuse must not leak state between solves.
        scratch.solve(&offsets, &links_flat, &caps, &mut rates);
        assert_eq!(via_wrapper, rates);
    }
}
