//! Property-based tests of the kernel itself: randomized workloads must
//! run deterministically, conserve their accounting, and never lose or
//! duplicate messages.

use grads_sim::prelude::*;
use grads_sim::process::mail_key;
use grads_sim::topology::GridBuilder;
use proptest::prelude::*;

/// A randomized program: per process, a short script of operations.
#[derive(Debug, Clone)]
enum Op {
    Compute(u32),
    Sleep(u32),
    SendTo(u8, u32),
    RecvFrom(u8),
}

fn op_strategy(nprocs: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..2000).prop_map(Op::Compute),
        (1u32..50).prop_map(Op::Sleep),
        ((0..nprocs), 1u32..100_000).prop_map(|(p, b)| Op::SendTo(p, b)),
        (0..nprocs).prop_map(Op::RecvFrom),
    ]
}

/// Scripts with matched send/recv pairs so nothing deadlocks: we build
/// random scripts, then *derive* the receive schedule from the sends.
fn workload() -> impl Strategy<Value = (u8, Vec<Vec<Op>>)> {
    (2u8..5).prop_flat_map(|n| {
        let scripts =
            proptest::collection::vec(proptest::collection::vec(op_strategy(n), 0..8), n as usize);
        (Just(n), scripts)
    })
}

/// Sanitize scripts: drop Recv ops (unmatched) and instead append, for
/// every send (src → dst), a receive on dst's script. Sends become eager
/// so senders never block.
fn sanitize(n: u8, scripts: &[Vec<Op>]) -> Vec<Vec<Op>> {
    let mut out: Vec<Vec<Op>> = scripts
        .iter()
        .map(|s| {
            s.iter()
                .filter(|o| !matches!(o, Op::RecvFrom(_)))
                .cloned()
                .collect()
        })
        .collect();
    let mut recvs: Vec<Vec<Op>> = vec![Vec::new(); n as usize];
    for (src, script) in out.iter().enumerate() {
        for op in script {
            if let Op::SendTo(dst, _) = op {
                recvs[*dst as usize].push(Op::RecvFrom(src as u8));
            }
        }
    }
    for (p, r) in recvs.into_iter().enumerate() {
        out[p].extend(r);
    }
    out
}

fn run_workload(n: u8, scripts: &[Vec<Op>]) -> (Vec<(f64, f64)>, f64, Vec<f64>) {
    let mut b = GridBuilder::new();
    let c = b.cluster("X");
    b.local_link(c, 1e6, 1e-3);
    let hosts = b.add_hosts(c, n as usize, &HostSpec::with_speed(1e4));
    let mut eng = Engine::new(b.build().unwrap());
    for (p, script) in scripts.iter().enumerate() {
        let script = script.clone();
        let hostv = hosts.clone();
        let me = p;
        eng.spawn(&format!("p{p}"), hosts[p], move |ctx| {
            // Per-(src,dst) sequence numbers keep mailbox keys unique.
            let mut send_seq = vec![0u64; hostv.len()];
            let mut recv_seq = vec![0u64; hostv.len()];
            for op in &script {
                match op {
                    Op::Compute(f) => ctx.compute(*f as f64),
                    Op::Sleep(s) => ctx.sleep(*s as f64 * 0.1),
                    Op::SendTo(d, bytes) => {
                        let d = *d as usize;
                        let key = mail_key(&[me as u64, d as u64, send_seq[d]]);
                        send_seq[d] += 1;
                        ctx.isend(key, hostv[d], *bytes as f64, Box::new(me as u64));
                    }
                    Op::RecvFrom(s) => {
                        let s = *s as usize;
                        let key = mail_key(&[s as u64, me as u64, recv_seq[s]]);
                        recv_seq[s] += 1;
                        let v = ctx.recv(key);
                        let got = *v.downcast::<u64>().expect("payload type");
                        assert_eq!(got as usize, s);
                    }
                }
            }
            let t = ctx.now();
            ctx.trace("done", t);
        });
    }
    let r = eng.run();
    assert!(
        r.unfinished.is_empty(),
        "sanitized workload must not deadlock: {:?}",
        r.unfinished
    );
    (r.trace.series("done"), r.end_time, r.host_flops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same workload run twice produces bit-identical results.
    #[test]
    fn engine_is_deterministic((n, scripts) in workload()) {
        let scripts = sanitize(n, &scripts);
        let a = run_workload(n, &scripts);
        let b = run_workload(n, &scripts);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// Flop accounting exactly matches the work submitted.
    #[test]
    fn flops_conserved((n, scripts) in workload()) {
        let scripts = sanitize(n, &scripts);
        let (_, _, host_flops) = run_workload(n, &scripts);
        let submitted: f64 = scripts
            .iter()
            .flatten()
            .map(|op| match op {
                Op::Compute(f) => *f as f64,
                _ => 0.0,
            })
            .sum();
        let executed: f64 = host_flops.iter().sum();
        prop_assert!(
            (executed - submitted).abs() < 1e-6 * submitted.max(1.0),
            "submitted {} executed {}", submitted, executed
        );
    }

    /// Virtual time never runs backwards in the trace.
    #[test]
    fn trace_times_monotone((n, scripts) in workload()) {
        let scripts = sanitize(n, &scripts);
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        let hosts = b.add_hosts(c, n as usize, &HostSpec::with_speed(1e4));
        let mut eng = Engine::new(b.build().unwrap());
        for (p, script) in scripts.iter().enumerate() {
            let script = script.clone();
            let hostv = hosts.clone();
            eng.spawn(&format!("p{p}"), hosts[p], move |ctx| {
                let mut seq = 0u64;
                for op in &script {
                    match op {
                        Op::Compute(f) => ctx.compute(*f as f64),
                        Op::Sleep(s) => ctx.sleep(*s as f64 * 0.1),
                        Op::SendTo(d, bytes) => {
                            let key = mail_key(&[p as u64, *d as u64, seq, 0xAA]);
                            seq += 1;
                            ctx.isend(key, hostv[*d as usize], *bytes as f64, Box::new(0u8));
                        }
                        Op::RecvFrom(_) => {}
                    }
                    let t = ctx.now();
                    ctx.trace("tick", t);
                }
            });
        }
        let r = eng.run();
        let mut last = 0.0;
        for rec in &r.trace.records {
            prop_assert!(rec.t >= last - 1e-12);
            last = rec.t;
        }
    }
}

/// The shrunk input recorded in `prop_engine.proptest-regressions`,
/// reified as an explicit test: the vendored proptest shim does not replay
/// regression files, so the historical failure case is pinned here
/// directly (seed `cc 925c06127dedfae90e75ab562...`).
#[test]
fn regression_shrunk_mixed_workload() {
    let n = 3u8;
    let scripts = vec![
        vec![Op::Sleep(4)],
        vec![
            Op::Compute(206),
            Op::Compute(1746),
            Op::Compute(1452),
            Op::RecvFrom(1),
            Op::Compute(1645),
        ],
        vec![
            Op::SendTo(1, 36288),
            Op::SendTo(2, 60724),
            Op::RecvFrom(2),
            Op::SendTo(0, 69372),
            Op::Sleep(38),
            Op::Compute(1506),
            Op::Sleep(36),
        ],
    ];
    let scripts = sanitize(n, &scripts);
    // Deterministic: two runs agree bit for bit.
    let a = run_workload(n, &scripts);
    let b = run_workload(n, &scripts);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    // Flop accounting matches the submitted work.
    let submitted: f64 = scripts
        .iter()
        .flatten()
        .map(|op| match op {
            Op::Compute(f) => *f as f64,
            _ => 0.0,
        })
        .sum();
    let executed: f64 = a.2.iter().sum();
    assert!(
        (executed - submitted).abs() < 1e-6 * submitted.max(1.0),
        "submitted {submitted} executed {executed}"
    );
    // Trace times monotone within the run.
    let mut last = 0.0;
    for &(t, _) in &a.0 {
        assert!(t >= last - 1e-12);
        last = t;
    }
}
