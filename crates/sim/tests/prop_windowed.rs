//! Property-based determinism pin for the windowed (conservative parallel)
//! kernel: randomized cross-cluster workloads must produce byte-identical
//! results under the serial kernel and under windowed execution at 1 vs N
//! workers — traces, flops, bytes, end time and observability snapshots
//! included. This is the property level of the three-level pin (unit:
//! `engine::tests`, end-to-end: `tests/substrate_determinism.rs`).

use grads_sim::engine::Engine;
use grads_sim::prelude::*;
use grads_sim::process::mail_key;
use grads_sim::topology::GridBuilder;
use proptest::prelude::*;

/// A randomized program: per process, a short script of operations. Sends
/// target processes on *other clusters* often enough that cross-partition
/// events (the windowed kernel's hard case) dominate.
#[derive(Debug, Clone)]
enum Op {
    Compute(u32),
    Sleep(u32),
    SendTo(u8, u32),
    RecvFrom(u8),
}

fn op_strategy(nprocs: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..2000).prop_map(Op::Compute),
        (1u32..40).prop_map(Op::Sleep),
        ((0..nprocs), 1u32..200_000).prop_map(|(p, b)| Op::SendTo(p, b)),
        (0..nprocs).prop_map(Op::RecvFrom),
    ]
}

/// `(clusters, procs, scripts, load windows)` — enough shape variety to hit
/// 2–4 partitions with different WAN latencies per case.
type Workload = (u8, u8, Vec<Vec<Op>>, Vec<(u8, u32, u32, u32)>);

fn workload() -> impl Strategy<Value = Workload> {
    (2u8..5, 3u8..7).prop_flat_map(|(nclusters, nprocs)| {
        let scripts = proptest::collection::vec(
            proptest::collection::vec(op_strategy(nprocs), 0..8),
            nprocs as usize,
        );
        let loads = proptest::collection::vec((0..nprocs, 0u32..40, 1u32..30, 1u32..30), 0..4);
        (Just(nclusters), Just(nprocs), scripts, loads)
    })
}

/// Drop unmatched receives, then append a receive on every send's target —
/// same sanitation as `prop_engine.rs`, so nothing deadlocks.
fn sanitize(n: u8, scripts: &[Vec<Op>]) -> Vec<Vec<Op>> {
    let mut out: Vec<Vec<Op>> = scripts
        .iter()
        .map(|s| {
            s.iter()
                .filter(|o| !matches!(o, Op::RecvFrom(_)))
                .cloned()
                .collect()
        })
        .collect();
    let mut recvs: Vec<Vec<Op>> = vec![Vec::new(); n as usize];
    for (src, script) in out.iter().enumerate() {
        for op in script {
            if let Op::SendTo(dst, _) = op {
                recvs[*dst as usize].push(Op::RecvFrom(src as u8));
            }
        }
    }
    for (p, r) in recvs.into_iter().enumerate() {
        out[p].extend(r);
    }
    out
}

/// Run one sanitized workload under a kernel mode, returning the full run
/// report plus a rendered observability snapshot (the byte-identity side
/// channel the paper's monitoring motivation asks for).
fn run_workload(
    nclusters: u8,
    scripts: &[Vec<Op>],
    loads: &[(u8, u32, u32, u32)],
    kernel: KernelMode,
    policy: WindowPolicy,
) -> (RunReport, String) {
    let mut b = GridBuilder::new();
    let mut hosts = Vec::new();
    let mut cids = Vec::new();
    for c in 0..nclusters {
        let cid = b.cluster(&format!("C{c}"));
        b.local_link(cid, 1e7, 1e-4);
        hosts.extend(b.add_hosts(cid, 2, &HostSpec::with_speed(1e4)));
        cids.push(cid);
    }
    // A WAN ring with distinct latencies, plus one chord when possible, so
    // the minimum-latency lookahead derivation has something to minimise.
    for c in 0..nclusters as usize {
        let next = (c + 1) % nclusters as usize;
        b.connect(cids[c], cids[next], 5e6, 0.01 + 0.005 * c as f64);
    }
    if nclusters >= 3 {
        b.connect(cids[0], cids[2], 2e6, 0.04);
    }
    let mut eng = Engine::new(b.build().unwrap());
    eng.apply_tune(EngineTune {
        kernel,
        ..Default::default()
    });
    eng.set_window_policy(policy);
    let obs = grads_obs::Obs::enabled();
    eng.set_obs(obs.clone());
    for &(p, start, len, amount) in loads {
        let host = hosts[p as usize % hosts.len()];
        let t0 = start as f64 * 0.1;
        eng.add_load_window(host, t0, Some(t0 + len as f64 * 0.1), amount as f64 * 0.1);
    }
    for (p, script) in scripts.iter().enumerate() {
        let script = script.clone();
        // Processes round-robin over the flattened host list (two hosts
        // per cluster), so sends routinely cross partitions.
        let hostv: Vec<HostId> = (0..scripts.len()).map(|q| hosts[q % hosts.len()]).collect();
        let me = p;
        eng.spawn(&format!("p{p}"), hostv[p], move |ctx| {
            let mut send_seq = vec![0u64; hostv.len()];
            let mut recv_seq = vec![0u64; hostv.len()];
            for op in &script {
                match op {
                    Op::Compute(f) => ctx.compute(*f as f64),
                    Op::Sleep(s) => ctx.sleep(*s as f64 * 0.1),
                    Op::SendTo(d, bytes) => {
                        let d = *d as usize;
                        let key = mail_key(&[me as u64, d as u64, send_seq[d]]);
                        send_seq[d] += 1;
                        ctx.isend(key, hostv[d], *bytes as f64, Box::new(me as u64));
                    }
                    Op::RecvFrom(s) => {
                        let s = *s as usize;
                        let key = mail_key(&[s as u64, me as u64, recv_seq[s]]);
                        recv_seq[s] += 1;
                        let _ = ctx.recv(key);
                    }
                }
            }
            let t = ctx.now();
            ctx.trace("done", t);
        });
    }
    let r = eng.run();
    assert!(
        r.unfinished.is_empty(),
        "sanitized workload must not deadlock: {:?}",
        r.unfinished
    );
    (r, format!("{:?}", obs.snapshot()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serial vs windowed, and windowed at 1 vs N workers (pool dispatch
    /// forced so the concurrent paths really execute): the full run report
    /// is byte-identical everywhere, and the observability snapshot is
    /// byte-identical across worker counts.
    #[test]
    fn windowed_kernel_is_worker_count_invariant(
        (nclusters, nprocs, scripts, loads) in workload()
    ) {
        let scripts = sanitize(nprocs, &scripts);
        let force = WindowPolicy {
            force_parallel: true,
            min_parallel_drain: 0,
            min_parallel_accrual: 0,
            ..WindowPolicy::default()
        };
        let (serial, _) = run_workload(
            nclusters, &scripts, &loads, KernelMode::Serial, WindowPolicy::default());
        let (w1, snap1) = run_workload(
            nclusters, &scripts, &loads, KernelMode::Windowed { workers: 1 },
            WindowPolicy::default());
        let (w4, snap4) = run_workload(
            nclusters, &scripts, &loads, KernelMode::Windowed { workers: 4 }, force);
        prop_assert_eq!(&serial, &w1, "serial vs windowed(1)");
        prop_assert_eq!(&serial, &w4, "serial vs windowed(4, forced pool)");
        // Worker count may not leak into observability either: window
        // planning is worker-count-independent by construction.
        prop_assert_eq!(snap1, snap4, "obs snapshots at 1 vs 4 workers");
    }
}
