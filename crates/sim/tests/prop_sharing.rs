//! Property-based tests of the fluid resource-sharing models.

use grads_sim::sharing::{cpu_share, max_min_fair, FairScratch};
use proptest::prelude::*;

/// Strategy: a random flow/link configuration.
fn config() -> impl Strategy<Value = (Vec<Vec<usize>>, Vec<f64>)> {
    (2usize..6).prop_flat_map(|nl| {
        let links = proptest::collection::vec(1.0f64..100.0, nl);
        let flows = proptest::collection::vec(
            proptest::collection::btree_set(0..nl, 1..=nl.min(3))
                .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
            1..8,
        );
        (flows, links)
    })
}

proptest! {
    /// No link is ever oversubscribed.
    #[test]
    fn maxmin_conserves_capacity((routes, caps) in config()) {
        let rates = max_min_fair(&routes, &caps);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = routes
                .iter()
                .zip(&rates)
                .filter(|(r, _)| r.contains(&l))
                .map(|(_, &x)| x)
                .sum();
            prop_assert!(used <= cap * (1.0 + 1e-6), "link {l}: {used} > {cap}");
        }
    }

    /// Every flow gets a strictly positive rate.
    #[test]
    fn maxmin_rates_positive((routes, caps) in config()) {
        let rates = max_min_fair(&routes, &caps);
        for (f, &r) in rates.iter().enumerate() {
            prop_assert!(r > 0.0, "flow {f} starved");
        }
    }

    /// Max-min property: every flow crosses at least one (nearly)
    /// saturated link — otherwise its rate could still grow.
    #[test]
    fn maxmin_every_flow_bottlenecked((routes, caps) in config()) {
        let rates = max_min_fair(&routes, &caps);
        let used: Vec<f64> = (0..caps.len())
            .map(|l| {
                routes
                    .iter()
                    .zip(&rates)
                    .filter(|(r, _)| r.contains(&l))
                    .map(|(_, &x)| x)
                    .sum()
            })
            .collect();
        for (f, route) in routes.iter().enumerate() {
            let bottlenecked = route
                .iter()
                .any(|&l| used[l] >= caps[l] * (1.0 - 1e-6));
            prop_assert!(bottlenecked, "flow {f} has slack everywhere");
        }
    }

    /// Adding flows never increases anyone's share (population
    /// monotonicity on a single link).
    #[test]
    fn single_link_share_monotone(n in 1usize..20, cap in 1.0f64..1000.0) {
        let routes_n: Vec<Vec<usize>> = (0..n).map(|_| vec![0]).collect();
        let routes_n1: Vec<Vec<usize>> = (0..=n).map(|_| vec![0]).collect();
        let r_n = max_min_fair(&routes_n, &[cap]);
        let r_n1 = max_min_fair(&routes_n1, &[cap]);
        prop_assert!(r_n1[0] <= r_n[0] + 1e-9);
    }

    /// Capacity conservation under adversarial magnitudes: capacities
    /// spanning ~21 orders of magnitude on the same route used to be able
    /// to defeat the old absolute-epsilon saturation test (which then hit
    /// a "fix everything at current rates" fallback that could leave links
    /// oversubscribed or flows without a saturated bottleneck). The
    /// hardened fix-point — relative-to-original-capacity saturation plus
    /// forcing the argmin link saturated each round — must conserve every
    /// link's capacity, keep all rates finite and positive, and bottleneck
    /// every flow.
    #[test]
    fn maxmin_conserves_capacity_wild_magnitudes(
        (routes, caps) in (3usize..8).prop_flat_map(|nl| {
            let links = proptest::collection::vec(
                prop_oneof![
                    1e-9f64..1e-3,
                    0.5f64..2e3,
                    1e6f64..1e12,
                ],
                nl,
            );
            let flows = proptest::collection::vec(
                proptest::collection::btree_set(0..nl, 1..=nl)
                    .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
                1..12,
            );
            (flows, links)
        })
    ) {
        let rates = max_min_fair(&routes, &caps);
        let used: Vec<f64> = (0..caps.len())
            .map(|l| {
                routes
                    .iter()
                    .zip(&rates)
                    .filter(|(r, _)| r.contains(&l))
                    .map(|(_, &x)| x)
                    .sum()
            })
            .collect();
        for (l, &cap) in caps.iter().enumerate() {
            prop_assert!(used[l] <= cap * (1.0 + 1e-6), "link {l}: {} > {cap}", used[l]);
        }
        for (f, route) in routes.iter().enumerate() {
            prop_assert!(rates[f].is_finite() && rates[f] > 0.0, "flow {f}: {}", rates[f]);
            let bottlenecked = route
                .iter()
                .any(|&l| used[l] >= caps[l] * (1.0 - 1e-6));
            prop_assert!(bottlenecked, "flow {f} has slack everywhere");
        }
    }

    /// The route-class aggregated solver is bit-identical to the per-flow
    /// reference: expanding each class to `mult` copies of its route and
    /// running [`FairScratch::solve`] yields the same `f64`s, bit for bit,
    /// over randomized route sets, multiplicities, and capacities spanning
    /// wild magnitudes. This is what licenses the kernel's O(classes)
    /// progressive filling on all-to-all traffic.
    #[test]
    fn class_solver_is_bitwise_equal_to_flow_solver(
        (routes, mult, caps) in (2usize..7).prop_flat_map(|nl| {
            let links = proptest::collection::vec(
                prop_oneof![
                    1e-6f64..1e-2,
                    0.5f64..2e3,
                    1e6f64..1e10,
                ],
                nl,
            );
            let classes = proptest::collection::vec(
                proptest::collection::btree_set(0..nl, 0..=nl.min(4))
                    .prop_map(|s| s.into_iter().map(|l| l as u32).collect::<Vec<_>>()),
                1..8,
            );
            (classes, links).prop_flat_map(|(classes, links)| {
                let n = classes.len();
                (
                    Just(classes),
                    proptest::collection::vec(1u32..9, n),
                    Just(links),
                )
            })
        })
    ) {
        let mut offsets = Vec::new();
        let mut links_flat = Vec::new();
        for r in &routes {
            offsets.push((links_flat.len() as u32, r.len() as u32));
            links_flat.extend_from_slice(r);
        }
        let mut f_offsets = Vec::new();
        let mut f_links = Vec::new();
        for (c, r) in routes.iter().enumerate() {
            for _ in 0..mult[c] {
                f_offsets.push((f_links.len() as u32, r.len() as u32));
                f_links.extend_from_slice(r);
            }
        }
        let mut scratch = FairScratch::default();
        let mut class_rates = Vec::new();
        scratch.solve_classes(&offsets, &links_flat, &caps, &mult, &mut class_rates);
        let mut flow_rates = Vec::new();
        scratch.solve(&f_offsets, &f_links, &caps, &mut flow_rates);
        let mut k = 0;
        for (c, &m) in mult.iter().enumerate() {
            for _ in 0..m {
                prop_assert_eq!(
                    class_rates[c].to_bits(),
                    flow_rates[k].to_bits(),
                    "class {} vs expanded flow {}: {} vs {}",
                    c, k, class_rates[c], flow_rates[k]
                );
                k += 1;
            }
        }
    }

    /// CPU share is bounded by one core and by an equal split of total
    /// capacity, and shrinks as load grows.
    #[test]
    fn cpu_share_bounds(
        speed in 1.0f64..1e10,
        cores in 1u32..8,
        n in 1usize..16,
        load in 0.0f64..16.0,
    ) {
        let s = cpu_share(speed, cores, n, load);
        prop_assert!(s <= speed * (1.0 + 1e-12));
        let total = s * n as f64;
        prop_assert!(total <= speed * cores as f64 * (1.0 + 1e-9));
        let s_more_load = cpu_share(speed, cores, n, load + 1.0);
        prop_assert!(s_more_load <= s + 1e-9);
    }
}
