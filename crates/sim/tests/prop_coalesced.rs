//! Property-based determinism pin for coalesced rate recomputation: under
//! randomized same-timestamp churn bursts — collective-style multi-flow
//! send bursts, load inject/remove pairs, compute storms — deferring the
//! rate solve to the end of each virtual instant
//! ([`RecomputeTiming::Coalesced`]) must reproduce the eager reference bit
//! for bit across all three recompute modes and both kernel modes. This is
//! the property level of the three-level pin (unit: `engine::tests`,
//! end-to-end: `tests/substrate_determinism.rs`); the route-class solver
//! equivalence has its own pin in `prop_sharing.rs`.

use grads_sim::engine::Engine;
use grads_sim::prelude::*;
use grads_sim::process::mail_key;
use grads_sim::topology::GridBuilder;
use proptest::prelude::*;

/// One step of a randomized process script. `SendBurst` issues several
/// non-blocking sends back to back with zero virtual time between them —
/// the binomial-collective shape whose same-instant `FlowActivate` burst
/// coalesced timing collapses into one solve. `LoadPulse` injects and
/// immediately removes external load (two same-instant churns). All
/// processes also start at t = 0, so the run opens on a compute storm.
#[derive(Debug, Clone)]
enum Op {
    Compute(u32),
    Sleep(u32),
    SendBurst(Vec<(u8, u32)>),
    LoadPulse(u8, u32),
    RecvFrom(u8),
}

fn op_strategy(nprocs: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..1500).prop_map(Op::Compute),
        (1u32..30).prop_map(Op::Sleep),
        proptest::collection::vec(((0..nprocs), 1u32..150_000), 1..6).prop_map(Op::SendBurst),
        ((0..nprocs), 1u32..30).prop_map(|(h, a)| Op::LoadPulse(h, a)),
    ]
}

/// `(clusters, procs, scripts)` — 2–4 clusters so WAN routes are shared and
/// send bursts pile onto common links.
type Workload = (u8, u8, Vec<Vec<Op>>);

fn workload() -> impl Strategy<Value = Workload> {
    (2u8..5, 3u8..7).prop_flat_map(|(nclusters, nprocs)| {
        let scripts = proptest::collection::vec(
            proptest::collection::vec(op_strategy(nprocs), 0..7),
            nprocs as usize,
        );
        (Just(nclusters), Just(nprocs), scripts)
    })
}

/// Append a matching receive on every burst-send's target so nothing
/// deadlocks (same sanitation idea as `prop_windowed.rs`).
fn sanitize(n: u8, scripts: &[Vec<Op>]) -> Vec<Vec<Op>> {
    let mut out: Vec<Vec<Op>> = scripts.to_vec();
    let mut recvs: Vec<Vec<Op>> = vec![Vec::new(); n as usize];
    for (src, script) in out.iter().enumerate() {
        for op in script {
            if let Op::SendBurst(sends) = op {
                for (dst, _) in sends {
                    recvs[*dst as usize].push(Op::RecvFrom(src as u8));
                }
            }
        }
    }
    for (p, r) in recvs.into_iter().enumerate() {
        out[p].extend(r);
    }
    out
}

fn run_workload(
    nclusters: u8,
    scripts: &[Vec<Op>],
    mode: RecomputeMode,
    kernel: KernelMode,
    timing: RecomputeTiming,
) -> RunReport {
    let mut b = GridBuilder::new();
    let mut hosts = Vec::new();
    let mut cids = Vec::new();
    for c in 0..nclusters {
        let cid = b.cluster(&format!("C{c}"));
        b.local_link(cid, 1e7, 1e-4);
        hosts.extend(b.add_hosts(cid, 2, &HostSpec::with_speed(1e4)));
        cids.push(cid);
    }
    for c in 0..nclusters as usize {
        let next = (c + 1) % nclusters as usize;
        b.connect(cids[c], cids[next], 5e6, 0.01 + 0.005 * c as f64);
    }
    let mut eng = Engine::new(b.build().unwrap());
    eng.set_recompute_mode(mode);
    eng.apply_tune(EngineTune {
        kernel,
        recompute: timing,
        ..Default::default()
    });
    for (p, script) in scripts.iter().enumerate() {
        let script = script.clone();
        let hostv: Vec<HostId> = (0..scripts.len()).map(|q| hosts[q % hosts.len()]).collect();
        let me = p;
        eng.spawn(&format!("p{p}"), hostv[p], move |ctx| {
            // Flat per-(src → dst) sequence numbers keep mail keys
            // collision-free; the burst structure never enters the key.
            let mut send_seq = vec![0u64; hostv.len()];
            let mut recv_seq = vec![0u64; hostv.len()];
            for op in &script {
                match op {
                    Op::Compute(f) => ctx.compute(*f as f64),
                    Op::Sleep(s) => ctx.sleep(*s as f64 * 0.1),
                    Op::SendBurst(sends) => {
                        // Consecutive non-blocking sends: zero virtual time
                        // elapses between them, so their flow churn lands at
                        // one instant.
                        for (d, bytes) in sends {
                            let d = *d as usize;
                            let key = mail_key(&[me as u64, d as u64, send_seq[d]]);
                            send_seq[d] += 1;
                            ctx.isend(key, hostv[d], *bytes as f64, Box::new(me as u64));
                        }
                    }
                    Op::LoadPulse(h, amount) => {
                        let host = hostv[*h as usize];
                        ctx.inject_load(host, *amount as f64 * 0.1);
                        ctx.remove_load(host, *amount as f64 * 0.1);
                    }
                    Op::RecvFrom(s) => {
                        let s = *s as usize;
                        let key = mail_key(&[s as u64, me as u64, recv_seq[s]]);
                        recv_seq[s] += 1;
                        let _ = ctx.recv(key);
                    }
                }
            }
            let t = ctx.now();
            ctx.trace("done", t);
        });
    }
    eng.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Eager vs coalesced timing is bit-identical — trace, flops, bytes and
    /// end time — for every recompute mode under both kernels.
    #[test]
    fn coalesced_timing_is_unobservable(
        (nclusters, nprocs, scripts) in workload()
    ) {
        let scripts = sanitize(nprocs, &scripts);
        for mode in [
            RecomputeMode::Legacy,
            RecomputeMode::Full,
            RecomputeMode::Incremental,
        ] {
            for kernel in [KernelMode::Serial, KernelMode::Windowed { workers: 2 }] {
                let eager = run_workload(
                    nclusters, &scripts, mode, kernel, RecomputeTiming::Eager);
                let coalesced = run_workload(
                    nclusters, &scripts, mode, kernel, RecomputeTiming::Coalesced);
                prop_assert_eq!(&eager.end_time, &coalesced.end_time,
                    "{:?}/{:?}: end_time", mode, kernel);
                prop_assert_eq!(&eager.trace, &coalesced.trace,
                    "{:?}/{:?}: trace", mode, kernel);
                prop_assert_eq!(&eager.host_flops, &coalesced.host_flops,
                    "{:?}/{:?}: host_flops", mode, kernel);
                prop_assert_eq!(&eager.link_bytes, &coalesced.link_bytes,
                    "{:?}/{:?}: link_bytes", mode, kernel);
                prop_assert_eq!(&eager, &coalesced, "{:?}/{:?}: full report", mode, kernel);
            }
        }
    }
}
