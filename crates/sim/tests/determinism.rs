//! Kernel determinism gate for the incremental rate-recomputation path.
//!
//! The scenario deliberately mixes everything the kernel models: multi-host
//! compute on heterogeneous clusters, cross-cluster sends over shared WAN
//! links, injected external load windows, and one mid-run host failure that
//! kills processes while their flows are in flight. Two independent runs
//! must agree bit for bit, and the scoped/dirty-set modes must reproduce
//! the scope-everything reference exactly.

use grads_sim::prelude::*;

/// Build and run the mixed fault scenario under the given recompute mode.
fn scenario(mode: RecomputeMode) -> RunReport {
    scenario_full(mode, CompactionPolicy::default(), EngineTune::default())
}

/// Same scenario, with an explicit heap-compaction policy.
fn scenario_with(mode: RecomputeMode, policy: CompactionPolicy) -> RunReport {
    scenario_full(mode, policy, EngineTune::default())
}

/// Same scenario, with explicit substrate tuning (transport + event queue).
fn scenario_tuned(mode: RecomputeMode, tune: EngineTune) -> RunReport {
    scenario_full(mode, CompactionPolicy::default(), tune)
}

fn scenario_full(mode: RecomputeMode, policy: CompactionPolicy, tune: EngineTune) -> RunReport {
    let mut b = GridBuilder::new();
    let mut clusters = Vec::new();
    let mut hosts = Vec::new();
    for c in 0..3u32 {
        let cl = b.cluster(&format!("C{c}"));
        b.local_link(cl, 1.0e6, 1.0e-3);
        let spec = HostSpec {
            speed: 100.0 * (c + 1) as f64,
            cores: 2,
            ..Default::default()
        };
        hosts.extend(b.add_hosts(cl, 3, &spec));
        clusters.push(cl);
    }
    b.connect(clusters[0], clusters[1], 4.0e5, 30e-3);
    b.connect(clusters[1], clusters[2], 2.5e5, 45e-3);
    b.connect(clusters[0], clusters[2], 1.5e5, 60e-3);

    let mut eng = Engine::new(b.build().unwrap());
    eng.set_recompute_mode(mode);
    eng.set_compaction_policy(policy);
    eng.apply_tune(tune);
    eng.panic_on_failure = false;
    // External load competing with the workers' compute actions.
    eng.add_load_window(hosts[0], 0.5, Some(3.0), 1.5);
    eng.add_load_window(hosts[4], 1.0, None, 0.75);
    // One host dies mid-run: at t = 1.2 its worker is blocked in a WAN
    // send with the flow still in flight and its receiver is parked in
    // `recv`, so the failure hits compute and communication mid-stride.
    eng.fail_host_at(hosts[7], 1.2);

    for i in 0..9usize {
        let src = hosts[i];
        let dst = hosts[(i + 3) % 9];
        let key = mail_key(&[100 + i as u64]);
        eng.spawn(&format!("w{i}"), src, move |ctx| {
            ctx.compute(60.0 + 15.0 * i as f64);
            ctx.send(key, dst, 5.0e4 * ((i % 3) + 1) as f64, Box::new(i));
            ctx.compute(40.0);
            let t = ctx.now();
            ctx.trace("w_done", t);
        });
        // The receiver lives on the destination host of the matching sender.
        let rkey = mail_key(&[100 + ((i + 6) % 9) as u64]);
        eng.spawn(&format!("r{i}"), src, move |ctx| {
            let _ = ctx.recv(rkey);
            ctx.compute(25.0 + 5.0 * i as f64);
            let t = ctx.now();
            ctx.trace("r_done", t);
        });
    }
    eng.run()
}

/// Two runs of the same scenario are bit-identical: same `end_time`, same
/// trace (f64 timestamps compared bitwise), same per-host flops and
/// per-link bytes.
#[test]
fn two_runs_are_bit_identical() {
    for mode in [
        RecomputeMode::Legacy,
        RecomputeMode::Full,
        RecomputeMode::Incremental,
    ] {
        let a = scenario(mode);
        let b = scenario(mode);
        assert_eq!(a.end_time, b.end_time, "{mode:?}: end_time");
        assert_eq!(a.trace, b.trace, "{mode:?}: trace");
        assert_eq!(a.host_flops, b.host_flops, "{mode:?}: host_flops");
        assert_eq!(a.link_bytes, b.link_bytes, "{mode:?}: link_bytes");
        assert_eq!(a, b, "{mode:?}: full report");
    }
}

/// The dirty-set incremental path reproduces the scope-everything reference
/// exactly, including under load injection and a mid-run host failure.
#[test]
fn incremental_matches_full_bitwise_under_faults() {
    let inc = scenario(RecomputeMode::Incremental);
    let full = scenario(RecomputeMode::Full);
    assert_eq!(inc, full);
}

/// Against the pre-change global recompute the results agree to tolerance:
/// the legacy path re-stamps every action on every event, which only
/// changes *when* floating-point accrual is chunked, never the totals.
#[test]
fn incremental_matches_legacy_to_tolerance() {
    let inc = scenario(RecomputeMode::Incremental);
    let leg = scenario(RecomputeMode::Legacy);
    assert_eq!(inc.completed, leg.completed);
    assert_eq!(inc.died, leg.died);
    assert_eq!(inc.unfinished, leg.unfinished);
    assert_eq!(inc.events_processed, leg.events_processed);
    assert!(
        (inc.end_time - leg.end_time).abs() <= 1e-6 * leg.end_time.max(1.0),
        "end_time: inc {} leg {}",
        inc.end_time,
        leg.end_time
    );
    for (x, y) in inc.host_flops.iter().zip(&leg.host_flops) {
        assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0));
    }
    for (x, y) in inc.link_bytes.iter().zip(&leg.link_bytes) {
        assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0));
    }
}

/// Heap compaction is a pure heap rebuild: any policy — the default, never
/// compacting, or compacting at every opportunity — must produce
/// bit-identical results (end time, trace, totals, events processed). Only
/// the stale-discard bookkeeping may differ, and in the expected
/// direction: never-compact pops every stale event individually.
#[test]
fn compaction_policy_does_not_perturb_results() {
    let mode = RecomputeMode::Incremental;
    let baseline = scenario_with(mode, CompactionPolicy::default());
    let never = scenario_with(mode, CompactionPolicy::never());
    let eager = scenario_with(
        mode,
        CompactionPolicy {
            min_stale: 0,
            min_stale_fraction: 0.0,
        },
    );
    for (label, r) in [("never", &never), ("eager", &eager)] {
        assert_eq!(baseline.end_time, r.end_time, "{label}: end_time");
        assert_eq!(baseline.trace, r.trace, "{label}: trace");
        assert_eq!(baseline.host_flops, r.host_flops, "{label}: host_flops");
        assert_eq!(baseline.link_bytes, r.link_bytes, "{label}: link_bytes");
        assert_eq!(
            baseline.events_processed, r.events_processed,
            "{label}: events_processed"
        );
        assert_eq!(baseline.completed, r.completed, "{label}: completed");
        assert_eq!(baseline.died, r.died, "{label}: died");
    }
}

/// The direct (single-slot rendezvous) handoff and the seed channel
/// transport carry the same messages in the same order, so every recompute
/// mode must produce bit-identical reports across transports.
#[test]
fn direct_handoff_matches_channel_bitwise() {
    for mode in [
        RecomputeMode::Legacy,
        RecomputeMode::Full,
        RecomputeMode::Incremental,
    ] {
        let direct = scenario_tuned(
            mode,
            EngineTune {
                handoff: HandoffMode::Direct,
                ..Default::default()
            },
        );
        let channel = scenario_tuned(
            mode,
            EngineTune {
                handoff: HandoffMode::Channel,
                ..Default::default()
            },
        );
        assert_eq!(direct, channel, "{mode:?}: direct vs channel transport");
    }
}

/// The indexed (position-tracked) event queue and the seed heap+stale-mark
/// queue pop identical live-event sequences, so reports must be
/// bit-identical across queue modes too.
#[test]
fn indexed_queue_matches_stale_mark_bitwise() {
    for mode in [
        RecomputeMode::Legacy,
        RecomputeMode::Full,
        RecomputeMode::Incremental,
    ] {
        let indexed = scenario_tuned(
            mode,
            EngineTune {
                queue: EventQueueMode::Indexed,
                ..Default::default()
            },
        );
        let stale = scenario_tuned(
            mode,
            EngineTune {
                queue: EventQueueMode::StaleMark,
                ..Default::default()
            },
        );
        assert_eq!(indexed, stale, "{mode:?}: indexed vs stale-mark queue");
    }
}

/// Full 2×2 substrate matrix (transport × queue) agrees bitwise — the seed
/// configuration (channel + stale-mark) and the new default (direct +
/// indexed) included.
#[test]
fn substrate_matrix_is_bit_identical() {
    let baseline = scenario_tuned(RecomputeMode::Incremental, EngineTune::default());
    for handoff in [HandoffMode::Channel, HandoffMode::Direct] {
        for queue in [EventQueueMode::StaleMark, EventQueueMode::Indexed] {
            let r = scenario_tuned(
                RecomputeMode::Incremental,
                EngineTune {
                    handoff,
                    queue,
                    ..Default::default()
                },
            );
            assert_eq!(baseline, r, "{handoff:?} + {queue:?}");
        }
    }
}

/// Coalesced recomputation — deferring the rate solve to the end of each
/// virtual instant — must be unobservable: for every recompute mode the
/// full report matches the eager reference bit for bit, under load
/// injection and the mid-run host failure.
#[test]
fn coalesced_matches_eager_bitwise_across_modes() {
    for mode in [
        RecomputeMode::Legacy,
        RecomputeMode::Full,
        RecomputeMode::Incremental,
    ] {
        let eager = scenario_tuned(
            mode,
            EngineTune {
                recompute: RecomputeTiming::Eager,
                ..Default::default()
            },
        );
        let coalesced = scenario_tuned(
            mode,
            EngineTune {
                recompute: RecomputeTiming::Coalesced,
                ..Default::default()
            },
        );
        assert_eq!(eager, coalesced, "{mode:?}: eager vs coalesced timing");
    }
}

/// Coalesced timing composed with the rest of the substrate matrix
/// (transport × queue) still reproduces the default-tune reference.
#[test]
fn coalesced_substrate_matrix_is_bit_identical() {
    let baseline = scenario_tuned(RecomputeMode::Incremental, EngineTune::default());
    for handoff in [HandoffMode::Channel, HandoffMode::Direct] {
        for queue in [EventQueueMode::StaleMark, EventQueueMode::Indexed] {
            let r = scenario_tuned(
                RecomputeMode::Incremental,
                EngineTune {
                    handoff,
                    queue,
                    recompute: RecomputeTiming::Coalesced,
                    ..Default::default()
                },
            );
            assert_eq!(baseline, r, "coalesced + {handoff:?} + {queue:?}");
        }
    }
}

/// The scenario actually exercises what it claims to: cross-cluster flows,
/// a killed worker, and survivors that finish.
#[test]
fn scenario_is_nontrivial() {
    let r = scenario(RecomputeMode::Incremental);
    assert!(r.died.contains(&"w7".to_string()), "died: {:?}", r.died);
    assert!(r.died.contains(&"r7".to_string()), "died: {:?}", r.died);
    assert!(r.completed.len() >= 8, "completed: {:?}", r.completed);
    assert!(r.link_bytes.iter().any(|&b| b > 0.0));
    assert!(r.trace.series("w_done").len() >= 6);
}
