//! The application manager: COP abstraction and the launch-cycle phases
//! whose costs Figure 3 breaks down.
//!
//! A *configurable object program* (COP) packages *"code for the
//! application (e.g. an MPI program), a mapper that determines how to map
//! an application's tasks to a set of resources, and an executable
//! performance model that estimates the application's performance on a set
//! of resources"* (§1). The application manager drives the execution
//! cycle: discover resources through GIS, map, model, bind, launch — and
//! accounts each phase's virtual time in a [`Breakdown`], the exact bar
//! segments of Figure 3.

use crate::binder::{run_binder, BinderError, BoundApp, CompilationPackage};
use crate::gis::Gis;
use grads_nws::NwsService;
use grads_sim::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

/// Per-incarnation phase costs (seconds of virtual time) — the Figure 3
/// bar segments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// GIS discovery + mapper execution.
    pub resource_selection: f64,
    /// Performance-model evaluation.
    pub perf_modeling: f64,
    /// Binder and other GrADS machinery.
    pub grid_overhead: f64,
    /// Launch / MPI startup synchronization.
    pub app_start: f64,
    /// SRS checkpoint writing (stop side of a migration).
    pub checkpoint_write: f64,
    /// SRS checkpoint reading + redistribution (restart side).
    pub checkpoint_read: f64,
    /// Useful application execution.
    pub app_duration: f64,
}

impl Breakdown {
    /// Total wall time of the incarnation.
    pub fn total(&self) -> f64 {
        self.resource_selection
            + self.perf_modeling
            + self.grid_overhead
            + self.app_start
            + self.checkpoint_write
            + self.checkpoint_read
            + self.app_duration
    }

    /// Element-wise sum of two breakdowns (e.g. both incarnations of a
    /// migrated run).
    pub fn merged(&self, o: &Breakdown) -> Breakdown {
        Breakdown {
            resource_selection: self.resource_selection + o.resource_selection,
            perf_modeling: self.perf_modeling + o.perf_modeling,
            grid_overhead: self.grid_overhead + o.grid_overhead,
            app_start: self.app_start + o.app_start,
            checkpoint_write: self.checkpoint_write + o.checkpoint_write,
            checkpoint_read: self.checkpoint_read + o.checkpoint_read,
            app_duration: self.app_duration + o.app_duration,
        }
    }
}

/// Fixed per-phase service costs of the manager machinery (tunable; the
/// paper's measured grid overheads were tens of seconds on 2003
/// middleware).
#[derive(Debug, Clone, Copy)]
pub struct ManagerCosts {
    /// Mapper execution cost beyond GIS queries, seconds.
    pub mapper_s: f64,
    /// Performance-model evaluation cost, seconds.
    pub perf_model_s: f64,
    /// MPI launch synchronization cost, seconds.
    pub launch_sync_s: f64,
}

impl Default for ManagerCosts {
    fn default() -> Self {
        ManagerCosts {
            mapper_s: 3.0,
            perf_model_s: 8.0,
            launch_sync_s: 4.0,
        }
    }
}

/// A configurable object program.
pub trait Cop: Send + Sync {
    /// Application name.
    fn name(&self) -> &str;
    /// Libraries the binder must find on every host.
    fn required_libs(&self) -> Vec<String>;
    /// The compilation package the binder receives.
    fn package(&self) -> CompilationPackage;
    /// The mapper: choose resources from the eligible set.
    fn map(&self, grid: &Grid, nws: &NwsService, eligible: &[HostId]) -> Option<Vec<HostId>>;
    /// The executable performance model: predicted execution time.
    fn predict(&self, hosts: &[HostId], grid: &Grid, nws: &NwsService) -> f64;
}

/// Errors from the manager's preparation phases.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagerError {
    /// No host carries the required software.
    NoEligibleResources,
    /// The mapper found no acceptable mapping.
    MapperFailed,
    /// The binder failed.
    Binder(BinderError),
}

impl std::fmt::Display for ManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagerError::NoEligibleResources => write!(f, "no eligible resources in GIS"),
            ManagerError::MapperFailed => write!(f, "COP mapper found no acceptable mapping"),
            ManagerError::Binder(e) => write!(f, "binder: {e}"),
        }
    }
}

impl std::error::Error for ManagerError {}

/// Run the preparation phases of the GrADS execution cycle from inside
/// the simulation: discovery → mapping (timed as resource selection) →
/// performance modeling → binding (timed as grid overhead) → launch
/// synchronization (timed as app start). Returns the chosen hosts, the
/// bind result, and the phase breakdown (with `app_duration` still zero).
pub fn prepare_and_bind(
    ctx: &mut Ctx,
    cop: &dyn Cop,
    gis: &Gis,
    grid: &Grid,
    nws: &Arc<Mutex<NwsService>>,
    costs: &ManagerCosts,
) -> Result<(Vec<HostId>, BoundApp, Breakdown), ManagerError> {
    let mut bd = Breakdown::default();

    // Resource selection: GIS discovery + the COP's mapper.
    let t0 = ctx.now();
    let libs = cop.required_libs();
    ctx.sleep(crate::gis::GIS_QUERY_COST); // directory sweep
    let eligible = gis.hosts_with_all(&libs);
    if eligible.is_empty() {
        return Err(ManagerError::NoEligibleResources);
    }
    ctx.sleep(costs.mapper_s);
    let mapped = {
        let n = nws.lock();
        cop.map(grid, &n, &eligible)
    };
    let hosts = mapped.ok_or(ManagerError::MapperFailed)?;
    bd.resource_selection = ctx.now() - t0;

    // Performance modeling: evaluate the executable model on the mapping.
    let t1 = ctx.now();
    ctx.sleep(costs.perf_model_s);
    let _predicted = {
        let n = nws.lock();
        cop.predict(&hosts, grid, &n)
    };
    bd.perf_modeling = ctx.now() - t1;

    // Grid overhead: the binder.
    let t2 = ctx.now();
    let bound = run_binder(ctx, gis, grid, &cop.package(), &hosts).map_err(ManagerError::Binder)?;
    bd.grid_overhead = ctx.now() - t2;

    // Application start: launch synchronization (the binder returns
    // control to the manager for MPI programs, §2).
    let t3 = ctx.now();
    ctx.sleep(costs.launch_sync_s);
    bd.app_start = ctx.now() - t3;

    Ok((hosts, bound, bd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::LOCAL_BINDER;
    use grads_sim::topology::{GridBuilder, HostSpec};

    struct ToyCop;

    impl Cop for ToyCop {
        fn name(&self) -> &str {
            "toy"
        }
        fn required_libs(&self) -> Vec<String> {
            vec!["libtoy".to_string()]
        }
        fn package(&self) -> CompilationPackage {
            CompilationPackage::new("toy", &["libtoy"])
        }
        fn map(&self, grid: &Grid, nws: &NwsService, eligible: &[HostId]) -> Option<Vec<HostId>> {
            // Fastest-effective host wins.
            let mut hs = eligible.to_vec();
            hs.sort_by(|&a, &b| {
                nws.effective_speed(grid, b)
                    .total_cmp(&nws.effective_speed(grid, a))
            });
            Some(hs[..1].to_vec())
        }
        fn predict(&self, hosts: &[HostId], grid: &Grid, nws: &NwsService) -> f64 {
            1e9 / nws.effective_speed(grid, hosts[0])
        }
    }

    fn setup() -> (Grid, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let x = b.cluster("X");
        b.local_link(x, 1e8, 1e-4);
        let hs = vec![
            b.add_host(x, &HostSpec::with_speed(1e9)),
            b.add_host(x, &HostSpec::with_speed(2e9)),
        ];
        (b.build().unwrap(), hs)
    }

    #[test]
    fn full_preparation_cycle() {
        let (grid, hs) = setup();
        let gis = Gis::new();
        gis.register_all(&hs, LOCAL_BINDER, "1", "/b");
        gis.register_all(&hs, "libtoy", "1", "/l");
        let mut eng = Engine::new(grid.clone());
        let nws = Arc::new(Mutex::new(NwsService::new()));
        let out = Arc::new(Mutex::new(None));
        let out2 = out.clone();
        eng.spawn("manager", hs[0], move |ctx| {
            let r = prepare_and_bind(ctx, &ToyCop, &gis, &grid, &nws, &ManagerCosts::default());
            *out2.lock() = Some(r);
        });
        eng.run();
        let (hosts, bound, bd) = out.lock().take().unwrap().unwrap();
        // Mapper picks the 2 Gflop/s host.
        assert_eq!(hosts, vec![HostId(1)]);
        assert_eq!(bound.hosts, hosts);
        assert!(bd.resource_selection >= 3.0);
        assert!(bd.perf_modeling >= 8.0);
        assert!(bd.grid_overhead > 0.0);
        assert!(bd.app_start >= 4.0);
        assert_eq!(bd.app_duration, 0.0);
        assert!(bd.total() > 15.0);
    }

    #[test]
    fn missing_library_reports_no_resources() {
        let (grid, hs) = setup();
        let gis = Gis::new();
        gis.register_all(&hs, LOCAL_BINDER, "1", "/b"); // no libtoy
        let mut eng = Engine::new(grid.clone());
        let nws = Arc::new(Mutex::new(NwsService::new()));
        let out = Arc::new(Mutex::new(None));
        let out2 = out.clone();
        eng.spawn("manager", hs[0], move |ctx| {
            *out2.lock() = Some(prepare_and_bind(
                ctx,
                &ToyCop,
                &gis,
                &grid,
                &nws,
                &ManagerCosts::default(),
            ));
        });
        eng.run();
        let got = out.lock().take().unwrap();
        match got {
            Err(ManagerError::NoEligibleResources) => {}
            other => panic!("expected NoEligibleResources, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = Breakdown {
            resource_selection: 1.0,
            perf_modeling: 2.0,
            grid_overhead: 3.0,
            app_start: 4.0,
            checkpoint_write: 5.0,
            checkpoint_read: 6.0,
            app_duration: 7.0,
        };
        assert_eq!(a.total(), 28.0);
        let b = a.merged(&a);
        assert_eq!(b.total(), 56.0);
        assert_eq!(b.checkpoint_read, 12.0);
    }
}
