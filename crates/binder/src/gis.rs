//! The GrADS Information Service (GIS), an MDS-style directory (§2).
//!
//! The binder and scheduler query GIS for resource-specific information:
//! hardware capabilities (served from the grid topology) and software
//! locations — application libraries, general libraries, and the binder
//! itself — registered per host. Queries from inside the emulation charge
//! a small service round-trip latency, which shows up in the Figure 3
//! "grid overhead" bars.

use grads_sim::prelude::*;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cost of one GIS query round trip, seconds.
pub const GIS_QUERY_COST: f64 = 0.05;

/// A registered software artifact on a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareRecord {
    /// Artifact name, e.g. `"scalapack"` or `"local-binder"`.
    pub name: String,
    /// Version string.
    pub version: String,
    /// Install path on the host.
    pub path: String,
}

/// Hardware description served by GIS (mirrors the topology).
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareRecord {
    /// Host described.
    pub host: HostId,
    /// Peak per-core speed, flop/s.
    pub speed: f64,
    /// Core count.
    pub cores: u32,
    /// Architecture.
    pub arch: Arch,
    /// Memory, bytes.
    pub memory: u64,
    /// Cache, bytes.
    pub cache_bytes: u64,
}

#[derive(Default)]
struct Inner {
    software: HashMap<HostId, Vec<SoftwareRecord>>,
}

/// Shared GIS handle.
#[derive(Clone, Default)]
pub struct Gis {
    inner: Arc<Mutex<Inner>>,
}

impl Gis {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a software artifact on a host (setup-time; free).
    pub fn register(&self, host: HostId, name: &str, version: &str, path: &str) {
        self.inner
            .lock()
            .software
            .entry(host)
            .or_default()
            .push(SoftwareRecord {
                name: name.to_string(),
                version: version.to_string(),
                path: path.to_string(),
            });
    }

    /// Register an artifact on many hosts at once.
    pub fn register_all(&self, hosts: &[HostId], name: &str, version: &str, path: &str) {
        for &h in hosts {
            self.register(h, name, version, path);
        }
    }

    /// Query (from inside the emulation, paying the round trip): where is
    /// `name` installed on `host`?
    pub fn locate(&self, ctx: &mut Ctx, host: HostId, name: &str) -> Option<SoftwareRecord> {
        ctx.sleep(GIS_QUERY_COST);
        self.locate_free(host, name)
    }

    /// Metadata-only lookup without simulated cost (for setup and tests).
    pub fn locate_free(&self, host: HostId, name: &str) -> Option<SoftwareRecord> {
        self.inner
            .lock()
            .software
            .get(&host)
            .and_then(|v| v.iter().find(|r| r.name == name))
            .cloned()
    }

    /// Hosts on which all of `names` are installed (no simulated cost;
    /// callers account one query via [`Gis::locate`] semantics if needed).
    pub fn hosts_with_all(&self, names: &[String]) -> Vec<HostId> {
        let inner = self.inner.lock();
        let mut out: Vec<HostId> = inner
            .software
            .iter()
            .filter(|(_, recs)| names.iter().all(|n| recs.iter().any(|r| &r.name == n)))
            .map(|(&h, _)| h)
            .collect();
        out.sort();
        out
    }

    /// Hardware record for a host, from the topology.
    pub fn hardware(&self, grid: &Grid, host: HostId) -> HardwareRecord {
        let h = grid.host(host);
        HardwareRecord {
            host,
            speed: h.speed,
            cores: h.cores,
            arch: h.arch.clone(),
            memory: h.memory,
            cache_bytes: h.cache_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::{GridBuilder, HostSpec};

    #[test]
    fn register_and_locate() {
        let gis = Gis::new();
        gis.register(HostId(0), "scalapack", "1.7", "/opt/scalapack");
        assert_eq!(
            gis.locate_free(HostId(0), "scalapack").unwrap().path,
            "/opt/scalapack"
        );
        assert!(gis.locate_free(HostId(0), "nope").is_none());
        assert!(gis.locate_free(HostId(1), "scalapack").is_none());
    }

    #[test]
    fn hosts_with_all_filters() {
        let gis = Gis::new();
        gis.register(HostId(0), "a", "1", "/a");
        gis.register(HostId(0), "b", "1", "/b");
        gis.register(HostId(1), "a", "1", "/a");
        let hosts = gis.hosts_with_all(&["a".to_string(), "b".to_string()]);
        assert_eq!(hosts, vec![HostId(0)]);
        let hosts_a = gis.hosts_with_all(&["a".to_string()]);
        assert_eq!(hosts_a, vec![HostId(0), HostId(1)]);
    }

    #[test]
    fn query_charges_round_trip() {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        let hs = b.add_hosts(c, 1, &HostSpec::default());
        let mut eng = Engine::new(b.build().unwrap());
        let gis = Gis::new();
        gis.register(hs[0], "lib", "1", "/lib");
        let g2 = gis.clone();
        let h = hs[0];
        eng.spawn("q", h, move |ctx| {
            let r = g2.locate(ctx, h, "lib");
            assert!(r.is_some());
            let t = ctx.now();
            ctx.trace("t", t);
        });
        let r = eng.run();
        assert!((r.trace.last_value("t").unwrap() - GIS_QUERY_COST).abs() < 1e-12);
    }

    #[test]
    fn hardware_mirrors_topology() {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        let hs = b.add_hosts(c, 1, &HostSpec::with_speed(7e8));
        let grid = b.build().unwrap();
        let gis = Gis::new();
        let hw = gis.hardware(&grid, hs[0]);
        assert_eq!(hw.speed, 7e8);
        assert_eq!(hw.arch, Arch::Ia32);
    }
}
