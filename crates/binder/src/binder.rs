//! The distributed GrADS binder (§2).
//!
//! The original binder edited whole application binaries and only worked
//! on homogeneous Pentium clusters; the new binder described in the paper
//! ships a *compilation package* — source in an intermediate
//! representation, a library list, and a configure script — and runs a
//! **local binder** on every scheduled host: it queries GIS for library
//! locations, instruments the code with Autopilot sensors, and configures
//! and compiles for the local architecture. That is what makes
//! heterogeneous (IA-32 + IA-64) schedules possible.
//!
//! Here the global binder is a simulated process that ships the IR to each
//! scheduled host, spawns local binder processes that pay per-architecture
//! configure+compile time, and collects acknowledgements.

use crate::gis::Gis;
use grads_sim::prelude::*;
use grads_sim::process::mail_key;

/// What the program preparation system hands the binder.
#[derive(Debug, Clone)]
pub struct CompilationPackage {
    /// Application name (used in mailbox keys and error messages).
    pub app_name: String,
    /// Libraries that must be pre-installed (registered in GIS) on every
    /// scheduled host.
    pub required_libs: Vec<String>,
    /// Minimum acceptable versions per library (lexicographic compare on
    /// dotted components); libraries absent from this map accept any
    /// version.
    pub min_versions: Vec<(String, String)>,
    /// Size of the IR shipped to each host, bytes.
    pub ir_bytes: f64,
    /// Configure + compile cost on the target, flops.
    pub compile_flops: f64,
    /// Extra instrumentation (sensor insertion) cost, flops.
    pub instrument_flops: f64,
}

impl CompilationPackage {
    /// A small default package for an application.
    pub fn new(app_name: &str, required_libs: &[&str]) -> Self {
        CompilationPackage {
            app_name: app_name.to_string(),
            required_libs: required_libs.iter().map(|s| s.to_string()).collect(),
            min_versions: Vec::new(),
            ir_bytes: 2e6,
            compile_flops: 5e9,
            instrument_flops: 5e8,
        }
    }

    /// Require at least `version` of `lib` on every scheduled host.
    pub fn require_version(mut self, lib: &str, version: &str) -> Self {
        self.min_versions
            .push((lib.to_string(), version.to_string()));
        self
    }
}

/// Compare dotted version strings component-wise (numeric where possible,
/// lexicographic otherwise): `version_at_least("1.10", "1.9") == true`.
pub fn version_at_least(have: &str, want: &str) -> bool {
    let parse = |s: &str| -> Vec<Result<u64, String>> {
        s.split('.')
            .map(|c| c.parse::<u64>().map_err(|_| c.to_string()))
            .collect()
    };
    let (h, w) = (parse(have), parse(want));
    for i in 0..h.len().max(w.len()) {
        let hv = h.get(i);
        let wv = w.get(i);
        let ord = match (hv, wv) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(Ok(a)), Some(Ok(b))) => a.cmp(b),
            (Some(a), Some(b)) => format!("{a:?}").cmp(&format!("{b:?}")),
        };
        match ord {
            std::cmp::Ordering::Equal => continue,
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
        }
    }
    true
}

/// Binder failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinderError {
    /// A required library (or the local binder itself) is not installed on
    /// a scheduled host.
    MissingSoftware { host: HostId, what: String },
    /// An installed library is older than the package requires.
    VersionTooOld {
        host: HostId,
        lib: String,
        have: String,
        want: String,
    },
}

impl std::fmt::Display for BinderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinderError::MissingSoftware { host, what } => {
                write!(f, "host {host}: required software {what:?} not in GIS")
            }
            BinderError::VersionTooOld {
                host,
                lib,
                have,
                want,
            } => write!(
                f,
                "host {host}: {lib} {have} installed but >= {want} required"
            ),
        }
    }
}

impl std::error::Error for BinderError {}

/// Result of a successful bind: the application is configured, compiled
/// and instrumented on every scheduled host.
#[derive(Debug, Clone)]
pub struct BoundApp {
    /// Hosts the application is bound on.
    pub hosts: Vec<HostId>,
    /// Architecture each host was configured for.
    pub archs: Vec<Arch>,
    /// Virtual time the bind took.
    pub bind_time: f64,
}

/// The name under which the local binder must be registered in GIS.
pub const LOCAL_BINDER: &str = "local-binder";

/// Run the global binder from inside the simulation (typically called by
/// the application manager). Validates software availability through GIS,
/// ships the IR to every host, runs local binders in parallel, and waits
/// for all acknowledgements.
pub fn run_binder(
    ctx: &mut Ctx,
    gis: &Gis,
    grid: &Grid,
    pkg: &CompilationPackage,
    hosts: &[HostId],
) -> Result<BoundApp, BinderError> {
    let t0 = ctx.now();
    // Locate the local binder and every required library on each host,
    // querying GIS (the paper's global binder does exactly this walk).
    for &h in hosts {
        if gis.locate(ctx, h, LOCAL_BINDER).is_none() {
            return Err(BinderError::MissingSoftware {
                host: h,
                what: LOCAL_BINDER.to_string(),
            });
        }
        for lib in &pkg.required_libs {
            let Some(rec) = gis.locate(ctx, h, lib) else {
                return Err(BinderError::MissingSoftware {
                    host: h,
                    what: lib.clone(),
                });
            };
            if let Some((_, want)) = pkg.min_versions.iter().find(|(l, _)| l == lib) {
                if !version_at_least(&rec.version, want) {
                    return Err(BinderError::VersionTooOld {
                        host: h,
                        lib: lib.clone(),
                        have: rec.version,
                        want: want.clone(),
                    });
                }
            }
        }
    }
    // Launch local binders; each acknowledges on a dedicated mailbox.
    let ack_key = mail_key(&[0xB1DD, ctx.pid().0 as u64, ctx.now().to_bits()]);
    let my_host = ctx.host();
    for (i, &h) in hosts.iter().enumerate() {
        // Ship the IR, then bind locally.
        let pkgc = pkg.clone();
        let idx = i as u64;
        ctx.spawn(
            &format!("local-binder-{}-{}", pkg.app_name, i),
            h,
            move |lctx| {
                // Local binder: instrument with sensors, configure, compile
                // for the local architecture.
                lctx.compute(pkgc.instrument_flops);
                lctx.compute(pkgc.compile_flops);
                lctx.isend(ack_key, my_host, 256.0, Box::new(idx));
            },
        );
        // The IR travels from the manager to the host.
        ctx.transfer(h, pkg.ir_bytes);
    }
    for _ in hosts {
        let _ = ctx.recv(ack_key);
    }
    let archs = hosts.iter().map(|&h| grid.host(h).arch.clone()).collect();
    Ok(BoundApp {
        hosts: hosts.to_vec(),
        archs,
        bind_time: ctx.now() - t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::{Arch, GridBuilder, HostSpec};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn hetero_grid() -> (Grid, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let x = b.cluster("X");
        b.local_link(x, 1e7, 1e-3);
        let h32 = b.add_host(x, &HostSpec::with_speed(1e9));
        let h64 = b.add_host(
            x,
            &HostSpec {
                speed: 1.5e9,
                arch: Arch::Ia64,
                ..Default::default()
            },
        );
        (b.build().unwrap(), vec![h32, h64])
    }

    #[test]
    fn binds_on_heterogeneous_hosts() {
        let (grid, hs) = hetero_grid();
        let gis = Gis::new();
        gis.register_all(&hs, LOCAL_BINDER, "1", "/grads/bin");
        gis.register_all(&hs, "scalapack", "1.7", "/opt/sl");
        let mut eng = Engine::new(grid.clone());
        let out = Arc::new(Mutex::new(None));
        let out2 = out.clone();
        let hs2 = hs.clone();
        eng.spawn("manager", hs[0], move |ctx| {
            let pkg = CompilationPackage::new("qr", &["scalapack"]);
            let bound = run_binder(ctx, &gis, &grid, &pkg, &hs2).unwrap();
            *out2.lock() = Some(bound);
        });
        eng.run();
        let bound = out.lock().clone().unwrap();
        assert_eq!(bound.hosts.len(), 2);
        assert_eq!(bound.archs, vec![Arch::Ia32, Arch::Ia64]);
        // Bind time includes GIS queries, IR shipping and compilation.
        assert!(bound.bind_time > 0.1, "bind_time = {}", bound.bind_time);
    }

    #[test]
    fn missing_library_fails_cleanly() {
        let (grid, hs) = hetero_grid();
        let gis = Gis::new();
        gis.register_all(&hs, LOCAL_BINDER, "1", "/grads/bin");
        gis.register(hs[0], "scalapack", "1.7", "/opt/sl"); // not on hs[1]
        let mut eng = Engine::new(grid.clone());
        let out = Arc::new(Mutex::new(None));
        let out2 = out.clone();
        let hs2 = hs.clone();
        eng.spawn("manager", hs[0], move |ctx| {
            let pkg = CompilationPackage::new("qr", &["scalapack"]);
            let r = run_binder(ctx, &gis, &grid, &pkg, &hs2);
            *out2.lock() = Some(r);
        });
        eng.run();
        let r = out.lock().clone().unwrap();
        let err = r.unwrap_err();
        assert_eq!(
            err,
            BinderError::MissingSoftware {
                host: hs[1],
                what: "scalapack".to_string()
            }
        );
    }

    #[test]
    fn version_comparison() {
        assert!(version_at_least("1.10", "1.9"));
        assert!(version_at_least("2.0", "2.0"));
        assert!(!version_at_least("1.9", "1.10"));
        assert!(version_at_least("1.2.1", "1.2"));
        assert!(!version_at_least("1.2", "1.2.1"));
        assert!(version_at_least("1.7b", "1.7a"));
    }

    #[test]
    fn stale_library_version_rejected() {
        let (grid, hs) = hetero_grid();
        let gis = Gis::new();
        gis.register_all(&hs, LOCAL_BINDER, "1", "/grads/bin");
        gis.register(hs[0], "scalapack", "1.8", "/opt/sl");
        gis.register(hs[1], "scalapack", "1.6", "/opt/sl"); // too old
        let mut eng = Engine::new(grid.clone());
        let out = Arc::new(Mutex::new(None));
        let out2 = out.clone();
        let hs2 = hs.clone();
        eng.spawn("manager", hs[0], move |ctx| {
            let pkg =
                CompilationPackage::new("qr", &["scalapack"]).require_version("scalapack", "1.7");
            *out2.lock() = Some(run_binder(ctx, &gis, &grid, &pkg, &hs2));
        });
        eng.run();
        let got = out.lock().clone().unwrap();
        match got {
            Err(BinderError::VersionTooOld {
                host, have, want, ..
            }) => {
                assert_eq!(host, hs[1]);
                assert_eq!(have, "1.6");
                assert_eq!(want, "1.7");
            }
            other => panic!("expected version rejection, got {other:?}"),
        }
    }

    #[test]
    fn missing_local_binder_detected_first() {
        let (grid, hs) = hetero_grid();
        let gis = Gis::new(); // nothing registered
        let mut eng = Engine::new(grid.clone());
        let out = Arc::new(Mutex::new(None));
        let out2 = out.clone();
        let hs2 = hs.clone();
        eng.spawn("manager", hs[0], move |ctx| {
            let pkg = CompilationPackage::new("qr", &[]);
            *out2.lock() = Some(run_binder(ctx, &gis, &grid, &pkg, &hs2));
        });
        eng.run();
        let got = out.lock().clone().unwrap();
        match got {
            Err(BinderError::MissingSoftware { what, .. }) => {
                assert_eq!(what, LOCAL_BINDER);
            }
            other => panic!("expected missing binder, got {other:?}"),
        }
    }

    #[test]
    fn slow_host_dominates_bind_time() {
        // Compilation runs in parallel; the slowest host sets the pace.
        let mut b = GridBuilder::new();
        let x = b.cluster("X");
        b.local_link(x, 1e8, 1e-4);
        let fast = b.add_host(x, &HostSpec::with_speed(1e10));
        let slow = b.add_host(x, &HostSpec::with_speed(1e8));
        let grid = b.build().unwrap();
        let gis = Gis::new();
        gis.register_all(&[fast, slow], LOCAL_BINDER, "1", "/b");
        let mut eng = Engine::new(grid.clone());
        let out = Arc::new(Mutex::new(0.0f64));
        let out2 = out.clone();
        eng.spawn("manager", fast, move |ctx| {
            let pkg = CompilationPackage::new("app", &[]);
            let bound = run_binder(ctx, &gis, &grid, &pkg, &[fast, slow]).unwrap();
            *out2.lock() = bound.bind_time;
        });
        eng.run();
        // Slow host: 5.5e9 flops at 1e8 flop/s = 55 s.
        let bt = *out.lock();
        assert!(bt > 50.0 && bt < 70.0, "bind_time = {bt}");
    }
}
