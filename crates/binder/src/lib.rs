//! # grads-binder — GIS, the distributed binder, and the application manager
//!
//! The §2 launch machinery: [`gis`] is the MDS-style information service
//! (hardware capabilities + software locations); [`binder`] is the new
//! distributed binder that ships IR to every scheduled host and configures,
//! instruments and compiles locally (enabling heterogeneous IA-32/IA-64
//! schedules); [`manager`] holds the COP abstraction and the preparation
//! phases whose virtual-time costs form the Figure 3 breakdown.

pub mod binder;
pub mod gis;
pub mod manager;

pub use binder::{
    run_binder, version_at_least, BinderError, BoundApp, CompilationPackage, LOCAL_BINDER,
};
pub use gis::{Gis, HardwareRecord, SoftwareRecord, GIS_QUERY_COST};
pub use manager::{prepare_and_bind, Breakdown, Cop, ManagerCosts, ManagerError};
