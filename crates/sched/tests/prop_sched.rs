//! Property-based tests of the scheduling layer: on random workflows and
//! resource sets, every strategy must produce valid placements whose
//! makespans respect the analytic lower bound.

use grads_nws::NwsService;
use grads_perf::{FittedModel, OpCountModel, ResourceInfo};
use grads_sched::{
    makespan_lower_bound, schedule_greedy_ecost, schedule_heft, schedule_random,
    schedule_round_robin, Workflow, WorkflowScheduler,
};
use grads_sim::prelude::*;
use grads_sim::topology::GridBuilder;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Instance {
    speeds: Vec<f64>,
    comps: Vec<f64>,
    edges: Vec<(usize, usize, f64)>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec(1e8f64..4e9, 2..8),
        proptest::collection::vec(1e8f64..5e10, 1..12),
    )
        .prop_flat_map(|(speeds, comps)| {
            let n = comps.len();
            let edges = proptest::collection::vec(((0..n), (0..n), 1e3f64..1e8), 0..(2 * n));
            (Just(speeds), Just(comps), edges).prop_map(|(speeds, comps, raw)| {
                // Keep only forward edges (guarantees a DAG).
                let edges = raw.into_iter().filter(|&(a, b, _)| a < b).collect();
                Instance {
                    speeds,
                    comps,
                    edges,
                }
            })
        })
}

fn build(inst: &Instance) -> (Grid, Vec<ResourceInfo>, Workflow) {
    let mut b = GridBuilder::new();
    let c = b.cluster("X");
    b.local_link(c, 1e8, 1e-4);
    for &s in &inst.speeds {
        b.add_host(c, &HostSpec::with_speed(s));
    }
    let grid = b.build().unwrap();
    let nws = NwsService::new();
    let resources: Vec<ResourceInfo> = (0..grid.hosts().len() as u32)
        .map(|i| ResourceInfo::from_grid(&grid, &nws, HostId(i)))
        .collect();
    let mut wf = Workflow::new();
    for (i, &flops) in inst.comps.iter().enumerate() {
        wf.add_component(
            &format!("c{i}"),
            Arc::new(FittedModel {
                problem_size: 1.0,
                ops: OpCountModel {
                    coeffs: vec![flops],
                    degree: 0,
                    rms_rel_residual: 0.0,
                },
                mrd: None,
                input_bytes: 0.0,
                output_bytes: 1e5,
                min_memory: 0,
                allowed: None,
            }),
        );
    }
    for &(a, b_, bytes) in &inst.edges {
        wf.add_edge(a, b_, bytes);
    }
    (grid, resources, wf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every strategy yields in-range placements and a makespan at or
    /// above the analytic lower bound.
    #[test]
    fn all_strategies_valid_and_bounded(inst in instance()) {
        let (grid, resources, wf) = build(&inst);
        let nws = NwsService::new();
        let lb = makespan_lower_bound(&wf, &resources);
        let (best, per) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        let schedules = vec![
            best.clone(),
            schedule_heft(&wf, &grid, &nws, &resources),
            schedule_greedy_ecost(&wf, &grid, &nws, &resources),
            schedule_round_robin(&wf, &grid, &nws, &resources),
            schedule_random(&wf, &grid, &nws, &resources, 7),
        ];
        for s in &schedules {
            prop_assert_eq!(s.placement.len(), wf.len());
            for &r in &s.placement {
                prop_assert!(r < resources.len());
            }
            prop_assert!(
                s.makespan >= lb - 1e-6 * lb.abs().max(1.0),
                "{}: makespan {} below bound {}", s.strategy, s.makespan, lb
            );
        }
        // The GrADS pick is the min of its three heuristics.
        for (name, mk) in per {
            prop_assert!(best.makespan <= mk + 1e-9, "{} beat the pick", name);
        }
        // Dependences respected in the evaluated schedule.
        for e in &wf.edges {
            prop_assert!(best.start[e.to] >= best.finish[e.from] - 1e-9);
        }
    }

    /// Scheduling is deterministic.
    #[test]
    fn scheduling_deterministic(inst in instance()) {
        let (grid, resources, wf) = build(&inst);
        let nws = NwsService::new();
        let a = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        let b = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        prop_assert_eq!(a.0.placement, b.0.placement);
        prop_assert_eq!(a.0.makespan, b.0.makespan);
    }
}
