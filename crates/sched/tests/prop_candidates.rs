//! Property tests of the fast decision path: on randomized grids,
//! NWS CPU histories, eligibility sets, and size bounds, the fast path —
//! forecast snapshot + zero-materialization candidate walk + incremental
//! prefix predictor — picks the **bit-identical** `ResourceChoice` as the
//! seed reference loop, at 1 worker and at N workers.

use grads_nws::{ForecastSnapshot, NwsService};
use grads_perf::{FlatPrefix, TreeBcastPrefix};
use grads_sched::{
    select_mpi_resources, select_mpi_resources_fast, select_mpi_resources_tuned, ResourceChoice,
    SchedTune,
};
use grads_sim::prelude::*;
use grads_sim::topology::GridBuilder;
use proptest::prelude::*;

const FLOPS: f64 = 2.0e11;
const BCAST_BYTES: f64 = 4.0e6;

#[derive(Debug, Clone)]
struct Inst {
    /// Host speeds, grouped by cluster.
    clusters: Vec<Vec<f64>>,
    /// Per-host CPU-availability history fed to the forecast battery.
    obs: Vec<Vec<f64>>,
    /// Per-host eligibility (75% dense on average; may be empty).
    eligible: Vec<bool>,
    min_procs: usize,
    max_procs: usize,
}

fn instance() -> impl Strategy<Value = Inst> {
    proptest::collection::vec(proptest::collection::vec(1e8f64..4e9, 1..7), 1..5).prop_flat_map(
        |clusters| {
            let n: usize = clusters.iter().map(Vec::len).sum();
            (
                Just(clusters),
                proptest::collection::vec(proptest::collection::vec(0.05f64..1.0, 0..15), n),
                proptest::collection::vec(0u8..4, n),
                1usize..4,
                0usize..8,
            )
                .prop_map(|(clusters, obs, elig, min_procs, extra)| Inst {
                    clusters,
                    obs,
                    eligible: elig.into_iter().map(|e| e != 0).collect(),
                    min_procs,
                    max_procs: min_procs + extra,
                })
        },
    )
}

fn build(inst: &Inst) -> (Grid, NwsService, Vec<HostId>) {
    let mut b = GridBuilder::new();
    let mut cl = Vec::new();
    for (c, speeds) in inst.clusters.iter().enumerate() {
        let id = b.cluster(&format!("C{c}"));
        b.local_link(id, 1e9, 5e-5);
        for &s in speeds {
            b.add_host(id, &HostSpec::with_speed(s));
        }
        cl.push(id);
    }
    for w in cl.windows(2) {
        b.connect(w[0], w[1], 5e7, 5e-3);
    }
    let grid = b.build().unwrap();
    let mut nws = NwsService::new();
    for (i, hist) in inst.obs.iter().enumerate() {
        for &a in hist {
            nws.observe_cpu(HostId(i as u32), a);
        }
    }
    let eligible: Vec<HostId> = inst
        .eligible
        .iter()
        .enumerate()
        .filter(|&(_, &e)| e)
        .map(|(i, _)| HostId(i as u32))
        .collect();
    (grid, nws, eligible)
}

/// Bitwise-comparable projection of a selection result.
fn key(c: &Option<ResourceChoice>) -> Option<(ClusterId, Vec<HostId>, u64)> {
    c.as_ref()
        .map(|c| (c.cluster, c.hosts.clone(), c.predicted.to_bits()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental `TreeBcastPrefix` through the walk, at 1 and N
    /// workers, equals the reference loop scoring the whole-prefix
    /// closure against the live service — bit for bit.
    #[test]
    fn tree_model_fast_path_matches_reference(inst in instance()) {
        let (grid, nws, eligible) = build(&inst);
        let closure = |hs: &[HostId], grid: &Grid, nws: &NwsService| {
            TreeBcastPrefix::reference(hs, grid, nws, FLOPS, BCAST_BYTES)
        };
        let reference = select_mpi_resources(
            &grid, &nws, &eligible, inst.min_procs, inst.max_procs, &closure,
        );
        let snap = ForecastSnapshot::capture(&grid, &nws);
        for workers in [1usize, 3] {
            let fast = select_mpi_resources_fast(
                &grid, &snap, &eligible, inst.min_procs, inst.max_procs,
                || TreeBcastPrefix::new(&grid, &snap, FLOPS, BCAST_BYTES),
                workers,
            );
            prop_assert_eq!(
                key(&fast), key(&reference),
                "tree model diverged at {} workers", workers
            );
        }
    }

    /// The tuned entry point (closure adapter inside) is bit-identical
    /// across `SchedTune` modes, including the parallel scorer.
    #[test]
    fn tuned_entry_point_matches_across_modes(inst in instance()) {
        let (grid, nws, eligible) = build(&inst);
        let closure = |hs: &[HostId], grid: &Grid, nws: &NwsService| {
            let total: f64 = hs.iter().map(|&h| nws.effective_speed(grid, h)).sum();
            FLOPS / total + 40.0 * hs.len() as f64
        };
        let reference = select_mpi_resources_tuned(
            &grid, &nws, &eligible, inst.min_procs, inst.max_procs, &closure,
            SchedTune::reference(),
        );
        for tune in [SchedTune::fast(), SchedTune::fast_parallel(3)] {
            let fast = select_mpi_resources_tuned(
                &grid, &nws, &eligible, inst.min_procs, inst.max_procs, &closure, tune,
            );
            prop_assert_eq!(key(&fast), key(&reference), "diverged under {:?}", tune);
        }
    }

    /// The flat (perfectly parallel) incremental model equals its
    /// whole-prefix sum closure through the reference loop.
    #[test]
    fn flat_model_fast_path_matches_reference(inst in instance()) {
        let (grid, nws, eligible) = build(&inst);
        let closure = |hs: &[HostId], grid: &Grid, nws: &NwsService| {
            let total: f64 = hs.iter().map(|&h| nws.effective_speed(grid, h)).sum();
            FLOPS / total
        };
        let reference = select_mpi_resources(
            &grid, &nws, &eligible, inst.min_procs, inst.max_procs, &closure,
        );
        let snap = ForecastSnapshot::capture(&grid, &nws);
        for workers in [1usize, 3] {
            let fast = select_mpi_resources_fast(
                &grid, &snap, &eligible, inst.min_procs, inst.max_procs,
                || FlatPrefix { flops: FLOPS },
                workers,
            );
            prop_assert_eq!(
                key(&fast), key(&reference),
                "flat model diverged at {} workers", workers
            );
        }
    }
}
