//! Resource selection for tightly-coupled MPI applications.
//!
//! The pre-workflow GrADS scheduler (used for the ScaLAPACK QR experiment,
//! §4.1.2) picks a processor set for a single parallel application: it
//! enumerates candidate subsets — per-cluster prefixes of the
//! fastest-available hosts, since tightly-coupled codes suffer across WAN
//! links — and keeps the one whose predicted execution time is lowest,
//! using the application's own performance model.

use grads_nws::NwsService;
use grads_obs::Obs;
use grads_sim::prelude::*;

/// A candidate (or selected) processor set with its predicted time.
#[derive(Debug, Clone)]
pub struct ResourceChoice {
    /// Chosen hosts, fastest-available first.
    pub hosts: Vec<HostId>,
    /// Predicted execution time from the application model, seconds.
    pub predicted: f64,
    /// Cluster the hosts came from.
    pub cluster: ClusterId,
}

/// Application performance predictor: given an ordered host set, forecast
/// the execution time. Provided by the COP (its executable performance
/// model). `Sync` so the fast path's cluster-sharded scorer can share one
/// closure across worker threads (see [`crate::walk`]).
pub type MpiPredictor<'a> = dyn Fn(&[HostId], &Grid, &NwsService) -> f64 + Sync + 'a;

/// Enumerate candidate host sets: for each cluster, prefixes (by forecast
/// effective speed, descending) of length `min_procs..=max_procs`.
pub fn candidate_sets(
    grid: &Grid,
    nws: &NwsService,
    eligible: &[HostId],
    min_procs: usize,
    max_procs: usize,
) -> Vec<(ClusterId, Vec<HostId>)> {
    // Eligibility bitset over dense host ids: one O(|eligible|) pass here
    // instead of an O(|eligible|) scan per host per cluster below.
    let mut is_eligible = vec![false; grid.hosts().len()];
    for h in eligible {
        if let Some(slot) = is_eligible.get_mut(h.0 as usize) {
            *slot = true;
        }
    }
    let mut out = Vec::new();
    for (ci, cluster) in grid.clusters().iter().enumerate() {
        let mut hosts: Vec<HostId> = cluster
            .hosts
            .iter()
            .copied()
            .filter(|h| is_eligible[h.0 as usize])
            .collect();
        if hosts.is_empty() {
            continue;
        }
        hosts.sort_by(|&a, &b| {
            nws.effective_speed(grid, b)
                .total_cmp(&nws.effective_speed(grid, a))
                .then(a.cmp(&b))
        });
        for k in min_procs..=max_procs.min(hosts.len()) {
            out.push((ClusterId(ci as u32), hosts[..k].to_vec()));
        }
    }
    out
}

/// Select the processor set with the lowest predicted execution time.
/// Returns `None` if no cluster can supply `min_procs` eligible hosts.
pub fn select_mpi_resources(
    grid: &Grid,
    nws: &NwsService,
    eligible: &[HostId],
    min_procs: usize,
    max_procs: usize,
    predict: &MpiPredictor<'_>,
) -> Option<ResourceChoice> {
    select_with_count(grid, nws, eligible, min_procs, max_procs, predict).0
}

/// The reference selection loop, also reporting how many candidate sets
/// it scored — so the obs wrapper counts from the same single
/// enumeration instead of re-enumerating.
fn select_with_count(
    grid: &Grid,
    nws: &NwsService,
    eligible: &[HostId],
    min_procs: usize,
    max_procs: usize,
    predict: &MpiPredictor<'_>,
) -> (Option<ResourceChoice>, usize) {
    let mut best: Option<ResourceChoice> = None;
    let mut scored = 0usize;
    for (cluster, hosts) in candidate_sets(grid, nws, eligible, min_procs, max_procs) {
        scored += 1;
        let predicted = predict(&hosts, grid, nws);
        match &best {
            Some(b) if b.predicted <= predicted => {}
            _ => {
                best = Some(ResourceChoice {
                    hosts,
                    predicted,
                    cluster,
                })
            }
        }
    }
    (best, scored)
}

/// [`select_mpi_resources`] with an observability sink: identical choice,
/// plus `sched.*` counters (selection calls, candidate sets scored) and
/// gauges describing the winner (predicted time, processor count) so the
/// launch half of the decision loop shows up next to the monitoring half
/// in one metrics snapshot.
pub fn select_mpi_resources_obs(
    grid: &Grid,
    nws: &NwsService,
    eligible: &[HostId],
    min_procs: usize,
    max_procs: usize,
    predict: &MpiPredictor<'_>,
    obs: &Obs,
) -> Option<ResourceChoice> {
    obs.counter_add("sched.selections", 1);
    let (best, scored) = select_with_count(grid, nws, eligible, min_procs, max_procs, predict);
    obs.counter_add("sched.candidate_sets", scored as u64);
    if let Some(c) = &best {
        obs.gauge_set("sched.selected_predicted", c.predicted);
        obs.gauge_set("sched.selected_procs", c.hosts.len() as f64);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::{GridBuilder, HostSpec};

    fn setup() -> Grid {
        let mut b = GridBuilder::new();
        let utk = b.cluster("UTK");
        b.add_hosts(utk, 4, &HostSpec::with_speed(933e6));
        let uiuc = b.cluster("UIUC");
        b.add_hosts(uiuc, 8, &HostSpec::with_speed(450e6));
        b.connect(utk, uiuc, 4e6, 0.03);
        b.build().unwrap()
    }

    /// Simple predictor: perfectly parallel flops over summed speeds.
    fn flat_predictor(flops: f64) -> impl Fn(&[HostId], &Grid, &NwsService) -> f64 {
        move |hosts, grid, nws| {
            let total: f64 = hosts.iter().map(|&h| nws.effective_speed(grid, h)).sum();
            flops / total
        }
    }

    /// The eligibility bitset does not change candidate enumeration: a
    /// scrambled, duplicated eligible list yields exactly the same
    /// candidate sets, in the same order, as the sorted one — order comes
    /// from cluster iteration and forecast speed, never from `eligible`.
    #[test]
    fn candidate_order_is_independent_of_eligible_order() {
        let grid = setup();
        let nws = NwsService::new();
        let sorted: Vec<HostId> = (0..12).map(HostId).collect();
        let scrambled: Vec<HostId> = [7u32, 0, 11, 3, 3, 9, 1, 10, 2, 8, 5, 4, 6, 0]
            .into_iter()
            .map(HostId)
            .collect();
        let a = candidate_sets(&grid, &nws, &sorted, 2, 12);
        let b = candidate_sets(&grid, &nws, &scrambled, 2, 12);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        // Within each candidate, hosts are fastest-first with id tie-break.
        for (_, hosts) in &a {
            for w in hosts.windows(2) {
                let (x, y) = (w[0], w[1]);
                let sx = nws.effective_speed(&grid, x);
                let sy = nws.effective_speed(&grid, y);
                assert!(sx > sy || (sx == sy && x < y), "{x:?} before {y:?}");
            }
        }
    }

    /// A partial eligible set restricted to the slow cluster still
    /// enumerates correctly through the bitset path.
    #[test]
    fn partial_eligibility_filters_hosts() {
        let grid = setup();
        let nws = NwsService::new();
        let uiuc_only: Vec<HostId> = grid.hosts_of("UIUC")[..5].to_vec();
        let sets = candidate_sets(&grid, &nws, &uiuc_only, 2, 12);
        assert!(sets
            .iter()
            .all(|(c, _)| *c == grid.cluster_by_name("UIUC").unwrap()));
        assert_eq!(sets.last().unwrap().1.len(), 5);
        assert!(sets
            .iter()
            .all(|(_, hs)| hs.iter().all(|h| uiuc_only.contains(h))));
    }

    #[test]
    fn picks_faster_cluster_with_all_hosts() {
        let grid = setup();
        let nws = NwsService::new();
        let all: Vec<HostId> = (0..12).map(HostId).collect();
        let p = flat_predictor(1e12);
        let choice = select_mpi_resources(&grid, &nws, &all, 2, 12, &p).unwrap();
        // UTK: 4 * 933 = 3732 Mflop/s; UIUC: 8 * 450 = 3600. UTK wins.
        assert_eq!(choice.cluster, grid.cluster_by_name("UTK").unwrap());
        assert_eq!(choice.hosts.len(), 4);
    }

    #[test]
    fn loaded_fast_cluster_loses() {
        let grid = setup();
        let mut nws = NwsService::new();
        // One UTK node heavily loaded (availability 0.25).
        let utk0 = grid.hosts_of("UTK")[0];
        for _ in 0..20 {
            nws.observe_cpu(utk0, 0.25);
        }
        let all: Vec<HostId> = (0..12).map(HostId).collect();
        let p = flat_predictor(1e12);
        let choice = select_mpi_resources(&grid, &nws, &all, 2, 12, &p).unwrap();
        // UTK effective: 3*933 + 0.25*933 = 3032 < UIUC 3600. UIUC wins.
        assert_eq!(choice.cluster, grid.cluster_by_name("UIUC").unwrap());
        assert_eq!(choice.hosts.len(), 8);
    }

    #[test]
    fn prefix_ordering_puts_fastest_first() {
        let grid = setup();
        let mut nws = NwsService::new();
        let utk1 = grid.hosts_of("UTK")[1];
        for _ in 0..20 {
            nws.observe_cpu(utk1, 0.1);
        }
        let all = grid.hosts_of("UTK");
        let sets = candidate_sets(&grid, &nws, &all, 3, 3);
        assert_eq!(sets.len(), 1);
        // The loaded host must be last (excluded from the 3-host prefix).
        assert!(!sets[0].1.contains(&utk1));
    }

    #[test]
    fn respects_min_procs() {
        let grid = setup();
        let nws = NwsService::new();
        let only_two: Vec<HostId> = grid.hosts_of("UTK")[..2].to_vec();
        let p = flat_predictor(1e12);
        assert!(select_mpi_resources(&grid, &nws, &only_two, 3, 8, &p).is_none());
        assert!(select_mpi_resources(&grid, &nws, &only_two, 2, 8, &p).is_some());
    }

    #[test]
    fn non_monotone_predictor_picks_sweet_spot() {
        // Predictor with a communication penalty that grows with the
        // process count: best size is interior.
        let grid = setup();
        let nws = NwsService::new();
        let all = grid.hosts_of("UIUC");
        let p = |hosts: &[HostId], grid: &Grid, nws: &NwsService| {
            let total: f64 = hosts.iter().map(|&h| nws.effective_speed(grid, h)).sum();
            1e12 / total + 50.0 * (hosts.len() as f64)
        };
        let choice = select_mpi_resources(&grid, &nws, &all, 1, 8, &p).unwrap();
        assert!(
            choice.hosts.len() > 1 && choice.hosts.len() < 8,
            "expected interior optimum, got {}",
            choice.hosts.len()
        );
    }
}
