//! Persistent decision-epoch index: the sorted per-cluster host
//! orderings that [`crate::CandidateWalk`] rebuilds from scratch for
//! every job, maintained once per round instead.
//!
//! [`crate::CandidateWalk::new`] pays an `O(H log H)` per-cluster sort
//! per *job* even though the [`grads_nws::ForecastSnapshot`] it sorts
//! against is frozen for the whole service round — only the *eligibility*
//! of hosts differs between jobs, never their order. A [`SnapshotIndex`]
//! keeps every cluster's full host list sorted under the walk comparator
//! (effective speed descending, [`HostId`] ascending — a *unique* total
//! order, since ids are unique) and is repaired between rounds from the
//! snapshot delta: each changed host is removed at its old key and
//! re-inserted at its new one. Because the order is a unique total order,
//! remove/re-insert repair provably lands in the same permutation a full
//! re-sort would produce, so everything downstream stays bit-identical.
//!
//! Per-job work then drops to
//! [`crate::CandidateWalk::from_index`]: walk the prebuilt order, keep
//! hosts present in the job's eligibility [`HostBitset`], and stop after
//! `max_procs` of them — `O(procs + skipped busy hosts)` instead of
//! `O(H log H)`.

use grads_nws::{ForecastSnapshot, ForecastSource};
use grads_sim::prelude::*;
use std::cmp::Ordering;

/// Dense bitset over host ids — the per-job eligibility mask handed to
/// [`crate::CandidateWalk::from_index`], maintained `O(1)` per
/// admit/complete by service drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostBitset {
    words: Vec<u64>,
}

impl HostBitset {
    /// An empty set over `n_hosts` host ids.
    pub fn new(n_hosts: usize) -> Self {
        HostBitset {
            words: vec![0; n_hosts.div_ceil(64)],
        }
    }

    /// Add `h`; returns `true` if it was absent.
    pub fn insert(&mut self, h: HostId) -> bool {
        let (w, b) = (h.0 as usize / 64, h.0 as usize % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Remove `h`; returns `true` if it was present.
    pub fn remove(&mut self, h: HostId) -> bool {
        let (w, b) = (h.0 as usize / 64, h.0 as usize % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, h: HostId) -> bool {
        let (w, b) = (h.0 as usize / 64, h.0 as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no host is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// One cluster's complete host list in walk order, with the cached
/// effective speeds the order was built against.
#[derive(Debug, Clone)]
pub struct ClusterOrder {
    /// The cluster the hosts belong to.
    pub cluster: ClusterId,
    /// Every host of the cluster, effective speed descending, host id
    /// ascending on speed ties.
    pub hosts: Vec<HostId>,
    /// `hosts[i]`'s effective speed, aligned with `hosts`.
    pub speeds: Vec<f64>,
}

/// What a [`SnapshotIndex::repair`] call actually did, for the
/// `svc.epoch.*` observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairReport {
    /// Hosts removed and re-inserted at a new key.
    pub moved: usize,
    /// True when the delta was large enough that a full rebuild was
    /// cheaper than per-host repair (`moved` then counts the changed
    /// hosts that triggered it).
    pub rebuilt: bool,
}

/// Per-cluster host orderings under the candidate-walk comparator,
/// persistent across the jobs of a decision epoch and repaired — not
/// re-sorted — when the forecast snapshot changes between epochs.
#[derive(Debug, Clone)]
pub struct SnapshotIndex {
    clusters: Vec<ClusterOrder>,
    /// Host id → the effective-speed key the host is currently filed
    /// under (needed to locate it for removal).
    speed_of: Vec<f64>,
    /// Host id → index into `clusters`.
    cluster_ix: Vec<u32>,
}

/// The walk comparator on `(speed, host)` keys: speed descending under
/// `total_cmp`, host id ascending. `total_cmp` equality implies bitwise
/// equality and host ids are unique, so the order is a unique total
/// order — the foundation of the repair == re-sort argument.
#[inline]
fn key_cmp(a_speed: f64, a_host: HostId, b_speed: f64, b_host: HostId) -> Ordering {
    b_speed.total_cmp(&a_speed).then(a_host.cmp(&b_host))
}

impl SnapshotIndex {
    /// Sort every cluster's full host list against `snap`. Done once at
    /// service start (and as the repair fallback for very large deltas).
    pub fn build(grid: &Grid, snap: &ForecastSnapshot) -> Self {
        let n = grid.hosts().len();
        let mut speed_of = vec![0.0; n];
        let mut cluster_ix = vec![0u32; n];
        let mut clusters = Vec::with_capacity(grid.clusters().len());
        for (ci, cluster) in grid.clusters().iter().enumerate() {
            let mut pairs: Vec<(HostId, f64)> = cluster
                .hosts
                .iter()
                .map(|&h| (h, snap.effective_speed(grid, h)))
                .collect();
            pairs.sort_by(|a, b| key_cmp(a.1, a.0, b.1, b.0));
            for &(h, s) in &pairs {
                speed_of[h.0 as usize] = s;
                cluster_ix[h.0 as usize] = ci as u32;
            }
            clusters.push(ClusterOrder {
                cluster: ClusterId(ci as u32),
                hosts: pairs.iter().map(|&(h, _)| h).collect(),
                speeds: pairs.iter().map(|&(_, s)| s).collect(),
            });
        }
        SnapshotIndex {
            clusters,
            speed_of,
            cluster_ix,
        }
    }

    /// The per-cluster orders, in cluster-index order.
    pub fn clusters(&self) -> &[ClusterOrder] {
        &self.clusters
    }

    /// Number of hosts indexed.
    pub fn n_hosts(&self) -> usize {
        self.speed_of.len()
    }

    /// First index in `c`'s order at which `(speed, h)` files — the
    /// host's exact position if present (keys are unique), else its
    /// insertion point.
    fn lower_bound(c: &ClusterOrder, speed: f64, h: HostId) -> usize {
        let (mut lo, mut hi) = (0usize, c.hosts.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if key_cmp(c.speeds[mid], c.hosts[mid], speed, h) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The first `k` hosts of cluster `ci`'s order that are set in
    /// `eligible` — the host list of the prefix a cached
    /// `(prefix length, predicted)` cluster score refers to, materialized
    /// only for the winning cluster of a mapping decision.
    pub fn eligible_prefix(&self, ci: usize, eligible: &HostBitset, k: usize) -> Vec<HostId> {
        let order = &self.clusters[ci];
        let mut hosts = Vec::with_capacity(k);
        for &h in &order.hosts {
            if eligible.contains(h) {
                hosts.push(h);
                if hosts.len() == k {
                    break;
                }
            }
        }
        hosts
    }

    /// Bring the index up to date with `snap` given the hosts whose
    /// forecasts changed since the last sync (the
    /// [`grads_nws::NwsService::dirty_hosts`] set). Each changed host is
    /// removed at its old key and re-inserted at its new one; when the
    /// delta covers more than a quarter of the grid, a full rebuild is
    /// cheaper and provably equivalent, so we do that instead.
    pub fn repair(
        &mut self,
        grid: &Grid,
        snap: &ForecastSnapshot,
        changed: &[HostId],
    ) -> RepairReport {
        if changed.len() * 4 > self.speed_of.len() {
            *self = Self::build(grid, snap);
            return RepairReport {
                moved: changed.len(),
                rebuilt: true,
            };
        }
        let mut moved = 0;
        for &h in changed {
            let hi = h.0 as usize;
            let new = snap.effective_speed(grid, h);
            let old = self.speed_of[hi];
            if new.to_bits() == old.to_bits() {
                continue; // forecast bits moved and came back, or a collision
            }
            let c = &mut self.clusters[self.cluster_ix[hi] as usize];
            let at = Self::lower_bound(c, old, h);
            debug_assert_eq!(c.hosts[at], h, "index lost track of a host key");
            c.hosts.remove(at);
            c.speeds.remove(at);
            let to = Self::lower_bound(c, new, h);
            c.hosts.insert(to, h);
            c.speeds.insert(to, new);
            self.speed_of[hi] = new;
            moved += 1;
        }
        RepairReport {
            moved,
            rebuilt: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::CandidateWalk;
    use grads_nws::NwsService;
    use grads_perf::TreeBcastPrefix;
    use grads_sim::topology::{GridBuilder, HostSpec};

    fn setup(hosts_per_cluster: usize) -> (Grid, NwsService) {
        let mut b = GridBuilder::new();
        let mut ids = Vec::new();
        for c in 0..3 {
            let id = b.cluster(&format!("C{c}"));
            b.local_link(id, 1e8, 1e-4);
            for i in 0..hosts_per_cluster {
                b.add_host(
                    id,
                    &HostSpec::with_speed(3e8 + 1e8 * ((c * 7 + i * 3) % 5) as f64),
                );
            }
            ids.push(id);
        }
        b.connect(ids[0], ids[1], 4e6, 0.03);
        b.connect(ids[0], ids[2], 2e6, 0.05);
        b.connect(ids[1], ids[2], 3e6, 0.04);
        let mut nws = NwsService::new();
        let n = (3 * hosts_per_cluster) as u32;
        for i in 0..n {
            for j in 0..10 {
                nws.observe_cpu(HostId(i), 0.3 + 0.04 * ((i * 5 + j) % 13) as f64);
            }
        }
        (b.build().unwrap(), nws)
    }

    fn assert_index_matches_full_sort(grid: &Grid, snap: &ForecastSnapshot, idx: &SnapshotIndex) {
        let fresh = SnapshotIndex::build(grid, snap);
        for (a, b) in idx.clusters().iter().zip(fresh.clusters()) {
            assert_eq!(a.hosts, b.hosts, "order diverged in {:?}", a.cluster);
            let ab: Vec<u64> = a.speeds.iter().map(|s| s.to_bits()).collect();
            let bb: Vec<u64> = b.speeds.iter().map(|s| s.to_bits()).collect();
            assert_eq!(ab, bb, "speeds diverged in {:?}", a.cluster);
        }
    }

    #[test]
    fn bitset_basics() {
        let mut s = HostBitset::new(130);
        assert!(s.is_empty());
        assert!(s.insert(HostId(0)));
        assert!(s.insert(HostId(64)));
        assert!(s.insert(HostId(129)));
        assert!(!s.insert(HostId(64)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(HostId(129)) && !s.contains(HostId(128)));
        assert!(s.remove(HostId(64)));
        assert!(!s.remove(HostId(64)));
        assert_eq!(s.len(), 2);
        assert!(!s.contains(HostId(500)), "out of range is absent");
    }

    #[test]
    fn repair_equals_full_resort_across_observation_rounds() {
        let (grid, mut nws) = setup(6);
        nws.enable_delta_tracking();
        let mut snap = ForecastSnapshot::capture_sync(&grid, &mut nws);
        let mut idx = SnapshotIndex::build(&grid, &snap);
        for round in 0..12u32 {
            // A few hosts drift each round, including reversions.
            for k in 0..3 {
                let h = (round * 5 + k * 7) % 18;
                nws.observe_cpu(HostId(h), 0.2 + 0.05 * ((round + k) % 2) as f64);
            }
            let dirty = nws.dirty_hosts();
            snap = ForecastSnapshot::capture_delta(&grid, &mut nws, &snap);
            let rep = idx.repair(&grid, &snap, &dirty);
            assert!(!rep.rebuilt, "small deltas must take the repair path");
            assert!(rep.moved <= dirty.len());
            assert_index_matches_full_sort(&grid, &snap, &idx);
        }
    }

    #[test]
    fn huge_delta_falls_back_to_rebuild() {
        let (grid, mut nws) = setup(6);
        nws.enable_delta_tracking();
        let snap0 = ForecastSnapshot::capture_sync(&grid, &mut nws);
        let mut idx = SnapshotIndex::build(&grid, &snap0);
        for h in 0..18u32 {
            nws.observe_cpu(HostId(h), 0.9);
        }
        let dirty = nws.dirty_hosts();
        assert!(dirty.len() * 4 > 18);
        let snap = ForecastSnapshot::capture_delta(&grid, &mut nws, &snap0);
        let rep = idx.repair(&grid, &snap, &dirty);
        assert!(rep.rebuilt);
        assert_index_matches_full_sort(&grid, &snap, &idx);
    }

    #[test]
    fn indexed_walk_matches_fresh_walk_bitwise() {
        let (grid, nws) = setup(8);
        let snap = ForecastSnapshot::capture(&grid, &nws);
        let idx = SnapshotIndex::build(&grid, &snap);
        let n = 24u32;
        // Deterministic pseudo-random eligibility patterns.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..40 {
            let mut bits = HostBitset::new(n as usize);
            let mut eligible = Vec::new();
            let mut counts = vec![0usize; grid.clusters().len()];
            for h in 0..n {
                if next() % 3 != 0 {
                    bits.insert(HostId(h));
                    eligible.push(HostId(h));
                    counts[(h / 8) as usize] += 1;
                }
            }
            for (min_p, max_p) in [(1, 4), (2, 3), (3, 24), (1, 1)] {
                let fresh = CandidateWalk::new(&grid, &snap, &eligible, min_p, max_p);
                let indexed = CandidateWalk::from_index(&idx, &bits, &counts, min_p, max_p);
                let (flops, bytes) = (2e12, 1.5e7);
                let a = fresh.select(|| TreeBcastPrefix::new(&grid, &snap, flops, bytes), 1);
                let b = indexed.select(|| TreeBcastPrefix::new(&grid, &snap, flops, bytes), 1);
                match (&a, &b) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.hosts, b.hosts, "trial {trial} {min_p}..={max_p}");
                        assert_eq!(a.cluster, b.cluster);
                        assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
                    }
                    (None, None) => {}
                    _ => panic!("presence mismatch, trial {trial} {min_p}..={max_p}"),
                }
            }
        }
    }

    #[test]
    fn indexed_walk_truncates_to_max_procs() {
        let (grid, nws) = setup(8);
        let snap = ForecastSnapshot::capture(&grid, &nws);
        let idx = SnapshotIndex::build(&grid, &snap);
        let mut bits = HostBitset::new(24);
        for h in 0..24u32 {
            bits.insert(HostId(h));
        }
        let counts = vec![8usize; 3];
        let walk = CandidateWalk::from_index(&idx, &bits, &counts, 2, 3);
        for c in walk.clusters() {
            assert_eq!(c.hosts.len(), 3, "only max_procs hosts are materialized");
        }
        assert_eq!(walk.n_candidates(), 3 * 2);
    }
}
