//! Decision-path tuning knobs, mirroring the kernel's `EngineTune`.
//!
//! The scheduler has two implementations of MPI resource selection that
//! are proven bit-identical (unit, property, and end-to-end levels — see
//! `tests/prop_candidates.rs` and the root `sched_path_determinism`
//! suite): the seed reference path and the snapshot/incremental/parallel
//! fast path. [`SchedTune`] selects between them the same way
//! `EngineTune` selects kernel substrates, so experiments can A/B the
//! decision path without touching application code.

/// Which resource-selection implementation the scheduler uses.
///
/// Both paths enumerate the same candidates in the same order and apply
/// the same first-wins argmin over `(predicted, cluster, prefix length)`,
/// so the chosen [`crate::ResourceChoice`] is bit-identical across modes
/// at any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionPath {
    /// The seed path: materialize every candidate prefix and re-run the
    /// forecast ensemble inside sort comparators and predictor calls.
    /// Kept as the benchmark baseline.
    Reference,
    /// Forecast snapshot + zero-materialization prefix walk + parallel
    /// deterministic argmin. The default.
    #[default]
    Fast,
}

/// Decision-path tuning bundled for experiment drivers, the analog of
/// `EngineTune` for the scheduler/rescheduler half of the decision loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedTune {
    /// Which selection implementation to run.
    pub path: DecisionPath,
    /// Worker threads for the fast path's cluster-sharded scorer
    /// (`1` = score on the calling thread). Ignored by the reference
    /// path. The argmin is bit-identical at any value.
    pub workers: usize,
    /// Critical-path attribution feedback strength, in thousandths
    /// (`0` = off, the default; `250` = α 0.25). Stored as an integer so
    /// the tune stays `Eq`/hashable. When on, drivers that keep a
    /// flight-recorder timeline inflate a candidate prefix's predicted
    /// time by `1 + α · w̄`, where `w̄` is the mean measured
    /// critical-path share of the prefix's hosts from the previous
    /// incarnation (`grads_perf::AttrPrefix`) — hosts that carried the
    /// last incarnation's critical path are penalized in the next
    /// mapping. Off ⇒ the scoring arithmetic is untouched and decisions
    /// are bit-identical to a build without the knob.
    pub attr_alpha_milli: u32,
    /// Incremental decision epochs (default off). When on, service
    /// drivers maintain the round's scheduling state incrementally —
    /// delta forecast capture ([`grads_nws::ForecastSnapshot::capture_delta`]),
    /// a persistent [`crate::SnapshotIndex`] repaired from the snapshot
    /// delta instead of re-sorted per job, and a reusable mapping plan
    /// with per-cluster free-host bitsets and a within-round placement
    /// memo. Every decision, ledger, and bench byte is bit-identical to
    /// the rebuilt-per-job path; only the cost of reaching them changes.
    pub epoch: bool,
}

impl Default for SchedTune {
    fn default() -> Self {
        SchedTune {
            path: DecisionPath::default(),
            workers: 1,
            attr_alpha_milli: 0,
            epoch: false,
        }
    }
}

impl SchedTune {
    /// The seed reference path.
    pub fn reference() -> Self {
        SchedTune {
            path: DecisionPath::Reference,
            workers: 1,
            attr_alpha_milli: 0,
            epoch: false,
        }
    }

    /// The fast path, scored on the calling thread.
    pub fn fast() -> Self {
        SchedTune {
            path: DecisionPath::Fast,
            workers: 1,
            attr_alpha_milli: 0,
            epoch: false,
        }
    }

    /// The fast path with a cluster-sharded parallel scorer.
    pub fn fast_parallel(workers: usize) -> Self {
        SchedTune {
            path: DecisionPath::Fast,
            workers: workers.max(1),
            attr_alpha_milli: 0,
            epoch: false,
        }
    }

    /// This tune with incremental decision epochs switched `on`.
    pub fn with_epoch(mut self, on: bool) -> Self {
        self.epoch = on;
        self
    }

    /// This tune with attribution feedback at strength
    /// `alpha_milli / 1000`.
    pub fn with_attr_alpha_milli(mut self, alpha_milli: u32) -> Self {
        self.attr_alpha_milli = alpha_milli;
        self
    }

    /// The feedback strength as a float (`0.0` = off). Derived from the
    /// integer field, so equal tunes always yield bitwise-equal alphas.
    pub fn attr_alpha(&self) -> f64 {
        self.attr_alpha_milli as f64 * 1e-3
    }
}
