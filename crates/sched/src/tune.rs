//! Decision-path tuning knobs, mirroring the kernel's `EngineTune`.
//!
//! The scheduler has two implementations of MPI resource selection that
//! are proven bit-identical (unit, property, and end-to-end levels — see
//! `tests/prop_candidates.rs` and the root `sched_path_determinism`
//! suite): the seed reference path and the snapshot/incremental/parallel
//! fast path. [`SchedTune`] selects between them the same way
//! `EngineTune` selects kernel substrates, so experiments can A/B the
//! decision path without touching application code.

/// Which resource-selection implementation the scheduler uses.
///
/// Both paths enumerate the same candidates in the same order and apply
/// the same first-wins argmin over `(predicted, cluster, prefix length)`,
/// so the chosen [`crate::ResourceChoice`] is bit-identical across modes
/// at any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionPath {
    /// The seed path: materialize every candidate prefix and re-run the
    /// forecast ensemble inside sort comparators and predictor calls.
    /// Kept as the benchmark baseline.
    Reference,
    /// Forecast snapshot + zero-materialization prefix walk + parallel
    /// deterministic argmin. The default.
    #[default]
    Fast,
}

/// Decision-path tuning bundled for experiment drivers, the analog of
/// `EngineTune` for the scheduler/rescheduler half of the decision loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedTune {
    /// Which selection implementation to run.
    pub path: DecisionPath,
    /// Worker threads for the fast path's cluster-sharded scorer
    /// (`1` = score on the calling thread). Ignored by the reference
    /// path. The argmin is bit-identical at any value.
    pub workers: usize,
}

impl Default for SchedTune {
    fn default() -> Self {
        SchedTune {
            path: DecisionPath::default(),
            workers: 1,
        }
    }
}

impl SchedTune {
    /// The seed reference path.
    pub fn reference() -> Self {
        SchedTune {
            path: DecisionPath::Reference,
            workers: 1,
        }
    }

    /// The fast path, scored on the calling thread.
    pub fn fast() -> Self {
        SchedTune {
            path: DecisionPath::Fast,
            workers: 1,
        }
    }

    /// The fast path with a cluster-sharded parallel scorer.
    pub fn fast_parallel(workers: usize) -> Self {
        SchedTune {
            path: DecisionPath::Fast,
            workers: workers.max(1),
        }
    }
}
