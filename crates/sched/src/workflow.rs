//! The GrADS workflow scheduler (§3.1) and baseline schedulers.
//!
//! For each dependence level the scheduler ranks every eligible resource
//! for every component (`rank = w1·ecost + w2·dcost`), collates the
//! performance matrix, runs the min-min / max-min / sufferage heuristics,
//! and keeps the mapping with the smallest overall makespan. Baselines
//! (random, round-robin, greedy-ecost) and an HEFT implementation are
//! provided for the evaluation harness.

use crate::dag::Workflow;
use crate::heuristics::{map_tasks, Heuristic};
use grads_nws::NwsService;
use grads_perf::{rank, RankWeights, ResourceInfo};
use grads_sim::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A complete workflow schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Resource index assigned to each component.
    pub placement: Vec<usize>,
    /// Start time of each component.
    pub start: Vec<f64>,
    /// Finish time of each component.
    pub finish: Vec<f64>,
    /// Overall completion time.
    pub makespan: f64,
    /// Which strategy produced it.
    pub strategy: String,
}

/// Evaluate a fixed placement: list-schedule the components in topological
/// order with per-resource serialization and data-transfer delays. This is
/// the common yardstick for the GrADS heuristics and all baselines.
pub fn evaluate_placement(
    wf: &Workflow,
    grid: &Grid,
    nws: &NwsService,
    resources: &[ResourceInfo],
    placement: &[usize],
    strategy: &str,
) -> Schedule {
    let order = wf.topo_order().expect("valid workflow");
    let n = wf.len();
    let mut start = vec![0.0; n];
    let mut finish = vec![0.0; n];
    let mut ready = vec![0.0f64; resources.len()];
    for &c in &order {
        let r = placement[c];
        let mut data_ready = 0.0f64;
        for e in wf.preds(c) {
            let t = finish[e.from]
                + nws.transfer_time(
                    grid,
                    resources[placement[e.from]].host,
                    resources[r].host,
                    e.bytes,
                );
            data_ready = data_ready.max(t);
        }
        let s = ready[r].max(data_ready);
        let ecost = wf.components[c].model.ecost(&resources[r]);
        start[c] = s;
        finish[c] = s + ecost;
        ready[r] = finish[c];
    }
    let makespan = finish.iter().fold(0.0f64, |a, &b| a.max(b));
    Schedule {
        placement: placement.to_vec(),
        start,
        finish,
        makespan,
        strategy: strategy.to_string(),
    }
}

/// The GrADS workflow scheduler.
pub struct WorkflowScheduler {
    /// Rank-function weights.
    pub weights: RankWeights,
    /// Heuristics to try (default: all three).
    pub heuristics: Vec<Heuristic>,
}

impl Default for WorkflowScheduler {
    fn default() -> Self {
        WorkflowScheduler {
            weights: RankWeights::default(),
            heuristics: Heuristic::all().to_vec(),
        }
    }
}

impl WorkflowScheduler {
    /// Schedule a workflow over the given resources: run every configured
    /// heuristic level-by-level and return the schedule with the minimum
    /// makespan (plus per-heuristic makespans for diagnostics).
    pub fn schedule(
        &self,
        wf: &Workflow,
        grid: &Grid,
        nws: &NwsService,
        resources: &[ResourceInfo],
    ) -> (Schedule, Vec<(String, f64)>) {
        assert!(!self.heuristics.is_empty(), "need at least one heuristic");
        let mut best: Option<Schedule> = None;
        let mut all = Vec::new();
        for &h in &self.heuristics {
            let s = self.schedule_with(h, wf, grid, nws, resources);
            all.push((h.name().to_string(), s.makespan));
            match &best {
                Some(b) if b.makespan <= s.makespan => {}
                _ => best = Some(s),
            }
        }
        (best.expect("at least one heuristic ran"), all)
    }

    /// Schedule with one specific heuristic.
    pub fn schedule_with(
        &self,
        h: Heuristic,
        wf: &Workflow,
        grid: &Grid,
        nws: &NwsService,
        resources: &[ResourceInfo],
    ) -> Schedule {
        let levels = wf.levels().expect("valid workflow");
        let n = wf.len();
        let mut placement = vec![usize::MAX; n];
        let mut finish = vec![0.0; n];
        let mut ready = vec![0.0; resources.len()];
        for level in &levels {
            // Build the per-level performance matrix: rank values as cost,
            // predecessor-driven arrival times.
            let mut cost = Vec::with_capacity(level.len());
            let mut arrival = Vec::with_capacity(level.len());
            for &c in level {
                let model = &wf.components[c].model;
                let mut crow = Vec::with_capacity(resources.len());
                let mut arow = Vec::with_capacity(resources.len());
                for res in resources {
                    // dcost: time to pull every input onto this resource
                    // under current network conditions (§3.1).
                    let mut dcost = 0.0;
                    let mut data_ready = 0.0f64;
                    for e in wf.preds(c) {
                        let tt = nws.transfer_time(
                            grid,
                            resources[placement[e.from]].host,
                            res.host,
                            e.bytes,
                        );
                        dcost += tt;
                        data_ready = data_ready.max(finish[e.from] + tt);
                    }
                    crow.push(rank(model.as_ref(), res, dcost, self.weights));
                    arow.push(data_ready);
                }
                cost.push(crow);
                arrival.push(arow);
            }
            let placements = map_tasks(h, &cost, &arrival, &mut ready);
            for (k, &c) in level.iter().enumerate() {
                placement[c] = placements[k].machine;
                finish[c] = placements[k].finish;
            }
        }
        // Re-evaluate with the common yardstick so heuristics and
        // baselines are compared on identical semantics.
        evaluate_placement(wf, grid, nws, resources, &placement, h.name())
    }
}

/// Indices of resources on which component `c` is eligible (finite rank
/// with zero dcost).
fn eligible(wf: &Workflow, c: usize, resources: &[ResourceInfo], w: RankWeights) -> Vec<usize> {
    let model = &wf.components[c].model;
    (0..resources.len())
        .filter(|&r| rank(model.as_ref(), &resources[r], 0.0, w).is_finite())
        .collect()
}

/// Baseline: uniformly random eligible resource per component.
pub fn schedule_random(
    wf: &Workflow,
    grid: &Grid,
    nws: &NwsService,
    resources: &[ResourceInfo],
    seed: u64,
) -> Schedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = RankWeights::default();
    let placement: Vec<usize> = (0..wf.len())
        .map(|c| {
            let el = eligible(wf, c, resources, w);
            assert!(!el.is_empty(), "component {c} has no eligible resource");
            el[rng.gen_range(0..el.len())]
        })
        .collect();
    evaluate_placement(wf, grid, nws, resources, &placement, "random")
}

/// Baseline: round-robin over each component's eligible resources.
pub fn schedule_round_robin(
    wf: &Workflow,
    grid: &Grid,
    nws: &NwsService,
    resources: &[ResourceInfo],
) -> Schedule {
    let w = RankWeights::default();
    let placement: Vec<usize> = (0..wf.len())
        .map(|c| {
            let el = eligible(wf, c, resources, w);
            assert!(!el.is_empty(), "component {c} has no eligible resource");
            el[c % el.len()]
        })
        .collect();
    evaluate_placement(wf, grid, nws, resources, &placement, "round-robin")
}

/// Baseline: each component independently to its minimum-`ecost` resource,
/// ignoring data movement and contention.
pub fn schedule_greedy_ecost(
    wf: &Workflow,
    grid: &Grid,
    nws: &NwsService,
    resources: &[ResourceInfo],
) -> Schedule {
    let w = RankWeights::default();
    let placement: Vec<usize> = (0..wf.len())
        .map(|c| {
            let el = eligible(wf, c, resources, w);
            assert!(!el.is_empty(), "component {c} has no eligible resource");
            *el.iter()
                .min_by(|&&a, &&b| {
                    let ea = wf.components[c].model.ecost(&resources[a]);
                    let eb = wf.components[c].model.ecost(&resources[b]);
                    ea.total_cmp(&eb)
                })
                .expect("non-empty eligibility")
        })
        .collect();
    evaluate_placement(wf, grid, nws, resources, &placement, "greedy-ecost")
}

/// HEFT (Heterogeneous Earliest Finish Time): a modern list scheduler used
/// as a strong baseline. Components are prioritized by upward rank (mean
/// execution + critical downstream path), then greedily placed on the
/// resource minimizing earliest finish time.
pub fn schedule_heft(
    wf: &Workflow,
    grid: &Grid,
    nws: &NwsService,
    resources: &[ResourceInfo],
) -> Schedule {
    let n = wf.len();
    let w = RankWeights::default();
    // Mean execution cost per component over its eligible resources.
    let mean_ecost: Vec<f64> = (0..n)
        .map(|c| {
            let el = eligible(wf, c, resources, w);
            el.iter()
                .map(|&r| wf.components[c].model.ecost(&resources[r]))
                .sum::<f64>()
                / el.len().max(1) as f64
        })
        .collect();
    // Mean transfer time per edge over all resource pairs (approximate
    // with the grid-average of a representative pair cost).
    let mean_bw: f64 = {
        let links = grid.links();
        if links.is_empty() {
            f64::INFINITY
        } else {
            links.iter().map(|l| l.bandwidth).sum::<f64>() / links.len() as f64
        }
    };
    // Upward ranks in reverse topological order.
    let order = wf.topo_order().expect("valid workflow");
    let mut urank = vec![0.0f64; n];
    for &c in order.iter().rev() {
        let mut down = 0.0f64;
        for e in wf.succs(c) {
            down = down.max(e.bytes / mean_bw + urank[e.to]);
        }
        urank[c] = mean_ecost[c] + down;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| urank[b].total_cmp(&urank[a]));
    // Greedy EFT placement.
    let mut placement = vec![usize::MAX; n];
    let mut finish = vec![0.0f64; n];
    let mut ready = vec![0.0f64; resources.len()];
    for &c in &idx {
        let el = eligible(wf, c, resources, w);
        assert!(!el.is_empty(), "component {c} has no eligible resource");
        let mut best: Option<(usize, f64, f64)> = None; // (r, start, finish)
        for &r in &el {
            let mut data_ready = 0.0f64;
            let mut all_preds_placed = true;
            for e in wf.preds(c) {
                if placement[e.from] == usize::MAX {
                    all_preds_placed = false;
                    break;
                }
                let tt = nws.transfer_time(
                    grid,
                    resources[placement[e.from]].host,
                    resources[r].host,
                    e.bytes,
                );
                data_ready = data_ready.max(finish[e.from] + tt);
            }
            // HEFT's rank order guarantees predecessors come first.
            debug_assert!(all_preds_placed, "upward-rank order violated");
            let s = ready[r].max(data_ready);
            let f = s + wf.components[c].model.ecost(&resources[r]);
            match best {
                Some((_, _, bf)) if f >= bf => {}
                _ => best = Some((r, s, f)),
            }
        }
        let (r, _s, f) = best.expect("eligible resource found");
        placement[c] = r;
        finish[c] = f;
        ready[r] = f;
    }
    evaluate_placement(wf, grid, nws, resources, &placement, "heft")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::testutil::flat_model;
    use grads_sim::topology::{GridBuilder, HostSpec};

    /// Heterogeneous two-cluster grid: 2 fast hosts, 4 slow hosts.
    fn setup() -> (Grid, Vec<ResourceInfo>) {
        let mut b = GridBuilder::new();
        let f = b.cluster("FAST");
        b.local_link(f, 1e8, 1e-4);
        b.add_hosts(f, 2, &HostSpec::with_speed(2e9));
        let s = b.cluster("SLOW");
        b.local_link(s, 1e8, 1e-4);
        b.add_hosts(s, 4, &HostSpec::with_speed(5e8));
        b.connect(f, s, 1e7, 0.02);
        let grid = b.build().unwrap();
        let nws = NwsService::new();
        let resources: Vec<ResourceInfo> = (0..grid.hosts().len())
            .map(|i| ResourceInfo::from_grid(&grid, &nws, HostId(i as u32)))
            .collect();
        (grid, resources)
    }

    /// EMAN-like linear workflow with one parallelizable stage.
    fn fan_workflow(par: usize) -> Workflow {
        let mut wf = Workflow::new();
        let pre = wf.add_component("preproc", flat_model(2e9, 0.0, 1e7));
        let mut fans = Vec::new();
        for i in 0..par {
            let c = wf.add_component(&format!("refine{i}"), flat_model(4e9, 1e7, 1e6));
            wf.add_edge(pre, c, 1e7);
            fans.push(c);
        }
        let post = wf.add_component("assemble", flat_model(1e9, 1e6, 0.0));
        for c in fans {
            wf.add_edge(c, post, 1e6);
        }
        wf
    }

    #[test]
    fn scheduler_beats_random_and_round_robin() {
        let (grid, resources) = setup();
        let nws = NwsService::new();
        let wf = fan_workflow(8);
        let (best, per) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        assert_eq!(per.len(), 3);
        let rr = schedule_round_robin(&wf, &grid, &nws, &resources);
        // Average a few random schedules for a fair comparison.
        let rnd_avg: f64 = (0..5)
            .map(|s| schedule_random(&wf, &grid, &nws, &resources, s).makespan)
            .sum::<f64>()
            / 5.0;
        assert!(
            best.makespan <= rr.makespan,
            "GrADS {} vs RR {}",
            best.makespan,
            rr.makespan
        );
        assert!(
            best.makespan < rnd_avg,
            "GrADS {} vs random-avg {rnd_avg}",
            best.makespan
        );
    }

    #[test]
    fn parallel_stage_spreads_across_hosts() {
        // A fan wide enough that serializing on the two fast hosts loses
        // to spilling onto the slow cluster.
        let (grid, resources) = setup();
        let nws = NwsService::new();
        let wf = fan_workflow(12);
        let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        let used: std::collections::HashSet<usize> =
            best.placement[1..13].iter().copied().collect();
        assert!(used.len() >= 3, "fan stage should spread, used {used:?}");
    }

    #[test]
    fn single_component_goes_to_fastest_host() {
        let (grid, resources) = setup();
        let nws = NwsService::new();
        let mut wf = Workflow::new();
        wf.add_component("solo", flat_model(1e10, 0.0, 0.0));
        let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        assert!(resources[best.placement[0]].speed == 2e9);
    }

    #[test]
    fn loaded_fast_host_avoided() {
        let (grid, mut resources) = setup();
        let nws = NwsService::new();
        // Both fast hosts heavily loaded (10% availability).
        resources[0].availability = 0.1;
        resources[1].availability = 0.1;
        let mut wf = Workflow::new();
        wf.add_component("solo", flat_model(1e10, 0.0, 0.0));
        let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        assert_eq!(resources[best.placement[0]].speed, 5e8);
    }

    #[test]
    fn chain_respects_dependences() {
        let (grid, resources) = setup();
        let nws = NwsService::new();
        let mut wf = Workflow::new();
        let a = wf.add_component("a", flat_model(1e9, 0.0, 1e6));
        let b = wf.add_component("b", flat_model(1e9, 1e6, 0.0));
        wf.add_edge(a, b, 1e6);
        let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        assert!(best.start[1] >= best.finish[0]);
        assert!(best.makespan >= best.finish[1] - 1e-12);
    }

    #[test]
    fn heft_is_competitive() {
        let (grid, resources) = setup();
        let nws = NwsService::new();
        let wf = fan_workflow(8);
        let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        let heft = schedule_heft(&wf, &grid, &nws, &resources);
        // HEFT should be in the same ballpark as the GrADS pick (within 2x).
        assert!(heft.makespan <= best.makespan * 2.0);
        assert!(best.makespan <= heft.makespan * 2.0);
    }

    #[test]
    fn greedy_ecost_concentrates_on_fast_hosts() {
        let (grid, resources) = setup();
        let nws = NwsService::new();
        let wf = fan_workflow(8);
        let g = schedule_greedy_ecost(&wf, &grid, &nws, &resources);
        for &r in &g.placement {
            assert_eq!(resources[r].speed, 2e9);
        }
        // And therefore serializes: the GrADS schedule should win.
        let (best, _) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        assert!(best.makespan <= g.makespan + 1e-9);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (grid, resources) = setup();
        let nws = NwsService::new();
        let wf = fan_workflow(5);
        let s1 = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        let s2 = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        assert_eq!(s1.0.placement, s2.0.placement);
        assert_eq!(s1.0.makespan, s2.0.makespan);
    }
}
