//! Grid economies — the paper's §5 future-work capability ("Grid
//! economies for allocating resources"), after the G-commerce work it
//! cites (\[24\]: Wolski, Plank, Brevik & Bryan, *"G-commerce: Market
//! formulations controlling resource allocation on the computational
//! grid"*).
//!
//! Two market formulations are implemented, matching G-commerce's
//! comparison:
//!
//! * a **commodities market**: one price per resource type, adjusted by
//!   tâtonnement (excess demand raises the price, excess supply lowers
//!   it) until the market approximately clears; consumers then receive
//!   allocations proportional to their demand at the equilibrium price;
//! * **auctions**: capacity is sold slot by slot to the highest bidder at
//!   the second-highest price.
//!
//! G-commerce's finding — commodities markets reach smoother, more
//! predictable prices than auctions while clearing comparably — is
//! reproduced by the tests and the price-stability metric.

/// A resource seller: `capacity` divisible CPU slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Producer {
    /// Slots offered.
    pub capacity: f64,
}

/// A resource buyer with a budget and a maximum useful demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Consumer {
    /// Money available per market round.
    pub budget: f64,
    /// Slots beyond this are useless to the job.
    pub max_demand: f64,
}

/// Demand of one consumer at a price: budget-limited and need-capped.
pub fn demand_at(c: &Consumer, price: f64) -> f64 {
    (c.budget / price.max(1e-12)).min(c.max_demand)
}

/// Result of running a commodities market to (approximate) equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Clearing price.
    pub price: f64,
    /// Residual excess demand (demand − supply) at that price.
    pub excess: f64,
    /// Tâtonnement iterations used.
    pub iterations: usize,
    /// Whether |excess| fell below the tolerance.
    pub converged: bool,
    /// Per-consumer allocations (slots), demand-proportional if the
    /// market is over-subscribed at the clearing price.
    pub allocations: Vec<f64>,
    /// Price trajectory (for stability analysis).
    pub price_history: Vec<f64>,
}

/// A single-commodity market with tâtonnement price adjustment.
#[derive(Debug, Clone)]
pub struct CommodityMarket {
    /// Current price.
    pub price: f64,
    /// Adjustment gain: `p ← p · (1 + λ · excess/supply)`.
    pub lambda: f64,
}

impl Default for CommodityMarket {
    fn default() -> Self {
        CommodityMarket {
            price: 1.0,
            lambda: 0.5,
        }
    }
}

impl CommodityMarket {
    /// Total offered capacity.
    pub fn supply(producers: &[Producer]) -> f64 {
        producers.iter().map(|p| p.capacity).sum()
    }

    /// Aggregate demand at a price.
    pub fn demand(consumers: &[Consumer], price: f64) -> f64 {
        consumers.iter().map(|c| demand_at(c, price)).sum()
    }

    /// Iterate price adjustment until the excess demand is within
    /// `tol · supply` or `max_iters` rounds pass, then allocate.
    pub fn clear(
        &mut self,
        producers: &[Producer],
        consumers: &[Consumer],
        max_iters: usize,
        tol: f64,
    ) -> Equilibrium {
        let supply = Self::supply(producers).max(1e-12);
        let mut history = Vec::with_capacity(max_iters + 1);
        history.push(self.price);
        let mut iterations = 0;
        let mut excess = Self::demand(consumers, self.price) - supply;
        while iterations < max_iters && excess.abs() > tol * supply {
            let step = (self.lambda * excess / supply).clamp(-0.5, 0.5);
            self.price = (self.price * (1.0 + step)).max(1e-9);
            history.push(self.price);
            iterations += 1;
            excess = Self::demand(consumers, self.price) - supply;
        }
        // Allocate: everyone gets their demand, scaled down uniformly if
        // the market is still over-subscribed.
        let total = Self::demand(consumers, self.price);
        let scale = if total > supply { supply / total } else { 1.0 };
        let allocations = consumers
            .iter()
            .map(|c| demand_at(c, self.price) * scale)
            .collect();
        Equilibrium {
            price: self.price,
            excess,
            iterations,
            converged: excess.abs() <= tol * supply,
            allocations,
            price_history: history,
        }
    }
}

/// Result of an auction round.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionOutcome {
    /// Per-consumer allocations (slots).
    pub allocations: Vec<f64>,
    /// Price paid for each slot sold, in sale order.
    pub slot_prices: Vec<f64>,
}

/// Second-price sealed-bid auction, one slot at a time: each consumer bids
/// its per-slot valuation (remaining budget over remaining useful demand);
/// the winner pays the runner-up's bid.
pub fn auction_allocate(producers: &[Producer], consumers: &[Consumer]) -> AuctionOutcome {
    let mut capacity = CommodityMarket::supply(producers);
    let mut remaining_budget: Vec<f64> = consumers.iter().map(|c| c.budget).collect();
    let mut remaining_need: Vec<f64> = consumers.iter().map(|c| c.max_demand).collect();
    let mut allocations = vec![0.0; consumers.len()];
    let mut slot_prices = Vec::new();
    while capacity >= 1.0 {
        // Bids: value of one more slot to each consumer.
        let mut bids: Vec<(usize, f64)> = remaining_budget
            .iter()
            .zip(&remaining_need)
            .enumerate()
            .filter(|(_, (&b, &n))| n >= 1.0 && b > 0.0)
            .map(|(i, (&b, &n))| (i, b / n.max(1.0)))
            .collect();
        if bids.is_empty() {
            break;
        }
        bids.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let (winner, top) = bids[0];
        let price = bids.get(1).map(|&(_, p)| p).unwrap_or(top * 0.5).min(top);
        let price = price.min(remaining_budget[winner]);
        allocations[winner] += 1.0;
        remaining_budget[winner] -= price;
        remaining_need[winner] -= 1.0;
        capacity -= 1.0;
        slot_prices.push(price);
    }
    AuctionOutcome {
        allocations,
        slot_prices,
    }
}

/// Relative standard deviation of a price series — the G-commerce price
/// stability metric (lower = smoother).
pub fn price_volatility(prices: &[f64]) -> f64 {
    if prices.len() < 2 {
        return 0.0;
    }
    let n = prices.len() as f64;
    let mean = prices.iter().sum::<f64>() / n;
    let var = prices.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean.max(1e-12)
}

/// Jain's fairness index over allocations (1 = perfectly fair).
pub fn jain_fairness(alloc: &[f64]) -> f64 {
    let n = alloc.len() as f64;
    let s: f64 = alloc.iter().sum();
    let s2: f64 = alloc.iter().map(|a| a * a).sum();
    if s2 <= 0.0 {
        return 1.0;
    }
    s * s / (n * s2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn producers(caps: &[f64]) -> Vec<Producer> {
        caps.iter().map(|&c| Producer { capacity: c }).collect()
    }

    fn consumers(specs: &[(f64, f64)]) -> Vec<Consumer> {
        specs
            .iter()
            .map(|&(budget, max_demand)| Consumer { budget, max_demand })
            .collect()
    }

    #[test]
    fn market_converges_and_clears() {
        let p = producers(&[40.0, 60.0]);
        let c = consumers(&[(100.0, 80.0), (50.0, 60.0), (25.0, 30.0)]);
        let mut m = CommodityMarket::default();
        let eq = m.clear(&p, &c, 500, 0.01);
        assert!(eq.converged, "{eq:?}");
        let total: f64 = eq.allocations.iter().sum();
        assert!((total - 100.0).abs() <= 2.0, "market clears: {total}");
        // Richer consumers obtain more.
        assert!(eq.allocations[0] > eq.allocations[1]);
        assert!(eq.allocations[1] > eq.allocations[2]);
    }

    #[test]
    fn scarcity_raises_the_price() {
        let c = consumers(&[(100.0, 1000.0), (100.0, 1000.0)]);
        let mut m_plenty = CommodityMarket::default();
        let eq_plenty = m_plenty.clear(&producers(&[400.0]), &c, 500, 0.01);
        let mut m_scarce = CommodityMarket::default();
        let eq_scarce = m_scarce.clear(&producers(&[40.0]), &c, 500, 0.01);
        assert!(
            eq_scarce.price > eq_plenty.price * 5.0,
            "scarce {} vs plenty {}",
            eq_scarce.price,
            eq_plenty.price
        );
    }

    #[test]
    fn unsaturated_market_gives_everyone_their_demand() {
        let p = producers(&[1000.0]);
        let c = consumers(&[(10.0, 5.0), (10.0, 3.0)]);
        let mut m = CommodityMarket::default();
        let eq = m.clear(&p, &c, 500, 0.01);
        // Price floors out; everyone is capped by need, not money.
        assert!((eq.allocations[0] - 5.0).abs() < 1e-6);
        assert!((eq.allocations[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn auction_sells_to_the_highest_valuations() {
        let p = producers(&[3.0]);
        let c = consumers(&[(90.0, 3.0), (10.0, 3.0)]);
        let out = auction_allocate(&p, &c);
        assert!(out.allocations[0] >= 2.0, "{:?}", out.allocations);
        let sold: f64 = out.allocations.iter().sum();
        assert!((sold - 3.0).abs() < 1e-9);
        assert_eq!(out.slot_prices.len(), 3);
    }

    #[test]
    fn auction_respects_budgets_and_needs() {
        let p = producers(&[10.0]);
        let c = consumers(&[(5.0, 2.0), (5.0, 2.0)]);
        let out = auction_allocate(&p, &c);
        for (i, &a) in out.allocations.iter().enumerate() {
            assert!(a <= 2.0 + 1e-9, "consumer {i} over-allocated: {a}");
        }
        let sold: f64 = out.allocations.iter().sum();
        assert!(sold <= 4.0 + 1e-9, "needs cap total sales: {sold}");
    }

    #[test]
    fn commodity_prices_smoother_than_auction_prices() {
        // The G-commerce comparison: tâtonnement converges to a stable
        // price; sequential auction prices jump around as budgets drain.
        let p = producers(&[50.0]);
        let c = consumers(&[(100.0, 40.0), (60.0, 30.0), (30.0, 25.0), (10.0, 20.0)]);
        let mut m = CommodityMarket::default();
        let eq = m.clear(&p, &c, 500, 0.01);
        assert!(eq.converged);
        // Post-convergence prices: the last few tâtonnement steps.
        let tail = &eq.price_history[eq.price_history.len().saturating_sub(3)..];
        let auction = auction_allocate(&p, &c);
        let v_market = price_volatility(tail);
        let v_auction = price_volatility(&auction.slot_prices);
        assert!(
            v_market < v_auction,
            "market tail volatility {v_market} vs auction {v_auction}"
        );
    }

    #[test]
    fn fairness_metric_sane() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skew = jain_fairness(&[10.0, 0.0, 0.0]);
        assert!((skew - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }
}
