//! Grid economies — the paper's §5 future-work capability ("Grid
//! economies for allocating resources"), after the G-commerce work it
//! cites (\[24\]: Wolski, Plank, Brevik & Bryan, *"G-commerce: Market
//! formulations controlling resource allocation on the computational
//! grid"*).
//!
//! Two market formulations are implemented, matching G-commerce's
//! comparison:
//!
//! * a **commodities market**: one price per resource type, adjusted by
//!   tâtonnement (excess demand raises the price, excess supply lowers
//!   it) until the market approximately clears; consumers then receive
//!   allocations proportional to their demand at the equilibrium price;
//! * **auctions**: capacity is sold slot by slot to the highest bidder at
//!   the second-highest price.
//!
//! G-commerce's finding — commodities markets reach smoother, more
//! predictable prices than auctions while clearing comparably — is
//! reproduced by the tests and the price-stability metric.

/// A resource seller: `capacity` divisible CPU slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Producer {
    /// Slots offered.
    pub capacity: f64,
}

/// A resource buyer with a budget and a maximum useful demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Consumer {
    /// Money available per market round.
    pub budget: f64,
    /// Slots beyond this are useless to the job.
    pub max_demand: f64,
}

/// Demand of one consumer at a price: budget-limited and need-capped.
pub fn demand_at(c: &Consumer, price: f64) -> f64 {
    (c.budget / price.max(1e-12)).min(c.max_demand)
}

/// Result of running a commodities market to (approximate) equilibrium.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Clearing price.
    pub price: f64,
    /// Residual excess demand (demand − supply) at that price.
    pub excess: f64,
    /// Tâtonnement iterations used.
    pub iterations: usize,
    /// Whether |excess| fell below the tolerance.
    pub converged: bool,
    /// Per-consumer allocations (slots), demand-proportional if the
    /// market is over-subscribed at the clearing price.
    pub allocations: Vec<f64>,
    /// Price trajectory (for stability analysis).
    pub price_history: Vec<f64>,
}

/// A single-commodity market with tâtonnement price adjustment.
#[derive(Debug, Clone)]
pub struct CommodityMarket {
    /// Current price.
    pub price: f64,
    /// Adjustment gain: `p ← p · (1 + λ · excess/supply)`.
    pub lambda: f64,
}

impl Default for CommodityMarket {
    fn default() -> Self {
        CommodityMarket {
            price: 1.0,
            lambda: 0.5,
        }
    }
}

impl CommodityMarket {
    /// Total offered capacity.
    pub fn supply(producers: &[Producer]) -> f64 {
        producers.iter().map(|p| p.capacity).sum()
    }

    /// Aggregate demand at a price.
    pub fn demand(consumers: &[Consumer], price: f64) -> f64 {
        consumers.iter().map(|c| demand_at(c, price)).sum()
    }

    /// Iterate price adjustment until the excess demand is within
    /// `tol · supply` or `max_iters` rounds pass, then allocate.
    ///
    /// The returned [`Equilibrium`] is internally consistent by
    /// construction: after the tâtonnement loop exits, the per-consumer
    /// demands are evaluated **once** at the final price, and that single
    /// evaluation supplies the reported `excess`, the `converged` flag,
    /// *and* the `allocations` — the flag always describes the same
    /// equilibrium the allocations were computed at, never a residual
    /// from a pre-step price.
    pub fn clear(
        &mut self,
        producers: &[Producer],
        consumers: &[Consumer],
        max_iters: usize,
        tol: f64,
    ) -> Equilibrium {
        let supply = Self::supply(producers).max(1e-12);
        let mut history = Vec::with_capacity(max_iters + 1);
        history.push(self.price);
        let mut iterations = 0;
        let mut excess = Self::demand(consumers, self.price) - supply;
        while iterations < max_iters && excess.abs() > tol * supply {
            let step = (self.lambda * excess / supply).clamp(-0.5, 0.5);
            self.price = (self.price * (1.0 + step)).max(1e-9);
            history.push(self.price);
            iterations += 1;
            excess = Self::demand(consumers, self.price) - supply;
        }
        // One demand evaluation at the final price feeds excess, flag and
        // allocations alike (everyone gets their demand, scaled down
        // uniformly if the market is still over-subscribed).
        let demands: Vec<f64> = consumers.iter().map(|c| demand_at(c, self.price)).collect();
        let total: f64 = demands.iter().sum();
        let excess = total - supply;
        let scale = if total > supply { supply / total } else { 1.0 };
        let allocations = demands.iter().map(|d| d * scale).collect();
        Equilibrium {
            price: self.price,
            excess,
            iterations,
            converged: excess.abs() <= tol * supply,
            allocations,
            price_history: history,
        }
    }
}

/// Result of an auction round.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionOutcome {
    /// Per-consumer allocations (slots).
    pub allocations: Vec<f64>,
    /// Per-slot price charged for each lot sold, in sale order. The money
    /// actually paid for a lot is `slot_prices[i] * lot_sizes[i]`.
    pub slot_prices: Vec<f64>,
    /// Size of each lot sold (slots), aligned with `slot_prices`. Whole
    /// lots are `1.0`; fractional tails of capacity or of a consumer's
    /// residual need are smaller.
    pub lot_sizes: Vec<f64>,
}

/// Residues below this are treated as exhausted: a budget or need that
/// float arithmetic has ground down to `~1e-12` slots (or currency units)
/// can neither win nor block a sale. See [`auction_allocate`]'s slot
/// granularity contract.
pub const AUCTION_EPS: f64 = 1e-9;

/// Second-price sealed-bid auction: capacity is sold lot by lot to the
/// highest bidder at the runner-up's per-slot bid (half the winner's bid
/// when unopposed, and never above the winner's own bid).
///
/// **Slot granularity contract.** Capacity is divisible: it is sold in
/// lots of *at most* one slot. A lot is `min(1.0, remaining capacity,
/// winner's remaining need)`, so
///
/// * fractional capacity is fully sellable (3.5 slots sell as
///   `1 + 1 + 1 + 0.5`, not as 3 with 0.5 stranded);
/// * a consumer with `max_demand < 1.0` can win (its lot is its need);
/// * payment is pro-rata: a lot of `s` slots at per-slot price `p` costs
///   `s · p`, capped by the winner's remaining budget.
///
/// Budgets and needs below [`AUCTION_EPS`] count as exhausted, so float
/// residue left by repeated subtraction cannot keep a bidder in the loop
/// or strand an unsellable sliver of capacity.
///
/// Each consumer's per-slot valuation is its remaining budget spread over
/// its remaining useful demand, `b / max(n, 1)`: a consumer needing less
/// than one slot concentrates its whole budget on that fraction, so its
/// per-slot bid is its full remaining budget.
pub fn auction_allocate(producers: &[Producer], consumers: &[Consumer]) -> AuctionOutcome {
    let mut capacity = CommodityMarket::supply(producers);
    let mut remaining_budget: Vec<f64> = consumers.iter().map(|c| c.budget).collect();
    let mut remaining_need: Vec<f64> = consumers.iter().map(|c| c.max_demand).collect();
    let mut allocations = vec![0.0; consumers.len()];
    let mut slot_prices = Vec::new();
    let mut lot_sizes = Vec::new();
    while capacity > AUCTION_EPS {
        // Bids: per-slot value of more capacity to each consumer.
        let mut bids: Vec<(usize, f64)> = remaining_budget
            .iter()
            .zip(&remaining_need)
            .enumerate()
            .filter(|(_, (&b, &n))| n > AUCTION_EPS && b > AUCTION_EPS)
            .map(|(i, (&b, &n))| (i, b / n.max(1.0)))
            .collect();
        if bids.is_empty() {
            break;
        }
        bids.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let (winner, top) = bids[0];
        let price = bids.get(1).map(|&(_, p)| p).unwrap_or(top * 0.5).min(top);
        let lot = capacity.min(1.0).min(remaining_need[winner]);
        let paid = (price * lot).min(remaining_budget[winner]);
        allocations[winner] += lot;
        remaining_budget[winner] -= paid;
        remaining_need[winner] -= lot;
        capacity -= lot;
        slot_prices.push(price);
        lot_sizes.push(lot);
    }
    AuctionOutcome {
        allocations,
        slot_prices,
        lot_sizes,
    }
}

/// Relative standard deviation of a price series — the G-commerce price
/// stability metric (lower = smoother).
pub fn price_volatility(prices: &[f64]) -> f64 {
    if prices.len() < 2 {
        return 0.0;
    }
    let n = prices.len() as f64;
    let mean = prices.iter().sum::<f64>() / n;
    let var = prices.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean.max(1e-12)
}

/// Jain's fairness index over allocations (1 = perfectly fair).
pub fn jain_fairness(alloc: &[f64]) -> f64 {
    let n = alloc.len() as f64;
    let s: f64 = alloc.iter().sum();
    let s2: f64 = alloc.iter().map(|a| a * a).sum();
    if s2 <= 0.0 {
        return 1.0;
    }
    s * s / (n * s2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn producers(caps: &[f64]) -> Vec<Producer> {
        caps.iter().map(|&c| Producer { capacity: c }).collect()
    }

    fn consumers(specs: &[(f64, f64)]) -> Vec<Consumer> {
        specs
            .iter()
            .map(|&(budget, max_demand)| Consumer { budget, max_demand })
            .collect()
    }

    #[test]
    fn market_converges_and_clears() {
        let p = producers(&[40.0, 60.0]);
        let c = consumers(&[(100.0, 80.0), (50.0, 60.0), (25.0, 30.0)]);
        let mut m = CommodityMarket::default();
        let eq = m.clear(&p, &c, 500, 0.01);
        assert!(eq.converged, "{eq:?}");
        let total: f64 = eq.allocations.iter().sum();
        assert!((total - 100.0).abs() <= 2.0, "market clears: {total}");
        // Richer consumers obtain more.
        assert!(eq.allocations[0] > eq.allocations[1]);
        assert!(eq.allocations[1] > eq.allocations[2]);
    }

    #[test]
    fn scarcity_raises_the_price() {
        let c = consumers(&[(100.0, 1000.0), (100.0, 1000.0)]);
        let mut m_plenty = CommodityMarket::default();
        let eq_plenty = m_plenty.clear(&producers(&[400.0]), &c, 500, 0.01);
        let mut m_scarce = CommodityMarket::default();
        let eq_scarce = m_scarce.clear(&producers(&[40.0]), &c, 500, 0.01);
        assert!(
            eq_scarce.price > eq_plenty.price * 5.0,
            "scarce {} vs plenty {}",
            eq_scarce.price,
            eq_plenty.price
        );
    }

    #[test]
    fn unsaturated_market_gives_everyone_their_demand() {
        let p = producers(&[1000.0]);
        let c = consumers(&[(10.0, 5.0), (10.0, 3.0)]);
        let mut m = CommodityMarket::default();
        let eq = m.clear(&p, &c, 500, 0.01);
        // Price floors out; everyone is capped by need, not money.
        assert!((eq.allocations[0] - 5.0).abs() < 1e-6);
        assert!((eq.allocations[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn auction_sells_to_the_highest_valuations() {
        let p = producers(&[3.0]);
        let c = consumers(&[(90.0, 3.0), (10.0, 3.0)]);
        let out = auction_allocate(&p, &c);
        assert!(out.allocations[0] >= 2.0, "{:?}", out.allocations);
        let sold: f64 = out.allocations.iter().sum();
        assert!((sold - 3.0).abs() < 1e-9);
        assert_eq!(out.slot_prices.len(), 3);
    }

    #[test]
    fn auction_respects_budgets_and_needs() {
        let p = producers(&[10.0]);
        let c = consumers(&[(5.0, 2.0), (5.0, 2.0)]);
        let out = auction_allocate(&p, &c);
        for (i, &a) in out.allocations.iter().enumerate() {
            assert!(a <= 2.0 + 1e-9, "consumer {i} over-allocated: {a}");
        }
        let sold: f64 = out.allocations.iter().sum();
        assert!(sold <= 4.0 + 1e-9, "needs cap total sales: {sold}");
    }

    #[test]
    fn commodity_prices_smoother_than_auction_prices() {
        // The G-commerce comparison: tâtonnement converges to a stable
        // price; sequential auction prices jump around as budgets drain.
        let p = producers(&[50.0]);
        let c = consumers(&[(100.0, 40.0), (60.0, 30.0), (30.0, 25.0), (10.0, 20.0)]);
        let mut m = CommodityMarket::default();
        let eq = m.clear(&p, &c, 500, 0.01);
        assert!(eq.converged);
        // Post-convergence prices: the last few tâtonnement steps.
        let tail = &eq.price_history[eq.price_history.len().saturating_sub(3)..];
        let auction = auction_allocate(&p, &c);
        let v_market = price_volatility(tail);
        let v_auction = price_volatility(&auction.slot_prices);
        assert!(
            v_market < v_auction,
            "market tail volatility {v_market} vs auction {v_auction}"
        );
    }

    /// Regression (ISSUE 6): `while capacity >= 1.0` used to strand the
    /// fractional tail — 3.5 slots sold as 3 with 0.5 thrown away.
    #[test]
    fn auction_sells_fractional_capacity_tail() {
        let p = producers(&[3.5]);
        let c = consumers(&[(100.0, 10.0)]);
        let out = auction_allocate(&p, &c);
        let sold: f64 = out.allocations.iter().sum();
        assert!(
            (sold - 3.5).abs() < 1e-9,
            "fractional capacity must sell fully: {sold}"
        );
        assert_eq!(out.lot_sizes, vec![1.0, 1.0, 1.0, 0.5]);
        assert_eq!(out.slot_prices.len(), out.lot_sizes.len());
    }

    /// Regression (ISSUE 6): a consumer with `max_demand < 1.0` could
    /// never win a slot (the bid filter required a whole slot of need).
    #[test]
    fn auction_serves_sub_slot_consumers() {
        let p = producers(&[2.0]);
        let c = consumers(&[(50.0, 0.4), (1.0, 2.0)]);
        let out = auction_allocate(&p, &c);
        assert!(
            (out.allocations[0] - 0.4).abs() < 1e-9,
            "sub-slot need must be servable: {:?}",
            out.allocations
        );
        // The rest goes to the whole-slot consumer.
        assert!(
            (out.allocations[1] - 1.6).abs() < 1e-9,
            "{:?}",
            out.allocations
        );
    }

    /// Regression (ISSUE 6): float residue in `remaining_budget` (e.g.
    /// 1e-16 left after repeated subtraction) used to keep a bidder in
    /// the loop; it must count as exhausted.
    #[test]
    fn auction_drops_exhausted_budget_residue() {
        // Consumer 0's budget drains to an O(1e-16) residue after paying
        // for its first slots; consumer 1 has need but no money at all.
        let p = producers(&[10.0]);
        let c = consumers(&[(0.3 + 0.3 + 0.3 - 0.9 + 1e-16, 100.0), (0.0, 100.0)]);
        let out = auction_allocate(&p, &c);
        assert_eq!(
            out.allocations[0], 0.0,
            "residue budget must not win slots: {:?}",
            out.allocations
        );
        assert!(out.slot_prices.is_empty());
    }

    /// Unopposed fractional-need endgame terminates and charges pro-rata.
    #[test]
    fn auction_prices_fractional_lots_pro_rata() {
        let p = producers(&[1.0]);
        let c = consumers(&[(8.0, 0.5)]);
        let out = auction_allocate(&p, &c);
        assert!((out.allocations[0] - 0.5).abs() < 1e-12);
        // Sole bidder: per-slot price is half its bid (b / max(n,1) = 8),
        // and it pays price × lot, not price × whole slot.
        assert_eq!(out.slot_prices, vec![4.0]);
        assert_eq!(out.lot_sizes, vec![0.5]);
    }

    /// Regression (ISSUE 6): `converged`, `excess` and `allocations` must
    /// all describe the same (final-price) equilibrium, including when
    /// the iteration cap — not the tolerance — ends the loop.
    #[test]
    fn clear_flag_and_allocations_agree_at_the_final_price() {
        let p = producers(&[40.0]);
        let cs = [
            consumers(&[(100.0, 80.0), (50.0, 60.0)]),
            consumers(&[(10.0, 5.0)]),
            consumers(&[(1000.0, 1e6), (0.5, 0.25)]),
        ];
        for c in &cs {
            for max_iters in [0usize, 1, 3, 500] {
                let mut m = CommodityMarket {
                    price: 1.0,
                    lambda: 2.5, // aggressive steps force overshoot
                };
                let tol = 0.01;
                let eq = m.clear(&p, c, max_iters, tol);
                let supply = CommodityMarket::supply(&p);
                let demand = CommodityMarket::demand(c, eq.price);
                // excess is the final-price excess, bitwise.
                assert_eq!(
                    eq.excess.to_bits(),
                    (demand - supply).to_bits(),
                    "excess must be measured at the reported price"
                );
                // flag is derived from that same excess.
                assert_eq!(eq.converged, eq.excess.abs() <= tol * supply);
                // allocations are the same demands, scaled to supply.
                let total: f64 = eq.allocations.iter().sum();
                let expect = demand.min(supply);
                assert!(
                    (total - expect).abs() <= 1e-9 * expect.max(1.0),
                    "allocations {total} vs demand-at-price {expect}"
                );
            }
        }
    }

    #[test]
    fn fairness_metric_sane() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skew = jain_fairness(&[10.0, 0.0, 0.0]);
        assert!((skew - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }
}
