//! # grads-sched — workflow and MPI-application scheduling
//!
//! Reproduces §3 of the paper:
//!
//! * [`dag`] — workflow DAGs with per-component performance models;
//! * [`heuristics`] — min-min, max-min, sufferage batch mapping;
//! * [`workflow`] — the GrADS workflow scheduler (rank matrix per
//!   dependence level, three heuristics, keep the best makespan) plus
//!   random / round-robin / greedy baselines and HEFT;
//! * [`mpi_sched`] — processor-set selection for tightly-coupled MPI
//!   applications (the §4.1 QR experiment's initial schedule);
//! * [`walk`] + [`tune`] — the grid-scale fast decision path: forecast
//!   snapshots, zero-materialization candidate walks scored by
//!   incremental prefix predictors, and a parallel deterministic argmin,
//!   bit-identical to the reference path behind a [`SchedTune`] switch.

pub mod bounds;
pub mod dag;
pub mod economy;
pub mod epoch;
pub mod heuristics;
pub mod mpi_sched;
pub mod tune;
pub mod walk;
pub mod workflow;

pub use bounds::{area_bound, best_ecosts, critical_path_bound, makespan_lower_bound};
pub use dag::{DagError, WfComponent, WfEdge, Workflow};
pub use epoch::{ClusterOrder, HostBitset, RepairReport, SnapshotIndex};

pub use economy::{
    auction_allocate, demand_at, jain_fairness, price_volatility, AuctionOutcome, CommodityMarket,
    Consumer, Equilibrium, Producer, AUCTION_EPS,
};
pub use heuristics::{makespan, map_tasks, Heuristic, Placement};
pub use mpi_sched::{
    candidate_sets, select_mpi_resources, select_mpi_resources_obs, MpiPredictor, ResourceChoice,
};
pub use tune::{DecisionPath, SchedTune};
pub use walk::{
    select_mpi_resources_fast, select_mpi_resources_tuned, CandidateWalk, ClusterPrefixes,
    PrefixClosure,
};
pub use workflow::{
    evaluate_placement, schedule_greedy_ecost, schedule_heft, schedule_random,
    schedule_round_robin, Schedule, WorkflowScheduler,
};
