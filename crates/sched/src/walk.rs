//! Zero-materialization candidate enumeration and the parallel
//! deterministic argmin — the scheduler's grid-scale fast path.
//!
//! The reference selector ([`crate::select_mpi_resources`]) materializes
//! every per-cluster prefix as its own `Vec<HostId>` and hands each to a
//! whole-prefix closure, so scoring a cluster of `n` hosts allocates `n`
//! vectors and visits `O(n²)` hosts — each visit re-running the NWS
//! forecast ensemble. [`CandidateWalk`] enumerates the same prefixes
//! *implicitly*: hosts are sorted once per cluster (against cached
//! speeds), then a single left-to-right pass maintains the running
//! aggregates ([`PrefixAgg`]: Σ speed, min speed, count) that an
//! incremental [`PrefixPredictor`] needs to score prefix `k` from `k−1`
//! in `O(1)`. Only the winning prefix is ever materialized.
//!
//! [`CandidateWalk::select`] shards *clusters* across worker threads
//! (work-stealing via a shared atomic counter, the `grads_bench::sweep`
//! pattern) and reduces per-cluster winners in cluster-index order under
//! the total order `(predicted, cluster, prefix length)` with first-wins
//! ties — exactly the order the reference path's serial loop applies —
//! so the argmin is bit-identical to a serial run at any worker count.
//!
//! Whole-prefix closures keep working through [`PrefixClosure`], which
//! adapts an [`MpiPredictor`] to the walk by replaying a single growing
//! prefix buffer (compatibility: correct for arbitrary closures, but
//! still `O(n²)` in closure work; write a real [`PrefixPredictor`] for
//! the `O(n)` path).

use crate::epoch::{HostBitset, SnapshotIndex};
use crate::mpi_sched::{MpiPredictor, ResourceChoice};
use crate::tune::{DecisionPath, SchedTune};
use grads_nws::{ForecastSnapshot, ForecastSource, NwsService};
use grads_perf::{PrefixAgg, PrefixPredictor};
use grads_sim::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One cluster's sorted eligible hosts with their cached effective
/// speeds — the implicit candidate family `prefix(1..=len)`.
#[derive(Debug, Clone)]
pub struct ClusterPrefixes {
    /// The cluster the hosts belong to.
    pub cluster: ClusterId,
    /// Eligible hosts, fastest-available first (forecast speed
    /// descending, host id ascending on ties — the reference order).
    pub hosts: Vec<HostId>,
    /// `hosts[i]`'s effective speed at walk-build time, aligned with
    /// `hosts`.
    pub speeds: Vec<f64>,
}

/// Implicit enumeration of every candidate prefix, ready for incremental
/// scoring. Build once per decision epoch (typically against a
/// [`ForecastSnapshot`]) and score with [`CandidateWalk::select`].
#[derive(Debug, Clone)]
pub struct CandidateWalk {
    clusters: Vec<ClusterPrefixes>,
    min_procs: usize,
    max_procs: usize,
}

impl CandidateWalk {
    /// Enumerate candidates for `eligible` hosts: per cluster, prefixes
    /// of length `min_procs..=max_procs` of the fastest-available hosts.
    /// Forecasts are read once per host from `src`; clusters that cannot
    /// supply `min_procs` eligible hosts are dropped (they contribute no
    /// candidates in the reference enumeration either).
    ///
    /// `min_procs` must be at least 1: a zero-length prefix has no hosts
    /// to score.
    pub fn new<S: ForecastSource + ?Sized>(
        grid: &Grid,
        src: &S,
        eligible: &[HostId],
        min_procs: usize,
        max_procs: usize,
    ) -> Self {
        assert!(min_procs >= 1, "a candidate prefix needs at least one host");
        let mut is_eligible = vec![false; grid.hosts().len()];
        for h in eligible {
            if let Some(slot) = is_eligible.get_mut(h.0 as usize) {
                *slot = true;
            }
        }
        let mut clusters = Vec::new();
        if min_procs <= max_procs {
            for (ci, cluster) in grid.clusters().iter().enumerate() {
                let mut pairs: Vec<(HostId, f64)> = cluster
                    .hosts
                    .iter()
                    .copied()
                    .filter(|h| is_eligible[h.0 as usize])
                    .map(|h| (h, src.effective_speed(grid, h)))
                    .collect();
                if pairs.len() < min_procs {
                    continue;
                }
                // Same comparator as the reference sort, against the
                // cached speeds (identical values ⇒ identical order).
                pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                clusters.push(ClusterPrefixes {
                    cluster: ClusterId(ci as u32),
                    hosts: pairs.iter().map(|&(h, _)| h).collect(),
                    speeds: pairs.iter().map(|&(_, s)| s).collect(),
                });
            }
        }
        CandidateWalk {
            clusters,
            min_procs,
            max_procs,
        }
    }

    /// Enumerate candidates from a prebuilt [`SnapshotIndex`] instead of
    /// re-sorting: walk each cluster's persistent order, keep hosts set
    /// in `eligible`, and stop once `max_procs` of them are collected —
    /// `O(procs + skipped hosts)` per cluster instead of `O(H log H)`.
    ///
    /// `elig_counts[ci]` must be the number of eligible hosts in cluster
    /// `ci` (service drivers maintain it `O(1)` per admit/complete).
    /// Clusters with fewer than `min_procs` eligible hosts are skipped
    /// without touching their order at all — the same retention rule as
    /// [`CandidateWalk::new`].
    ///
    /// Bit-identity with the fresh walk: the index order filtered by
    /// eligibility equals filter-then-sort (the comparator is a unique
    /// total order), and truncating at `max_procs` removes only hosts
    /// [`CandidateWalk::best_in_cluster`] never reads. One contract
    /// deviation: [`PrefixPredictor::begin_cluster`] sees the truncated
    /// host list rather than the full eligible list; every in-tree
    /// predictor ([`grads_perf::TreeBcastPrefix`], `AttrPrefix`,
    /// [`PrefixClosure`]) ignores that argument, but a custom predictor
    /// that reads beyond the scored prefix would observe the difference.
    pub fn from_index(
        index: &SnapshotIndex,
        eligible: &HostBitset,
        elig_counts: &[usize],
        min_procs: usize,
        max_procs: usize,
    ) -> Self {
        assert!(min_procs >= 1, "a candidate prefix needs at least one host");
        let mut clusters = Vec::new();
        if min_procs <= max_procs {
            for (ci, order) in index.clusters().iter().enumerate() {
                let avail = elig_counts[ci];
                if avail < min_procs {
                    continue;
                }
                let take = max_procs.min(avail);
                let mut hosts = Vec::with_capacity(take);
                let mut speeds = Vec::with_capacity(take);
                for (i, &h) in order.hosts.iter().enumerate() {
                    if eligible.contains(h) {
                        hosts.push(h);
                        speeds.push(order.speeds[i]);
                        if hosts.len() == take {
                            break;
                        }
                    }
                }
                debug_assert_eq!(hosts.len(), take, "elig_counts out of sync with bitset");
                clusters.push(ClusterPrefixes {
                    cluster: order.cluster,
                    hosts,
                    speeds,
                });
            }
        }
        CandidateWalk {
            clusters,
            min_procs,
            max_procs,
        }
    }

    /// Score a *single* cluster of the index against `pred` and return
    /// its best `(prefix length, predicted)` — `None` when fewer than
    /// `min_procs` hosts are eligible (the retention rule). This is the
    /// memoizable unit of epoch-mode mapping: a cluster's best depends
    /// only on its eligible prefix, the snapshot behind `index`, and the
    /// predictor's inputs, so service drivers cache it per cluster and
    /// recompute only when one of those moved. Bit-identical to scoring
    /// the same cluster inside [`CandidateWalk::from_index`] (it is the
    /// same collection and the same [`CandidateWalk::best_in_cluster`]).
    pub fn score_cluster_from_index<P: PrefixPredictor>(
        index: &SnapshotIndex,
        ci: usize,
        eligible: &HostBitset,
        avail: usize,
        min_procs: usize,
        max_procs: usize,
        pred: &mut P,
    ) -> Option<(usize, f64)> {
        assert!(min_procs >= 1, "a candidate prefix needs at least one host");
        if avail < min_procs || min_procs > max_procs {
            return None;
        }
        let order = &index.clusters()[ci];
        let take = max_procs.min(avail);
        let mut hosts = Vec::with_capacity(take);
        let mut speeds = Vec::with_capacity(take);
        for (i, &h) in order.hosts.iter().enumerate() {
            if eligible.contains(h) {
                hosts.push(h);
                speeds.push(order.speeds[i]);
                if hosts.len() == take {
                    break;
                }
            }
        }
        debug_assert_eq!(hosts.len(), take, "avail out of sync with bitset");
        let one = CandidateWalk {
            clusters: vec![ClusterPrefixes {
                cluster: order.cluster,
                hosts,
                speeds,
            }],
            min_procs,
            max_procs,
        };
        Some(one.best_in_cluster(0, pred))
    }

    /// The per-cluster prefix families, in cluster-index order.
    pub fn clusters(&self) -> &[ClusterPrefixes] {
        &self.clusters
    }

    /// Total number of candidate prefixes enumerated — what the
    /// reference `candidate_sets` would have materialized.
    pub fn n_candidates(&self) -> usize {
        self.clusters
            .iter()
            .map(|c| self.max_procs.min(c.hosts.len()) - self.min_procs + 1)
            .sum()
    }

    /// Walk one cluster's prefixes with an incremental predictor and
    /// return its best `(prefix length, predicted)`. Ties keep the
    /// shorter prefix — the reference loop's first-wins rule, since it
    /// visits a cluster's prefixes in ascending length.
    pub fn best_in_cluster<P: PrefixPredictor>(&self, ci: usize, pred: &mut P) -> (usize, f64) {
        let c = &self.clusters[ci];
        let kmax = self.max_procs.min(c.hosts.len());
        pred.begin_cluster(c.cluster, &c.hosts);
        let (mut sum, mut min) = (0.0f64, f64::INFINITY);
        let mut best: Option<(usize, f64)> = None;
        for i in 0..kmax {
            sum += c.speeds[i];
            min = min.min(c.speeds[i]);
            let agg = PrefixAgg {
                k: i + 1,
                host: c.hosts[i],
                speed: c.speeds[i],
                sum_speed: sum,
                min_speed: min,
            };
            pred.push(&agg);
            if agg.k >= self.min_procs {
                let t = pred.predict(&agg);
                match best {
                    Some((_, bt)) if bt <= t => {}
                    _ => best = Some((agg.k, t)),
                }
            }
        }
        best.expect("cluster retained by new() yields at least one prefix")
    }

    /// Score every candidate and return the choice with the lowest
    /// predicted time — the first such `(cluster, prefix length)` in
    /// enumeration order on ties, exactly like the reference loop.
    ///
    /// With `workers > 1`, clusters are sharded across scoped threads;
    /// `make_predictor` builds one predictor per worker. Which worker
    /// scores which cluster never affects the result: per-cluster
    /// winners are reduced in cluster-index order.
    pub fn select<P, F>(&self, make_predictor: F, workers: usize) -> Option<ResourceChoice>
    where
        P: PrefixPredictor,
        F: Fn() -> P + Sync,
    {
        let n = self.clusters.len();
        if n == 0 {
            return None;
        }
        let per_cluster: Vec<(usize, f64)> = if workers <= 1 || n <= 1 {
            let mut pred = make_predictor();
            (0..n)
                .map(|ci| self.best_in_cluster(ci, &mut pred))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let mut tagged: Vec<(usize, (usize, f64))> = Vec::with_capacity(n);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers.min(n))
                    .map(|_| {
                        s.spawn(|| {
                            let mut pred = make_predictor();
                            let mut local: Vec<(usize, (usize, f64))> = Vec::new();
                            loop {
                                let ci = next.fetch_add(1, Ordering::Relaxed);
                                if ci >= n {
                                    break;
                                }
                                local.push((ci, self.best_in_cluster(ci, &mut pred)));
                            }
                            local
                        })
                    })
                    .collect();
                for h in handles {
                    tagged.extend(h.join().expect("scorer worker panicked"));
                }
            });
            tagged.sort_by_key(|&(ci, _)| ci);
            tagged.into_iter().map(|(_, r)| r).collect()
        };
        let mut best: Option<(usize, usize, f64)> = None;
        for (ci, &(k, t)) in per_cluster.iter().enumerate() {
            match best {
                Some((_, _, bt)) if bt <= t => {}
                _ => best = Some((ci, k, t)),
            }
        }
        best.map(|(ci, k, predicted)| {
            let c = &self.clusters[ci];
            ResourceChoice {
                hosts: c.hosts[..k].to_vec(),
                predicted,
                cluster: c.cluster,
            }
        })
    }
}

/// Compatibility adapter: drives a whole-prefix [`MpiPredictor`] closure
/// through the walk by replaying one growing prefix buffer. The closure
/// sees exactly the host slices the reference path would have
/// materialized, so predictions are bit-identical — only the per-prefix
/// allocation is gone.
pub struct PrefixClosure<'a> {
    predict: &'a MpiPredictor<'a>,
    grid: &'a Grid,
    nws: &'a NwsService,
    prefix: Vec<HostId>,
}

impl<'a> PrefixClosure<'a> {
    /// Adapt `predict` (which reads the live `nws`) to the walk.
    pub fn new(predict: &'a MpiPredictor<'a>, grid: &'a Grid, nws: &'a NwsService) -> Self {
        PrefixClosure {
            predict,
            grid,
            nws,
            prefix: Vec::new(),
        }
    }
}

impl PrefixPredictor for PrefixClosure<'_> {
    fn begin_cluster(&mut self, _cluster: ClusterId, _hosts: &[HostId]) {
        self.prefix.clear();
    }
    fn push(&mut self, agg: &PrefixAgg) {
        self.prefix.push(agg.host);
    }
    fn predict(&self, _agg: &PrefixAgg) -> f64 {
        (self.predict)(&self.prefix, self.grid, self.nws)
    }
}

/// Select the processor set with the lowest predicted execution time via
/// the fast path: an already-captured snapshot and an incremental
/// predictor. Bit-identical to [`crate::select_mpi_resources`] run
/// against the same forecasts with the equivalent whole-prefix model.
pub fn select_mpi_resources_fast<P, F>(
    grid: &Grid,
    snap: &ForecastSnapshot,
    eligible: &[HostId],
    min_procs: usize,
    max_procs: usize,
    make_predictor: F,
    workers: usize,
) -> Option<ResourceChoice>
where
    P: PrefixPredictor,
    F: Fn() -> P + Sync,
{
    if min_procs > max_procs || max_procs == 0 {
        return None;
    }
    CandidateWalk::new(grid, snap, eligible, min_procs.max(1), max_procs)
        .select(make_predictor, workers)
}

/// [`crate::select_mpi_resources`] behind the [`SchedTune`] switch:
/// `Reference` runs the seed loop verbatim; `Fast` captures a snapshot
/// for the sort and walks the closure through [`PrefixClosure`]. The
/// returned choice is bit-identical either way.
pub fn select_mpi_resources_tuned(
    grid: &Grid,
    nws: &NwsService,
    eligible: &[HostId],
    min_procs: usize,
    max_procs: usize,
    predict: &MpiPredictor<'_>,
    tune: SchedTune,
) -> Option<ResourceChoice> {
    match tune.path {
        DecisionPath::Reference => {
            crate::select_mpi_resources(grid, nws, eligible, min_procs, max_procs, predict)
        }
        DecisionPath::Fast => {
            if min_procs > max_procs || max_procs == 0 {
                return None;
            }
            let snap = ForecastSnapshot::capture(grid, nws);
            CandidateWalk::new(grid, &snap, eligible, min_procs.max(1), max_procs)
                .select(|| PrefixClosure::new(predict, grid, nws), tune.workers)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpi_sched::{candidate_sets, select_mpi_resources};
    use grads_perf::TreeBcastPrefix;
    use grads_sim::topology::{GridBuilder, HostSpec};

    fn setup() -> (Grid, NwsService) {
        let mut b = GridBuilder::new();
        let utk = b.cluster("UTK");
        b.local_link(utk, 1e8, 1e-4);
        b.add_hosts(utk, 4, &HostSpec::with_speed(933e6));
        let uiuc = b.cluster("UIUC");
        b.local_link(uiuc, 1e8, 1e-4);
        b.add_hosts(uiuc, 8, &HostSpec::with_speed(450e6));
        let ucsd = b.cluster("UCSD");
        b.local_link(ucsd, 1e8, 1e-4);
        b.add_hosts(ucsd, 6, &HostSpec::with_speed(600e6));
        b.connect(utk, uiuc, 4e6, 0.03);
        b.connect(utk, ucsd, 2e6, 0.05);
        b.connect(uiuc, ucsd, 3e6, 0.04);
        let mut nws = NwsService::new();
        for i in 0..18u32 {
            for j in 0..15 {
                nws.observe_cpu(HostId(i), 0.3 + 0.04 * ((i * 5 + j) % 13) as f64);
            }
        }
        (b.build().unwrap(), nws)
    }

    fn assert_same_choice(a: &ResourceChoice, b: &ResourceChoice) {
        assert_eq!(a.hosts, b.hosts);
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
    }

    #[test]
    fn walk_enumerates_the_reference_candidates() {
        let (grid, nws) = setup();
        let all: Vec<HostId> = (0..18).map(HostId).collect();
        for (min_p, max_p) in [(1, 18), (2, 5), (5, 5), (7, 18)] {
            let reference = candidate_sets(&grid, &nws, &all, min_p, max_p);
            let snap = ForecastSnapshot::capture(&grid, &nws);
            let walk = CandidateWalk::new(&grid, &snap, &all, min_p, max_p);
            assert_eq!(walk.n_candidates(), reference.len(), "{min_p}..={max_p}");
            // Reconstruct the implicit enumeration and compare.
            let mut implicit = Vec::new();
            for c in walk.clusters() {
                for k in min_p..=max_p.min(c.hosts.len()) {
                    implicit.push((c.cluster, c.hosts[..k].to_vec()));
                }
            }
            assert_eq!(implicit, reference);
        }
    }

    #[test]
    fn tuned_fast_matches_reference_bitwise() {
        let (grid, nws) = setup();
        let all: Vec<HostId> = (0..18).map(HostId).collect();
        let predict = |hosts: &[HostId], grid: &Grid, nws: &NwsService| {
            TreeBcastPrefix::reference(hosts, grid, nws, 3e12, 2.5e7)
        };
        for (min_p, max_p) in [(1, 18), (2, 6), (4, 4), (9, 18)] {
            let r = select_mpi_resources(&grid, &nws, &all, min_p, max_p, &predict);
            for workers in [1, 3, 7] {
                let f = select_mpi_resources_tuned(
                    &grid,
                    &nws,
                    &all,
                    min_p,
                    max_p,
                    &predict,
                    SchedTune::fast_parallel(workers),
                );
                match (&r, &f) {
                    (Some(r), Some(f)) => assert_same_choice(r, f),
                    (None, None) => {}
                    _ => panic!("presence mismatch at {min_p}..={max_p} w{workers}"),
                }
            }
        }
    }

    #[test]
    fn incremental_predictor_matches_closure_path_bitwise() {
        let (grid, nws) = setup();
        let all: Vec<HostId> = (0..18).map(HostId).collect();
        let snap = ForecastSnapshot::capture(&grid, &nws);
        let (flops, bytes) = (3e12, 2.5e7);
        let closure = |hosts: &[HostId], grid: &Grid, nws: &NwsService| {
            TreeBcastPrefix::reference(hosts, grid, nws, flops, bytes)
        };
        let reference = select_mpi_resources(&grid, &nws, &all, 2, 18, &closure).unwrap();
        for workers in [1, 4] {
            let fast = select_mpi_resources_fast(
                &grid,
                &snap,
                &all,
                2,
                18,
                || TreeBcastPrefix::new(&grid, &snap, flops, bytes),
                workers,
            )
            .unwrap();
            assert_same_choice(&reference, &fast);
        }
    }

    #[test]
    fn degenerate_bounds_select_nothing() {
        let (grid, nws) = setup();
        let all: Vec<HostId> = (0..18).map(HostId).collect();
        let predict = |hosts: &[HostId], g: &Grid, n: &NwsService| {
            TreeBcastPrefix::reference(hosts, g, n, 1e12, 1e6)
        };
        for (min_p, max_p) in [(5, 2), (30, 40), (1, 0)] {
            let r = select_mpi_resources(&grid, &nws, &all, min_p, max_p, &predict);
            let f = select_mpi_resources_tuned(
                &grid,
                &nws,
                &all,
                min_p,
                max_p,
                &predict,
                SchedTune::fast(),
            );
            assert!(r.is_none() && f.is_none(), "{min_p}..={max_p}");
        }
        // No eligible hosts at all.
        assert!(
            select_mpi_resources_tuned(&grid, &nws, &[], 1, 4, &predict, SchedTune::fast())
                .is_none()
        );
    }

    #[test]
    fn tie_break_keeps_first_cluster_and_shortest_prefix() {
        // A constant predictor makes every candidate tie: the reference
        // keeps the very first (cluster 0, k = min_procs); the fast path
        // must agree at any worker count.
        let (grid, nws) = setup();
        let all: Vec<HostId> = (0..18).map(HostId).collect();
        let constant = |_: &[HostId], _: &Grid, _: &NwsService| 42.0;
        let r = select_mpi_resources(&grid, &nws, &all, 2, 18, &constant).unwrap();
        assert_eq!(r.cluster, ClusterId(0));
        assert_eq!(r.hosts.len(), 2);
        for workers in [1, 5] {
            let f = select_mpi_resources_tuned(
                &grid,
                &nws,
                &all,
                2,
                18,
                &constant,
                SchedTune::fast_parallel(workers),
            )
            .unwrap();
            assert_same_choice(&r, &f);
        }
    }
}
