//! Makespan lower bounds — certificates for heuristic schedule quality.
//!
//! The mapping problem is NP-complete (§3.1, citing Garey & Johnson), so
//! the heuristics carry no guarantees; these bounds let tests and
//! harnesses certify how far a schedule can possibly be from optimal:
//!
//! * **critical-path bound** — the longest dependence chain, with every
//!   component charged its best-case execution cost and transfers free;
//! * **area bound** — total best-case work divided by the number of
//!   resources (perfect parallelism, free transfers).
//!
//! Any valid schedule's makespan is at least the larger of the two.

use crate::dag::Workflow;
use grads_perf::ResourceInfo;

/// Best-case (minimum over eligible resources) execution cost of each
/// component. Components eligible nowhere get `f64::INFINITY`.
pub fn best_ecosts(wf: &Workflow, resources: &[ResourceInfo]) -> Vec<f64> {
    (0..wf.len())
        .map(|c| {
            let model = &wf.components[c].model;
            resources
                .iter()
                .filter(|r| {
                    r.memory >= model.min_memory()
                        && model
                            .allowed_archs()
                            .map(|a| a.contains(&r.arch))
                            .unwrap_or(true)
                })
                .map(|r| model.ecost(r))
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Critical-path lower bound: longest chain of best-case costs.
pub fn critical_path_bound(wf: &Workflow, resources: &[ResourceInfo]) -> f64 {
    let best = best_ecosts(wf, resources);
    let order = wf.topo_order().expect("valid workflow");
    let mut longest = vec![0.0f64; wf.len()];
    let mut out = 0.0f64;
    for &c in &order {
        let mut start = 0.0f64;
        for e in wf.preds(c) {
            start = start.max(longest[e.from]);
        }
        longest[c] = start + best[c];
        out = out.max(longest[c]);
    }
    out
}

/// Area lower bound: total best-case work over the resource count.
pub fn area_bound(wf: &Workflow, resources: &[ResourceInfo]) -> f64 {
    if resources.is_empty() {
        return f64::INFINITY;
    }
    let total: f64 = best_ecosts(wf, resources).iter().sum();
    total / resources.len() as f64
}

/// The combined lower bound: no schedule can beat this makespan.
pub fn makespan_lower_bound(wf: &Workflow, resources: &[ResourceInfo]) -> f64 {
    critical_path_bound(wf, resources).max(area_bound(wf, resources))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::testutil::flat_model;
    use crate::workflow::WorkflowScheduler;
    use grads_nws::NwsService;
    use grads_sim::prelude::*;
    use grads_sim::topology::{GridBuilder, HostSpec};

    fn setup(nfast: usize, nslow: usize) -> (Grid, Vec<ResourceInfo>) {
        let mut b = GridBuilder::new();
        let f = b.cluster("F");
        b.local_link(f, 1e8, 1e-4);
        b.add_hosts(f, nfast, &HostSpec::with_speed(2e9));
        let s = b.cluster("S");
        b.local_link(s, 1e8, 1e-4);
        b.add_hosts(s, nslow, &HostSpec::with_speed(5e8));
        b.connect(f, s, 1e7, 0.01);
        let grid = b.build().unwrap();
        let nws = NwsService::new();
        let res = (0..grid.hosts().len() as u32)
            .map(|i| ResourceInfo::from_grid(&grid, &nws, HostId(i)))
            .collect();
        (grid, res)
    }

    fn chain(n: usize, flops: f64) -> Workflow {
        let mut wf = Workflow::new();
        for i in 0..n {
            wf.add_component(&format!("c{i}"), flat_model(flops, 1e5, 1e5));
        }
        for i in 1..n {
            wf.add_edge(i - 1, i, 1e5);
        }
        wf
    }

    fn fan(width: usize, flops: f64) -> Workflow {
        let mut wf = Workflow::new();
        for i in 0..width {
            wf.add_component(&format!("f{i}"), flat_model(flops, 0.0, 0.0));
        }
        wf
    }

    #[test]
    fn chain_bound_is_critical_path() {
        let (_, res) = setup(2, 4);
        let wf = chain(5, 2e9); // 1 s each on the 2 GHz hosts
        let lb = makespan_lower_bound(&wf, &res);
        assert!((lb - 5.0).abs() < 1e-9, "lb = {lb}");
    }

    #[test]
    fn wide_fan_bound_is_area() {
        let (_, res) = setup(2, 4);
        // 60 independent 1-s tasks over 6 hosts: area bound = 10 s;
        // critical path = 1 s.
        let wf = fan(60, 2e9);
        let lb = makespan_lower_bound(&wf, &res);
        assert!((lb - 10.0).abs() < 1e-9, "lb = {lb}");
        assert!((critical_path_bound(&wf, &res) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn schedules_respect_the_bound() {
        let (grid, res) = setup(2, 4);
        let nws = NwsService::new();
        for wf in [chain(6, 3e9), fan(24, 4e9), {
            let mut w = chain(3, 2e9);
            for i in 0..8 {
                let c = w.add_component(&format!("x{i}"), flat_model(6e9, 1e6, 1e5));
                w.add_edge(1, c, 1e6);
            }
            w
        }] {
            let lb = makespan_lower_bound(&wf, &res);
            let (best, per) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &res);
            assert!(
                best.makespan >= lb - 1e-9,
                "makespan {} below bound {lb}",
                best.makespan
            );
            for (name, mk) in per {
                assert!(mk >= lb - 1e-9, "{name} {mk} below bound {lb}");
            }
            // Heuristics should also be *near* the bound on these easy
            // instances (within 3x).
            assert!(
                best.makespan <= lb * 3.0,
                "makespan {} too far above bound {lb}",
                best.makespan
            );
        }
    }

    #[test]
    fn arch_restriction_raises_the_bound() {
        use grads_perf::{FittedModel, OpCountModel};
        use std::sync::Arc;
        let (_, res) = setup(2, 4);
        let mut wf = Workflow::new();
        // Pinned to the slow cluster's arch? Both clusters are Ia32 here,
        // so pin via memory instead: require more than the default 1 GiB.
        wf.add_component(
            "greedy",
            Arc::new(FittedModel {
                problem_size: 1.0,
                ops: OpCountModel {
                    coeffs: vec![2e9],
                    degree: 0,
                    rms_rel_residual: 0.0,
                },
                mrd: None,
                input_bytes: 0.0,
                output_bytes: 0.0,
                min_memory: u64::MAX,
                allowed: None,
            }),
        );
        // Eligible nowhere: the bound is infinite (unschedulable).
        assert!(makespan_lower_bound(&wf, &res).is_infinite());
    }
}
