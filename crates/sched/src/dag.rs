//! Workflow DAGs (§3).
//!
//! *"A workflow application consists of a collection of components that
//! need to be executed in a partial order determined by control and data
//! dependences."* Components carry the §3.2 performance models; edges carry
//! the data volumes that drive `dcost`.

use grads_perf::ComponentModel;
use std::sync::Arc;

/// One workflow component.
pub struct WfComponent {
    /// Human-readable name (e.g. the EMAN stage name).
    pub name: String,
    /// Its performance model.
    pub model: Arc<dyn ComponentModel>,
}

/// A data dependence between two components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WfEdge {
    /// Producer component index.
    pub from: usize,
    /// Consumer component index.
    pub to: usize,
    /// Data volume transferred, bytes.
    pub bytes: f64,
}

/// Errors from DAG construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The graph contains a cycle (not a workflow).
    Cyclic,
    /// An edge references a nonexistent component.
    BadEdge(usize, usize),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::Cyclic => write!(f, "workflow graph contains a cycle"),
            DagError::BadEdge(a, b) => write!(f, "edge ({a} -> {b}) references missing component"),
        }
    }
}

impl std::error::Error for DagError {}

/// A workflow application: components plus data-dependence edges.
#[derive(Default)]
pub struct Workflow {
    /// Components, indexable by id.
    pub components: Vec<WfComponent>,
    /// Dependence edges.
    pub edges: Vec<WfEdge>,
}

impl Workflow {
    /// Empty workflow.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a component; returns its index.
    pub fn add_component(&mut self, name: &str, model: Arc<dyn ComponentModel>) -> usize {
        self.components.push(WfComponent {
            name: name.to_string(),
            model,
        });
        self.components.len() - 1
    }

    /// Add a data dependence.
    pub fn add_edge(&mut self, from: usize, to: usize, bytes: f64) {
        self.edges.push(WfEdge { from, to, bytes });
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the workflow has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// In-edges of component `c`.
    pub fn preds(&self, c: usize) -> impl Iterator<Item = &WfEdge> {
        self.edges.iter().filter(move |e| e.to == c)
    }

    /// Out-edges of component `c`.
    pub fn succs(&self, c: usize) -> impl Iterator<Item = &WfEdge> {
        self.edges.iter().filter(move |e| e.from == c)
    }

    /// Validate edges and acyclicity; returns a topological order.
    pub fn topo_order(&self) -> Result<Vec<usize>, DagError> {
        let n = self.len();
        for e in &self.edges {
            if e.from >= n || e.to >= n {
                return Err(DagError::BadEdge(e.from, e.to));
            }
        }
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to] += 1;
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&c| indeg[c] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for e in &self.edges {
                if e.from == c {
                    indeg[e.to] -= 1;
                    if indeg[e.to] == 0 {
                        queue.push_back(e.to);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(DagError::Cyclic);
        }
        Ok(order)
    }

    /// Partition components into dependence levels: level 0 has no
    /// predecessors, level k+1 depends only on levels ≤ k. The workflow
    /// scheduler maps one level at a time (dependences into already-placed
    /// components then supply the `dcost`/arrival terms).
    pub fn levels(&self) -> Result<Vec<Vec<usize>>, DagError> {
        let order = self.topo_order()?;
        let mut depth = vec![0usize; self.len()];
        for &c in &order {
            for e in self.preds(c) {
                depth[c] = depth[c].max(depth[e.from] + 1);
            }
        }
        let max_d = depth.iter().copied().max().unwrap_or(0);
        let mut levels = vec![Vec::new(); if self.is_empty() { 0 } else { max_d + 1 }];
        for (c, &d) in depth.iter().enumerate() {
            levels[d].push(c);
        }
        Ok(levels)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use grads_perf::{FittedModel, OpCountModel};

    /// A component model with a fixed flop count and data volumes.
    pub fn flat_model(flops: f64, in_bytes: f64, out_bytes: f64) -> Arc<dyn ComponentModel> {
        Arc::new(FittedModel {
            problem_size: 1.0,
            ops: OpCountModel {
                coeffs: vec![flops],
                degree: 0,
                rms_rel_residual: 0.0,
            },
            mrd: None,
            input_bytes: in_bytes,
            output_bytes: out_bytes,
            min_memory: 0,
            allowed: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::flat_model;
    use super::*;

    fn chain(n: usize) -> Workflow {
        let mut wf = Workflow::new();
        for i in 0..n {
            wf.add_component(&format!("c{i}"), flat_model(1e9, 1e6, 1e6));
        }
        for i in 1..n {
            wf.add_edge(i - 1, i, 1e6);
        }
        wf
    }

    #[test]
    fn topo_order_of_chain() {
        let wf = chain(4);
        assert_eq!(wf.topo_order().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cycle_detected() {
        let mut wf = chain(3);
        wf.add_edge(2, 0, 1.0);
        assert_eq!(wf.topo_order(), Err(DagError::Cyclic));
    }

    #[test]
    fn bad_edge_detected() {
        let mut wf = chain(2);
        wf.add_edge(0, 9, 1.0);
        assert_eq!(wf.topo_order(), Err(DagError::BadEdge(0, 9)));
    }

    #[test]
    fn levels_of_diamond() {
        // 0 -> {1, 2} -> 3
        let mut wf = Workflow::new();
        for i in 0..4 {
            wf.add_component(&format!("c{i}"), flat_model(1.0, 0.0, 0.0));
        }
        wf.add_edge(0, 1, 1.0);
        wf.add_edge(0, 2, 1.0);
        wf.add_edge(1, 3, 1.0);
        wf.add_edge(2, 3, 1.0);
        let levels = wf.levels().unwrap();
        assert_eq!(levels, vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn empty_workflow() {
        let wf = Workflow::new();
        assert!(wf.is_empty());
        assert!(wf.levels().unwrap().is_empty());
    }

    #[test]
    fn preds_and_succs() {
        let wf = chain(3);
        assert_eq!(wf.preds(1).count(), 1);
        assert_eq!(wf.succs(1).count(), 1);
        assert_eq!(wf.preds(0).count(), 0);
        assert_eq!(wf.succs(2).count(), 0);
    }
}
