//! Batch mapping heuristics: min-min, max-min, sufferage (§3.1).
//!
//! *"We apply three heuristics to obtain three mappings and then select the
//! schedule with the minimum makespan. The heuristics that we apply are the
//! min-min, the max-min, and the sufferage heuristics."* (citing Casanova
//! et al. HCW 2000 and Braun et al. JPDC 2001)
//!
//! All three operate on a *completion-time* matrix for a set of independent
//! tasks (one dependence level of the workflow): `ct(t, m) = max(ready[m],
//! arrival[t][m]) + cost[t][m]`, where `ready` tracks machine occupancy and
//! `arrival` is when the task's input data can be on machine `m`.

/// The mapping heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Repeatedly map the task whose best completion time is smallest.
    MinMin,
    /// Repeatedly map the task whose best completion time is largest
    /// (gets long tasks out of the way first).
    MaxMin,
    /// Repeatedly map the task that would "suffer" most if denied its best
    /// machine (largest second-best − best gap).
    Sufferage,
}

impl Heuristic {
    /// All three paper heuristics.
    pub fn all() -> [Heuristic; 3] {
        [Heuristic::MinMin, Heuristic::MaxMin, Heuristic::Sufferage]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Heuristic::MinMin => "min-min",
            Heuristic::MaxMin => "max-min",
            Heuristic::Sufferage => "sufferage",
        }
    }
}

/// The assignment of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Machine (resource index).
    pub machine: usize,
    /// Start time.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
}

/// Map a batch of independent tasks onto machines.
///
/// * `cost[t][m]` — execution cost of task `t` on machine `m`
///   (`f64::INFINITY` marks ineligible pairs);
/// * `arrival[t][m]` — earliest time `t`'s inputs can be on `m`;
/// * `ready` — per-machine ready times, updated in place.
///
/// Returns one [`Placement`] per task. Panics if some task is ineligible
/// everywhere (the caller must guarantee schedulability).
pub fn map_tasks(
    h: Heuristic,
    cost: &[Vec<f64>],
    arrival: &[Vec<f64>],
    ready: &mut [f64],
) -> Vec<Placement> {
    let nt = cost.len();
    let nm = ready.len();
    assert!(cost.iter().all(|r| r.len() == nm), "cost shape");
    assert_eq!(arrival.len(), nt, "arrival shape");
    let mut placed: Vec<Option<Placement>> = vec![None; nt];
    let mut remaining: Vec<usize> = (0..nt).collect();
    while !remaining.is_empty() {
        // For each unmapped task, find its best and second-best completion
        // times under the current ready times.
        let mut pick: Option<(usize, usize, f64, f64)> = None; // (slot in remaining, machine, best_ct, metric)
        for (slot, &t) in remaining.iter().enumerate() {
            let mut best: Option<(usize, f64)> = None;
            let mut second = f64::INFINITY;
            for m in 0..nm {
                if cost[t][m].is_infinite() {
                    continue;
                }
                let ct = ready[m].max(arrival[t][m]) + cost[t][m];
                match best {
                    Some((_, b)) if ct >= b => second = second.min(ct),
                    Some((_, b)) => {
                        second = second.min(b);
                        best = Some((m, ct));
                    }
                    None => best = Some((m, ct)),
                }
            }
            let (bm, bct) =
                best.unwrap_or_else(|| panic!("task {t} is ineligible on every machine"));
            // The selection metric: what this heuristic maximizes or
            // minimizes across tasks.
            let metric = match h {
                Heuristic::MinMin => bct,
                Heuristic::MaxMin => bct,
                Heuristic::Sufferage => {
                    if second.is_finite() {
                        second - bct
                    } else {
                        f64::INFINITY // only one eligible machine: map first
                    }
                }
            };
            let better = match (&pick, h) {
                (None, _) => true,
                (Some((_, _, _, cur)), Heuristic::MinMin) => metric < *cur,
                (Some((_, _, _, cur)), Heuristic::MaxMin) => metric > *cur,
                (Some((_, _, _, cur)), Heuristic::Sufferage) => metric > *cur,
            };
            if better {
                pick = Some((slot, bm, bct, metric));
            }
        }
        let (slot, m, ct, _) = pick.expect("non-empty remaining set");
        let t = remaining.swap_remove(slot);
        let start = ready[m].max(arrival[t][m]);
        ready[m] = ct;
        placed[t] = Some(Placement {
            machine: m,
            start,
            finish: ct,
        });
    }
    placed.into_iter().map(|p| p.expect("all placed")).collect()
}

/// Makespan of a placement set.
pub fn makespan(placements: &[Placement]) -> f64 {
    placements.iter().fold(0.0, |a, p| a.max(p.finish))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zeros(nt: usize, nm: usize) -> Vec<Vec<f64>> {
        vec![vec![0.0; nm]; nt]
    }

    #[test]
    fn single_task_takes_best_machine() {
        let cost = vec![vec![10.0, 4.0, 7.0]];
        let arrival = zeros(1, 3);
        let mut ready = vec![0.0; 3];
        for h in Heuristic::all() {
            let p = map_tasks(h, &cost, &arrival, &mut ready.clone());
            assert_eq!(p[0].machine, 1, "{}", h.name());
            assert_eq!(p[0].finish, 4.0);
        }
        let _ = &mut ready;
    }

    #[test]
    fn min_min_prefers_short_tasks_first() {
        // Two tasks, one machine: min-min runs the short one first.
        let cost = vec![vec![10.0], vec![1.0]];
        let arrival = zeros(2, 1);
        let mut ready = vec![0.0];
        let p = map_tasks(Heuristic::MinMin, &cost, &arrival, &mut ready);
        assert!(p[1].start < p[0].start);
    }

    #[test]
    fn max_min_prefers_long_tasks_first() {
        let cost = vec![vec![10.0], vec![1.0]];
        let arrival = zeros(2, 1);
        let mut ready = vec![0.0];
        let p = map_tasks(Heuristic::MaxMin, &cost, &arrival, &mut ready);
        assert!(p[0].start < p[1].start);
    }

    #[test]
    fn sufferage_protects_high_stakes_task() {
        // Classic sufferage instance (after Casanova et al.): all tasks
        // like m0 equally (cost 2), but t0 has a decent fallback on m1
        // (cost 3) while t1 and t2 would suffer badly there (cost 20).
        // Sufferage reserves m0 for the high-stakes tasks and sends t0 to
        // m1: makespan 4. Min-min ties on completion time, packs m0 in
        // task order, and ends at 6.
        let cost = vec![vec![2.0, 3.0], vec![2.0, 20.0], vec![2.0, 20.0]];
        let arrival = zeros(3, 2);
        let p_suf = map_tasks(Heuristic::Sufferage, &cost, &arrival, &mut [0.0; 2]);
        let p_min = map_tasks(Heuristic::MinMin, &cost, &arrival, &mut [0.0; 2]);
        assert_eq!(p_suf[0].machine, 1);
        assert_eq!(p_suf[1].machine, 0);
        assert_eq!(p_suf[2].machine, 0);
        assert_eq!(makespan(&p_suf), 4.0);
        assert_eq!(makespan(&p_min), 6.0);
    }

    #[test]
    fn ineligible_machines_avoided() {
        let cost = vec![vec![f64::INFINITY, 3.0]];
        let arrival = zeros(1, 2);
        let p = map_tasks(Heuristic::MinMin, &cost, &arrival, &mut [0.0; 2]);
        assert_eq!(p[0].machine, 1);
    }

    #[test]
    #[should_panic(expected = "ineligible on every machine")]
    fn fully_ineligible_task_panics() {
        let cost = vec![vec![f64::INFINITY, f64::INFINITY]];
        let arrival = zeros(1, 2);
        map_tasks(Heuristic::MinMin, &cost, &arrival, &mut [0.0; 2]);
    }

    #[test]
    fn arrival_times_delay_start() {
        let cost = vec![vec![1.0]];
        let arrival = vec![vec![5.0]];
        let p = map_tasks(Heuristic::MinMin, &cost, &arrival, &mut [0.0]);
        assert_eq!(p[0].start, 5.0);
        assert_eq!(p[0].finish, 6.0);
    }

    #[test]
    fn ready_times_respected_and_updated() {
        let cost = vec![vec![2.0, 2.0], vec![2.0, 2.0]];
        let arrival = zeros(2, 2);
        let mut ready = vec![0.0, 10.0];
        let p = map_tasks(Heuristic::MinMin, &cost, &arrival, &mut ready);
        // Both tasks pile onto machine 0 (even serialized it beats 12).
        assert_eq!(p[0].machine, 0);
        assert_eq!(p[1].machine, 0);
        assert_eq!(ready[0], 4.0);
        assert_eq!(makespan(&p), 4.0);
    }

    #[test]
    fn parallel_batch_spreads_over_machines() {
        let nt = 8;
        let nm = 4;
        let cost = vec![vec![1.0; nm]; nt];
        let arrival = zeros(nt, nm);
        for h in Heuristic::all() {
            let p = map_tasks(h, &cost, &arrival, &mut vec![0.0; nm]);
            assert_eq!(makespan(&p), 2.0, "{}", h.name());
        }
    }
}
