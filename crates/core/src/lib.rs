//! # grads-core — the GrADS framework facade
//!
//! One crate that re-exports the whole reproduction of *"New Grid
//! Scheduling and Rescheduling Methods in the GrADS Project"* (IPPS 2004):
//!
//! | Layer | Crate | Paper § |
//! |---|---|---|
//! | Grid emulator (MicroGrid analog) | [`sim`] | §1, §4.2 |
//! | Network Weather Service analog | [`nws`] | §3.1, §4.1 |
//! | Performance models (op counts, MRD) | [`perf`] | §3.2 |
//! | Simulated MPI + process swapping | [`mpi`] | §2, §4.2 |
//! | SRS checkpointing + IBP + RSS | [`srs`] | §4.1.1 |
//! | Performance contracts + fuzzy monitor | [`contract`] | §1, §4 |
//! | Workflow + MPI scheduling | [`sched`] | §3 |
//! | Migration + swap rescheduling | [`reschedule`] | §4 |
//! | GIS + binder + application manager | [`binder`] | §2 |
//! | QR, N-body, EMAN applications | [`apps`] | §3.3, §4.1–4.2 |
//! | Decision-loop observability | [`obs`] | §3 (profiling substrate) |
//!
//! The [`prelude`] pulls in the names most programs need. See the
//! repository `examples/` for runnable end-to-end scenarios and
//! `crates/bench` for the harnesses that regenerate the paper's figures.

pub use grads_apps as apps;
pub use grads_binder as binder;
pub use grads_contract as contract;
pub use grads_mpi as mpi;
pub use grads_nws as nws;
pub use grads_obs as obs;
pub use grads_perf as perf;
pub use grads_reschedule as reschedule;
pub use grads_sched as sched;
pub use grads_service as service;
pub use grads_sim as sim;
pub use grads_srs as srs;

/// The names most GrADS programs need.
pub mod prelude {
    pub use grads_apps::{
        eman_grid, eman_workflow, run_ft_experiment, run_nbody_experiment, run_qr_experiment,
        EmanConfig, FtExperimentConfig, JacobiConfig, LuConfig, NbodyConfig, NbodyExperimentConfig,
        PsaConfig, QrConfig, QrExperimentConfig, QrExperimentResult, SnapshotUse,
    };
    pub use grads_binder::{prepare_and_bind, Breakdown, Cop, Gis, ManagerCosts};
    pub use grads_contract::{
        render_timeline, ActuatorBus, Contract, ContractMonitor, Outcome, Violation,
    };
    pub use grads_mpi::{launch, BlockCyclic, Comm, RankStats, SwapWorld};
    pub use grads_nws::{Ensemble, ForecastSnapshot, ForecastSource, NwsService};
    pub use grads_obs::{
        DecisionAction, DecisionEvent, DecisionKind, MetricsSnapshot, Obs, RankBreakdown,
        RankState, Recorder, Timeline,
    };
    pub use grads_perf::{
        ComponentModel, FittedModel, MrdModel, OpCountModel, PerfMatrix, PrefixPredictor,
        RankWeights, ResourceInfo, TreeBcastPrefix,
    };
    pub use grads_reschedule::{
        MigrationRescheduler, OverheadPolicy, Reschedulable, ReschedulerMode, SwapPolicy,
    };
    pub use grads_sched::{
        makespan_lower_bound, select_mpi_resources, select_mpi_resources_fast,
        select_mpi_resources_tuned, CandidateWalk, CommodityMarket, Consumer, Heuristic, Producer,
        SchedTune, Schedule, Workflow, WorkflowScheduler,
    };
    pub use grads_service::{
        run_service_experiment, service_grid, Accounting, ServiceConfig, ServiceResult,
        TenantAccount, WorkloadConfig,
    };
    pub use grads_sim::dml::parse_dml;
    pub use grads_sim::prelude::*;
    pub use grads_srs::{IbpStorage, Rss, Srs};
}
