//! Structured decision tracing: typed, virtual-time-stamped events on the
//! monitor → rescheduler path, plus the chain reconstruction that turns
//! them into a monitor → detect → decide → actuate latency breakdown.
//!
//! The contract monitor emits [`DecisionKind::MonitorPoll`],
//! [`DecisionKind::ContractEval`] and [`DecisionKind::ViolationDetected`];
//! the rescheduler (or its violation handler) emits
//! [`DecisionKind::Decision`] and the actuation pair. Because every
//! recorder runs inside the deterministic kernel (one simulated process
//! at a time), append order equals virtual-time order and the log itself
//! is reproducible.

/// What a violation was resolved into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionAction {
    /// Stop/checkpoint/restart migration (§4.1).
    Migrate,
    /// Process swap within an over-provisioned launch (§4.2).
    Swap,
    /// Decline: not profitable; the monitor relaxes its tolerances.
    Ignore,
}

impl DecisionAction {
    /// Short lowercase label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            DecisionAction::Migrate => "migrate",
            DecisionAction::Swap => "swap",
            DecisionAction::Ignore => "ignore",
        }
    }
}

/// One typed event on the decision path.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// Virtual time the event was recorded at.
    pub t: f64,
    /// What happened.
    pub kind: DecisionKind,
}

/// Kinds of decision events.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionKind {
    /// The contract monitor woke and drained `reports` sensor reports.
    MonitorPoll {
        /// Sensor reports drained on this poll.
        reports: usize,
    },
    /// One sensor report was compared against its contract prediction.
    ContractEval {
        /// Monitored phase name.
        phase: String,
        /// Actual/predicted ratio of this report.
        ratio: f64,
    },
    /// The monitor tightened its limits (execution faster than predicted).
    Renegotiated {
        /// The new upper tolerance limit.
        new_upper: f64,
    },
    /// The averaged ratio crossed the upper tolerance: a violation.
    ViolationDetected {
        /// Violating phase.
        phase: String,
        /// Average actual/predicted ratio over the window.
        avg_ratio: f64,
        /// Fuzzy violation score in `[0, 1]`.
        score: f64,
    },
    /// The rescheduler resolved a violation.
    Decision {
        /// The verdict.
        action: DecisionAction,
    },
    /// Actuation of a non-ignore decision began (stop request issued,
    /// swap requested, …).
    ActuationStarted {
        /// What is being actuated.
        action: DecisionAction,
    },
    /// Actuation finished (restarted world launched, swap applied, …).
    ActuationComplete {
        /// What was actuated.
        action: DecisionAction,
    },
}

/// One reconstructed violation-to-actuation chain with every stage
/// timestamped in virtual seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionChain {
    /// The monitor poll that surfaced the violating reports.
    pub t_poll: f64,
    /// When the violation was detected.
    pub t_violation: f64,
    /// Violating phase.
    pub phase: String,
    /// Average ratio at detection.
    pub avg_ratio: f64,
    /// The resolved action ([`DecisionAction::Ignore`] until a
    /// `Decision` event arrives).
    pub action: DecisionAction,
    /// When the rescheduler returned its verdict.
    pub t_decision: Option<f64>,
    /// When actuation began, for non-ignore decisions.
    pub t_actuation_start: Option<f64>,
    /// When actuation completed.
    pub t_actuation_end: Option<f64>,
}

impl DecisionChain {
    /// Poll → violation: how long detection took inside the monitor
    /// (ratio windows crossing the limit). Slowdown-onset → poll is
    /// scenario knowledge the caller adds (it knows when load landed).
    pub fn detect_latency(&self) -> f64 {
        self.t_violation - self.t_poll
    }

    /// Violation → rescheduler verdict.
    pub fn decide_latency(&self) -> Option<f64> {
        self.t_decision.map(|t| t - self.t_violation)
    }

    /// Actuation start → complete (checkpoint, rebind, relaunch, …).
    pub fn actuate_latency(&self) -> Option<f64> {
        match (self.t_actuation_start, self.t_actuation_end) {
            (Some(s), Some(e)) => Some(e - s),
            _ => None,
        }
    }

    /// Poll → actuation complete, when the chain actuated.
    pub fn end_to_end(&self) -> Option<f64> {
        self.t_actuation_end.map(|e| e - self.t_poll)
    }
}

/// Reconstruct decision chains from an event log.
///
/// A chain opens at each [`DecisionKind::ViolationDetected`] (adopting
/// the most recent poll time) and absorbs the first following decision,
/// actuation-start and actuation-complete events. A new violation closes
/// any chain still open — so declined violations become `Ignore` chains
/// with no actuation, exactly what the latency table should show.
pub fn decision_chains(events: &[DecisionEvent]) -> Vec<DecisionChain> {
    let mut chains = Vec::new();
    let mut last_poll: Option<f64> = None;
    let mut open: Option<DecisionChain> = None;
    for e in events {
        match &e.kind {
            DecisionKind::MonitorPoll { .. } => last_poll = Some(e.t),
            DecisionKind::ViolationDetected {
                phase, avg_ratio, ..
            } => {
                if let Some(c) = open.take() {
                    chains.push(c);
                }
                open = Some(DecisionChain {
                    t_poll: last_poll.unwrap_or(e.t),
                    t_violation: e.t,
                    phase: phase.clone(),
                    avg_ratio: *avg_ratio,
                    action: DecisionAction::Ignore,
                    t_decision: None,
                    t_actuation_start: None,
                    t_actuation_end: None,
                });
            }
            DecisionKind::Decision { action } => {
                if let Some(c) = open.as_mut() {
                    if c.t_decision.is_none() {
                        c.t_decision = Some(e.t);
                        c.action = *action;
                    }
                }
            }
            DecisionKind::ActuationStarted { .. } => {
                if let Some(c) = open.as_mut() {
                    if c.t_actuation_start.is_none() {
                        c.t_actuation_start = Some(e.t);
                    }
                }
            }
            DecisionKind::ActuationComplete { .. } => {
                if let Some(mut c) = open.take() {
                    if c.t_actuation_end.is_none() {
                        c.t_actuation_end = Some(e.t);
                    }
                    chains.push(c);
                }
            }
            DecisionKind::ContractEval { .. } | DecisionKind::Renegotiated { .. } => {}
        }
    }
    if let Some(c) = open.take() {
        chains.push(c);
    }
    chains
}

fn opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "-".to_string(),
    }
}

/// Header matching [`chain_table_row`] (all times virtual seconds).
pub fn chain_table_header() -> String {
    format!(
        "{:<14} {:>8} {:>9} {:>9} {:>8} {:>9} {:>8} {:>9} {:>9}",
        "phase", "t_poll", "t_viol", "t_decide", "action", "avg_ratio", "detect", "actuate", "e2e"
    )
}

/// Render one chain as a fixed-width latency-breakdown row.
pub fn chain_table_row(c: &DecisionChain) -> String {
    format!(
        "{:<14} {:>8.1} {:>9.1} {:>9} {:>8} {:>9.2} {:>8.1} {:>9} {:>9}",
        c.phase,
        c.t_poll,
        c.t_violation,
        opt(c.t_decision),
        c.action.label(),
        c.avg_ratio,
        c.detect_latency(),
        opt(c.actuate_latency()),
        opt(c.end_to_end()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: DecisionKind) -> DecisionEvent {
        DecisionEvent { t, kind }
    }

    #[test]
    fn full_chain_reconstructs() {
        let log = vec![
            ev(10.0, DecisionKind::MonitorPoll { reports: 0 }),
            ev(20.0, DecisionKind::MonitorPoll { reports: 3 }),
            ev(
                20.0,
                DecisionKind::ContractEval {
                    phase: "iter".into(),
                    ratio: 2.0,
                },
            ),
            ev(
                20.0,
                DecisionKind::ViolationDetected {
                    phase: "iter".into(),
                    avg_ratio: 2.0,
                    score: 0.9,
                },
            ),
            // Handler actuates before the monitor records the verdict —
            // the real call order in the QR driver.
            ev(
                20.0,
                DecisionKind::ActuationStarted {
                    action: DecisionAction::Migrate,
                },
            ),
            ev(
                20.0,
                DecisionKind::Decision {
                    action: DecisionAction::Migrate,
                },
            ),
            ev(
                95.0,
                DecisionKind::ActuationComplete {
                    action: DecisionAction::Migrate,
                },
            ),
        ];
        let chains = decision_chains(&log);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.action, DecisionAction::Migrate);
        assert_eq!(c.t_poll, 20.0);
        assert_eq!(c.detect_latency(), 0.0);
        assert_eq!(c.decide_latency(), Some(0.0));
        assert_eq!(c.actuate_latency(), Some(75.0));
        assert_eq!(c.end_to_end(), Some(75.0));
    }

    #[test]
    fn declined_violation_becomes_ignore_chain() {
        let log = vec![
            ev(5.0, DecisionKind::MonitorPoll { reports: 2 }),
            ev(
                5.0,
                DecisionKind::ViolationDetected {
                    phase: "iter".into(),
                    avg_ratio: 1.8,
                    score: 0.6,
                },
            ),
            ev(
                5.0,
                DecisionKind::Decision {
                    action: DecisionAction::Ignore,
                },
            ),
            ev(15.0, DecisionKind::MonitorPoll { reports: 2 }),
            ev(
                15.0,
                DecisionKind::ViolationDetected {
                    phase: "iter".into(),
                    avg_ratio: 2.4,
                    score: 0.9,
                },
            ),
            ev(
                15.0,
                DecisionKind::Decision {
                    action: DecisionAction::Migrate,
                },
            ),
        ];
        let chains = decision_chains(&log);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].action, DecisionAction::Ignore);
        assert!(chains[0].t_actuation_start.is_none());
        assert_eq!(chains[1].action, DecisionAction::Migrate);
        assert_eq!(chains[1].t_poll, 15.0);
    }

    #[test]
    fn table_renders_every_chain_state() {
        let c = DecisionChain {
            t_poll: 1.0,
            t_violation: 2.0,
            phase: "iter".into(),
            avg_ratio: 1.5,
            action: DecisionAction::Ignore,
            t_decision: None,
            t_actuation_start: None,
            t_actuation_end: None,
        };
        let header = chain_table_header();
        let row = chain_table_row(&c);
        assert!(header.contains("detect"));
        assert!(row.contains("ignore"));
        assert!(row.contains('-'), "missing stages render as '-': {row}");
    }
}
