//! Deterministic metrics: counters, gauges and fixed-bucket histograms,
//! with a stable snapshot and a hand-rolled JSON export (no serde in the
//! offline build environment).
//!
//! Everything here is a pure function of the sequence of recording calls:
//! keys aggregate in `BTreeMap`s (stable iteration), histogram bucket
//! edges are compile-time constants, and floating-point accumulation
//! happens in call order — so two runs that record the same values in the
//! same order produce bit-identical snapshots and byte-identical JSON.

use std::collections::BTreeMap;

/// Histogram bucket upper bounds (`le` semantics, log-decade spacing).
/// An observation `v` lands in the first bucket with `v <= le`; values
/// above the last edge land in the overflow bucket. The edges cover the
/// virtual-second range the decision loop lives in (sub-millisecond
/// kernel work up to multi-thousand-second application phases) and double
/// as size buckets for dirty-set cardinalities.
pub const HISTOGRAM_LE: [f64; 8] = [1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4];

/// A fixed-bucket histogram over virtual-time quantities.
///
/// Buckets are [`HISTOGRAM_LE`] plus one overflow bucket. `min`/`max` are
/// `0.0` while `count == 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (accumulated in record order).
    pub sum: f64,
    /// Smallest observation, or `0.0` when empty.
    pub min: f64,
    /// Largest observation, or `0.0` when empty.
    pub max: f64,
    /// Per-bucket counts: `buckets[i]` counts observations with
    /// `v <= HISTOGRAM_LE[i]` (exclusive of earlier buckets); the last
    /// entry is the overflow bucket.
    pub buckets: [u64; HISTOGRAM_LE.len() + 1],
    /// Observations strictly below the lowest edge. They still count in
    /// `buckets[0]` (cumulative `le` semantics), but without this counter
    /// the clamp is silent: a `1e-9` and a `1e-3` sample are
    /// indistinguishable, hiding samples the log-decade range cannot
    /// resolve.
    pub underflow: u64,
    /// Observations strictly above the highest edge — the same count as
    /// the last (overflow) bucket, surfaced by name so range blowouts are
    /// visible without knowing the bucket layout.
    pub overflow: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; HISTOGRAM_LE.len() + 1],
            underflow: 0,
            overflow: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = HISTOGRAM_LE
            .iter()
            .position(|&le| v <= le)
            .unwrap_or(HISTOGRAM_LE.len());
        self.buckets[idx] += 1;
        if v < HISTOGRAM_LE[0] {
            self.underflow += 1;
        } else if v > HISTOGRAM_LE[HISTOGRAM_LE.len() - 1] {
            self.overflow += 1;
        }
    }

    /// Mean observation, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The mutable registry behind an `Obs` handle.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Add `delta` to a named counter (created at zero on first use).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set a named gauge (last write wins).
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Record an observation into a named histogram.
    pub fn observe(&mut self, name: &str, v: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = Histogram::default();
                h.observe(v);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Deterministic point-in-time copy, sorted by metric name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: self.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect(),
        }
    }
}

/// An immutable, name-sorted copy of a [`Registry`].
///
/// `PartialEq` is bitwise on every float, which is what the determinism
/// regression wants: two runs compare equal only if they recorded
/// numerically identical streams.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Value of a counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Render as a JSON object. Key order is the snapshot's (sorted)
    /// order and float formatting is Rust's shortest round-trip notation,
    /// so equal snapshots serialize byte-identically — benches diff runs
    /// by diffing this string.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, &self.counters, |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, &self.gauges, |out, v| push_f64(out, *v));
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, &self.histograms, |out, h| {
            out.push_str("{\"count\": ");
            out.push_str(&h.count.to_string());
            out.push_str(", \"sum\": ");
            push_f64(out, h.sum);
            out.push_str(", \"min\": ");
            push_f64(out, h.min);
            out.push_str(", \"max\": ");
            push_f64(out, h.max);
            out.push_str(", \"le\": [");
            for (i, le) in HISTOGRAM_LE.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_f64(out, *le);
            }
            out.push_str(", null], \"buckets\": [");
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&b.to_string());
            }
            out.push_str("], \"underflow\": ");
            out.push_str(&h.underflow.to_string());
            out.push_str(", \"overflow\": ");
            out.push_str(&h.overflow.to_string());
            out.push('}');
        });
        out.push_str("}\n}");
        out
    }
}

fn push_entries<V>(
    out: &mut String,
    entries: &[(String, V)],
    mut push_val: impl FnMut(&mut String, &V),
) {
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_str(out, k);
        out.push_str(": ");
        push_val(out, v);
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON has no NaN/Infinity; non-finite values (which a correct run never
/// records) serialize as `null` rather than corrupting the document.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0.0005, 0.5, 0.5, 50.0, 1e6] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0.0005);
        assert_eq!(h.max, 1e6);
        assert_eq!(h.buckets[0], 1); // <= 1e-3
        assert_eq!(h.buckets[3], 2); // <= 1.0
        assert_eq!(h.buckets[5], 1); // <= 1e2
        assert_eq!(h.buckets[HISTOGRAM_LE.len()], 1); // overflow
        assert!((h.mean() - (0.0005 + 0.5 + 0.5 + 50.0 + 1e6) / 5.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_samples_are_counted_not_silently_clamped() {
        let mut h = Histogram::default();
        h.observe(1e-9); // below the lowest edge
        h.observe(0.5); // in range
        h.observe(1e-3); // exactly on the lowest edge: NOT underflow
        h.observe(1e4); // exactly on the highest edge: NOT overflow
        h.observe(1e9); // above the highest edge
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        // Bucket counts keep their cumulative-le shape unchanged.
        assert_eq!(h.buckets[0], 2, "1e-9 and 1e-3 both land in bucket 0");
        assert_eq!(h.buckets[HISTOGRAM_LE.len() - 1], 1, "1e4 in last edge");
        assert_eq!(h.buckets[HISTOGRAM_LE.len()], 1, "1e9 in overflow bucket");
        assert_eq!(h.overflow, h.buckets[HISTOGRAM_LE.len()]);
        let mut r = Registry::default();
        r.observe("h", 1e-9);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"underflow\": 1"));
        assert!(json.contains("\"overflow\": 0"));
    }

    #[test]
    fn bucket_edges_are_le_inclusive() {
        let mut h = Histogram::default();
        h.observe(1.0);
        assert_eq!(h.buckets[3], 1, "exactly-on-edge lands in that bucket");
    }

    #[test]
    fn registry_snapshot_is_sorted_and_stable() {
        let mut r = Registry::default();
        r.counter_add("z", 1);
        r.counter_add("a", 2);
        r.counter_add("z", 3);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        r.observe("h", 0.1);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a".to_string(), 2), ("z".to_string(), 4)]);
        assert_eq!(s.gauge("g"), Some(2.5));
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s, r.snapshot());
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = Registry::default();
        r.counter_add("with \"quote\"", 1);
        r.gauge_set("g", 0.25);
        r.observe("h", 2.0);
        let a = r.snapshot().to_json();
        let b = r.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\\\"quote\\\""));
        assert!(a.contains("\"g\": 0.25"));
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    fn empty_snapshot_serializes() {
        let s = MetricsSnapshot::default();
        assert_eq!(
            s.to_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}"
        );
    }
}
